/**
 * @file
 * Example: Mandelbrot deep zoom via perturbation theory (the paper's
 * Frac workload). The reference orbit runs at arbitrary precision —
 * far beyond what double can resolve at the requested zoom — while
 * pixels iterate cheap double deltas. Prints an ASCII rendering.
 *
 * Usage: mandelbrot_zoom [zoom_log2] [precision_bits]
 *        (defaults: zoom 2^-45, 256-bit orbit)
 */
#include <cstdio>
#include <cstdlib>

#include "apps/frac/mandelbrot.hpp"

int
main(int argc, char** argv)
{
    camp::apps::frac::RenderParams params;
    params.zoom_log2 = argc > 1 ? std::atoi(argv[1]) : 45;
    params.precision_bits =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
    params.width = 78;
    params.height = 40;
    params.max_iterations = 3000;
    if (params.zoom_log2 < 1 || params.zoom_log2 > 200 ||
        params.precision_bits < 64) {
        std::fprintf(stderr,
                     "usage: %s [zoom_log2 1..200] [precision >= 64]\n",
                     argv[0]);
        return 1;
    }

    std::printf("center %s + %s i, view width 2^-%d, %llu-bit "
                "reference orbit\n",
                params.center_re.c_str(), params.center_im.c_str(),
                params.zoom_log2,
                static_cast<unsigned long long>(params.precision_bits));
    const auto result = camp::apps::frac::render(params);
    std::fputs(
        camp::apps::frac::to_ascii(result, params.width, params.height)
            .c_str(),
        stdout);
    std::printf("orbit length %zu, escape fraction %.2f, checksum "
                "%016llx\n",
                result.orbit_length, result.escape_fraction,
                static_cast<unsigned long long>(result.checksum));
    return 0;
}
