/**
 * @file
 * Example: Coulomb N-body energy at arbitrary precision — a motivating
 * workload from the paper's introduction. Shows the double-precision
 * baseline losing digits to cancellation while the multiprecision sum
 * is stable across precisions.
 *
 * Usage: nbody_energy [lattice_per_axis]   (default 4 -> 64 charges)
 */
#include <cstdio>
#include <cstdlib>

#include "apps/nbody/nbody.hpp"

using namespace camp::apps::nbody;

int
main(int argc, char** argv)
{
    const unsigned n = argc > 1
                           ? static_cast<unsigned>(std::atoi(argv[1]))
                           : 4;
    if (n < 2 || n > 10) {
        std::fprintf(stderr, "usage: %s [lattice_per_axis in 2..10]\n",
                     argv[0]);
        return 1;
    }
    const auto charges = cancellation_lattice(n, 20260704);
    std::printf("NaCl-like lattice, %zu charges\n", charges.size());

    const double d = coulomb_energy_double(charges);
    std::printf("double baseline:   E = %.17g\n", d);
    for (const std::uint64_t prec : {128u, 256u, 512u}) {
        const auto e = coulomb_energy(charges, prec);
        std::printf("%4llu-bit Float:    E = %s\n",
                    static_cast<unsigned long long>(prec),
                    e.to_decimal(30).c_str());
    }
    std::printf("\nthe multiprecision values agree to every printed "
                "digit; the double value drifts in the low digits as "
                "the pairwise terms cancel (the paper's 'one tiny "
                "error leads to a highly deviated result').\n");
    return 0;
}
