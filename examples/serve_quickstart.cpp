/**
 * @file
 * Serving-layer quickstart: stand up the resilient front-end over a
 * fault-injecting simulated accelerator and watch it hold the line.
 *
 *  1. Describe a multi-tenant workload (priorities, bursts, deadlines)
 *     and generate it deterministically from one seed.
 *  2. Wrap the device in a circuit breaker and serve the workload with
 *     admission control, load-shedding, deadline enforcement, budgeted
 *     retries, and exact CPU fallback.
 *  3. Read the report: per-tenant latency percentiles, the shed set,
 *     and the conservation identities that prove nothing was lost.
 *  4. Re-serve the same workload through the async client edge —
 *     submit_async handles with completion callbacks, wall-clock wave
 *     execution with overlapping in-flight waves — and check it
 *     settles exactly the same outcome set (the virtual-as-oracle
 *     differential of DESIGN.md §15).
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build &&
 *               ./build/examples/serve_quickstart
 */
#include <cstdio>
#include <memory>

#include "exec/sim_device.hpp"
#include "serve/breaker.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "sim/config.hpp"
#include "support/fault.hpp"

namespace serve = camp::serve;

int
main()
{
    // --- 1. A deterministic multi-tenant workload --------------------
    serve::WorkloadSpec spec;
    spec.seed = 42;
    spec.requests = 200;
    spec.mean_interarrival_us = 2.0;  // near-critical load
    spec.deadline_fraction = 0.3;     // some requests carry deadlines
    spec.deadline_slack_us = 50;
    const auto workload = serve::generate_workload(spec);
    std::printf("generated %zu requests for 3 tenants "
                "(alpha/high, beta/normal, gamma/low)\n",
                workload.size());

    // --- 2. A breaker-guarded device with faults armed ---------------
    camp::sim::SimConfig sim_config = camp::sim::default_config();
    sim_config.faults.seed = spec.seed;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.002;
    serve::ServeConfig config; // or serve_config_from_env()
    serve::BreakerDevice device(
        std::make_unique<camp::exec::SimDevice>(sim_config),
        config.breaker);
    serve::Server server(config, device);

    // --- 3. Serve and read the report --------------------------------
    const serve::ServeReport report = server.process(workload);
    std::printf("%s", report.table().c_str());
    std::printf("breaker ended %s (opens=%llu, CPU-quarantined "
                "products=%llu)\n",
                serve::breaker_state_name(device.state()),
                static_cast<unsigned long long>(device.stats().opens),
                static_cast<unsigned long long>(
                    device.stats().fallback_products));
    std::printf("accounting conserved: %s\n",
                report.conserved() ? "yes" : "NO");

    // --- 4. The async edge, on the wall clock ------------------------
    // Same decisions, real execution: waves overlap on worker threads,
    // handles settle with callbacks, and the settled set matches the
    // virtual run above outcome for outcome.
    camp::sim::SimConfig clean_config = camp::sim::default_config();
    camp::exec::SimDevice oracle_device(clean_config);
    serve::Server oracle(config, oracle_device);
    const serve::ServeReport oracle_report = oracle.process(workload);

    serve::ServeConfig wall_config = config;
    wall_config.wall_clock = true;
    wall_config.max_inflight_waves = 4;
    camp::exec::SimDevice wall_device(clean_config);
    serve::Server async_server(wall_config, wall_device);
    std::uint64_t settled = 0;
    for (const serve::Request& request : workload)
        async_server.submit_async(request).on_settle(
            [&settled](const serve::Outcome&) { ++settled; });
    const serve::ServeReport wall_report = async_server.finish();

    bool differential = wall_report.outcomes.size() ==
                        oracle_report.outcomes.size();
    for (std::size_t i = 0; differential && i < workload.size(); ++i)
        differential = wall_report.outcomes[i].status ==
                       oracle_report.outcomes[i].status;
    std::printf("async wall-clock run: %llu callbacks, %llu waves, "
                "matches the virtual oracle: %s\n",
                static_cast<unsigned long long>(settled),
                static_cast<unsigned long long>(wall_report.waves),
                differential ? "yes" : "NO");

    return report.conserved() && differential ? 0 : 1;
}
