/**
 * @file
 * Serving-layer quickstart: stand up the resilient front-end over a
 * fault-injecting simulated accelerator and watch it hold the line.
 *
 *  1. Describe a multi-tenant workload (priorities, bursts, deadlines)
 *     and generate it deterministically from one seed.
 *  2. Wrap the device in a circuit breaker and serve the workload with
 *     admission control, load-shedding, deadline enforcement, budgeted
 *     retries, and exact CPU fallback.
 *  3. Read the report: per-tenant latency percentiles, the shed set,
 *     and the conservation identities that prove nothing was lost.
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build &&
 *               ./build/examples/serve_quickstart
 */
#include <cstdio>
#include <memory>

#include "exec/sim_device.hpp"
#include "serve/breaker.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "sim/config.hpp"
#include "support/fault.hpp"

namespace serve = camp::serve;

int
main()
{
    // --- 1. A deterministic multi-tenant workload --------------------
    serve::WorkloadSpec spec;
    spec.seed = 42;
    spec.requests = 200;
    spec.mean_interarrival_us = 2.0;  // near-critical load
    spec.deadline_fraction = 0.3;     // some requests carry deadlines
    spec.deadline_slack_us = 50;
    const auto workload = serve::generate_workload(spec);
    std::printf("generated %zu requests for 3 tenants "
                "(alpha/high, beta/normal, gamma/low)\n",
                workload.size());

    // --- 2. A breaker-guarded device with faults armed ---------------
    camp::sim::SimConfig sim_config = camp::sim::default_config();
    sim_config.faults.seed = spec.seed;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.002;
    serve::ServeConfig config; // or serve_config_from_env()
    serve::BreakerDevice device(
        std::make_unique<camp::exec::SimDevice>(sim_config),
        config.breaker);
    serve::Server server(config, device);

    // --- 3. Serve and read the report --------------------------------
    const serve::ServeReport report = server.process(workload);
    std::printf("%s", report.table().c_str());
    std::printf("breaker ended %s (opens=%llu, CPU-quarantined "
                "products=%llu)\n",
                serve::breaker_state_name(device.state()),
                static_cast<unsigned long long>(device.stats().opens),
                static_cast<unsigned long long>(
                    device.stats().fallback_products));
    std::printf("accounting conserved: %s\n",
                report.conserved() ? "yes" : "NO");
    return report.conserved() ? 0 : 1;
}
