/**
 * @file
 * Example: RSA key generation, encryption, and decryption on the
 * arbitrary-precision stack (Miller–Rabin primes + Montgomery modular
 * exponentiation — the paper's RSA workload).
 *
 * Usage: rsa_demo [modulus_bits]   (default 512)
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/rsa/rsa.hpp"
#include "mpn/natural.hpp"

using camp::mpn::Natural;

namespace {

Natural
encode(const std::string& text)
{
    std::vector<camp::mpn::Limb> limbs((text.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < text.size(); ++i)
        limbs[i / 8] |= static_cast<camp::mpn::Limb>(
                            static_cast<unsigned char>(text[i]))
                        << (8 * (i % 8));
    return Natural::from_limbs(std::move(limbs));
}

std::string
decode(const Natural& n)
{
    std::string out;
    for (std::size_t i = 0; i < n.size() * 8; ++i) {
        const char c = static_cast<char>(
            (n.limb(i / 8) >> (8 * (i % 8))) & 0xff);
        if (c != 0)
            out.push_back(c);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::uint64_t bits =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
    if (bits < 128 || bits > 4096) {
        std::fprintf(stderr, "usage: %s [modulus_bits in 128..4096]\n",
                     argv[0]);
        return 1;
    }
    std::printf("generating a %llu-bit RSA key (Miller-Rabin)...\n",
                static_cast<unsigned long long>(bits));
    const auto key = camp::apps::rsa::generate_key(bits, 20260704);
    std::printf("n = %s\n", key.n.to_hex().c_str());
    std::printf("e = %s, d has %llu bits\n", key.e.to_decimal().c_str(),
                static_cast<unsigned long long>(key.d.bits()));

    const std::string message = "cambricon-p bitflow";
    const Natural m = encode(message);
    if (m >= key.n) {
        std::fprintf(stderr, "message too long for this modulus\n");
        return 1;
    }
    const Natural cipher = camp::apps::rsa::encrypt(m, key);
    std::printf("cipher = %s\n", cipher.to_hex().c_str());
    const Natural back = camp::apps::rsa::decrypt(cipher, key);
    std::printf("decrypted: \"%s\" -> %s\n", decode(back).c_str(),
                back == m ? "round trip OK" : "MISMATCH");
    return back == m ? 0 : 1;
}
