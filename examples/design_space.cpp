/**
 * @file
 * Example: design-space exploration with the analytic model — how the
 * Cambricon-P configuration (PE count, IPUs per PE, LLC bandwidth)
 * moves the performance of a monolithic multiplication and where the
 * compute/memory crossover sits. This is the kind of what-if study the
 * simulator exists for.
 *
 * Usage: design_space [bits]   (default 35904, the monolithic cap)
 */
#include <cstdio>
#include <cstdlib>

#include "sim/analytic_model.hpp"
#include "sim/config.hpp"
#include "support/table.hpp"

using namespace camp::sim;
using camp::Table;

int
main(int argc, char** argv)
{
    const std::uint64_t bits =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 35904;

    Table table({"n_pe", "n_ipu", "LLC GB/s", "cycles", "time (ns)",
                 "bound", "peak GMAC64/s"});
    for (const unsigned n_pe : {64u, 128u, 256u, 512u}) {
        for (const unsigned n_ipu : {16u, 32u, 64u}) {
            for (const double llc : {256.0, 512.0, 1024.0}) {
                SimConfig config;
                config.n_pe = n_pe;
                config.n_ipu = n_ipu;
                config.llc_gbps = llc;
                const AnalyticModel model(config);
                const CoreStats stats =
                    model.multiply_stats(bits, bits);
                table.add_row(
                    {std::to_string(n_pe), std::to_string(n_ipu),
                     Table::fmt(llc, 4),
                     std::to_string(stats.cycles),
                     Table::fmt(stats.seconds(config) * 1e9, 4),
                     stats.memory_cycles > stats.compute_cycles
                         ? "memory"
                         : "compute",
                     Table::fmt(model.peak_mac64_per_s() / 1e9, 4)});
            }
        }
    }
    std::printf("design space for a %llu-bit monolithic "
                "multiplication (paper config: 256 PEs x 32 IPUs, "
                "512 GB/s):\n",
                static_cast<unsigned long long>(bits));
    table.print();
    return 0;
}
