/**
 * @file
 * Example: compute digits of pi with the Chudnovsky algorithm
 * (Algorithm 1 of the paper) and compare the CPU baseline against the
 * simulated Cambricon-P backend.
 *
 * Usage: pi_digits [digits]      (default 1000)
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/pi/chudnovsky.hpp"
#include "exec/registry.hpp"
#include "mpapca/runtime.hpp"

int
main(int argc, char** argv)
{
    const std::uint64_t digits =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
    if (digits < 1 || digits > 2000000) {
        std::fprintf(stderr, "usage: %s [digits in 1..2000000]\n",
                     argv[0]);
        return 1;
    }

    std::string pi;
    // Accelerator backend via the registry (CAMP_BACKEND overrides).
    camp::mpapca::Runtime cpu("cpu");
    camp::mpapca::Runtime accel(
        camp::exec::default_device_name("sim"));
    const auto on_cpu =
        cpu.run("pi", [&] { pi = camp::apps::pi::compute_pi(digits); });
    const auto on_accel = accel.run(
        "pi", [&] { pi = camp::apps::pi::compute_pi(digits); });

    if (digits <= 100) {
        std::printf("pi = %s\n", pi.c_str());
    } else {
        std::printf("pi = %s...%s (%llu digits)\n",
                    pi.substr(0, 52).c_str(),
                    pi.substr(pi.size() - 10).c_str(),
                    static_cast<unsigned long long>(digits));
    }
    std::printf("terms: %llu (binary splitting)\n",
                static_cast<unsigned long long>(
                    camp::apps::pi::terms_for_digits(digits)));
    std::printf("CPU backend:        %.4g s\n", on_cpu.seconds);
    std::printf("%s backend: %.4g s  (%.2fx, %.3g J)\n",
                on_accel.device.c_str(), on_accel.seconds,
                on_cpu.seconds / on_accel.seconds, on_accel.energy_j);
    return 0;
}
