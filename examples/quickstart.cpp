/**
 * @file
 * Quickstart: the three layers of this repository in one page.
 *
 *  1. Arbitrary-precision arithmetic (the GMP-equivalent substrate).
 *  2. The Cambricon-P simulator: run a monolithic multiplication on
 *     the modelled hardware and inspect the schedule.
 *  3. The MPApca runtime: the same application code timed on the CPU
 *     backend and on the simulated accelerator.
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build &&
 *               ./build/examples/quickstart
 */
#include <cstdio>

#include "exec/registry.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "sim/core.hpp"
#include "sim/tech_model.hpp"
#include "support/rng.hpp"

using camp::mpn::Natural;

int
main()
{
    // --- 1. Arbitrary-precision naturals -----------------------------
    const Natural a = Natural::from_decimal("123456789012345678901234567890");
    const Natural b = Natural::pow(Natural(2), 100);
    std::printf("a * b      = %s\n", (a * b).to_decimal().c_str());
    std::printf("isqrt(a)   = %s\n",
                Natural::isqrt(a).to_decimal().c_str());
    auto [q, r] = Natural::divrem(a, Natural(997));
    std::printf("a mod 997  = %s\n", r.to_decimal().c_str());

    // --- 2. One multiplication on the simulated Cambricon-P ----------
    camp::Rng rng(1);
    const Natural x = Natural::random_bits(rng, 4096);
    const Natural y = Natural::random_bits(rng, 4096);
    camp::sim::Core core; // 256 PEs x 32 IPUs, 2 GHz (paper config)
    const camp::sim::MulResult result = core.multiply(x, y);
    std::printf("\n4096x4096-bit multiplication on Cambricon-P:\n"
                "  tasks=%llu waves=%llu cycles=%llu time=%.2f ns "
                "(paper Table III: 16 ns)\n",
                static_cast<unsigned long long>(result.stats.tasks),
                static_cast<unsigned long long>(result.stats.waves),
                static_cast<unsigned long long>(result.stats.cycles),
                result.stats.seconds(camp::sim::default_config()) * 1e9);
    const auto energy = camp::sim::cambricon_p_energy();
    std::printf("  energy=%.3g J (product verified against mpn)\n",
                energy.energy(result.stats,
                              camp::sim::default_config()));

    // --- 3. Backend-dispatched run through MPApca --------------------
    auto workload = [&] {
        Natural acc(1);
        for (int i = 0; i < 50; ++i)
            acc = (acc * x) % y;
    };
    // Backends come from the device registry; CAMP_BACKEND swaps the
    // accelerator side ("sim" by default, "analytic" for the model).
    camp::mpapca::Runtime cpu("cpu");
    camp::mpapca::Runtime accel(camp::exec::default_device_name("sim"));
    const auto on_cpu = cpu.run("quickstart", workload);
    const auto on_accel = accel.run("quickstart", workload);
    std::printf("\nmodular power chain: CPU %.3g s vs %s "
                "%.3g s -> %.1fx speedup\n",
                on_cpu.seconds, on_accel.device.c_str(),
                on_accel.seconds,
                on_cpu.seconds / on_accel.seconds);
    return 0;
}
