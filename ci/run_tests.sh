#!/usr/bin/env bash
# Minimal CI: default Release build + ctest, then an
# address+undefined-sanitizer build + ctest (skip the second pass with
# CAMP_CI_SKIP_SANITIZE=1). Fails on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
    local build_dir="$1"
    shift
    echo "==== configure ${build_dir} ($*) ===="
    cmake -B "${build_dir}" -S . "$@"
    echo "==== build ${build_dir} ===="
    cmake --build "${build_dir}" -j "${JOBS}"
    echo "==== ctest ${build_dir} ===="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_pass build

if [[ "${CAMP_CI_SKIP_SANITIZE:-0}" != "1" ]]; then
    run_pass build-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAMP_SANITIZE="address;undefined"
fi

echo "==== all test passes green ===="
