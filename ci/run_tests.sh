#!/usr/bin/env bash
# Minimal CI (fail on the first failing step):
#  1. default Release build; ctest at CAMP_THREADS=1 and CAMP_THREADS=4
#     so the pool's serial-inline and forking paths both run, then at
#     CAMP_BACKEND=cpu and CAMP_BACKEND=sim so the device-registry
#     default covers both execution backends, then at
#     CAMP_BACKEND=sharded with CAMP_SHARDS=1 and =4 so the whole
#     suite also runs through the multi-device scheduler's
#     single-shard and fanned-out paths, then at CAMP_SIMD=scalar and
#     CAMP_SIMD=avx2 (skipped with a notice when the host lacks AVX2)
#     so every tier of the dispatched limb kernels runs the full suite
#     and results stay bit-identical across tiers, and at
#     CAMP_OPCACHE=0 and =1 so the operand-digest inverse cache's
#     hit path provably never changes a result;
#  2. perf-regression gate: perf_smoke and batch_throughput vs
#     bench/baselines at a generous machine-portability tolerance, a
#     CAMP_TRACE export smoke-checked through tools/trace_report, and a
#     negative control (a doctored baseline MUST fail the gate; skip
#     with CAMP_CI_SKIP_PERF=1), plus the short serving soak —
#     bench/serve_soak with fault injection armed, which self-checks
#     zero wrong results, conservation, bounded p99, and exact ledger
#     accounting before the perf gate even runs — plus an ungated
#     short `serve_soak --wall` leg (overlapping in-flight waves on
#     real threads; hard correctness asserts, no latency gates);
#  3. address+undefined-sanitizer build + ctest — this includes
#     test_simd_kernels, so the vector kernels' scratch/tail handling
#     runs under ASan/UBSan every CI pass — followed by a dedicated
#     memory-plane leg (test_memory_plane, test_scheduler, test_exec
#     with ASAN_OPTIONS=detect_invalid_pointer_pairs=2) where the limb
#     arena's manual poisoning of freed ranges turns any
#     use-after-reset of a wave view into a hard failure
#     (skip with CAMP_CI_SKIP_SANITIZE=1);
#  4. ThreadSanitizer build (CAMP_SANITIZE=thread) over the
#     concurrency-bearing tests — pool, mpn mul, batch, runtime,
#     sharded scheduler, memory plane (per-thread arena magazines +
#     concurrent wave slot writes), serving layer (concurrent ledger
#     folding), async wall-clock serving (overlapping wave workers,
#     handle callbacks, the differential oracle), operand cache
#     (sharded LRU hit/miss/evict races) — at CAMP_THREADS=4
#     (skip with CAMP_CI_SKIP_SANITIZE=1);
#  5. report-only coverage summary via gcovr/gcov when available
#     (opt in with CAMP_CI_COVERAGE=1; never gates).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
    local build_dir="$1"
    shift
    echo "==== configure ${build_dir} ($*) ===="
    cmake -B "${build_dir}" -S . "$@"
    echo "==== build ${build_dir} ===="
    cmake --build "${build_dir}" -j "${JOBS}"
    echo "==== ctest ${build_dir} ===="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_pass build
echo "==== ctest build (CAMP_THREADS=1) ===="
CAMP_THREADS=1 ctest --test-dir build --output-on-failure -j "${JOBS}"
echo "==== ctest build (CAMP_THREADS=4) ===="
CAMP_THREADS=4 ctest --test-dir build --output-on-failure -j "${JOBS}"
# Device-registry passes: CAMP_BACKEND sets the default exec device, so
# the whole tier-1 suite runs once per shipped backend default.
echo "==== ctest build (CAMP_BACKEND=cpu) ===="
CAMP_BACKEND=cpu ctest --test-dir build --output-on-failure -j "${JOBS}"
echo "==== ctest build (CAMP_BACKEND=sim) ===="
CAMP_BACKEND=sim ctest --test-dir build --output-on-failure -j "${JOBS}"
# Sharded-scheduler matrix: the full suite through the multi-device
# scheduler at one shard (pass-through partitioning) and four (LPT
# fan-out on the pool) — products must stay bit-identical either way.
echo "==== ctest build (CAMP_BACKEND=sharded, CAMP_SHARDS=1) ===="
CAMP_BACKEND=sharded CAMP_SHARDS=1 \
    ctest --test-dir build --output-on-failure -j "${JOBS}"
echo "==== ctest build (CAMP_BACKEND=sharded, CAMP_SHARDS=4) ===="
CAMP_BACKEND=sharded CAMP_SHARDS=4 \
    ctest --test-dir build --output-on-failure -j "${JOBS}"
# SIMD-dispatch matrix: the whole tier-1 suite pinned to the scalar
# reference kernels, then to the AVX2 tier, so the cross-tier
# bit-identity invariant is exercised suite-wide (not only by
# test_simd_kernels' differential fuzz). The avx2 leg is skipped with
# a notice on hosts without the ISA — CAMP_SIMD=avx2 would fall back
# to scalar there and silently duplicate the previous leg.
# Operand-cache matrix: the whole tier-1 suite with the inverse cache
# disabled (every derivation cold) and force-enabled — results must be
# bit-identical either way, the DESIGN.md §16 invariance contract that
# tests/test_opcache.cpp fuzzes differentially within one process.
echo "==== ctest build (CAMP_OPCACHE=0) ===="
CAMP_OPCACHE=0 ctest --test-dir build --output-on-failure -j "${JOBS}"
echo "==== ctest build (CAMP_OPCACHE=1) ===="
CAMP_OPCACHE=1 ctest --test-dir build --output-on-failure -j "${JOBS}"
echo "==== ctest build (CAMP_SIMD=scalar) ===="
CAMP_SIMD=scalar ctest --test-dir build --output-on-failure -j "${JOBS}"
if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
    echo "==== ctest build (CAMP_SIMD=avx2) ===="
    CAMP_SIMD=avx2 ctest --test-dir build --output-on-failure \
        -j "${JOBS}"
else
    echo "==== ctest build (CAMP_SIMD=avx2) SKIPPED: host lacks AVX2 ===="
fi

if [[ "${CAMP_CI_SKIP_PERF:-0}" != "1" ]]; then
    # Perf-regression gate. The tolerance is deliberately loose (4x):
    # it tolerates host-to-host variation against the checked-in
    # baseline while still catching order-of-magnitude regressions;
    # refresh bench/baselines/ when landing intentional perf changes
    # (see README "Performance").
    BASELINE="bench/baselines/BENCH_perf_smoke.json"
    echo "==== perf gate (perf_smoke vs ${BASELINE}) ===="
    CAMP_TRACE=build/perf_smoke_trace.json \
        CAMP_BENCH_DIR=build \
        CAMP_BENCH_GATE=1 \
        CAMP_BENCH_BASELINE="${BASELINE}" \
        CAMP_BENCH_TOLERANCE="${CAMP_BENCH_TOLERANCE:-4.0}" \
        ./build/bench/perf_smoke

    echo "==== trace export smoke (tools/trace_report) ===="
    ./build/tools/trace_report build/perf_smoke_trace.json

    # Coalescing-queue + shard-scaling gate: batch_serial_submit /
    # batch_coalesce wall time plus the batch_shard_scaling_{1,2,4,8}
    # rows (the binary itself asserts coalesced sim cycles < serial
    # sim cycles and that wave cycles decrease monotonically 1 -> 8
    # shards — the deterministic schedule property; wall clock may
    # saturate on few-core hosts).
    BATCH_BASELINE="bench/baselines/BENCH_batch_throughput.json"
    echo "==== perf gate (batch_throughput vs ${BATCH_BASELINE}) ===="
    CAMP_BENCH_DIR=build \
        CAMP_BENCH_GATE=1 \
        CAMP_BENCH_BASELINE="${BATCH_BASELINE}" \
        CAMP_BENCH_TOLERANCE="${CAMP_BENCH_TOLERANCE:-4.0}" \
        ./build/bench/batch_throughput

    # Serving soak, short mode: 400 requests of the mixed multi-tenant
    # workload against a breaker-guarded SimDevice with fault
    # injection armed. The binary exits nonzero on any wrong result,
    # broken conservation identity, unbounded p99, or ledger
    # mismatch — the perf gate on top only catches throughput
    # regressions. The shed/timeout sets are deterministic for the
    # default seed (override with CAMP_FUZZ_SEED to replay a failure).
    SOAK_BASELINE="bench/baselines/BENCH_serve_soak.json"
    echo "==== serve soak (short, faults armed) vs ${SOAK_BASELINE} ===="
    CAMP_SERVE_REQUESTS=400 \
        CAMP_BENCH_DIR=build \
        CAMP_BENCH_GATE=1 \
        CAMP_BENCH_BASELINE="${SOAK_BASELINE}" \
        CAMP_BENCH_TOLERANCE="${CAMP_BENCH_TOLERANCE:-4.0}" \
        ./build/bench/serve_soak

    # Wall-clock serving leg: the same soak, short, in --wall mode —
    # CAMP_SERVE_INFLIGHT=4 overlapping waves on real worker threads.
    # The binary keeps every *correctness* invariant hard (zero wrong
    # results, conservation, exact ledger fold) but wall timings are
    # scheduling noise by construction, so this leg carries no
    # CAMP_BENCH_GATE and no latency bound (DESIGN.md §15).
    echo "==== serve soak (short, --wall, inflight=4, ungated) ===="
    CAMP_SERVE_REQUESTS=400 \
        CAMP_SERVE_INFLIGHT=4 \
        CAMP_BENCH_DIR=build \
        ./build/bench/serve_soak --wall

    # Operand-cache bench: the binary itself hard-fails unless the
    # repeated-operand pi-regrow walk wins >= 2x with the cache on
    # (and reports Montgomery/reciprocal reuse and the unchanged cold
    # path); the gate on top catches ns/op regressions on every row.
    OPCACHE_BASELINE="bench/baselines/BENCH_opcache_bench.json"
    echo "==== perf gate (opcache_bench vs ${OPCACHE_BASELINE}) ===="
    CAMP_BENCH_DIR=build \
        CAMP_BENCH_GATE=1 \
        CAMP_BENCH_BASELINE="${OPCACHE_BASELINE}" \
        CAMP_BENCH_TOLERANCE="${CAMP_BENCH_TOLERANCE:-4.0}" \
        ./build/bench/opcache_bench

    # Negative control: a doctored baseline (every ns_per_op forced to
    # 1 ns) must make the gate fail on any machine, proving the gate
    # actually bites. The freshly written BENCH json is reused so this
    # step adds no bench runtime.
    echo "==== perf gate negative control (doctored baseline) ===="
    awk '{ gsub(/"ns_per_op": [0-9.]+/, "\"ns_per_op\": 1.000"); print }' \
        "${BASELINE}" > build/doctored_baseline.json
    if CAMP_BENCH_DIR=build \
        CAMP_BENCH_GATE=1 \
        CAMP_BENCH_BASELINE=build/doctored_baseline.json \
        CAMP_BENCH_TOLERANCE=4.0 \
        ./build/bench/perf_smoke > build/doctored_gate.log 2>&1; then
        echo "ERROR: gate passed against a doctored baseline"
        tail -20 build/doctored_gate.log
        exit 1
    fi
    echo "doctored baseline rejected as expected"
fi

if [[ "${CAMP_CI_SKIP_SANITIZE:-0}" != "1" ]]; then
    run_pass build-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAMP_SANITIZE="address;undefined"

    # Memory-plane poisoning leg: the arena manually poisons free
    # blocks and released wave ranges under ASan
    # (support::asan_poison), so any use of a view past its
    # WaveBuffer's reset()/release() is a hard ASan failure here, not
    # silent reuse. detect_invalid_pointer_pairs additionally checks
    # the intra-slab pointer arithmetic the carver does.
    echo "==== asan memory-plane leg (arena poisoning armed) ===="
    for t in test_memory_plane test_scheduler test_exec; do
        echo "---- ${t} (ASAN_OPTIONS=detect_invalid_pointer_pairs=2) ----"
        ASAN_OPTIONS="detect_invalid_pointer_pairs=2:halt_on_error=1" \
            ./build-asan/tests/"${t}"
    done

    # ThreadSanitizer pass: the tests that exercise the thread pool
    # (fork/join, parallel mpn kernels, parallel batch, runtime batch),
    # forced parallel so races are actually reachable.
    echo "==== configure build-tsan (thread sanitizer) ===="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAMP_SANITIZE="thread"
    echo "==== build build-tsan ===="
    cmake --build build-tsan -j "${JOBS}" --target \
        test_thread_pool test_mpn_mul test_sim_batch test_mpapca \
        test_scheduler test_memory_plane test_serve test_serve_async \
        test_opcache
    echo "==== tsan tests (CAMP_THREADS=4) ===="
    for t in test_thread_pool test_mpn_mul test_sim_batch test_mpapca \
             test_scheduler test_memory_plane test_serve \
             test_serve_async test_opcache; do
        echo "---- ${t} ----"
        CAMP_THREADS=4 ./build-tsan/tests/"${t}"
    done
fi

if [[ "${CAMP_CI_COVERAGE:-0}" == "1" ]]; then
    # Report-only coverage: instrument, run the suite once, summarize.
    # Never gates — the numbers are a trend signal, not a threshold.
    echo "==== coverage build (report only) ===="
    cmake -B build-cov -S . \
        -DCMAKE_BUILD_TYPE=Debug -DCAMP_COVERAGE=ON
    cmake --build build-cov -j "${JOBS}"
    ctest --test-dir build-cov -j "${JOBS}" > /dev/null
    if command -v gcovr > /dev/null 2>&1; then
        gcovr --root . --filter 'src/' build-cov \
            --print-summary || true
    elif command -v gcov > /dev/null 2>&1; then
        echo "(gcovr unavailable; raw gcov line summary over src/)"
        find build-cov -name '*.gcda' -path '*src*' \
            -exec gcov -n {} + 2> /dev/null |
            grep -A1 "^File.*src/" | grep -E "^(File|Lines)" || true
    else
        echo "gcovr/gcov unavailable; skipping coverage report"
    fi
fi

echo "==== all test passes green ===="
