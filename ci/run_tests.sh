#!/usr/bin/env bash
# Minimal CI, three passes (fail on the first failing step):
#  1. default Release build; ctest at CAMP_THREADS=1 and CAMP_THREADS=4
#     so the pool's serial-inline and forking paths both run;
#  2. address+undefined-sanitizer build + ctest
#     (skip with CAMP_CI_SKIP_SANITIZE=1);
#  3. ThreadSanitizer build (CAMP_SANITIZE=thread) over the
#     concurrency-bearing tests — pool, mpn mul, batch, runtime — at
#     CAMP_THREADS=4 (skip with CAMP_CI_SKIP_SANITIZE=1).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
    local build_dir="$1"
    shift
    echo "==== configure ${build_dir} ($*) ===="
    cmake -B "${build_dir}" -S . "$@"
    echo "==== build ${build_dir} ===="
    cmake --build "${build_dir}" -j "${JOBS}"
    echo "==== ctest ${build_dir} ===="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_pass build
echo "==== ctest build (CAMP_THREADS=1) ===="
CAMP_THREADS=1 ctest --test-dir build --output-on-failure -j "${JOBS}"
echo "==== ctest build (CAMP_THREADS=4) ===="
CAMP_THREADS=4 ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${CAMP_CI_SKIP_SANITIZE:-0}" != "1" ]]; then
    run_pass build-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAMP_SANITIZE="address;undefined"

    # ThreadSanitizer pass: the tests that exercise the thread pool
    # (fork/join, parallel mpn kernels, parallel batch, runtime batch),
    # forced parallel so races are actually reachable.
    echo "==== configure build-tsan (thread sanitizer) ===="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAMP_SANITIZE="thread"
    echo "==== build build-tsan ===="
    cmake --build build-tsan -j "${JOBS}" --target \
        test_thread_pool test_mpn_mul test_sim_batch test_mpapca
    echo "==== tsan tests (CAMP_THREADS=4) ===="
    for t in test_thread_pool test_mpn_mul test_sim_batch test_mpapca; do
        echo "---- ${t} ----"
        CAMP_THREADS=4 ./build-tsan/tests/"${t}"
    done
fi

echo "==== all test passes green ===="
