/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: a
 * repeat-until-stable wall timer with warmup/repetition control and a
 * machine-readable result sink — every bench binary can append rows
 * (op, bits, threads, ns/op, GB/s) to a BenchJson and flush them as
 * `BENCH_<name>.json`, giving the repo a perf trajectory that CI can
 * diff run over run (see bench/perf_smoke.cpp and README
 * "Performance").
 */
#ifndef CAMP_BENCH_BENCH_UTIL_HPP
#define CAMP_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace camp::bench {

/** Repetition policy for time_call. */
struct TimingOptions
{
    int warmup = 1;       ///< untimed calls before measurement
    int min_runs = 1;     ///< timed calls at minimum
    int max_runs = 1000000;
    double min_seconds = 0.05; ///< accumulate at least this much
};

/** Seconds for one call of @p fn under @p opts. */
inline double
time_call(const std::function<void()>& fn,
          const TimingOptions& opts)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < opts.warmup; ++i)
        fn();
    int runs = 0;
    const auto start = clock::now();
    double elapsed = 0;
    do {
        fn();
        ++runs;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
    } while ((elapsed < opts.min_seconds || runs < opts.min_runs) &&
             runs < opts.max_runs);
    return elapsed / runs;
}

/** Seconds for one call of @p fn, repeated until >= @p min_seconds of
 * total runtime accumulates (at least once); no warmup — the
 * historical default of the fig/table binaries. */
inline double
time_call(const std::function<void()>& fn, double min_seconds = 0.05)
{
    TimingOptions opts;
    opts.warmup = 0;
    opts.min_seconds = min_seconds;
    return time_call(fn, opts);
}

/** Print a section header in a uniform style. */
inline void
section(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/**
 * Machine-readable benchmark sink. Rows are (op, bits, threads,
 * ns/op, GB/s) plus free-form extras; write_file() emits
 * BENCH_<name>.json into the current directory (or $CAMP_BENCH_DIR).
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string name) : name_(std::move(name)) {}

    struct Row
    {
        std::string op;
        std::uint64_t bits = 0;
        unsigned threads = 1;
        double ns_per_op = 0;
        double gb_per_s = 0;
        /** Extra numeric fields, e.g. {"speedup", 1.9}. */
        std::vector<std::pair<std::string, double>> extra;
    };

    void add(Row row) { rows_.push_back(std::move(row)); }

    /** Convenience: append a row and echo it to stdout. */
    void
    add(const std::string& op, std::uint64_t bits, unsigned threads,
        double seconds_per_op, double bytes_per_op,
        std::vector<std::pair<std::string, double>> extra = {})
    {
        Row row;
        row.op = op;
        row.bits = bits;
        row.threads = threads;
        row.ns_per_op = seconds_per_op * 1e9;
        row.gb_per_s = seconds_per_op > 0
                           ? bytes_per_op / seconds_per_op * 1e-9
                           : 0.0;
        row.extra = std::move(extra);
        std::printf("  %-24s %10llu bits  %2u thr  %14.1f ns/op"
                    "  %8.3f GB/s",
                    row.op.c_str(),
                    static_cast<unsigned long long>(row.bits),
                    row.threads, row.ns_per_op, row.gb_per_s);
        for (const auto& [key, value] : row.extra)
            std::printf("  %s=%.3f", key.c_str(), value);
        std::printf("\n");
        rows_.push_back(std::move(row));
    }

    /** Write BENCH_<name>.json; returns the path (empty on failure). */
    std::string
    write_file() const
    {
        std::string dir = ".";
        if (const char* env = std::getenv("CAMP_BENCH_DIR"))
            dir = env;
        const std::string path = dir + "/BENCH_" + name_ + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return std::string();
        std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"rows\": [",
                     name_.c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row& r = rows_[i];
            std::fprintf(f,
                         "%s\n    {\"op\": \"%s\", \"bits\": %llu, "
                         "\"threads\": %u, \"ns_per_op\": %.3f, "
                         "\"gb_per_s\": %.6f",
                         i == 0 ? "" : ",", r.op.c_str(),
                         static_cast<unsigned long long>(r.bits),
                         r.threads, r.ns_per_op, r.gb_per_s);
            for (const auto& [key, value] : r.extra)
                std::fprintf(f, ", \"%s\": %.6f", key.c_str(), value);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
        return path;
    }

  private:
    std::string name_;
    std::vector<Row> rows_;
};

} // namespace camp::bench

#endif // CAMP_BENCH_BENCH_UTIL_HPP
