/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: a
 * repeat-until-stable wall timer and common formatting.
 */
#ifndef CAMP_BENCH_BENCH_UTIL_HPP
#define CAMP_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace camp::bench {

/** Seconds for one call of @p fn, repeated until >= @p min_seconds of
 * total runtime accumulates (at least once). */
inline double
time_call(const std::function<void()>& fn, double min_seconds = 0.05)
{
    using clock = std::chrono::steady_clock;
    int runs = 0;
    const auto start = clock::now();
    double elapsed = 0;
    do {
        fn();
        ++runs;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
    } while (elapsed < min_seconds && runs < 1000000);
    return elapsed / runs;
}

/** Print a section header in a uniform style. */
inline void
section(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

} // namespace camp::bench

#endif // CAMP_BENCH_BENCH_UTIL_HPP
