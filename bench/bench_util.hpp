/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: a
 * repeat-until-stable wall timer with warmup/repetition control and a
 * machine-readable result sink — every bench binary can append rows
 * (op, bits, threads, ns/op, GB/s) to a BenchJson and flush them as
 * `BENCH_<name>.json`, giving the repo a perf trajectory that CI can
 * diff run over run (see bench/perf_smoke.cpp and README
 * "Performance").
 */
#ifndef CAMP_BENCH_BENCH_UTIL_HPP
#define CAMP_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace camp::bench {

/** Repetition policy for time_call. */
struct TimingOptions
{
    int warmup = 1;       ///< untimed calls before measurement
    int min_runs = 1;     ///< timed calls at minimum
    int max_runs = 1000000;
    double min_seconds = 0.05; ///< accumulate at least this much
};

/** Seconds for one call of @p fn under @p opts. */
inline double
time_call(const std::function<void()>& fn,
          const TimingOptions& opts)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < opts.warmup; ++i)
        fn();
    int runs = 0;
    const auto start = clock::now();
    double elapsed = 0;
    do {
        fn();
        ++runs;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
    } while ((elapsed < opts.min_seconds || runs < opts.min_runs) &&
             runs < opts.max_runs);
    return elapsed / runs;
}

/** Seconds for one call of @p fn, repeated until >= @p min_seconds of
 * total runtime accumulates (at least once); no warmup — the
 * historical default of the fig/table binaries. */
inline double
time_call(const std::function<void()>& fn, double min_seconds = 0.05)
{
    TimingOptions opts;
    opts.warmup = 0;
    opts.min_seconds = min_seconds;
    return time_call(fn, opts);
}

/** Print a section header in a uniform style. */
inline void
section(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/**
 * Machine-readable benchmark sink. Rows are (op, bits, threads,
 * ns/op, GB/s) plus free-form extras; write_file() emits
 * BENCH_<name>.json into the current directory (or $CAMP_BENCH_DIR).
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string name) : name_(std::move(name)) {}

    struct Row
    {
        std::string op;
        std::uint64_t bits = 0;
        unsigned threads = 1;
        double ns_per_op = 0;
        double gb_per_s = 0;
        /** Extra numeric fields, e.g. {"speedup", 1.9}. */
        std::vector<std::pair<std::string, double>> extra;
    };

    void add(Row row) { rows_.push_back(std::move(row)); }

    /** Convenience: append a row and echo it to stdout. */
    void
    add(const std::string& op, std::uint64_t bits, unsigned threads,
        double seconds_per_op, double bytes_per_op,
        std::vector<std::pair<std::string, double>> extra = {})
    {
        Row row;
        row.op = op;
        row.bits = bits;
        row.threads = threads;
        row.ns_per_op = seconds_per_op * 1e9;
        row.gb_per_s = seconds_per_op > 0
                           ? bytes_per_op / seconds_per_op * 1e-9
                           : 0.0;
        row.extra = std::move(extra);
        std::printf("  %-24s %10llu bits  %2u thr  %14.1f ns/op"
                    "  %8.3f GB/s",
                    row.op.c_str(),
                    static_cast<unsigned long long>(row.bits),
                    row.threads, row.ns_per_op, row.gb_per_s);
        for (const auto& [key, value] : row.extra)
            std::printf("  %s=%.3f", key.c_str(), value);
        std::printf("\n");
        rows_.push_back(std::move(row));
    }

    /** Write BENCH_<name>.json; returns the path (empty on failure). */
    std::string
    write_file() const
    {
        std::string dir = ".";
        if (const char* env = std::getenv("CAMP_BENCH_DIR"))
            dir = env;
        const std::string path = dir + "/BENCH_" + name_ + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return std::string();
        std::fprintf(f, "{\n  \"name\": \"%s\",\n  \"rows\": [",
                     name_.c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row& r = rows_[i];
            std::fprintf(f,
                         "%s\n    {\"op\": \"%s\", \"bits\": %llu, "
                         "\"threads\": %u, \"ns_per_op\": %.3f, "
                         "\"gb_per_s\": %.6f",
                         i == 0 ? "" : ",", r.op.c_str(),
                         static_cast<unsigned long long>(r.bits),
                         r.threads, r.ns_per_op, r.gb_per_s);
            for (const auto& [key, value] : r.extra)
                std::fprintf(f, ", \"%s\": %.6f", key.c_str(), value);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
        return path;
    }

    const std::vector<Row>& rows() const { return rows_; }

  private:
    std::string name_;
    std::vector<Row> rows_;
};

/** One (op, ns_per_op) pair parsed from a BENCH_<name>.json. */
struct BaselineRow
{
    std::string op;
    double ns_per_op = 0;
};

/**
 * Parse the rows of a BENCH_<name>.json written by
 * BenchJson::write_file (a tiny scanner over our own fixed format, not
 * a general JSON parser). Returns an empty vector when the file is
 * missing or contains no rows.
 */
inline std::vector<BaselineRow>
read_bench_rows(const std::string& path)
{
    std::vector<BaselineRow> rows;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return rows;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    // Every row is `{"op": "<name>", ... "ns_per_op": <num>, ...}`.
    std::size_t pos = 0;
    while ((pos = text.find("\"op\": \"", pos)) != std::string::npos) {
        pos += std::strlen("\"op\": \"");
        const std::size_t end = text.find('"', pos);
        if (end == std::string::npos)
            break;
        BaselineRow row;
        row.op = text.substr(pos, end - pos);
        const std::size_t ns = text.find("\"ns_per_op\": ", end);
        if (ns == std::string::npos)
            break;
        row.ns_per_op = std::strtod(
            text.c_str() + ns + std::strlen("\"ns_per_op\": "),
            nullptr);
        rows.push_back(std::move(row));
        pos = end;
    }
    return rows;
}

/**
 * Perf-regression gate over @p fresh rows vs a checked-in baseline
 * file. For every baseline op also present in the fresh run the ratio
 * fresh/baseline must stay within @p tolerance (a multiplier: 1.5
 * means "at most 50% slower"); a baseline op missing from the fresh
 * run fails too (coverage regression). Prints a per-op diff table and
 * returns true when everything passed. Ops only present in the fresh
 * run (new benchmarks, no baseline yet) are reported but never fail.
 */
inline bool
gate_rows_against_baseline(const std::vector<BenchJson::Row>& fresh,
                           const std::string& baseline_path,
                           double tolerance)
{
    const std::vector<BaselineRow> baseline =
        read_bench_rows(baseline_path);
    std::printf("\nperf gate: %s (tolerance %.2fx)\n",
                baseline_path.c_str(), tolerance);
    if (baseline.empty()) {
        std::printf("  FAIL: baseline missing or empty\n");
        return false;
    }
    std::printf("  %-24s %14s %14s %8s  %s\n", "op", "baseline ns/op",
                "fresh ns/op", "ratio", "status");
    bool ok = true;
    for (const BaselineRow& base : baseline) {
        const BenchJson::Row* match = nullptr;
        for (const BenchJson::Row& row : fresh)
            if (row.op == base.op) {
                match = &row;
                break;
            }
        if (match == nullptr) {
            std::printf("  %-24s %14.1f %14s %8s  FAIL (missing)\n",
                        base.op.c_str(), base.ns_per_op, "-", "-");
            ok = false;
            continue;
        }
        const double ratio = base.ns_per_op > 0
                                 ? match->ns_per_op / base.ns_per_op
                                 : 0.0;
        const bool pass = ratio <= tolerance;
        std::printf("  %-24s %14.1f %14.1f %7.2fx  %s\n",
                    base.op.c_str(), base.ns_per_op, match->ns_per_op,
                    ratio, pass ? "ok" : "FAIL");
        ok = ok && pass;
    }
    for (const BenchJson::Row& row : fresh) {
        bool known = false;
        for (const BaselineRow& base : baseline)
            known = known || base.op == row.op;
        if (!known)
            std::printf("  %-24s %14s %14.1f %8s  new (no baseline)\n",
                        row.op.c_str(), "-", row.ns_per_op, "-");
    }
    std::printf("perf gate: %s\n", ok ? "PASS" : "FAIL");
    return ok;
}

/**
 * Environment-driven gate for bench main()s: when CAMP_BENCH_GATE=1,
 * diff @p json against CAMP_BENCH_BASELINE (required) at
 * CAMP_BENCH_TOLERANCE (default 1.5) and return a process exit code;
 * otherwise return 0 without gating.
 */
inline int
maybe_gate(const BenchJson& json)
{
    const char* gate = std::getenv("CAMP_BENCH_GATE");
    if (gate == nullptr || std::strcmp(gate, "1") != 0)
        return 0;
    const char* baseline = std::getenv("CAMP_BENCH_BASELINE");
    if (baseline == nullptr || baseline[0] == '\0') {
        std::printf("perf gate: FAIL (CAMP_BENCH_GATE=1 but "
                    "CAMP_BENCH_BASELINE unset)\n");
        return 1;
    }
    double tolerance = 1.5;
    if (const char* tol = std::getenv("CAMP_BENCH_TOLERANCE")) {
        const double v = std::strtod(tol, nullptr);
        if (v > 0)
            tolerance = v;
    }
    return gate_rows_against_baseline(json.rows(), baseline, tolerance)
               ? 0
               : 1;
}

} // namespace camp::bench

#endif // CAMP_BENCH_BENCH_UTIL_HPP
