/**
 * @file
 * BIPS ablation (paper §IV-B): binary-operation (bops) reduction of the
 * bit-indexed inner-product scheme vs the straightforward bit-serial
 * scheme. Reproduces the closed form
 *    lambda(q) = (1/q) * (1 + (2^q - 1)/p_y)
 * with its minimum 0.367 at q = 4 for p_y = 32, and cross-checks the
 * measured bops from the functional Converter + IPU, including a
 * sparsity sweep over the density of multiplier bits.
 */
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/ipu.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::sim;

int
main()
{
    camp::bench::section(
        "BIPS closed form: lambda(q) for p_y = 32 (paper SIV-B)");
    Table closed({"q", "lambda(q)", "note"});
    const double py = 32.0;
    for (unsigned q = 1; q <= 8; ++q) {
        const double lambda =
            (1.0 / q) * (1.0 + (std::pow(2.0, q) - 1.0) / py);
        closed.add_row({std::to_string(q), Table::fmt(lambda, 4),
                        q == 4 ? "minimum -> hardware uses q = 4" : ""});
    }
    closed.print();

    camp::bench::section(
        "Measured bops: functional Converter+IPU vs naive bit-serial");
    const Ipu ipu;
    camp::Rng rng(8);
    Table measured({"y bit density", "BIPS bops", "naive bops",
                    "measured lambda", "zero-col skip rate"});
    for (const double density : {1.0, 0.75, 0.5, 0.25, 0.1}) {
        std::uint64_t bips = 0, naive = 0, selects = 0, skips = 0;
        for (int iter = 0; iter < 400; ++iter) {
            IpuTask task;
            for (int i = 0; i < 4; ++i) {
                task.x[i] = static_cast<std::uint32_t>(rng.next());
                std::uint32_t y = 0;
                for (int bit = 0; bit < 32; ++bit)
                    if (rng.uniform() < density)
                        y |= 1u << bit;
                task.y[i] = y;
            }
            IpuStats istats;
            ConverterStats cstats;
            ipu.run_task(task, &istats, &cstats);
            bips += istats.accum_bit_ops + cstats.adder_bit_ops;
            selects += istats.selects;
            skips += istats.zero_skips;
            IpuStats nstats;
            ipu.run_naive(task, &nstats);
            naive += nstats.naive_bit_ops;
        }
        measured.add_row(
            {Table::fmt(density, 3), std::to_string(bips),
             std::to_string(naive),
             Table::fmt(static_cast<double>(bips) / naive, 4),
             Table::fmt(static_cast<double>(skips) / selects, 4)});
    }
    measured.print();
    std::printf("\ndense operands land near the paper's 0.367; sparsity "
                "drops BIPS further because all-zero index columns cost "
                "no accumulation at all.\n");
    return 0;
}
