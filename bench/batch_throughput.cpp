/**
 * @file
 * Batch-processing throughput (paper abstract / §VII-B): Cambricon-P
 * delivers the same amortized multiplication throughput as a V100
 * running CGBN while occupying 430x less area and 60.5x less power.
 * This bench runs real batches through the BatchEngine (products
 * verified) and compares amortized time against the CGBN model, plus
 * the generality argument: CGBN cannot run the monolithic mode at all.
 */
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"
#include "sim/comparators.hpp"
#include "sim/tech_model.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using camp::mpn::Natural;
using namespace camp::sim;

int
main()
{
    camp::bench::section(
        "Batch multiplication throughput vs V100+CGBN (amortized)");
    BatchEngine engine;
    camp::Rng rng(7);
    Table table({"operand bits", "batch", "waves", "batch time (s)",
                 "amortized (s)", "CGBN model (s)", "ratio"});
    for (const std::uint64_t bits : {512u, 1024u, 2048u, 4096u}) {
        const std::size_t batch = 512;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        const BatchResult result = engine.multiply_batch(pairs);
        const double amortized =
            result.amortized_seconds(default_config());
        const auto cgbn = v100_cgbn().mul_time_s(bits);
        table.add_row(
            {std::to_string(bits), std::to_string(batch),
             std::to_string(result.waves),
             Table::fmt(result.seconds(default_config())),
             Table::fmt(amortized),
             cgbn ? Table::fmt(*cgbn) : std::string("-"),
             cgbn ? Table::fmt(amortized / *cgbn, 3) + "x"
                  : std::string("-")});
    }
    table.print();

    const AreaBreakdown area = cambricon_p_area();
    std::printf("\narea: %.3g mm^2 vs V100 %.0f mm^2 = %.0fx less; "
                "power: ~3.6 W vs %.1f W = %.1fx less (paper: 430x / "
                "60.5x). All products verified against mpn.\n",
                area.total(), v100_cgbn().area_mm2,
                v100_cgbn().area_mm2 / area.total(),
                v100_cgbn().power_w, v100_cgbn().power_w / 3.644);
    std::printf("generality: the same fabric also runs the monolithic "
                "mode (fig11) that batch-only CGBN cannot express.\n");
    return 0;
}
