/**
 * @file
 * Batch-processing throughput (paper abstract / §VII-B): Cambricon-P
 * delivers the same amortized multiplication throughput as a V100
 * running CGBN while occupying 430x less area and 60.5x less power.
 * This bench runs real batches through the BatchEngine (products
 * verified) and compares amortized time against the CGBN model, plus
 * the generality argument: CGBN cannot run the monolithic mode at all.
 *
 * It also measures the exec::SubmitQueue coalescing win: the same
 * products submitted one flush per product (each paying its own
 * partial waves) vs buffered and flushed as one coalesced batch that
 * packs the IPU fabric in shared waves. Rows batch_serial_submit and
 * batch_coalesce land in BENCH_batch_throughput.json; with
 * CAMP_BENCH_GATE=1 the run exits nonzero when either regresses beyond
 * CAMP_BENCH_TOLERANCE vs CAMP_BENCH_BASELINE (see ci/run_tests.sh).
 */
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "exec/queue.hpp"
#include "exec/registry.hpp"
#include "exec/scheduler.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"
#include "sim/comparators.hpp"
#include "sim/tech_model.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using camp::mpn::Natural;
using namespace camp::sim;

int
main()
{
    camp::bench::section(
        "Batch multiplication throughput vs V100+CGBN (amortized)");
    BatchEngine engine;
    camp::Rng rng(7);
    Table table({"operand bits", "batch", "waves", "batch time (s)",
                 "amortized (s)", "CGBN model (s)", "ratio"});
    for (const std::uint64_t bits : {512u, 1024u, 2048u, 4096u}) {
        const std::size_t batch = 512;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        const BatchResult result = engine.multiply_batch(pairs);
        const double amortized =
            result.amortized_seconds(default_config());
        const auto cgbn = v100_cgbn().mul_time_s(bits);
        table.add_row(
            {std::to_string(bits), std::to_string(batch),
             std::to_string(result.waves),
             Table::fmt(result.seconds(default_config())),
             Table::fmt(amortized),
             cgbn ? Table::fmt(*cgbn) : std::string("-"),
             cgbn ? Table::fmt(amortized / *cgbn, 3) + "x"
                  : std::string("-")});
    }
    table.print();

    const AreaBreakdown area = cambricon_p_area();
    std::printf("\narea: %.3g mm^2 vs V100 %.0f mm^2 = %.0fx less; "
                "power: ~3.6 W vs %.1f W = %.1fx less (paper: 430x / "
                "60.5x). All products verified against mpn.\n",
                area.total(), v100_cgbn().area_mm2,
                v100_cgbn().area_mm2 / area.total(),
                v100_cgbn().power_w, v100_cgbn().power_w / 3.644);
    std::printf("generality: the same fabric also runs the monolithic "
                "mode (fig11) that batch-only CGBN cannot express.\n");

    camp::bench::section(
        "SubmitQueue coalescing: one flush per product vs one "
        "coalesced batch (sim backend)");
    const std::uint64_t q_bits = 2048;
    const std::size_t q_batch = 128;
    std::vector<std::pair<Natural, Natural>> q_pairs;
    q_pairs.reserve(q_batch);
    std::vector<Natural> golden;
    golden.reserve(q_batch);
    for (std::size_t i = 0; i < q_batch; ++i) {
        q_pairs.emplace_back(Natural::random_bits(rng, q_bits),
                             Natural::random_bits(rng, q_bits));
        golden.push_back(q_pairs.back().first *
                         q_pairs.back().second);
    }

    const auto device =
        camp::exec::make_device("sim", default_config());
    camp::bench::TimingOptions opts;
    opts.warmup = 1;
    opts.min_seconds = 0.2;

    // Serial submission: flush after every submit, so every product
    // runs as its own one-task-deep batch (no wave sharing).
    std::uint64_t serial_cycles = 0;
    const double serial_s = camp::bench::time_call(
        [&] {
            camp::exec::SubmitQueue queue(*device);
            for (std::size_t i = 0; i < q_batch; ++i) {
                auto future = queue.submit(q_pairs[i].first,
                                           q_pairs[i].second);
                queue.flush();
                CAMP_ASSERT(future.get() == golden[i]);
            }
            serial_cycles = queue.stats().sim_cycles;
        },
        opts);

    // Coalesced: buffer everything, then drain in one shared batch.
    std::uint64_t coalesced_cycles = 0;
    const double coalesced_s = camp::bench::time_call(
        [&] {
            camp::exec::SubmitQueue queue(*device);
            std::vector<camp::exec::SubmitQueue::Future> futures;
            futures.reserve(q_batch);
            for (const auto& [a, b] : q_pairs)
                futures.push_back(queue.submit(a, b));
            queue.flush();
            for (std::size_t i = 0; i < q_batch; ++i)
                CAMP_ASSERT(futures[i].get() == golden[i]);
            coalesced_cycles = queue.stats().sim_cycles;
        },
        opts);

    // Cycle counts are deterministic properties of the schedule: the
    // coalesced batch must beat per-product flushes on the modelled
    // hardware regardless of host speed.
    CAMP_ASSERT(serial_cycles > coalesced_cycles);
    const double sim_speedup =
        static_cast<double>(serial_cycles) /
        static_cast<double>(coalesced_cycles);
    std::printf("%zu products of %llu bits: serial %llu sim cycles, "
                "coalesced %llu sim cycles -> %.2fx fewer cycles "
                "(host wall: %.3g s vs %.3g s per batch)\n",
                q_batch, static_cast<unsigned long long>(q_bits),
                static_cast<unsigned long long>(serial_cycles),
                static_cast<unsigned long long>(coalesced_cycles),
                sim_speedup, serial_s, coalesced_s);

    camp::bench::section(
        "Shard scaling: the same wave across 1..8 sim shards "
        "(ShardedScheduler, cost-balanced LPT partitioning)");
    const std::uint64_t s_bits = 2048;
    const std::size_t s_batch = 256;
    std::vector<std::pair<Natural, Natural>> s_pairs;
    s_pairs.reserve(s_batch);
    for (std::size_t i = 0; i < s_batch; ++i)
        s_pairs.emplace_back(Natural::random_bits(rng, s_bits),
                             Natural::random_bits(rng, s_bits));

    camp::bench::TimingOptions s_opts;
    s_opts.warmup = 1;
    s_opts.min_seconds = 0.1;
    Table scaling({"shards", "wave cycles", "wall/batch (s)",
                   "cycle scaling"});
    std::vector<std::pair<unsigned, double>> shard_rows;
    std::uint64_t cycles_1 = 0, cycles_4 = 0, prev_cycles = 0;
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        camp::exec::ShardPolicy policy;
        policy.shards = shards;
        policy.drain_fault_threshold = 0;
        camp::exec::ShardedScheduler scheduler(default_config(),
                                               policy);
        std::uint64_t cycles = 0;
        const double wall = camp::bench::time_call(
            [&] {
                const BatchResult result =
                    scheduler.mul_batch(s_pairs);
                CAMP_ASSERT(result.products.size() == s_batch);
                cycles = result.cycles;
            },
            s_opts);
        if (shards == 1)
            cycles_1 = cycles;
        if (shards == 4)
            cycles_4 = cycles;
        // The wave's aggregate cycle count is the max over the
        // concurrent shards — a deterministic property of the LPT
        // schedule, so the curve must be monotone non-increasing
        // (wall clock depends on host cores and may saturate).
        if (prev_cycles != 0)
            CAMP_ASSERT(cycles <= prev_cycles);
        prev_cycles = cycles;
        scaling.add_row(
            {std::to_string(shards),
             std::to_string(cycles), Table::fmt(wall),
             Table::fmt(static_cast<double>(cycles_1) /
                            static_cast<double>(cycles),
                        3) +
                 "x"});
        shard_rows.emplace_back(shards, wall);
    }
    scaling.print();
    CAMP_ASSERT(cycles_4 < cycles_1);
    std::printf("1 -> 4 shards: %.2fx fewer wave cycles "
                "(deterministic schedule property)\n",
                static_cast<double>(cycles_1) /
                    static_cast<double>(cycles_4));

    camp::bench::BenchJson json("batch_throughput");
    const double bytes_per_op = 2.0 * (q_bits / 8.0);
    for (const auto& [shards, wall] : shard_rows)
        json.add("batch_shard_scaling_" + std::to_string(shards),
                 s_bits, shards, wall / s_batch,
                 2.0 * (s_bits / 8.0),
                 {{"shards", static_cast<double>(shards)}});
    json.add("batch_serial_submit", q_bits, 1, serial_s / q_batch,
             bytes_per_op,
             {{"sim_cycles", static_cast<double>(serial_cycles)},
              {"flushes", static_cast<double>(q_batch)}});
    json.add("batch_coalesce", q_bits, 1, coalesced_s / q_batch,
             bytes_per_op,
             {{"sim_cycles", static_cast<double>(coalesced_cycles)},
              {"flushes", 1.0},
              {"sim_speedup", sim_speedup}});
    json.write_file();
    return camp::bench::maybe_gate(json);
}
