/**
 * @file
 * Table III reproduction: 4096x4096-bit multiplication compared across
 * Cambricon-P (functional simulation + tech model), the CPU baseline
 * (measured live), and the documented platform models (V100+CGBN,
 * AVX512IFMA, DS/P, Bit-Tactical). Also prints the calibrated area
 * breakdown and modelled power.
 */
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "mpn/natural.hpp"
#include "sim/analytic_model.hpp"
#include "sim/comparators.hpp"
#include "sim/core.hpp"
#include "sim/tech_model.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using camp::mpn::Natural;
using namespace camp::sim;

int
main()
{
    camp::bench::section(
        "Table III: 4096x4096-bit multiplication comparison");
    constexpr std::uint64_t kBits = 4096;
    camp::Rng rng(3);
    const Natural a = Natural::random_bits(rng, kBits);
    const Natural b = Natural::random_bits(rng, kBits);

    // Cambricon-P: functional simulation (validated product) + models.
    Core core(default_config(), Fidelity::Fast);
    const MulResult sim = core.multiply(a, b);
    const double camp_time = sim.stats.seconds(default_config());
    const AreaBreakdown area = cambricon_p_area();
    const EnergyModel energy = cambricon_p_energy();
    // Power at the sustained full-rate operating point (the published
    // figure is chip power, not one 32-cycle burst).
    const AnalyticModel analytic;
    const double camp_power = energy.power(
        analytic.multiply_stats(35904, 35904), default_config());

    // CPU: measured live.
    const double cpu_time = camp::bench::time_call([&] {
        const Natural c = a * b;
        (void)c;
    });

    Table table({"system", "tech", "area mm^2", "(rel)", "power W",
                 "(rel)", "time s", "(rel)", "note"});
    auto rel = [](double v, double base) {
        return Table::fmt(v / base, 3);
    };
    table.add_row({"Cambricon-P (this repo)", "TSMC 16 nm",
                   Table::fmt(area.total()), "1",
                   Table::fmt(camp_power), "1", Table::fmt(camp_time),
                   "1", "functional sim, product verified"});
    const PlatformModel& cpu = skylake_cpu();
    table.add_row({cpu.name, cpu.technology, Table::fmt(cpu.area_mm2),
                   rel(cpu.area_mm2, area.total()),
                   Table::fmt(cpu.power_w), rel(cpu.power_w, camp_power),
                   Table::fmt(cpu_time), rel(cpu_time, camp_time),
                   cpu.note});
    for (const PlatformModel* platform :
         {&v100_cgbn(), &avx512ifma(), &dsp_multiplier(),
          &bit_tactical()}) {
        const auto t = platform->mul_time_s(kBits);
        table.add_row(
            {platform->name, platform->technology,
             Table::fmt(platform->area_mm2),
             rel(platform->area_mm2, area.total()),
             Table::fmt(platform->power_w),
             rel(platform->power_w, camp_power),
             t ? Table::fmt(*t) : std::string("iso-throughput"),
             t ? rel(*t, camp_time) : std::string("1"),
             platform->note});
    }
    table.print();

    std::printf("\npaper anchors: Cambricon-P 1.89 mm^2 / 3.64 W / "
                "1.60e-8 s; V100 430x area, 60.5x power; AVX512IFMA "
                "35.6x time.\n");
    std::printf("simulated schedule: %llu tasks, %llu waves, %llu "
                "cycles (paper calibration: 32 cycles).\n",
                static_cast<unsigned long long>(sim.stats.tasks),
                static_cast<unsigned long long>(sim.stats.waves),
                static_cast<unsigned long long>(sim.stats.cycles));

    camp::bench::section("Area breakdown (calibrated tech model)");
    std::fputs(area_table(area).c_str(), stdout);
    return 0;
}
