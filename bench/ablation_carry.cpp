/**
 * @file
 * Carry parallel computing ablation (paper §IV-A): latency of gathering
 * N aligned partial sums with the carry-select mechanism vs naive
 * sequential ripple gathering, across chain lengths. The paper's
 * dependency-chain argument is that naive gathering serializes the
 * whole chain (N * L cycles) while carry parallel computing reduces it
 * to L + N.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/gather_unit.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::sim;

int
main()
{
    camp::bench::section(
        "Carry parallel computing vs sequential gathering");
    const GatherUnit gu;
    camp::Rng rng(4);
    Table table({"partial sums (N)", "sequential (cycles)",
                 "carry parallel (cycles)", "speedup",
                 "speculative variants"});
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        std::vector<camp::u128> psums(n);
        for (auto& p : psums)
            p = (static_cast<camp::u128>(rng.below(4)) << 64) |
                rng.next();
        GatherStats stats;
        const auto result = gu.gather(psums, &stats);
        (void)result;
        table.add_row(
            {std::to_string(n),
             std::to_string(stats.latency_sequential),
             std::to_string(stats.latency_parallel),
             Table::fmt(static_cast<double>(stats.latency_sequential) /
                            stats.latency_parallel,
                        4) +
                 "x",
             std::to_string(stats.carry_variants)});
    }
    table.print();
    std::printf(
        "\nthe gap grows linearly with the chain (paper Fig. 7c): "
        "without carry parallel computing a monolithic multiplication "
        "degenerates to the sequential dependency chain of Fig. 5.\n");
    return 0;
}
