/**
 * @file
 * Table I reproduction: empirical complexity exponents of the
 * low-level operators. Each algorithm is timed across a size sweep and
 * the exponent recovered by log-log regression, next to the paper's
 * theoretical figure.
 */
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "mpn/sqrt.hpp"
#include "support/regression.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using camp::mpn::Limb;
using camp::mpn::Natural;

namespace {

struct AlgoSpec
{
    std::string name;
    std::string theory;
    std::vector<std::size_t> sizes; ///< limbs
    std::function<void(const std::vector<Limb>&, const std::vector<Limb>&,
                       std::vector<Limb>&)>
        run;
};

} // namespace

int
main()
{
    namespace mpn = camp::mpn;
    camp::Rng rng(1);

    std::vector<AlgoSpec> algos;
    algos.push_back(
        {"Addition", "O(n), k=1.00", {512, 1024, 2048, 4096, 8192, 16384},
         [](const auto& a, const auto& b, auto& r) {
             mpn::add_n(r.data(), a.data(), b.data(), a.size());
         }});
    algos.push_back(
        {"Subtraction", "O(n), k=1.00",
         {512, 1024, 2048, 4096, 8192, 16384},
         [](const auto& a, const auto& b, auto& r) {
             mpn::sub_n(r.data(), a.data(), b.data(), a.size());
         }});
    algos.push_back(
        {"Comparison", "O(n), k=1.00",
         {512, 1024, 2048, 4096, 8192, 16384},
         [](const auto& a, const auto& b, auto& r) {
             // Force a full scan: compare a with itself.
             r[0] = static_cast<Limb>(
                 mpn::cmp_n(a.data(), a.data(), a.size()) + 1 +
                 static_cast<int>(b[0] & 0));
         }});
    algos.push_back(
        {"Mul schoolbook", "O(n^2), k=2.00", {32, 64, 128, 256, 512},
         [](const auto& a, const auto& b, auto& r) {
             mpn::mul_basecase(r.data(), a.data(), a.size(), b.data(),
                               b.size());
         }});
    algos.push_back(
        {"Mul Karatsuba", "O(n^1.585)", {256, 512, 1024, 2048, 4096},
         [](const auto& a, const auto& b, auto& r) {
             mpn::mul_karatsuba(r.data(), a.data(), a.size(), b.data(),
                                b.size());
         }});
    algos.push_back(
        {"Mul Toom-3", "O(n^1.465)", {512, 1024, 2048, 4096, 8192},
         [](const auto& a, const auto& b, auto& r) {
             mpn::mul_toom(r.data(), a.data(), a.size(), b.data(),
                           b.size(), 3);
         }});
    algos.push_back(
        {"Mul Toom-4", "O(n^1.404)", {1024, 2048, 4096, 8192, 16384},
         [](const auto& a, const auto& b, auto& r) {
             mpn::mul_toom(r.data(), a.data(), a.size(), b.data(),
                           b.size(), 4);
         }});
    algos.push_back(
        {"Mul Toom-6", "O(n^1.338)", {2048, 4096, 8192, 16384, 32768},
         [](const auto& a, const auto& b, auto& r) {
             mpn::mul_toom(r.data(), a.data(), a.size(), b.data(),
                           b.size(), 6);
         }});
    algos.push_back(
        {"Mul SSA", "O(n log n loglog n)",
         {4096, 8192, 16384, 32768, 65536},
         [](const auto& a, const auto& b, auto& r) {
             mpn::mul_ssa(r.data(), a.data(), a.size(), b.data(),
                          b.size());
         }});
    algos.push_back(
        {"Div Burnikel-Ziegler", "O(n^~1.6)",
         {512, 1024, 2048, 4096, 8192},
         [](const auto& a, const auto& b, auto& r) {
             // Divide a 2n-limb value (a concatenated twice) by b.
             std::vector<Limb> wide(a.size() * 2);
             mpn::copy(wide.data(), a.data(), a.size());
             mpn::copy(wide.data() + a.size(), a.data(), a.size());
             std::vector<Limb> q(a.size() + 1), rem(b.size());
             mpn::divrem(q.data(), rem.data(), wide.data(), wide.size(),
                         b.data(), b.size());
             r[0] = q[0];
         }});
    algos.push_back(
        {"Sqrt (Zimmermann)", "~cost of mul",
         {512, 1024, 2048, 4096, 8192},
         [](const auto& a, const auto& b, auto& r) {
             std::vector<Limb> s((a.size() + 1) / 2);
             mpn::sqrtrem(s.data(), nullptr, a.data(), a.size());
             r[0] = s[0] + b[0] * 0;
         }});

    camp::bench::section(
        "Table I: measured complexity exponents of low-level operators");
    Table table({"operator", "theory", "measured exponent k", "R^2",
                 "largest size (limbs)", "time there (s)"});
    for (const auto& algo : algos) {
        std::vector<double> ns, ts;
        double last_t = 0;
        for (const std::size_t limbs : algo.sizes) {
            std::vector<Limb> a(limbs), b(limbs), r(2 * limbs + 2);
            for (auto& limb : a)
                limb = rng.next();
            for (auto& limb : b)
                limb = rng.next();
            if (b.back() == 0)
                b.back() = 1;
            const double t = camp::bench::time_call(
                [&] { algo.run(a, b, r); }, 0.02);
            ns.push_back(static_cast<double>(limbs));
            ts.push_back(t);
            last_t = t;
        }
        const camp::LinearFit fit = camp::power_law_fit(ns, ts);
        table.add_row({algo.name, algo.theory, Table::fmt(fit.slope, 3),
                       Table::fmt(fit.r2, 3),
                       std::to_string(algo.sizes.back()),
                       Table::fmt(last_t)});
    }
    table.print();
    std::printf("\nnote: small-size constant overheads bias linear ops "
                "upward slightly; multiplication exponents should track "
                "the theory column.\n");
    return 0;
}
