/**
 * @file
 * Serving-layer soak: a config-described multi-tenant workload (mixed
 * op kinds, log-uniform bit widths, Poisson + burst arrivals, repeated
 * operands, deadlines) driven through the resilient front-end — a
 * circuit breaker over a raw SimDevice with fault injection armed — at
 * deliberate overload, so admission control, shedding, deadlines,
 * retries, and CPU fallback all fire in one run.
 *
 * Two modes (DESIGN.md §15):
 *
 *  - Virtual (default): the deterministic oracle — waves execute
 *    inline on the virtual ledger and the run replays bit-exactly
 *    under CAMP_FUZZ_SEED.
 *  - Wall (`--wall` or CAMP_SERVE_WALL=1): sustained wall-clock
 *    serving with CAMP_SERVE_INFLIGHT (default 4) overlapping waves on
 *    worker threads and per-request wall-vs-virtual skew reconciled in
 *    the report. Timing-dependent *observations* (skew, breaker
 *    episode boundaries) may vary run to run, so the default-seed
 *    shape checks and the p99 bound are skipped — but conservation,
 *    zero-wrong-results, and the exact ledger fold stay hard asserts:
 *    decisions live on the virtual ledger in both modes.
 *
 * The binary is also a correctness harness and exits nonzero unless:
 *   - every Completed product is exact (zero wrong results),
 *   - the conservation identities hold per tenant and in total,
 *   - fault injection was actually observed (faulty results + retries),
 *   - load-shedding and deadline enforcement both fired (virtual,
 *     default seed only),
 *   - every tenant's p99 virtual latency stays under a bound derived
 *     from the backlog cap (virtual mode only), and
 *   - the shared ledger's fold matches the report exactly.
 *
 * CI runs the short gated virtual mode (CAMP_SERVE_REQUESTS=400 plus
 * the usual CAMP_BENCH_GATE/CAMP_BENCH_BASELINE perf gate) and an
 * ungated short `--wall` leg (hard asserts only, no latency gates) —
 * see ci/run_tests.sh. CAMP_FUZZ_SEED replays a virtual soak exactly.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "exec/sim_device.hpp"
#include "mpapca/cost_model.hpp"
#include "mpapca/ledger.hpp"
#include "mpn/natural.hpp"
#include "serve/breaker.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "sim/config.hpp"
#include "support/env.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"

namespace serve = camp::serve;

namespace {

int
fail(const char* what)
{
    std::printf("serve_soak: FAIL (%s)\n", what);
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    using clock = std::chrono::steady_clock;

    bool wall = camp::support::env_flag("CAMP_SERVE_WALL", false);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--wall") == 0) {
            wall = true;
        } else {
            std::printf("usage: serve_soak [--wall]\n");
            return 2;
        }
    }

    // Overloaded mix: near-critical load — arrival events every ~2 us
    // carrying 1.75 requests on average (burst clumps included)
    // against ~1 virtual us of device work per request — sustained
    // ~0.9 utilization with 16-deep bursts that transiently overrun
    // the backlog cap.
    serve::WorkloadSpec defaults;
    defaults.requests = 2000;
    defaults.mean_interarrival_us = 2.0;
    defaults.burst_fraction = 0.05;
    defaults.burst_len = 16;
    defaults.deadline_fraction = 0.25;
    defaults.deadline_slack_us = 40;
    const serve::WorkloadSpec spec =
        serve::workload_spec_from_env(defaults);
    std::printf("serve_soak: %zu requests, seed 0x%llx, %s clock\n",
                spec.requests,
                static_cast<unsigned long long>(spec.seed),
                wall ? "wall" : "virtual");
    const std::vector<serve::Request> workload =
        serve::generate_workload(spec);

    // Raw (unchecked) SimDevice with armed faults behind the breaker:
    // corrupted-but-flagged products reach the server, so the retry
    // policy and the quarantine path do real recovery work.
    camp::sim::SimConfig sim_config = camp::sim::default_config();
    sim_config.faults.seed = spec.seed ^ 0xfa5717ull;
    // Per-site rates compound over every accumulator step of a big
    // product, so these tiny rates still corrupt a few percent of all
    // products at 4096-bit operands.
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.002;
    sim_config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.001;

    serve::ServeConfig config;
    config.limits.max_queue_depth = 32;
    config.max_backlog_us = 48.0;
    config.wave_size = 16;
    config.wall_clock = wall;
    config.max_inflight_waves =
        static_cast<unsigned>(camp::support::env_positive_u64(
            "CAMP_SERVE_INFLIGHT", wall ? 4 : 1));
    serve::BreakerDevice device(
        std::make_unique<camp::exec::SimDevice>(sim_config),
        config.breaker);

    camp::mpapca::CostModel model{};
    camp::mpapca::Ledger ledger(model);
    serve::Server server(config, device, &ledger);

    const auto start = clock::now();
    const serve::ServeReport report = server.process(workload);
    const double seconds =
        std::chrono::duration<double>(clock::now() - start).count();

    std::printf("%s", report.table().c_str());
    std::printf("breaker: state=%s opens=%llu probes=%llu "
                "fallback_products=%llu inner_products=%llu\n",
                serve::breaker_state_name(device.state()),
                static_cast<unsigned long long>(device.stats().opens),
                static_cast<unsigned long long>(device.stats().probes),
                static_cast<unsigned long long>(
                    device.stats().fallback_products),
                static_cast<unsigned long long>(
                    device.stats().inner_products));
    if (wall) {
        std::int64_t max_skew = 0;
        double sum_skew = 0.0;
        for (const serve::Outcome& outcome : report.outcomes) {
            max_skew = std::max(max_skew, outcome.skew_us);
            sum_skew += static_cast<double>(outcome.skew_us);
        }
        std::printf(
            "wall: inflight=%u end=%llu us, wall_late=%llu, "
            "skew mean=%.1f us max=%lld us\n",
            config.max_inflight_waves,
            static_cast<unsigned long long>(report.wall_end_us),
            static_cast<unsigned long long>(report.totals.wall_late),
            report.outcomes.empty()
                ? 0.0
                : sum_skew /
                      static_cast<double>(report.outcomes.size()),
            static_cast<long long>(max_skew));
    }

    // ---- correctness harness ---------------------------------------
    if (!report.conserved())
        return fail("conservation identities violated");
    std::uint64_t attempts = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const serve::Outcome& outcome = report.outcomes[i];
        attempts += outcome.attempts;
        if (outcome.status == serve::RequestStatus::Completed &&
            outcome.product != workload[i].a * workload[i].b)
            return fail("wrong result delivered");
    }
    if (report.totals.faulty_results == 0 ||
        report.totals.retries == 0)
        return fail("fault injection never observed");
    // Shape checks: whether the overload sheds and deadlines fire
    // depends on the arrival pattern, so they are only enforced for
    // the default seed (the one CI runs) in the deterministic virtual
    // mode; wall mode and CAMP_FUZZ_SEED replays keep every
    // correctness invariant above and below hard.
    if (!wall && spec.seed == defaults.seed) {
        if (report.totals.shed_admission +
                report.totals.shed_evicted ==
            0)
            return fail("overload never shed");
        if (report.totals.rejected_deadline +
                report.totals.timeouts ==
            0)
            return fail("deadlines never fired");
    }

    // Bounded tail latency: the backlog cap (48 virtual us of queued
    // work) plus one wave in flight plus two backed-off retries with
    // requeue delay keeps any completed request under ~1000 virtual
    // us. Wall mode pipelines several waves, which legitimately
    // stretches virtual completion stamps — no latency gate there.
    if (!wall) {
        const std::uint64_t p99_bound_us = 1000;
        for (const serve::TenantReport& tenant : report.tenants) {
            std::printf("  tenant %-8s p50=%llu p95=%llu p99=%llu "
                        "(virtual us)\n",
                        tenant.name.c_str(),
                        static_cast<unsigned long long>(tenant.p50_us),
                        static_cast<unsigned long long>(tenant.p95_us),
                        static_cast<unsigned long long>(
                            tenant.p99_us));
            if (tenant.p99_us > p99_bound_us)
                return fail("p99 virtual latency unbounded");
        }
    }

    // Exact ledger accounting: the per-wave folds must reproduce the
    // report's view, product for product — wall mode included (the
    // fold happens at each wave's virtual completion event).
    const camp::mpapca::FaultStats folded =
        ledger.fault_stats_snapshot();
    if (folded.checks != attempts ||
        folded.detected != report.totals.faulty_results ||
        folded.retried != report.totals.retries ||
        folded.fallbacks != report.totals.fallbacks)
        return fail("ledger fold disagrees with the report");
    std::printf("serve_soak: ledger exact (checks=%llu detected=%llu "
                "retried=%llu fallbacks=%llu)\n",
                static_cast<unsigned long long>(folded.checks),
                static_cast<unsigned long long>(folded.detected),
                static_cast<unsigned long long>(folded.retried),
                static_cast<unsigned long long>(folded.fallbacks));

    // ---- perf row + optional gate ----------------------------------
    camp::bench::BenchJson json(wall ? "serve_soak_wall"
                                     : "serve_soak");
    json.add(wall ? "serve_soak_wall" : "serve_soak", spec.max_bits,
             camp::support::hardware_threads(),
             seconds / static_cast<double>(spec.requests), 0.0,
             {{"completed",
               static_cast<double>(report.totals.completed)},
              {"shed", static_cast<double>(
                           report.totals.shed_admission +
                           report.totals.shed_evicted)},
              {"timeouts", static_cast<double>(
                               report.totals.rejected_deadline +
                               report.totals.timeouts)},
              {"retries", static_cast<double>(report.totals.retries)},
              {"fallbacks",
               static_cast<double>(report.totals.fallbacks)},
              {"faulty",
               static_cast<double>(report.totals.faulty_results)},
              {"waves", static_cast<double>(report.waves)}});
    json.write_file();
    std::printf("serve_soak: PASS\n");
    // Wall wall-clock timings are scheduling noise by construction;
    // only the deterministic virtual mode is ever perf-gated.
    return wall ? 0 : camp::bench::maybe_gate(json);
}
