/**
 * @file
 * Figure 11 reproduction: time of an N-bit x N-bit natural
 * multiplication across platforms.
 *
 *  - CPU: measured live on the host with this repository's mpn library
 *    (the GMP-equivalent baseline, same algorithm inventory).
 *  - Cambricon-P: MPApca cost model (validated against the functional
 *    Core; monolithic up to 35904 bits, retuned Toom/SSA above).
 *  - V100+CGBN and AVX512IFMA: documented analytic models anchored at
 *    the paper's Table III points, within their applicable ranges.
 *
 * The paper reports 100.98x peak speedup in the monolithic range,
 * 18.06x–67.78x across the Toom ranges, and 3.87x–14.89x in the SSA
 * range; the table prints our measured/modelled counterpart per range.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mpapca/cost_model.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "sim/comparators.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using camp::mpn::Natural;

int
main()
{
    camp::bench::section(
        "Figure 11: N-bit multiplication time across platforms");
    const camp::mpapca::CostModel model;
    camp::Rng rng(2022);

    Table table({"N (bits)", "cpu algo", "CPU (s)", "CambrP algo",
                 "CambrP (s)", "speedup", "CGBN model (s)",
                 "AVX512 model (s)"});

    struct RangeAgg
    {
        double min_speedup = 1e300;
        double max_speedup = 0;
    };
    RangeAgg mono, toom, ssa;

    std::vector<std::uint64_t> sizes;
    for (std::uint64_t bits = 64; bits <= (1ull << 24); bits *= 2)
        sizes.push_back(bits);
    sizes.push_back(35904); // the monolithic capability edge

    for (const std::uint64_t bits : sizes) {
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        const double cpu_s = camp::bench::time_call(
            [&] {
                const Natural c = a * b;
                (void)c;
            },
            bits > (1u << 20) ? 0.2 : 0.05);
        const auto cost = model.mul(bits, bits);
        const double sim_s = model.seconds(cost.cycles);
        const double speedup = cpu_s / sim_s;
        const std::string algo = model.mul_algorithm(bits);
        if (algo == "monolithic") {
            mono.min_speedup = std::min(mono.min_speedup, speedup);
            mono.max_speedup = std::max(mono.max_speedup, speedup);
        } else if (algo == "ssa") {
            ssa.min_speedup = std::min(ssa.min_speedup, speedup);
            ssa.max_speedup = std::max(ssa.max_speedup, speedup);
        } else {
            toom.min_speedup = std::min(toom.min_speedup, speedup);
            toom.max_speedup = std::max(toom.max_speedup, speedup);
        }

        const auto cgbn = camp::sim::v100_cgbn().mul_time_s(bits);
        const auto avx = camp::sim::avx512ifma().mul_time_s(bits);
        const std::size_t limbs = (bits + 63) / 64;
        table.add_row(
            {std::to_string(bits),
             camp::mpn::mul_algorithm_name(limbs,
                                           camp::mpn::mul_tuning()),
             Table::fmt(cpu_s), algo, Table::fmt(sim_s),
             Table::fmt(speedup, 4) + "x",
             cgbn ? Table::fmt(*cgbn) : std::string("-"),
             avx ? Table::fmt(*avx) : std::string("-")});
    }
    table.print();

    std::printf(
        "\nspeedup by algorithm range (paper: monolithic up to "
        "100.98x, Toom 18.06x-67.78x, SSA 3.87x-14.89x):\n");
    std::printf("  monolithic range: %.2fx .. %.2fx\n", mono.min_speedup,
                mono.max_speedup);
    std::printf("  Toom range:       %.2fx .. %.2fx\n", toom.min_speedup,
                toom.max_speedup);
    std::printf("  SSA range:        %.2fx .. %.2fx\n", ssa.min_speedup,
                ssa.max_speedup);
    return 0;
}
