/**
 * @file
 * Figure 13 reproduction: time (top) and energy (bottom) of the four
 * APC applications across a precision sweep, CPU baseline vs
 * Cambricon-P. Each application runs twice under the MPApca runtime:
 * once on the Cpu backend (measured wall time, CPU power model) and
 * once on the CambriconP backend (kernel operators charged to the
 * simulated accelerator, host share measured). The paper reports
 * 23.41x average speedup and 30.16x average energy benefit, with per
 * app averages Pi 11.22x, Frac 38.62x, zkcm 21.30x, RSA 21.94x.
 */
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/frac/mandelbrot.hpp"
#include "apps/pi/chudnovsky.hpp"
#include "apps/rsa/rsa.hpp"
#include "apps/zkcm/zkcm.hpp"
#include "bench_util.hpp"
#include "exec/registry.hpp"
#include "mpapca/runtime.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::mpapca;

namespace {

struct Point
{
    std::string label;
    std::function<void()> body;
};

struct AppSweep
{
    std::string name;
    std::vector<Point> points;
};

} // namespace

int
main()
{
    std::vector<AppSweep> sweeps;
    {
        AppSweep pi{"Pi", {}};
        for (const std::uint64_t digits : {1000u, 10000u, 30000u, 100000u})
            pi.points.push_back({std::to_string(digits) + " digits",
                                 [digits] {
                                     camp::apps::pi::compute_pi(digits);
                                 }});
        sweeps.push_back(std::move(pi));
    }
    {
        AppSweep frac{"Frac", {}};
        for (const unsigned prec : {512u, 2048u, 4096u, 8192u}) {
            frac.points.push_back(
                {std::to_string(prec) + " bits", [prec] {
                     camp::apps::frac::RenderParams params;
                     params.precision_bits = prec;
                     params.zoom_log2 = 50;
                     params.width = 12;
                     params.height = 8;
                     params.max_iterations = 2500;
                     camp::apps::frac::render(params);
                 }});
        }
        sweeps.push_back(std::move(frac));
    }
    {
        AppSweep zkcm{"zkcm", {}};
        for (const unsigned prec : {512u, 2048u, 4096u, 8192u}) {
            zkcm.points.push_back(
                {std::to_string(prec) + " bits", [prec] {
                     camp::apps::zkcm::qft_circuit(4, prec);
                 }});
        }
        sweeps.push_back(std::move(zkcm));
    }
    {
        AppSweep rsa{"RSA", {}};
        for (const unsigned bits : {1024u, 2048u, 4096u, 8192u}) {
            rsa.points.push_back(
                {std::to_string(bits) + " bits", [bits] {
                     camp::apps::rsa::modexp_workload(bits, 1, 77);
                 }});
        }
        sweeps.push_back(std::move(rsa));
    }

    // Accelerator side through the device registry: CAMP_BACKEND
    // swaps the simulated hardware for any registered backend (e.g.
    // "analytic" for a fast modelled sweep) without recompiling.
    const std::string accel_name =
        camp::exec::default_device_name("sim");
    camp::bench::section(
        "Figure 13: application time & energy, CPU vs Cambricon-P "
        "(accelerator backend: " + accel_name + ")");
    Table table({"app", "precision", "CPU (s)", "CambrP (s)", "speedup",
                 "CPU (J)", "CambrP (J)", "energy benefit"});
    double speedup_sum = 0, energy_sum = 0;
    int points = 0;
    for (const auto& sweep : sweeps) {
        double app_speedup = 0;
        int app_points = 0;
        for (const auto& point : sweep.points) {
            Runtime cpu("cpu");
            Runtime accel(accel_name);
            const AppReport r_cpu = cpu.run(sweep.name, point.body);
            const AppReport r_acc = accel.run(sweep.name, point.body);
            const double speedup = r_cpu.seconds / r_acc.seconds;
            const double benefit = r_cpu.energy_j / r_acc.energy_j;
            speedup_sum += speedup;
            energy_sum += benefit;
            app_speedup += speedup;
            ++points;
            ++app_points;
            table.add_row({sweep.name, point.label,
                           Table::fmt(r_cpu.seconds),
                           Table::fmt(r_acc.seconds),
                           Table::fmt(speedup, 4) + "x",
                           Table::fmt(r_cpu.energy_j),
                           Table::fmt(r_acc.energy_j),
                           Table::fmt(benefit, 4) + "x"});
        }
        std::printf("%s average speedup: %.2fx\n", sweep.name.c_str(),
                    app_speedup / app_points);
    }
    table.print();
    std::printf("\noverall: %.2fx speedup (paper 23.41x), %.2fx energy "
                "benefit (paper 30.16x). Paper app averages: Pi "
                "11.22x, Frac 38.62x, zkcm 21.30x, RSA 21.94x.\n",
                speedup_sum / points, energy_sum / points);
    return 0;
}
