/**
 * @file
 * Fault-tolerance ablation: what does self-checking cost, and what
 * does recovery cost once faults really strike?
 *
 * Part 1 sweeps the golden-model check sampling rate with injection
 * disabled — the pure overhead of cross-checking hardware base
 * products against mpn (the price of confidence on a healthy part).
 * Part 2 arms increasing per-site fault rates with full checking and
 * reports the detect/retry/fallback traffic plus the wall-time cost
 * of recovering to a bit-exact product.
 */
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::FaultSite;
using camp::Table;
using camp::mpn::Natural;
using namespace camp::mpapca;
namespace sim = camp::sim;

int
main()
{
    camp::Rng rng(42);
    const std::uint64_t bits = 300000; // Toom-3 + Karatsuba territory
    const Natural a = Natural::random_bits(rng, bits);
    const Natural b = Natural::random_bits(rng, bits - 1000);

    camp::bench::section(
        "self-check overhead: golden-model sampling sweep, faults off");
    Table overhead({"sample rate", "s/op", "overhead", "base products",
                    "checked"});
    double baseline = 0;
    for (const double rate : {0.0, 0.25, 0.5, 1.0}) {
        SelfCheckPolicy policy;
        policy.enabled = rate > 0;
        policy.sample_rate = rate;
        Runtime runtime(Backend::CambriconP, sim::default_config(),
                        policy);
        const double seconds = camp::bench::time_call(
            [&] { (void)runtime.mul_functional(a, b); }, 0.2);
        if (rate == 0.0)
            baseline = seconds;
        overhead.add_row(
            {Table::fmt(rate, 2), Table::fmt(seconds),
             Table::fmt(seconds / baseline, 3) + "x",
             std::to_string(runtime.base_products()),
             std::to_string(runtime.fault_stats().checks)});
    }
    overhead.print();
    std::printf("\neach sampled base product is re-run on the mpn "
                "golden model; because the functional Core emulation "
                "dominates the wall time, even full checking stays "
                "within a few percent here, and sampling scales the "
                "coverage/overhead trade linearly.\n");

    camp::bench::section(
        "recovery cost under injection (full checking, retry budget 2)");
    Table recovery({"ipu fault rate", "s/op", "injected", "detected",
                    "retried", "fallbacks"});
    for (const double rate : {1e-6, 1e-5, 1e-4}) {
        sim::SimConfig config;
        config.faults.seed = 90;
        config.faults.rate_at(FaultSite::IpuAccumulator) = rate;
        Runtime runtime(Backend::CambriconP, config);
        const double seconds = camp::bench::time_call(
            [&] { (void)runtime.mul_functional(a, b); }, 0.2);
        const FaultStats& stats = runtime.fault_stats();
        char rate_str[32];
        std::snprintf(rate_str, sizeof rate_str, "%.0e", rate);
        recovery.add_row({rate_str, Table::fmt(seconds),
                          std::to_string(stats.injected),
                          std::to_string(stats.detected),
                          std::to_string(stats.retried),
                          std::to_string(stats.fallbacks)});
    }
    recovery.print();
    std::printf("\nat low rates retries absorb almost every fault; as "
                "the rate climbs, retries start failing too and the "
                "runtime degrades to the exact CPU path — correctness "
                "is constant, only the recovery cost moves.\n");
    return 0;
}
