/**
 * @file
 * Streaming/buffering ablation (paper §V-B3): how PEMA buffering depth
 * changes the stall behaviour of monolithic multiplications, and how
 * the explicit pipeline compares to the analytic max(compute, memory)
 * folding across compute-bound and memory-bound shapes.
 */
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/analytic_model.hpp"
#include "sim/stream_sim.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::sim;

int
main()
{
    const AnalyticModel model;
    camp::bench::section(
        "PEMA buffering ablation: pipeline stalls vs analytic bound");
    Table table({"shape (bits)", "analytic cycles", "buffered waves",
                 "pipeline cycles", "fill", "stalls",
                 "overlap efficiency"});
    struct Shape
    {
        std::uint64_t a, b;
    };
    const Shape shapes[] = {
        {4096, 4096},    // one-wave burst
        {35904, 35904},  // compute bound, many waves
        {35904, 512},    // skinny: memory pressure
        {35904, 32},     // memory bound
    };
    for (const auto& shape : shapes) {
        const std::uint64_t analytic =
            model.multiply_cycles(shape.a, shape.b);
        for (const unsigned depth : {1u, 2u, 4u}) {
            const StreamingSimulator streamer(default_config(), depth);
            const StreamStats stats =
                streamer.run_multiply(shape.a, shape.b);
            char eff[16];
            std::snprintf(eff, sizeof(eff), "%5.1f%%",
                          100.0 * stats.overlap_efficiency());
            table.add_row({std::to_string(shape.a) + "x" +
                               std::to_string(shape.b),
                           std::to_string(analytic),
                           std::to_string(depth),
                           std::to_string(stats.cycles),
                           std::to_string(stats.fill_cycles),
                           std::to_string(stats.stall_cycles), eff});
        }
    }
    table.print();
    std::printf(
        "\ndouble buffering (the hardware's PEMA scheme) hides the "
        "stream behind compute except for the first fill; the analytic "
        "max(compute, memory) model is the depth->inf envelope. Within "
        "the monolithic range the design is compute bound — the "
        "\"granularity sufficiently large to alleviate the "
        "anti-memory-wall\" claim of SV-A.\n");

    camp::bench::section(
        "LLC bandwidth sweep: where the stream stops hiding "
        "(35904x35904)");
    Table sweep({"LLC GB/s (at 50% duty)", "compute cycles",
                 "pipeline cycles", "stalls", "overlap efficiency"});
    for (const double llc : {512.0, 256.0, 128.0, 64.0, 32.0, 16.0}) {
        SimConfig config;
        config.llc_gbps = llc;
        const AnalyticModel m(config);
        const StreamingSimulator streamer(config, 2);
        const StreamStats stats = streamer.run_multiply(35904, 35904);
        char eff[16];
        std::snprintf(eff, sizeof(eff), "%5.1f%%",
                      100.0 * stats.overlap_efficiency());
        sweep.add_row(
            {Table::fmt(llc, 4),
             std::to_string(m.multiply_stats(35904, 35904)
                                .compute_cycles),
             std::to_string(stats.cycles),
             std::to_string(stats.stall_cycles), eff});
    }
    sweep.print();
    std::printf("\nthe paper's 512 GB/s LLC leaves 20x headroom at the "
                "full monolithic size; the pipeline only starts "
                "stalling below ~32 GB/s.\n");
    return 0;
}
