/**
 * @file
 * Figure 3 reproduction: per-hierarchy-level bandwidth utilization for
 * Random Access, Matrix Multiply, and APC Multiply (panel b) and the
 * operational-intensity collapse toward the register file that the
 * roofline analysis shows (panel c).
 *
 * Methodology: each workload trace runs through the Zen3-like cache
 * simulator. Runtime is the compute-bound estimate ops/peak (the
 * paper's idealized model), so utilization at a boundary is
 * traffic / runtime / capability.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cachesim/cache.hpp"
#include "cachesim/traces.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::cachesim;

namespace {

constexpr double kPeakOpsPerSec = 11.1e9; // Xeon 6134 scalar INT64 peak

void
report(const char* name, Hierarchy& hierarchy, const TraceResult& trace,
       Table& util_table, Table& oi_table)
{
    const double runtime = trace.ops / kPeakOpsPerSec;
    const auto traffic = hierarchy.traffic_bytes();
    const auto names = hierarchy.boundary_names();
    const auto bw = hierarchy.boundary_bandwidth_gbps();
    std::vector<std::string> util_row{name};
    std::vector<std::string> oi_row{name};
    for (std::size_t i = 0; i < traffic.size(); ++i) {
        const double gbps = traffic[i] / runtime / 1e9;
        char cell[48];
        std::snprintf(cell, sizeof(cell), "%6.2f%% (%.1f GB/s)",
                      100.0 * gbps / bw[i], gbps);
        util_row.push_back(cell);
        oi_row.push_back(
            traffic[i] > 0 ? Table::fmt(trace.ops / traffic[i], 3)
                           : std::string("inf"));
    }
    util_table.add_row(util_row);
    oi_table.add_row(oi_row);
}

} // namespace

int
main()
{
    Hierarchy probe = Hierarchy::zen3_like();
    const auto names = probe.boundary_names();
    std::vector<std::string> header{"workload"};
    header.insert(header.end(), names.begin(), names.end());
    Table util_table(header);
    Table oi_table(header);

    {
        Hierarchy h = Hierarchy::zen3_like();
        const TraceResult r = trace_random_access(h, 1 << 21);
        report("Random Access", h, r, util_table, oi_table);
    }
    {
        Hierarchy h = Hierarchy::zen3_like();
        const TraceResult r = trace_matmul(h, 192);
        report("Matrix Multiply", h, r, util_table, oi_table);
    }
    {
        Hierarchy h = Hierarchy::zen3_like();
        const TraceResult r = trace_apc_mul(h, 4096); // 256 Kbit operands
        report("APC Multiply", h, r, util_table, oi_table);
    }

    camp::bench::section(
        "Figure 3(b): bandwidth utilization per hierarchy boundary");
    util_table.print();
    std::printf("\npaper signature: Random Access loads the remote "
                "levels; Matrix Multiply concentrates at L1/RF with "
                "locality; APC Multiply is stuck at the register file "
                "while remote levels idle.\n");

    camp::bench::section(
        "Figure 3(c): operational intensity per boundary (ops/byte)");
    oi_table.print();
    std::printf("\nAPC Multiply's intensity collapses toward the near "
                "hierarchy (right-most columns huge, RF column small): "
                "raising peak ALUs cannot help once the RF bandwidth "
                "ceiling binds (paper roofline argument).\n");
    return 0;
}
