/**
 * @file
 * google-benchmark microbenchmarks of the mpn kernels — the CPU
 * baseline's primitive costs that every higher-level result in this
 * repository builds on.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "mpn/sqrt.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;

namespace {

std::vector<Limb>
random_limbs(std::size_t n, std::uint64_t seed)
{
    camp::Rng rng(seed);
    std::vector<Limb> v(n);
    for (auto& limb : v)
        limb = rng.next();
    if (!v.empty() && v.back() == 0)
        v.back() = 1;
    return v;
}

void
bm_add_n(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto a = random_limbs(n, 1);
    const auto b = random_limbs(n, 2);
    std::vector<Limb> r(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mpn::add_n(r.data(), a.data(), b.data(), n));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * 8 * 3);
}
BENCHMARK(bm_add_n)->Arg(64)->Arg(1024)->Arg(16384);

void
bm_mul_dispatch(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto a = random_limbs(n, 3);
    const auto b = random_limbs(n, 4);
    std::vector<Limb> r(2 * n);
    for (auto _ : state)
        mpn::mul(r.data(), a.data(), n, b.data(), n);
    state.SetLabel(mpn::mul_algorithm_name(n, mpn::mul_tuning()));
}
BENCHMARK(bm_mul_dispatch)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void
bm_divrem(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto a = random_limbs(2 * n, 5);
    const auto d = random_limbs(n, 6);
    std::vector<Limb> q(n + 1), r(n);
    for (auto _ : state)
        mpn::divrem(q.data(), r.data(), a.data(), 2 * n, d.data(), n);
}
BENCHMARK(bm_divrem)->Arg(64)->Arg(512)->Arg(4096);

void
bm_sqrtrem(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto a = random_limbs(n, 7);
    std::vector<Limb> s((n + 1) / 2);
    for (auto _ : state)
        mpn::sqrtrem(s.data(), nullptr, a.data(), n);
}
BENCHMARK(bm_sqrtrem)->Arg(64)->Arg(512)->Arg(4096);

} // namespace

BENCHMARK_MAIN();
