/**
 * @file
 * CI perf smoke (< 10 s): times the two parallel paths added with the
 * thread pool — a large monolithic mpn multiplication and a
 * BatchEngine batch — serial (SerialGuard) vs pooled, checks the
 * results are bit-identical, and records machine-readable numbers in
 * BENCH_perf_smoke.json (op, bits, threads, ns/op, GB/s, speedup).
 * Speedup tracks the host: on a single-core runner the pooled path is
 * expected near 1.0x and the JSON row is the honest record of that.
 */
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

using camp::mpn::Natural;
using namespace camp::bench;

int
main()
{
    camp::support::ThreadPool& pool = camp::support::ThreadPool::global();
    const unsigned threads = pool.executors();
    BenchJson json("perf_smoke");
    TimingOptions opts;
    opts.warmup = 1;
    opts.min_seconds = 0.2;
    camp::Rng rng(42);

    section("mpn monolithic multiply, serial vs pooled");
    {
        const std::uint64_t bits = 1u << 20; // 1 Mbit x 1 Mbit
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        Natural serial_prod, pooled_prod;
        const double serial_s = time_call(
            [&] {
                camp::support::SerialGuard guard;
                serial_prod = a * b;
            },
            opts);
        const double pooled_s =
            time_call([&] { pooled_prod = a * b; }, opts);
        CAMP_ASSERT(serial_prod == pooled_prod);
        const double bytes = 2.0 * (bits / 8.0);
        json.add("mpn_mul_serial", bits, 1, serial_s, bytes);
        json.add("mpn_mul_pooled", bits, threads, pooled_s, bytes,
                 {{"speedup", serial_s / pooled_s}});
    }

    section("sim batch multiply, serial vs pooled");
    {
        const std::uint64_t bits = 2048;
        const std::size_t batch = 256;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        camp::sim::BatchEngine engine;
        camp::sim::BatchResult serial_res, pooled_res;
        const double serial_s = time_call(
            [&] { serial_res = engine.multiply_batch(pairs, 1); },
            opts);
        const double pooled_s = time_call(
            [&] { pooled_res = engine.multiply_batch(pairs, 0); },
            opts);
        CAMP_ASSERT(serial_res.products == pooled_res.products);
        const double bytes =
            static_cast<double>(batch) * 2.0 * (bits / 8.0);
        json.add("batch_mul_serial", bits, 1, serial_s, bytes);
        json.add("batch_mul_pooled", bits, pooled_res.parallelism,
                 pooled_s, bytes, {{"speedup", serial_s / pooled_s}});
    }

    json.write_file();
    return 0;
}
