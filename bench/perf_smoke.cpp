/**
 * @file
 * CI perf smoke (< 10 s): times the parallel paths added with the
 * thread pool — a large monolithic mpn multiplication and a
 * BatchEngine batch — serial (SerialGuard) vs pooled, plus an MPApca
 * decomposed multiplication (so a CAMP_TRACE run contains spans from
 * the mpn, sim, and mpapca layers), checks results are bit-identical,
 * and records machine-readable numbers in BENCH_perf_smoke.json.
 * Speedup tracks the host: on a single-core runner the pooled path is
 * expected near 1.0x and the JSON row is the honest record of that.
 *
 * The binary also measures the observability layer itself:
 *  - trace_off row: cost of a *disabled* trace::Span (the always-paid
 *    price) scaled by the spans-per-op of the 1-Mbit multiply, as a
 *    percentage of the op ("overhead_pct" extra; acceptance: < 2%);
 *  - trace_on row: the same multiply with tracing force-enabled.
 *
 * With CAMP_BENCH_GATE=1 the run exits nonzero when any op regresses
 * beyond CAMP_BENCH_TOLERANCE vs CAMP_BENCH_BASELINE (see bench_util
 * and ci/run_tests.sh; refresh workflow in README "Performance").
 */
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "exec/cpu_device.hpp"
#include "exec/wave.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/view.hpp"
#include "mpn/kernels/kernels.hpp"
#include "mpn/kernels/soa.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

using camp::mpn::Natural;
using namespace camp::bench;
namespace trace = camp::support::trace;
namespace kernels = camp::mpn::kernels;

int
main()
{
    camp::support::ThreadPool& pool = camp::support::ThreadPool::global();
    const unsigned threads = pool.executors();
    BenchJson json("perf_smoke");
    TimingOptions opts;
    opts.warmup = 1;
    opts.min_seconds = 0.2;
    camp::Rng rng(42);

    // Which SIMD tier the dispatcher picked (CAMP_SIMD override or
    // cpuid probe) — printed so a regression in any row below is
    // attributable to the kernel set that actually ran.
    const kernels::Tier tier = kernels::active_tier();
    std::printf("simd tier: %s\n", kernels::tier_name(tier));
    double best_simd_speedup = 1.0;

    const std::uint64_t mul_bits = 1u << 20; // 1 Mbit x 1 Mbit
    const Natural big_a = Natural::random_bits(rng, mul_bits);
    const Natural big_b = Natural::random_bits(rng, mul_bits);
    double mul_serial_s = 0;

    section("mpn monolithic multiply, serial vs pooled");
    {
        Natural serial_prod, pooled_prod;
        mul_serial_s = time_call(
            [&] {
                camp::support::SerialGuard guard;
                serial_prod = big_a * big_b;
            },
            opts);
        const double pooled_s =
            time_call([&] { pooled_prod = big_a * big_b; }, opts);
        CAMP_ASSERT(serial_prod == pooled_prod);
        const double bytes = 2.0 * (mul_bits / 8.0);
        json.add("mpn_mul_serial", mul_bits, 1, mul_serial_s, bytes);
        json.add("mpn_mul_pooled", mul_bits, threads, pooled_s, bytes,
                 {{"speedup", mul_serial_s / pooled_s}});
    }

    section("sim batch multiply, serial vs pooled");
    {
        const std::uint64_t bits = 2048;
        const std::size_t batch = 256;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        camp::sim::BatchEngine engine;
        camp::sim::BatchResult serial_res, pooled_res;
        const double serial_s = time_call(
            [&] { serial_res = engine.multiply_batch(pairs, 1); },
            opts);
        const double pooled_s = time_call(
            [&] { pooled_res = engine.multiply_batch(pairs, 0); },
            opts);
        CAMP_ASSERT(serial_res.products == pooled_res.products);
        const double bytes =
            static_cast<double>(batch) * 2.0 * (bits / 8.0);
        json.add("batch_mul_serial", bits, 1, serial_s, bytes);
        json.add("batch_mul_pooled", bits, pooled_res.parallelism,
                 pooled_s, bytes, {{"speedup", serial_s / pooled_s}});
    }

    section("simd limb kernels, scalar vs dispatched");
    {
        // Microbench of the dispatched primitives against the scalar
        // reference on the same buffers. The gated win lives here:
        // add_n/sub_n are the carry-select movemask kernels (the
        // multiply-family slots deliberately stay scalar on hosts
        // where pmuludq loses to mulx — see DESIGN.md).
        const kernels::KernelTable& scal = kernels::scalar_table();
        const kernels::KernelTable& act = kernels::active();
        const std::size_t n = 4096;
        std::vector<std::uint64_t> ap(n), bp(n), rp(n);
        for (std::size_t i = 0; i < n; ++i) {
            ap[i] = rng.next();
            bp[i] = rng.next();
        }
        TimingOptions kopts = opts;
        kopts.min_seconds = 0.05;
        const double bytes = 3.0 * n * 8.0;

        const double add_scal_s = time_call(
            [&] { scal.add_n(rp.data(), ap.data(), bp.data(), n); },
            kopts);
        const double add_act_s = time_call(
            [&] { act.add_n(rp.data(), ap.data(), bp.data(), n); },
            kopts);
        const double add_speedup = add_scal_s / add_act_s;
        json.add("kernel_add_n", n * 64, 1, add_act_s, bytes,
                 {{"speedup", add_speedup},
                  {"simd_tier", static_cast<double>(tier)}});

        const double sub_scal_s = time_call(
            [&] { scal.sub_n(rp.data(), ap.data(), bp.data(), n); },
            kopts);
        const double sub_act_s = time_call(
            [&] { act.sub_n(rp.data(), ap.data(), bp.data(), n); },
            kopts);
        const double sub_speedup = sub_scal_s / sub_act_s;
        json.add("kernel_sub_n", n * 64, 1, sub_act_s, bytes,
                 {{"speedup", sub_speedup}});

        // Schoolbook basecase at 64x64 limbs: above the AVX2 kernel's
        // internal crossover, so the reduced-radix column path runs.
        const std::size_t bn = 64;
        std::vector<std::uint64_t> prod(2 * bn);
        const double bc_scal_s = time_call(
            [&] {
                scal.mul_basecase(prod.data(), ap.data(), bn, bp.data(),
                                  bn);
            },
            kopts);
        const double bc_act_s = time_call(
            [&] {
                act.mul_basecase(prod.data(), ap.data(), bn, bp.data(),
                                 bn);
            },
            kopts);
        const double bc_speedup = bc_scal_s / bc_act_s;
        json.add("kernel_basecase_64", bn * 64, 1, bc_act_s,
                 2.0 * bn * 8.0, {{"speedup", bc_speedup}});

        best_simd_speedup = std::max(
            {best_simd_speedup, add_speedup, sub_speedup, bc_speedup});
    }

    section("SoA batch multiply (digit-sliced vertical basecase)");
    {
        // N independent same-shape products, transposed into
        // digit-major SoA form and multiplied by one vertical kernel
        // across lanes, vs the same products one at a time through the
        // scalar mpn path. On tiers without an SoA kernel the driver
        // falls back per-product and the speedup is honestly ~1.0.
        const std::uint64_t bits = 4096;
        const std::size_t batch = 64;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        std::vector<Natural> soa_out(batch), ref_out(batch);
        TimingOptions kopts = opts;
        kopts.min_seconds = 0.05;

        const bool had_simd = tier != kernels::Tier::Scalar;
        kernels::set_active_tier(kernels::Tier::Scalar);
        const double ref_s = time_call(
            [&] {
                for (std::size_t i = 0; i < batch; ++i)
                    ref_out[i] = pairs[i].first * pairs[i].second;
            },
            kopts);
        if (had_simd)
            kernels::set_active_tier(tier);
        const double soa_s = time_call(
            [&] {
                kernels::soa_mul_batch(pairs.data(), batch,
                                       soa_out.data());
            },
            kopts);
        for (std::size_t i = 0; i < batch; ++i)
            CAMP_ASSERT(soa_out[i] == ref_out[i]);
        const double soa_speedup = ref_s / soa_s;
        const double bytes =
            static_cast<double>(batch) * 2.0 * (bits / 8.0);
        json.add("batch_mul_soa", bits, 1, soa_s / batch, bytes / batch,
                 {{"speedup", soa_speedup}});
        best_simd_speedup = std::max(best_simd_speedup, soa_speedup);
    }

    section("memory plane: copying batch vs pooled zero-copy wave");
    {
        // One 256-product 2048-bit wave through an explicit CpuDevice,
        // both ways. The copying path allocates one product buffer per
        // product (mpn.alloc.count += ~256); the pooled wave path
        // writes into arena-backed slots carved at add() time and, at
        // steady state (warm reused WaveBuffer), allocates none. The
        // alloc_per_wave row is the gated record of that traffic drop:
        // >= 10x fewer counted allocations per wave, with products
        // bit-identical.
        const std::uint64_t bits = 2048;
        const std::size_t batch = 256;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        camp::exec::CpuDevice cpu;
        std::vector<std::size_t> items(batch);
        std::vector<std::uint64_t> indices(batch);
        for (std::size_t i = 0; i < batch; ++i) {
            items[i] = i;
            indices[i] = i;
        }
        camp::support::metrics::Counter& allocs =
            camp::support::metrics::counter("mpn.alloc.count");

        camp::sim::BatchResult copy_res;
        std::uint64_t copy_allocs = 0;
        const double copy_s = time_call(
            [&] {
                const std::uint64_t before = allocs.value();
                copy_res = cpu.mul_batch(pairs, 0);
                copy_allocs = allocs.value() - before;
            },
            opts);

        camp::exec::WaveBuffer wave;
        std::uint64_t wave_allocs = 0;
        bool wave_identical = true;
        const double wave_s = time_call(
            [&] {
                wave.reset();
                for (const auto& [a, b] : pairs)
                    wave.add(a, b);
                const std::uint64_t before = allocs.value();
                cpu.mul_batch_wave(wave, items, indices, 0);
                wave_allocs = allocs.value() - before;
                for (std::size_t i = 0; i < batch; ++i)
                    wave_identical =
                        wave_identical &&
                        wave.result(i) ==
                            camp::mpn::LimbView(copy_res.products[i]);
            },
            opts);
        CAMP_ASSERT(wave_identical);

        // Steady state: a warm wave's execution allocates nothing, so
        // the ratio denominator is clamped to 1 for the JSON row.
        const double ratio = static_cast<double>(copy_allocs) /
                             static_cast<double>(
                                 std::max<std::uint64_t>(wave_allocs, 1));
        std::printf("alloc traffic per wave: copy=%llu zero-copy=%llu "
                    "(%.0fx reduction)\n",
                    static_cast<unsigned long long>(copy_allocs),
                    static_cast<unsigned long long>(wave_allocs),
                    ratio);
        CAMP_ASSERT(copy_allocs >= batch);
        CAMP_ASSERT(ratio >= 10.0);

        const double bytes =
            static_cast<double>(batch) * 2.0 * (bits / 8.0);
        json.add("wave_mul_copy", bits, threads, copy_s / batch,
                 bytes / batch,
                 {{"allocs", static_cast<double>(copy_allocs)}});
        json.add("alloc_per_wave", bits, threads, wave_s / batch,
                 bytes / batch,
                 {{"allocs", static_cast<double>(wave_allocs)},
                  {"reduction", ratio},
                  {"speedup", copy_s / wave_s}});
    }

    // The tentpole gate: with any SIMD tier active, at least one gated
    // kernel row must beat scalar by more than 1.5x. (Scalar-forced
    // runs — CAMP_SIMD=scalar CI legs — measure the same rows at ~1.0x
    // without gating, keeping the leg meaningful on any host.)
    std::printf("\nbest simd speedup: %.2fx (tier %s)\n",
                best_simd_speedup, kernels::tier_name(tier));
    if (tier != kernels::Tier::Scalar)
        CAMP_ASSERT(best_simd_speedup > 1.5);

    section("tracing overhead");
    {
        // Always-paid cost: a disabled Span is one relaxed load.
        const bool was_enabled = trace::enabled();
        trace::set_enabled(false);
        const std::size_t kSpans = 1u << 20;
        const double batch_s = time_call(
            [&] {
                for (std::size_t i = 0; i < kSpans; ++i) {
                    trace::Span span("bench.noop", "bench");
                    span.arg("i", static_cast<double>(i));
                }
            },
            opts);
        const double off_span_ns = batch_s / kSpans * 1e9;

        // Spans the 1-Mbit multiply emits (tracing on, serial so the
        // count is deterministic), to scale the per-span cost into a
        // percentage of the real op.
        trace::set_enabled(true);
        const std::uint64_t emitted_before = trace::total_emitted();
        Natural traced_prod;
        {
            camp::support::SerialGuard guard;
            traced_prod = big_a * big_b;
        }
        const double spans_per_op = static_cast<double>(
            trace::total_emitted() - emitted_before);
        const double off_overhead_pct = mul_serial_s > 0
            ? spans_per_op * off_span_ns / (mul_serial_s * 1e9) * 100.0
            : 0.0;

        // And the measured cost of actually recording those spans.
        const double on_s = time_call(
            [&] {
                camp::support::SerialGuard guard;
                traced_prod = big_a * big_b;
            },
            opts);
        trace::set_enabled(was_enabled);
        CAMP_ASSERT(traced_prod == big_a * big_b);
        const double on_overhead_pct = mul_serial_s > 0
            ? (on_s / mul_serial_s - 1.0) * 100.0
            : 0.0;

        const double bytes = 2.0 * (mul_bits / 8.0);
        json.add("trace_off_mul", mul_bits, 1, mul_serial_s, bytes,
                 {{"span_ns", off_span_ns},
                  {"spans_per_op", spans_per_op},
                  {"overhead_pct", off_overhead_pct}});
        json.add("trace_on_mul", mul_bits, 1, on_s, bytes,
                 {{"overhead_pct", on_overhead_pct}});
        CAMP_ASSERT(off_overhead_pct < 2.0);
    }

    section("mpapca decomposed multiply (runtime + sim + mpn spans)");
    {
        // Above the monolithic capability, so mul_functional really
        // decomposes and every base product routes through sim::Core.
        camp::mpapca::Runtime runtime(camp::mpapca::Backend::CambriconP);
        const std::uint64_t cap =
            runtime.cost_model().config().monolithic_cap_bits;
        const std::uint64_t bits = 3 * cap;
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        Natural prod;
        TimingOptions mp_opts = opts;
        mp_opts.min_seconds = 0.05; // the slowest section; keep < 10 s
        const double mp_s =
            time_call([&] { prod = runtime.mul_functional(a, b); },
                      mp_opts);
        CAMP_ASSERT(prod == a * b);
        const double bytes = 2.0 * (bits / 8.0);
        json.add("mpapca_mul_functional", bits, threads, mp_s, bytes);
    }

    // A CAMP_TRACE run gets its JSON at exit; always print the
    // registry so the counters threaded through the layers are visible.
    section("metrics registry");
    std::printf(
        "%s",
        camp::support::metrics::Registry::instance()
            .render_table()
            .c_str());

    json.write_file();
    return maybe_gate(json);
}
