/**
 * @file
 * CI perf smoke (< 10 s): times the parallel paths added with the
 * thread pool — a large monolithic mpn multiplication and a
 * BatchEngine batch — serial (SerialGuard) vs pooled, plus an MPApca
 * decomposed multiplication (so a CAMP_TRACE run contains spans from
 * the mpn, sim, and mpapca layers), checks results are bit-identical,
 * and records machine-readable numbers in BENCH_perf_smoke.json.
 * Speedup tracks the host: on a single-core runner the pooled path is
 * expected near 1.0x and the JSON row is the honest record of that.
 *
 * The binary also measures the observability layer itself:
 *  - trace_off row: cost of a *disabled* trace::Span (the always-paid
 *    price) scaled by the spans-per-op of the 1-Mbit multiply, as a
 *    percentage of the op ("overhead_pct" extra; acceptance: < 2%);
 *  - trace_on row: the same multiply with tracing force-enabled.
 *
 * With CAMP_BENCH_GATE=1 the run exits nonzero when any op regresses
 * beyond CAMP_BENCH_TOLERANCE vs CAMP_BENCH_BASELINE (see bench_util
 * and ci/run_tests.sh; refresh workflow in README "Performance").
 */
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

using camp::mpn::Natural;
using namespace camp::bench;
namespace trace = camp::support::trace;

int
main()
{
    camp::support::ThreadPool& pool = camp::support::ThreadPool::global();
    const unsigned threads = pool.executors();
    BenchJson json("perf_smoke");
    TimingOptions opts;
    opts.warmup = 1;
    opts.min_seconds = 0.2;
    camp::Rng rng(42);

    const std::uint64_t mul_bits = 1u << 20; // 1 Mbit x 1 Mbit
    const Natural big_a = Natural::random_bits(rng, mul_bits);
    const Natural big_b = Natural::random_bits(rng, mul_bits);
    double mul_serial_s = 0;

    section("mpn monolithic multiply, serial vs pooled");
    {
        Natural serial_prod, pooled_prod;
        mul_serial_s = time_call(
            [&] {
                camp::support::SerialGuard guard;
                serial_prod = big_a * big_b;
            },
            opts);
        const double pooled_s =
            time_call([&] { pooled_prod = big_a * big_b; }, opts);
        CAMP_ASSERT(serial_prod == pooled_prod);
        const double bytes = 2.0 * (mul_bits / 8.0);
        json.add("mpn_mul_serial", mul_bits, 1, mul_serial_s, bytes);
        json.add("mpn_mul_pooled", mul_bits, threads, pooled_s, bytes,
                 {{"speedup", mul_serial_s / pooled_s}});
    }

    section("sim batch multiply, serial vs pooled");
    {
        const std::uint64_t bits = 2048;
        const std::size_t batch = 256;
        std::vector<std::pair<Natural, Natural>> pairs;
        pairs.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i)
            pairs.emplace_back(Natural::random_bits(rng, bits),
                               Natural::random_bits(rng, bits));
        camp::sim::BatchEngine engine;
        camp::sim::BatchResult serial_res, pooled_res;
        const double serial_s = time_call(
            [&] { serial_res = engine.multiply_batch(pairs, 1); },
            opts);
        const double pooled_s = time_call(
            [&] { pooled_res = engine.multiply_batch(pairs, 0); },
            opts);
        CAMP_ASSERT(serial_res.products == pooled_res.products);
        const double bytes =
            static_cast<double>(batch) * 2.0 * (bits / 8.0);
        json.add("batch_mul_serial", bits, 1, serial_s, bytes);
        json.add("batch_mul_pooled", bits, pooled_res.parallelism,
                 pooled_s, bytes, {{"speedup", serial_s / pooled_s}});
    }

    section("tracing overhead");
    {
        // Always-paid cost: a disabled Span is one relaxed load.
        const bool was_enabled = trace::enabled();
        trace::set_enabled(false);
        const std::size_t kSpans = 1u << 20;
        const double batch_s = time_call(
            [&] {
                for (std::size_t i = 0; i < kSpans; ++i) {
                    trace::Span span("bench.noop", "bench");
                    span.arg("i", static_cast<double>(i));
                }
            },
            opts);
        const double off_span_ns = batch_s / kSpans * 1e9;

        // Spans the 1-Mbit multiply emits (tracing on, serial so the
        // count is deterministic), to scale the per-span cost into a
        // percentage of the real op.
        trace::set_enabled(true);
        const std::uint64_t emitted_before = trace::total_emitted();
        Natural traced_prod;
        {
            camp::support::SerialGuard guard;
            traced_prod = big_a * big_b;
        }
        const double spans_per_op = static_cast<double>(
            trace::total_emitted() - emitted_before);
        const double off_overhead_pct = mul_serial_s > 0
            ? spans_per_op * off_span_ns / (mul_serial_s * 1e9) * 100.0
            : 0.0;

        // And the measured cost of actually recording those spans.
        const double on_s = time_call(
            [&] {
                camp::support::SerialGuard guard;
                traced_prod = big_a * big_b;
            },
            opts);
        trace::set_enabled(was_enabled);
        CAMP_ASSERT(traced_prod == big_a * big_b);
        const double on_overhead_pct = mul_serial_s > 0
            ? (on_s / mul_serial_s - 1.0) * 100.0
            : 0.0;

        const double bytes = 2.0 * (mul_bits / 8.0);
        json.add("trace_off_mul", mul_bits, 1, mul_serial_s, bytes,
                 {{"span_ns", off_span_ns},
                  {"spans_per_op", spans_per_op},
                  {"overhead_pct", off_overhead_pct}});
        json.add("trace_on_mul", mul_bits, 1, on_s, bytes,
                 {{"overhead_pct", on_overhead_pct}});
        CAMP_ASSERT(off_overhead_pct < 2.0);
    }

    section("mpapca decomposed multiply (runtime + sim + mpn spans)");
    {
        // Above the monolithic capability, so mul_functional really
        // decomposes and every base product routes through sim::Core.
        camp::mpapca::Runtime runtime(camp::mpapca::Backend::CambriconP);
        const std::uint64_t cap =
            runtime.cost_model().config().monolithic_cap_bits;
        const std::uint64_t bits = 3 * cap;
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        Natural prod;
        TimingOptions mp_opts = opts;
        mp_opts.min_seconds = 0.05; // the slowest section; keep < 10 s
        const double mp_s =
            time_call([&] { prod = runtime.mul_functional(a, b); },
                      mp_opts);
        CAMP_ASSERT(prod == a * b);
        const double bytes = 2.0 * (bits / 8.0);
        json.add("mpapca_mul_functional", bits, threads, mp_s, bytes);
    }

    // A CAMP_TRACE run gets its JSON at exit; always print the
    // registry so the counters threaded through the layers are visible.
    section("metrics registry");
    std::printf(
        "%s",
        camp::support::metrics::Registry::instance()
            .render_table()
            .c_str());

    json.write_file();
    return maybe_gate(json);
}
