/**
 * @file
 * Figure 12 reproduction: the roofline for APC multiplication on
 * Cambricon-P. The larger multiplication granularity (32-bit hardware
 * limbs feeding 35904-bit monolithic products) keeps operational
 * intensity high enough to exploit the 8192 IPUs, while the CPU's
 * fine-grained decomposition pins it against its register-file
 * bandwidth. The LLC bandwidth is halved (50% memory-agent duty) as in
 * the paper.
 */
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/analytic_model.hpp"
#include "sim/config.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::sim;

int
main()
{
    const AnalyticModel model;
    const SimConfig& config = default_config();
    const double peak = model.peak_mac64_per_s();
    const double bw =
        config.llc_gbps * 1e9 * config.ma_duty; // bytes/s available

    camp::bench::section("Figure 12: Cambricon-P roofline");
    std::printf("peak: %.1f GMAC64/s; LLC bandwidth at %.0f%% duty: "
                "%.0f GB/s; ridge intensity: %.2f MAC64/byte\n\n",
                peak / 1e9, 100.0 * config.ma_duty, bw / 1e9,
                peak / bw);

    Table table({"N (bits)", "MAC64 ops", "bytes", "intensity",
                 "attained GMAC64/s", "peak util", "bound"});
    for (std::uint64_t bits = 256; bits <= 35904; bits *= 2) {
        const std::uint64_t n =
            std::min<std::uint64_t>(bits, 35904);
        const CoreStats stats = model.multiply_stats(n, n);
        const double ops = AnalyticModel::equivalent_mac64(n, n);
        const double seconds = stats.seconds(config);
        const double attained = ops / seconds;
        const double intensity = ops / static_cast<double>(stats.bytes);
        char util[32];
        std::snprintf(util, sizeof(util), "%5.1f%%",
                      100.0 * attained / peak);
        table.add_row(
            {std::to_string(n), Table::fmt_si(ops),
             Table::fmt_si(static_cast<double>(stats.bytes)),
             Table::fmt(intensity, 4), Table::fmt(attained / 1e9, 4),
             util,
             stats.memory_cycles > stats.compute_cycles ? "memory"
                                                        : "compute"});
    }
    {
        const CoreStats stats = model.multiply_stats(35904, 35904);
        (void)stats;
    }
    table.print();

    std::printf(
        "\nCPU comparison (paper Fig. 12): an ideal CPU core at "
        "11.1 Gops INT64 with 64-bit granularity has ridge intensity "
        "far left of APC multiply's achievable intensity, yet its "
        "RF-bandwidth ceiling caps attained performance; Cambricon-P's "
        "32-bit bit-serial granularity x 8192 IPUs raises the peak "
        "%.0fx while the monolithic range keeps intensity above the "
        "ridge (compute bound column).\n",
        peak / 11.1e9);
    return 0;
}
