/**
 * @file
 * Gather Unit combining-mode ablation (paper Fig. 10): by disabling
 * different full adders the GU combines every 1/2/4/8/16/32 IPU
 * outputs into independent results, trading monolithic reach for batch
 * throughput. This bench verifies functional correctness per mode and
 * reports the results-per-gather and modelled batch throughput.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/config.hpp"
#include "sim/gather_unit.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::sim;

int
main()
{
    camp::bench::section(
        "Fig. 10: GU combining modes (FA-disable configurations)");
    const SimConfig& config = default_config();
    const GatherUnit gu;
    camp::Rng rng(5);
    std::vector<camp::u128> psums(config.n_ipu);
    for (auto& p : psums)
        p = rng.next();

    Table table({"mode (IPUs combined)", "independent results",
                 "result width (bits)", "modelled results/s per PE",
                 "use case"});
    for (const unsigned mode : {1u, 2u, 4u, 8u, 16u, 32u}) {
        GatherStats stats;
        const auto results = gu.gather_combined(psums, mode, &stats);
        // One gather per L-cycle wave; mode-m yields n_ipu/m results.
        const double per_s = static_cast<double>(results.size()) *
                             config.freq_ghz * 1e9 / config.limb_bits;
        const char* use = mode == 1
                              ? "batch of small independent products"
                              : mode == 32
                                    ? "monolithic inner product (APC)"
                                    : "intermediate batch shapes";
        std::uint64_t max_bits = 0;
        for (const auto& r : results)
            max_bits = std::max(max_bits, r.bits());
        table.add_row({std::to_string(mode),
                       std::to_string(results.size()),
                       std::to_string(max_bits), Table::fmt_si(per_s),
                       use});
    }
    table.print();
    std::printf("\nthe same FA fabric covers CGBN-style batches "
                "(mode 1) and the monolithic mode CGBN cannot express "
                "(mode 32) — the generality argument of SVII-B.\n");
    return 0;
}
