/**
 * @file
 * Operand-cache benchmark (ROADMAP item 4, DESIGN.md §16): measures
 * the repeated-operand traffic the support::OpCache exists for against
 * the cache-off cold path, differentially on the same inputs.
 *
 *  - pi_regrow: a growing digit target through PiCalculator — the
 *    incremental binary-splitting path (cache on) vs a cold full split
 *    per target (cache off). This is the headline row: the binary
 *    hard-fails unless the cached walk is at least 2x faster, since
 *    the incremental path only splits the new series terms.
 *  - modexp_repeat: one RSA-shaped modulus across a burst of modexps —
 *    Montgomery constants (n', R, R^2) derived once vs per call.
 *  - divrem_repeat: one divisor across a burst of divisions — the
 *    Newton reciprocal derived once vs per call.
 *  - divrem_unique: every division a fresh divisor, cache on vs off —
 *    the cold path must not pay for the cache (ratio ~1, kept honest
 *    by the CI perf gate's tolerance on both rows).
 *
 * Rows land in BENCH_opcache_bench.json for the CAMP_BENCH_GATE
 * regression gate (see ci/run_tests.sh).
 */
#include <cstdio>
#include <cstdlib>

#include "apps/pi/chudnovsky.hpp"
#include "bench_util.hpp"
#include "mpn/natural.hpp"
#include "mpn/newton.hpp"
#include "mpz/integer.hpp"
#include "support/opcache.hpp"
#include "support/rng.hpp"

using camp::Rng;
using camp::bench::BenchJson;
using camp::bench::TimingOptions;
using camp::mpn::Natural;
using camp::mpz::Integer;
using camp::support::OpCache;

namespace {

/** Time one full cache-state arm: reset the global cache to the
 * requested mode, run @p fn repeatedly. */
double
time_arm(bool cached, const std::function<void()>& fn)
{
    TimingOptions opts;
    opts.warmup = 1;
    opts.min_seconds = 0.05;
    OpCache& cache = OpCache::global();
    return camp::bench::time_call(
        [&] {
            cache.set_enabled(cached);
            cache.clear();
            fn();
        },
        opts);
}

} // namespace

int
main()
{
    BenchJson json("opcache_bench");
    const bool saved_enabled = OpCache::global().enabled();

    // ---- pi regrow: incremental extension vs cold resplit ----
    camp::bench::section("pi regrow walk (500 -> 2500 digits)");
    const auto pi_walk = [] {
        camp::apps::pi::PiCalculator calculator;
        for (std::uint64_t digits = 500; digits <= 2500; digits += 100)
            calculator.digits(digits);
    };
    const double pi_cold = time_arm(false, pi_walk);
    const double pi_warm = time_arm(true, pi_walk);
    const double pi_speedup = pi_warm > 0 ? pi_cold / pi_warm : 0.0;
    json.add("pi_regrow_cached", 2500, 1, pi_warm, 0,
             {{"speedup", pi_speedup}});
    json.add("pi_regrow_cold", 2500, 1, pi_cold, 0);

    // ---- modexp with a repeated modulus ----
    camp::bench::section("modexp burst, one 1536-bit modulus");
    Rng rng(0x09cac8eb);
    const Natural modulus =
        Natural::random_bits(rng, 1536) | Natural(1);
    std::vector<Natural> bases;
    for (int i = 0; i < 16; ++i)
        bases.push_back(Natural::random_bits(rng, 1536));
    const Natural exponent(65537);
    const auto modexp_burst = [&] {
        for (const Natural& base : bases)
            Integer::powmod(base, exponent, modulus);
    };
    const double me_cold = time_arm(false, modexp_burst);
    const double me_warm = time_arm(true, modexp_burst);
    json.add("modexp_repeat_cached", 1536, 1, me_warm, 0,
             {{"speedup", me_warm > 0 ? me_cold / me_warm : 0.0}});
    json.add("modexp_repeat_cold", 1536, 1, me_cold, 0);

    // ---- division with a repeated divisor ----
    camp::bench::section("divrem burst, one 4096-bit divisor");
    const Natural divisor =
        Natural::random_bits(rng, 4096) | Natural(1);
    std::vector<Natural> dividends;
    for (int i = 0; i < 16; ++i)
        dividends.push_back(Natural::random_bits(rng, 8192));
    const auto divrem_burst = [&] {
        for (const Natural& a : dividends)
            camp::mpn::divrem_newton(a, divisor);
    };
    const double dv_cold = time_arm(false, divrem_burst);
    const double dv_warm = time_arm(true, divrem_burst);
    json.add("divrem_repeat_cached", 4096, 1, dv_warm, 0,
             {{"speedup", dv_warm > 0 ? dv_cold / dv_warm : 0.0}});
    json.add("divrem_repeat_cold", 4096, 1, dv_cold, 0);

    // ---- cold traffic: unique divisors, cache on vs off ----
    camp::bench::section("divrem, unique divisors (cold path)");
    std::vector<std::pair<Natural, Natural>> unique;
    for (int i = 0; i < 16; ++i)
        unique.emplace_back(Natural::random_bits(rng, 8192),
                            Natural::random_bits(rng, 4096) |
                                Natural(1));
    const auto unique_burst = [&] {
        for (const auto& [a, d] : unique)
            camp::mpn::divrem_newton(a, d);
    };
    const double uq_off = time_arm(false, unique_burst);
    const double uq_on = time_arm(true, unique_burst);
    json.add("divrem_unique_cache_on", 4096, 1, uq_on, 0,
             {{"ratio_vs_off", uq_off > 0 ? uq_on / uq_off : 0.0}});
    json.add("divrem_unique_cache_off", 4096, 1, uq_off, 0);

    OpCache::global().set_enabled(saved_enabled);
    OpCache::global().clear();
    json.write_file();

    // The acceptance bar: repeated-operand pi-regrow traffic must win
    // by at least 2x with the cache on. (The other rows are reported
    // and gated against the baseline, but only pi carries the hard
    // multi-x claim — Montgomery/reciprocal reuse wins depend on the
    // exponent/operand shape.)
    if (pi_speedup < 2.0) {
        std::printf("FAIL: pi_regrow cached speedup %.2fx < 2x\n",
                    pi_speedup);
        return 1;
    }
    std::printf("pi_regrow cached speedup: %.2fx (>= 2x required)\n",
                pi_speedup);

    return camp::bench::maybe_gate(json);
}
