/**
 * @file
 * Figure 2 reproduction.
 *
 * Right panel: runtime breakdown of the four APC applications on the
 * CPU baseline into the paper's categories (kernel operators Multiply/
 * Add/Shift, other low-level operators, high-level, auxiliary). The
 * paper reports low-level operators at 96.1/99.8/98.4/97% per app
 * (97.8% average) with kernel operators at 87.2%.
 *
 * Left panel: the GPU (V100+XMP) slowdown on general-purpose APC.
 * Substitution (DESIGN.md §4): without a GPU we replay each app's
 * operator histogram through a batch-1 GPU cost model — every operator
 * pays a kernel-launch latency and runs at single-stream throughput
 * (XMP/CGBN are batch-oriented; utilization for one operand collapses,
 * the paper measures < 0.001%). The paper reports a 32.2x average
 * slowdown vs one CPU core.
 */
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/frac/mandelbrot.hpp"
#include "apps/pi/chudnovsky.hpp"
#include "apps/rsa/rsa.hpp"
#include "apps/zkcm/zkcm.hpp"
#include "bench_util.hpp"
#include "profile/profiler.hpp"
#include "support/table.hpp"

using camp::Table;
using namespace camp::profile;

namespace {

/** Batch-1 GPU cost model (documented constants). */
double
gpu_model_seconds(const Profiler& profiler)
{
    constexpr double kLaunchSeconds = 5e-6;  // kernel launch + sync
    constexpr double kGpuMac64PerSec = 1e9;  // single-stream, batch = 1
    constexpr double kGpuWordPerSec = 20e9;  // linear ops, one stream
    double total = 0;
    for (const auto& [key, bucket] : profiler.histogram()) {
        const auto kind = key.first;
        const double mean_a = bucket.sum_bits_a / bucket.count;
        const double mean_b =
            bucket.sum_bits_b > 0 ? bucket.sum_bits_b / bucket.count
                                  : mean_a;
        double per_op = kLaunchSeconds;
        switch (kind) {
        case camp::mpn::OpKind::Mul:
        case camp::mpn::OpKind::Sqr:
            per_op += (mean_a / 64.0) * (mean_b / 64.0) /
                      kGpuMac64PerSec;
            break;
        case camp::mpn::OpKind::Div:
        case camp::mpn::OpKind::Sqrt:
            per_op += 2.5 * (mean_a / 64.0) * (mean_b > 0 ? mean_b : mean_a) /
                      64.0 / kGpuMac64PerSec;
            break;
        default:
            per_op += (std::max(mean_a, mean_b) / 64.0) /
                      kGpuWordPerSec;
            break;
        }
        total += per_op * static_cast<double>(bucket.count);
    }
    return total;
}

struct AppRun
{
    std::string name;
    std::function<void()> body;
};

} // namespace

int
main()
{
    const std::vector<AppRun> apps = {
        {"Pi", [] { camp::apps::pi::compute_pi(3000); }},
        {"Frac",
         [] {
             camp::apps::frac::RenderParams params;
             params.precision_bits = 512;
             params.zoom_log2 = 50;
             params.width = 48;
             params.height = 32;
             params.max_iterations = 3000;
             camp::apps::frac::render(params);
         }},
        {"zkcm",
         [] { camp::apps::zkcm::qft_circuit(4, 4096); }},
        {"RSA",
         [] { camp::apps::rsa::modexp_workload(4096, 2, 11); }},
    };

    camp::bench::section(
        "Figure 2 (right): runtime breakdown on the CPU baseline");
    Table table({"app", "Multiply", "Add/Sub", "Shift", "OtherLowLvl",
                 "low-level total", "kernel ops", "GPU-model slowdown"});
    double sum_low = 0, sum_kernel = 0, sum_slowdown = 0;
    for (const auto& app : apps) {
        ProfileSession session;
        app.body();
        auto& profiler = Profiler::instance();
        const double total = profiler.total_seconds();
        auto share = [&](Category c) {
            return 100.0 * profiler.seconds(c) / total;
        };
        const double kernel = share(Category::KernelMul) +
                              share(Category::KernelAdd) +
                              share(Category::KernelShift);
        const double low = kernel + share(Category::LowLevelOther);
        const double gpu_s = gpu_model_seconds(profiler);
        const double slowdown = gpu_s / total;
        sum_low += low;
        sum_kernel += kernel;
        sum_slowdown += slowdown;
        char buf[6][32];
        std::snprintf(buf[0], 32, "%5.1f%%", share(Category::KernelMul));
        std::snprintf(buf[1], 32, "%5.1f%%", share(Category::KernelAdd));
        std::snprintf(buf[2], 32, "%5.1f%%",
                      share(Category::KernelShift));
        std::snprintf(buf[3], 32, "%5.1f%%",
                      share(Category::LowLevelOther));
        std::snprintf(buf[4], 32, "%5.1f%%", low);
        std::snprintf(buf[5], 32, "%5.1f%%", kernel);
        table.add_row({app.name, buf[0], buf[1], buf[2], buf[3], buf[4],
                       buf[5], Table::fmt(slowdown, 3) + "x"});
    }
    table.print();
    std::printf("\naverages: low-level %.1f%% (paper 97.8%%), kernel "
                "ops %.1f%% (paper 87.2%%), GPU-model slowdown %.1fx "
                "(paper 32.2x)\n",
                sum_low / apps.size(), sum_kernel / apps.size(),
                sum_slowdown / apps.size());
    return 0;
}
