/**
 * @file
 * trace_report: render a per-stage breakdown table — the software
 * analogue of the paper's Fig. 2 stage attribution — from a Chrome
 * tracing JSON produced by the CAMP_TRACE exporter
 * (support/trace.cpp).
 *
 *     CAMP_TRACE=out.json bench-artifacts/perf_smoke
 *     tools/trace_report out.json
 *
 * The parser is a scanner over our own exporter's fixed one-event-
 * per-line format (name/cat/tid/dur fields), not a general JSON
 * parser. Events aggregate by span name: count, total/mean/max
 * duration, share of the summed span time, and the set of threads
 * that emitted them. Spans nest (e.g. mpapca.mul_functional contains
 * sim.core.multiply contains mpn.mul), so shares are attribution
 * within a layer, not a partition of wall time.
 *
 * Spans carrying a "shard" argument (exec.shard.wave and friends from
 * exec::ShardedScheduler) additionally aggregate into a per-shard
 * table — waves, products, total/mean/max busy time and each shard's
 * share of the busiest shard — so wave imbalance across a
 * CAMP_SHARDS deployment is visible straight from a CAMP_TRACE
 * export.
 *
 * Spans named `serve.settle.<tenant>` (one per request the serving
 * front-end settles) aggregate into a serving-side table: per-tenant
 * settled/admitted/completed/shed/late/failed counts plus the
 * wall-vs-virtual completion skew ("skew_us" arg — identically zero
 * on a virtual-clock run, the reconciliation signal on a wall-clock
 * one).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

struct NameStats
{
    std::string cat;
    std::uint64_t count = 0;
    double total_us = 0;
    double max_us = 0;
    std::set<unsigned> tids;
};

/** Aggregate over every span that names a shard ordinal. */
struct ShardStats
{
    std::uint64_t spans = 0;    ///< shard-tagged spans (waves, drains)
    std::uint64_t products = 0; ///< sum of the spans' "count" args
    double total_us = 0;
    double max_us = 0;
};

/** Aggregate over one tenant's serve.settle.<tenant> spans. */
struct ServeTenantStats
{
    std::uint64_t settled = 0;
    std::uint64_t by_status[6] = {0, 0, 0, 0, 0, 0};
    double skew_sum_us = 0; ///< wall minus virtual settle stamp
    double skew_max_us = 0;
};

/** RequestStatus ordinals as the serve plane emits them in the
 * "status" span argument (serve/server.hpp). */
enum ServeStatus
{
    kCompleted = 0,
    kShedAdmission = 1,
    kShedEvicted = 2,
    kRejectedDeadline = 3,
    kTimedOut = 4,
    kFailed = 5,
};

/** Value of `"key": ` in @p line as a double, or @p fallback. */
double
field_number(const std::string& line, const char* key, double fallback)
{
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return fallback;
    return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

/** Value of `"key": "<string>"` in @p line, or empty. */
std::string
field_string(const std::string& line, const char* key)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return std::string();
    const std::size_t begin = pos + needle.size();
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return std::string();
    return line.substr(begin, end - begin);
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: trace_report <trace.json>\n"
                     "  (a file written via CAMP_TRACE=<path>)\n");
        return 2;
    }
    std::FILE* f = std::fopen(argv[1], "r");
    if (f == nullptr) {
        std::fprintf(stderr, "trace_report: cannot open %s\n", argv[1]);
        return 1;
    }

    std::map<std::string, NameStats> by_name;
    std::map<unsigned, ShardStats> by_shard;
    std::map<std::string, ServeTenantStats> by_tenant;
    std::uint64_t events = 0;
    char buf[4096];
    while (std::fgets(buf, sizeof buf, f) != nullptr) {
        const std::string line = buf;
        const std::string name = field_string(line, "name");
        if (name.empty())
            continue;
        const double dur_us = field_number(line, "dur", 0);
        NameStats& s = by_name[name];
        s.cat = field_string(line, "cat");
        ++s.count;
        s.total_us += dur_us;
        s.max_us = std::max(s.max_us, dur_us);
        s.tids.insert(
            static_cast<unsigned>(field_number(line, "tid", 0)));
        ++events;
        // Shard-tagged spans (exec.shard.wave etc.) also roll up by
        // shard ordinal so wave imbalance is visible per shard.
        const double shard = field_number(line, "shard", -1);
        if (shard >= 0) {
            ShardStats& sh = by_shard[static_cast<unsigned>(shard)];
            ++sh.spans;
            sh.products += static_cast<std::uint64_t>(
                field_number(line, "count", 0));
            sh.total_us += dur_us;
            sh.max_us = std::max(sh.max_us, dur_us);
        }
        // Settlement spans (serve.settle.<tenant>, one per request)
        // roll up into the serving-side table: per-tenant outcome
        // counts and the wall-vs-virtual completion skew.
        static const char kSettlePrefix[] = "serve.settle.";
        if (name.rfind(kSettlePrefix, 0) == 0) {
            ServeTenantStats& tenant =
                by_tenant[name.substr(sizeof kSettlePrefix - 1)];
            ++tenant.settled;
            const int status =
                static_cast<int>(field_number(line, "status", -1));
            if (status >= 0 && status < 6)
                ++tenant.by_status[status];
            const double skew = field_number(line, "skew_us", 0);
            tenant.skew_sum_us += skew;
            tenant.skew_max_us = std::max(tenant.skew_max_us, skew);
        }
    }
    std::fclose(f);
    if (events == 0) {
        std::fprintf(stderr, "trace_report: no events in %s\n",
                     argv[1]);
        return 1;
    }

    double grand_total_us = 0;
    for (const auto& [name, s] : by_name)
        grand_total_us += s.total_us;

    // Sort stages by total time, heaviest first.
    std::vector<const std::pair<const std::string, NameStats>*> order;
    order.reserve(by_name.size());
    for (const auto& entry : by_name)
        order.push_back(&entry);
    std::sort(order.begin(), order.end(), [](auto* a, auto* b) {
        return a->second.total_us > b->second.total_us;
    });

    std::printf("%llu events, %zu span names, %.3f ms total span "
                "time (spans nest; shares are per-layer attribution)\n\n",
                static_cast<unsigned long long>(events),
                by_name.size(), grand_total_us / 1e3);
    std::printf("%-28s %-8s %10s %12s %12s %12s %7s %5s\n", "span",
                "cat", "count", "total ms", "mean us", "max us",
                "share", "tids");
    for (const auto* entry : order) {
        const NameStats& s = entry->second;
        std::printf("%-28s %-8s %10llu %12.3f %12.3f %12.3f %6.1f%% "
                    "%5zu\n",
                    entry->first.c_str(), s.cat.c_str(),
                    static_cast<unsigned long long>(s.count),
                    s.total_us / 1e3,
                    s.total_us / static_cast<double>(s.count),
                    s.max_us, s.total_us / grand_total_us * 100.0,
                    s.tids.size());
    }

    if (!by_shard.empty()) {
        // Shard ordinals come from ShardedScheduler's span args; the
        // "of busiest" column is each shard's busy time relative to
        // the most loaded shard, so LPT imbalance reads directly.
        double busiest_us = 0;
        for (const auto& [ordinal, sh] : by_shard)
            busiest_us = std::max(busiest_us, sh.total_us);
        std::printf("\nper-shard wave breakdown (%zu shards; spans "
                    "carrying a \"shard\" arg)\n",
                    by_shard.size());
        std::printf("%-6s %10s %10s %12s %12s %12s %11s\n", "shard",
                    "spans", "products", "total ms", "mean us",
                    "max us", "of busiest");
        for (const auto& [ordinal, sh] : by_shard)
            std::printf("%-6u %10llu %10llu %12.3f %12.3f %12.3f "
                        "%10.1f%%\n",
                        ordinal,
                        static_cast<unsigned long long>(sh.spans),
                        static_cast<unsigned long long>(sh.products),
                        sh.total_us / 1e3,
                        sh.total_us /
                            static_cast<double>(sh.spans),
                        sh.max_us,
                        busiest_us > 0
                            ? sh.total_us / busiest_us * 100.0
                            : 0.0);
    }

    if (!by_tenant.empty()) {
        // One settle span per request, so these counts reproduce the
        // server's conservation ledger; "late" folds the two
        // deadline-driven dispositions (rejected + timed out), and
        // skew is wall-minus-virtual per settlement — identically 0
        // on a virtual-clock run.
        std::printf("\nserving settlements (%zu tenants; "
                    "serve.settle.* spans)\n",
                    by_tenant.size());
        std::printf("%-10s %8s %8s %9s %6s %6s %6s %12s %12s\n",
                    "tenant", "settled", "admitted", "completed",
                    "shed", "late", "failed", "mean skew us",
                    "max skew us");
        for (const auto& [name, t] : by_tenant) {
            const std::uint64_t admitted =
                t.settled - t.by_status[kShedAdmission] -
                t.by_status[kRejectedDeadline];
            std::printf(
                "%-10s %8llu %8llu %9llu %6llu %6llu %6llu "
                "%12.1f %12.1f\n",
                name.c_str(),
                static_cast<unsigned long long>(t.settled),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(
                    t.by_status[kCompleted]),
                static_cast<unsigned long long>(
                    t.by_status[kShedAdmission] +
                    t.by_status[kShedEvicted]),
                static_cast<unsigned long long>(
                    t.by_status[kRejectedDeadline] +
                    t.by_status[kTimedOut]),
                static_cast<unsigned long long>(
                    t.by_status[kFailed]),
                t.skew_sum_us / static_cast<double>(t.settled),
                t.skew_max_us);
        }
    }
    return 0;
}
