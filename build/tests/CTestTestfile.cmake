# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_mpn_basic[1]_include.cmake")
include("/root/repo/build/tests/test_mpn_mul[1]_include.cmake")
include("/root/repo/build/tests/test_mpn_div[1]_include.cmake")
include("/root/repo/build/tests/test_mpn_sqrt[1]_include.cmake")
include("/root/repo/build/tests/test_mpn_mont[1]_include.cmake")
include("/root/repo/build/tests/test_natural[1]_include.cmake")
include("/root/repo/build/tests/test_mpz[1]_include.cmake")
include("/root/repo/build/tests/test_mpq[1]_include.cmake")
include("/root/repo/build/tests/test_mpf[1]_include.cmake")
include("/root/repo/build/tests/test_sim_units[1]_include.cmake")
include("/root/repo/build/tests/test_sim_core[1]_include.cmake")
include("/root/repo/build/tests/test_cachesim[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_mpapca[1]_include.cmake")
include("/root/repo/build/tests/test_mpf_elementary[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_mpn_extra[1]_include.cmake")
include("/root/repo/build/tests/test_sim_batch[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
