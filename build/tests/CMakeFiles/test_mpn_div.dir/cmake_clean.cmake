file(REMOVE_RECURSE
  "CMakeFiles/test_mpn_div.dir/test_mpn_div.cpp.o"
  "CMakeFiles/test_mpn_div.dir/test_mpn_div.cpp.o.d"
  "test_mpn_div"
  "test_mpn_div.pdb"
  "test_mpn_div[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn_div.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
