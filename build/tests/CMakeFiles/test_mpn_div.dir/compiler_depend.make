# Empty compiler generated dependencies file for test_mpn_div.
# This may be replaced when dependencies are built.
