file(REMOVE_RECURSE
  "CMakeFiles/test_mpq.dir/test_mpq.cpp.o"
  "CMakeFiles/test_mpq.dir/test_mpq.cpp.o.d"
  "test_mpq"
  "test_mpq.pdb"
  "test_mpq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
