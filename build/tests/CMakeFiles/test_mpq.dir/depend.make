# Empty dependencies file for test_mpq.
# This may be replaced when dependencies are built.
