# Empty compiler generated dependencies file for test_mpf.
# This may be replaced when dependencies are built.
