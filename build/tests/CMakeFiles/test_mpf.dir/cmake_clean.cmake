file(REMOVE_RECURSE
  "CMakeFiles/test_mpf.dir/test_mpf.cpp.o"
  "CMakeFiles/test_mpf.dir/test_mpf.cpp.o.d"
  "test_mpf"
  "test_mpf.pdb"
  "test_mpf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
