file(REMOVE_RECURSE
  "CMakeFiles/test_mpz.dir/test_mpz.cpp.o"
  "CMakeFiles/test_mpz.dir/test_mpz.cpp.o.d"
  "test_mpz"
  "test_mpz.pdb"
  "test_mpz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
