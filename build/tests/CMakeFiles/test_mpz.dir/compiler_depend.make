# Empty compiler generated dependencies file for test_mpz.
# This may be replaced when dependencies are built.
