file(REMOVE_RECURSE
  "CMakeFiles/test_mpn_extra.dir/test_mpn_extra.cpp.o"
  "CMakeFiles/test_mpn_extra.dir/test_mpn_extra.cpp.o.d"
  "test_mpn_extra"
  "test_mpn_extra.pdb"
  "test_mpn_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
