# Empty dependencies file for test_mpn_extra.
# This may be replaced when dependencies are built.
