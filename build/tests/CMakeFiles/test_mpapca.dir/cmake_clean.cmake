file(REMOVE_RECURSE
  "CMakeFiles/test_mpapca.dir/test_mpapca.cpp.o"
  "CMakeFiles/test_mpapca.dir/test_mpapca.cpp.o.d"
  "test_mpapca"
  "test_mpapca.pdb"
  "test_mpapca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpapca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
