# Empty compiler generated dependencies file for test_mpapca.
# This may be replaced when dependencies are built.
