file(REMOVE_RECURSE
  "CMakeFiles/test_sim_batch.dir/test_sim_batch.cpp.o"
  "CMakeFiles/test_sim_batch.dir/test_sim_batch.cpp.o.d"
  "test_sim_batch"
  "test_sim_batch.pdb"
  "test_sim_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
