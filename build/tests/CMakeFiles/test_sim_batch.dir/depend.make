# Empty dependencies file for test_sim_batch.
# This may be replaced when dependencies are built.
