# Empty dependencies file for test_mpf_elementary.
# This may be replaced when dependencies are built.
