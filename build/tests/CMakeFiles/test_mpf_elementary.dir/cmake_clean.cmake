file(REMOVE_RECURSE
  "CMakeFiles/test_mpf_elementary.dir/test_mpf_elementary.cpp.o"
  "CMakeFiles/test_mpf_elementary.dir/test_mpf_elementary.cpp.o.d"
  "test_mpf_elementary"
  "test_mpf_elementary.pdb"
  "test_mpf_elementary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpf_elementary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
