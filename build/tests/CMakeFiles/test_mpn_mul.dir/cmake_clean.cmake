file(REMOVE_RECURSE
  "CMakeFiles/test_mpn_mul.dir/test_mpn_mul.cpp.o"
  "CMakeFiles/test_mpn_mul.dir/test_mpn_mul.cpp.o.d"
  "test_mpn_mul"
  "test_mpn_mul.pdb"
  "test_mpn_mul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
