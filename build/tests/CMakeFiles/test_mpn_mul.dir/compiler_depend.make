# Empty compiler generated dependencies file for test_mpn_mul.
# This may be replaced when dependencies are built.
