file(REMOVE_RECURSE
  "CMakeFiles/test_mpn_sqrt.dir/test_mpn_sqrt.cpp.o"
  "CMakeFiles/test_mpn_sqrt.dir/test_mpn_sqrt.cpp.o.d"
  "test_mpn_sqrt"
  "test_mpn_sqrt.pdb"
  "test_mpn_sqrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn_sqrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
