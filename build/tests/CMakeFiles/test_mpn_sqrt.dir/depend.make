# Empty dependencies file for test_mpn_sqrt.
# This may be replaced when dependencies are built.
