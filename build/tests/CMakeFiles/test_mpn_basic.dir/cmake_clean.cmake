file(REMOVE_RECURSE
  "CMakeFiles/test_mpn_basic.dir/test_mpn_basic.cpp.o"
  "CMakeFiles/test_mpn_basic.dir/test_mpn_basic.cpp.o.d"
  "test_mpn_basic"
  "test_mpn_basic.pdb"
  "test_mpn_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
