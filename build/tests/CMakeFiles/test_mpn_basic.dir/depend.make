# Empty dependencies file for test_mpn_basic.
# This may be replaced when dependencies are built.
