# Empty dependencies file for test_mpn_mont.
# This may be replaced when dependencies are built.
