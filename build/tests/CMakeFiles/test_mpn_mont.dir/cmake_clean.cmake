file(REMOVE_RECURSE
  "CMakeFiles/test_mpn_mont.dir/test_mpn_mont.cpp.o"
  "CMakeFiles/test_mpn_mont.dir/test_mpn_mont.cpp.o.d"
  "test_mpn_mont"
  "test_mpn_mont.pdb"
  "test_mpn_mont[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpn_mont.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
