file(REMOVE_RECURSE
  "CMakeFiles/test_natural.dir/test_natural.cpp.o"
  "CMakeFiles/test_natural.dir/test_natural.cpp.o.d"
  "test_natural"
  "test_natural.pdb"
  "test_natural[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_natural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
