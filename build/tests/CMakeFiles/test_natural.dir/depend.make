# Empty dependencies file for test_natural.
# This may be replaced when dependencies are built.
