# Empty dependencies file for pi_digits.
# This may be replaced when dependencies are built.
