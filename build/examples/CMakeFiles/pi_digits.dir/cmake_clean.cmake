file(REMOVE_RECURSE
  "CMakeFiles/pi_digits.dir/pi_digits.cpp.o"
  "CMakeFiles/pi_digits.dir/pi_digits.cpp.o.d"
  "pi_digits"
  "pi_digits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_digits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
