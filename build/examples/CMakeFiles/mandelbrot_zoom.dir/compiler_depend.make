# Empty compiler generated dependencies file for mandelbrot_zoom.
# This may be replaced when dependencies are built.
