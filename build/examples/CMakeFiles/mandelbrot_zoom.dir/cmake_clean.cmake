file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot_zoom.dir/mandelbrot_zoom.cpp.o"
  "CMakeFiles/mandelbrot_zoom.dir/mandelbrot_zoom.cpp.o.d"
  "mandelbrot_zoom"
  "mandelbrot_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
