file(REMOVE_RECURSE
  "CMakeFiles/rsa_demo.dir/rsa_demo.cpp.o"
  "CMakeFiles/rsa_demo.dir/rsa_demo.cpp.o.d"
  "rsa_demo"
  "rsa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
