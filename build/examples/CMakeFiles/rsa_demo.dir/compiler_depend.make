# Empty compiler generated dependencies file for rsa_demo.
# This may be replaced when dependencies are built.
