# Empty dependencies file for nbody_energy.
# This may be replaced when dependencies are built.
