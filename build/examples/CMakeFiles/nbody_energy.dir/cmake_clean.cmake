file(REMOVE_RECURSE
  "CMakeFiles/nbody_energy.dir/nbody_energy.cpp.o"
  "CMakeFiles/nbody_energy.dir/nbody_energy.cpp.o.d"
  "nbody_energy"
  "nbody_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
