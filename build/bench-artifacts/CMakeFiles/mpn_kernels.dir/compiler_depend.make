# Empty compiler generated dependencies file for mpn_kernels.
# This may be replaced when dependencies are built.
