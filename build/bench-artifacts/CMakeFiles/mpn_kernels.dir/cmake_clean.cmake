file(REMOVE_RECURSE
  "../bench/mpn_kernels"
  "../bench/mpn_kernels.pdb"
  "CMakeFiles/mpn_kernels.dir/mpn_kernels.cpp.o"
  "CMakeFiles/mpn_kernels.dir/mpn_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpn_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
