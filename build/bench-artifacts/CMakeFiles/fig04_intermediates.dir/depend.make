# Empty dependencies file for fig04_intermediates.
# This may be replaced when dependencies are built.
