file(REMOVE_RECURSE
  "../bench/fig04_intermediates"
  "../bench/fig04_intermediates.pdb"
  "CMakeFiles/fig04_intermediates.dir/fig04_intermediates.cpp.o"
  "CMakeFiles/fig04_intermediates.dir/fig04_intermediates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_intermediates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
