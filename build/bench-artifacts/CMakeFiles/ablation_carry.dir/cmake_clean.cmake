file(REMOVE_RECURSE
  "../bench/ablation_carry"
  "../bench/ablation_carry.pdb"
  "CMakeFiles/ablation_carry.dir/ablation_carry.cpp.o"
  "CMakeFiles/ablation_carry.dir/ablation_carry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_carry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
