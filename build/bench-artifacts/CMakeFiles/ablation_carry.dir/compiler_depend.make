# Empty compiler generated dependencies file for ablation_carry.
# This may be replaced when dependencies are built.
