file(REMOVE_RECURSE
  "../bench/ablation_gu_modes"
  "../bench/ablation_gu_modes.pdb"
  "CMakeFiles/ablation_gu_modes.dir/ablation_gu_modes.cpp.o"
  "CMakeFiles/ablation_gu_modes.dir/ablation_gu_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gu_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
