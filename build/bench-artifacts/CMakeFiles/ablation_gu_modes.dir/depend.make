# Empty dependencies file for ablation_gu_modes.
# This may be replaced when dependencies are built.
