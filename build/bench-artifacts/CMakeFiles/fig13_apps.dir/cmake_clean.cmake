file(REMOVE_RECURSE
  "../bench/fig13_apps"
  "../bench/fig13_apps.pdb"
  "CMakeFiles/fig13_apps.dir/fig13_apps.cpp.o"
  "CMakeFiles/fig13_apps.dir/fig13_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
