# Empty compiler generated dependencies file for fig13_apps.
# This may be replaced when dependencies are built.
