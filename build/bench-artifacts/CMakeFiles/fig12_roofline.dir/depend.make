# Empty dependencies file for fig12_roofline.
# This may be replaced when dependencies are built.
