file(REMOVE_RECURSE
  "../bench/fig12_roofline"
  "../bench/fig12_roofline.pdb"
  "CMakeFiles/fig12_roofline.dir/fig12_roofline.cpp.o"
  "CMakeFiles/fig12_roofline.dir/fig12_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
