file(REMOVE_RECURSE
  "../bench/ablation_bips"
  "../bench/ablation_bips.pdb"
  "CMakeFiles/ablation_bips.dir/ablation_bips.cpp.o"
  "CMakeFiles/ablation_bips.dir/ablation_bips.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
