# Empty compiler generated dependencies file for ablation_bips.
# This may be replaced when dependencies are built.
