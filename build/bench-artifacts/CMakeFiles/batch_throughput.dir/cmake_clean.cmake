file(REMOVE_RECURSE
  "../bench/batch_throughput"
  "../bench/batch_throughput.pdb"
  "CMakeFiles/batch_throughput.dir/batch_throughput.cpp.o"
  "CMakeFiles/batch_throughput.dir/batch_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
