# Empty dependencies file for batch_throughput.
# This may be replaced when dependencies are built.
