file(REMOVE_RECURSE
  "libcamp_mpf.a"
)
