file(REMOVE_RECURSE
  "CMakeFiles/camp_mpf.dir/elementary.cpp.o"
  "CMakeFiles/camp_mpf.dir/elementary.cpp.o.d"
  "CMakeFiles/camp_mpf.dir/float.cpp.o"
  "CMakeFiles/camp_mpf.dir/float.cpp.o.d"
  "libcamp_mpf.a"
  "libcamp_mpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_mpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
