# Empty compiler generated dependencies file for camp_mpf.
# This may be replaced when dependencies are built.
