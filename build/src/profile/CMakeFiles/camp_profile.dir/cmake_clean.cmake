file(REMOVE_RECURSE
  "CMakeFiles/camp_profile.dir/profiler.cpp.o"
  "CMakeFiles/camp_profile.dir/profiler.cpp.o.d"
  "libcamp_profile.a"
  "libcamp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
