file(REMOVE_RECURSE
  "libcamp_profile.a"
)
