# Empty dependencies file for camp_profile.
# This may be replaced when dependencies are built.
