# Empty compiler generated dependencies file for camp_sim.
# This may be replaced when dependencies are built.
