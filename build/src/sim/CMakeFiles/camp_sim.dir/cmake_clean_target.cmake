file(REMOVE_RECURSE
  "libcamp_sim.a"
)
