
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytic_model.cpp" "src/sim/CMakeFiles/camp_sim.dir/analytic_model.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/analytic_model.cpp.o.d"
  "/root/repo/src/sim/batch.cpp" "src/sim/CMakeFiles/camp_sim.dir/batch.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/batch.cpp.o.d"
  "/root/repo/src/sim/comparators.cpp" "src/sim/CMakeFiles/camp_sim.dir/comparators.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/comparators.cpp.o.d"
  "/root/repo/src/sim/controller.cpp" "src/sim/CMakeFiles/camp_sim.dir/controller.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/controller.cpp.o.d"
  "/root/repo/src/sim/converter.cpp" "src/sim/CMakeFiles/camp_sim.dir/converter.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/converter.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/camp_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/gather_unit.cpp" "src/sim/CMakeFiles/camp_sim.dir/gather_unit.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/gather_unit.cpp.o.d"
  "/root/repo/src/sim/ipu.cpp" "src/sim/CMakeFiles/camp_sim.dir/ipu.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/ipu.cpp.o.d"
  "/root/repo/src/sim/stream_sim.cpp" "src/sim/CMakeFiles/camp_sim.dir/stream_sim.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/stream_sim.cpp.o.d"
  "/root/repo/src/sim/tech_model.cpp" "src/sim/CMakeFiles/camp_sim.dir/tech_model.cpp.o" "gcc" "src/sim/CMakeFiles/camp_sim.dir/tech_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpn/CMakeFiles/camp_mpn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/camp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
