file(REMOVE_RECURSE
  "CMakeFiles/camp_sim.dir/analytic_model.cpp.o"
  "CMakeFiles/camp_sim.dir/analytic_model.cpp.o.d"
  "CMakeFiles/camp_sim.dir/batch.cpp.o"
  "CMakeFiles/camp_sim.dir/batch.cpp.o.d"
  "CMakeFiles/camp_sim.dir/comparators.cpp.o"
  "CMakeFiles/camp_sim.dir/comparators.cpp.o.d"
  "CMakeFiles/camp_sim.dir/controller.cpp.o"
  "CMakeFiles/camp_sim.dir/controller.cpp.o.d"
  "CMakeFiles/camp_sim.dir/converter.cpp.o"
  "CMakeFiles/camp_sim.dir/converter.cpp.o.d"
  "CMakeFiles/camp_sim.dir/core.cpp.o"
  "CMakeFiles/camp_sim.dir/core.cpp.o.d"
  "CMakeFiles/camp_sim.dir/gather_unit.cpp.o"
  "CMakeFiles/camp_sim.dir/gather_unit.cpp.o.d"
  "CMakeFiles/camp_sim.dir/ipu.cpp.o"
  "CMakeFiles/camp_sim.dir/ipu.cpp.o.d"
  "CMakeFiles/camp_sim.dir/stream_sim.cpp.o"
  "CMakeFiles/camp_sim.dir/stream_sim.cpp.o.d"
  "CMakeFiles/camp_sim.dir/tech_model.cpp.o"
  "CMakeFiles/camp_sim.dir/tech_model.cpp.o.d"
  "libcamp_sim.a"
  "libcamp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
