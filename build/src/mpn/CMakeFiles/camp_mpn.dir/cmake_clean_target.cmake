file(REMOVE_RECURSE
  "libcamp_mpn.a"
)
