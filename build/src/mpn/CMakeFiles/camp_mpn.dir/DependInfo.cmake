
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpn/basic.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/basic.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/basic.cpp.o.d"
  "/root/repo/src/mpn/div.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/div.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/div.cpp.o.d"
  "/root/repo/src/mpn/extra.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/extra.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/extra.cpp.o.d"
  "/root/repo/src/mpn/mont.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/mont.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/mont.cpp.o.d"
  "/root/repo/src/mpn/mul_basecase.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/mul_basecase.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/mul_basecase.cpp.o.d"
  "/root/repo/src/mpn/mul_dispatch.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/mul_dispatch.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/mul_dispatch.cpp.o.d"
  "/root/repo/src/mpn/mul_karatsuba.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/mul_karatsuba.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/mul_karatsuba.cpp.o.d"
  "/root/repo/src/mpn/mul_ssa.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/mul_ssa.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/mul_ssa.cpp.o.d"
  "/root/repo/src/mpn/mul_toom.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/mul_toom.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/mul_toom.cpp.o.d"
  "/root/repo/src/mpn/natural.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/natural.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/natural.cpp.o.d"
  "/root/repo/src/mpn/newton.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/newton.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/newton.cpp.o.d"
  "/root/repo/src/mpn/ophook.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/ophook.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/ophook.cpp.o.d"
  "/root/repo/src/mpn/sqrt.cpp" "src/mpn/CMakeFiles/camp_mpn.dir/sqrt.cpp.o" "gcc" "src/mpn/CMakeFiles/camp_mpn.dir/sqrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/camp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
