# Empty dependencies file for camp_mpn.
# This may be replaced when dependencies are built.
