file(REMOVE_RECURSE
  "CMakeFiles/camp_mpn.dir/basic.cpp.o"
  "CMakeFiles/camp_mpn.dir/basic.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/div.cpp.o"
  "CMakeFiles/camp_mpn.dir/div.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/extra.cpp.o"
  "CMakeFiles/camp_mpn.dir/extra.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/mont.cpp.o"
  "CMakeFiles/camp_mpn.dir/mont.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/mul_basecase.cpp.o"
  "CMakeFiles/camp_mpn.dir/mul_basecase.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/mul_dispatch.cpp.o"
  "CMakeFiles/camp_mpn.dir/mul_dispatch.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/mul_karatsuba.cpp.o"
  "CMakeFiles/camp_mpn.dir/mul_karatsuba.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/mul_ssa.cpp.o"
  "CMakeFiles/camp_mpn.dir/mul_ssa.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/mul_toom.cpp.o"
  "CMakeFiles/camp_mpn.dir/mul_toom.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/natural.cpp.o"
  "CMakeFiles/camp_mpn.dir/natural.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/newton.cpp.o"
  "CMakeFiles/camp_mpn.dir/newton.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/ophook.cpp.o"
  "CMakeFiles/camp_mpn.dir/ophook.cpp.o.d"
  "CMakeFiles/camp_mpn.dir/sqrt.cpp.o"
  "CMakeFiles/camp_mpn.dir/sqrt.cpp.o.d"
  "libcamp_mpn.a"
  "libcamp_mpn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_mpn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
