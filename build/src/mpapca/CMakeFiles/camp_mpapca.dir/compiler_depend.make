# Empty compiler generated dependencies file for camp_mpapca.
# This may be replaced when dependencies are built.
