
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpapca/cost_model.cpp" "src/mpapca/CMakeFiles/camp_mpapca.dir/cost_model.cpp.o" "gcc" "src/mpapca/CMakeFiles/camp_mpapca.dir/cost_model.cpp.o.d"
  "/root/repo/src/mpapca/ledger.cpp" "src/mpapca/CMakeFiles/camp_mpapca.dir/ledger.cpp.o" "gcc" "src/mpapca/CMakeFiles/camp_mpapca.dir/ledger.cpp.o.d"
  "/root/repo/src/mpapca/runtime.cpp" "src/mpapca/CMakeFiles/camp_mpapca.dir/runtime.cpp.o" "gcc" "src/mpapca/CMakeFiles/camp_mpapca.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/camp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/camp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/mpn/CMakeFiles/camp_mpn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/camp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
