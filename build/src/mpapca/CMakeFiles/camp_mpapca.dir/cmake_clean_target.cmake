file(REMOVE_RECURSE
  "libcamp_mpapca.a"
)
