file(REMOVE_RECURSE
  "CMakeFiles/camp_mpapca.dir/cost_model.cpp.o"
  "CMakeFiles/camp_mpapca.dir/cost_model.cpp.o.d"
  "CMakeFiles/camp_mpapca.dir/ledger.cpp.o"
  "CMakeFiles/camp_mpapca.dir/ledger.cpp.o.d"
  "CMakeFiles/camp_mpapca.dir/runtime.cpp.o"
  "CMakeFiles/camp_mpapca.dir/runtime.cpp.o.d"
  "libcamp_mpapca.a"
  "libcamp_mpapca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_mpapca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
