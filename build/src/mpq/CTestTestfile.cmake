# CMake generated Testfile for 
# Source directory: /root/repo/src/mpq
# Build directory: /root/repo/build/src/mpq
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
