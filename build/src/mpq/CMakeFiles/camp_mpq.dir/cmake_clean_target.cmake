file(REMOVE_RECURSE
  "libcamp_mpq.a"
)
