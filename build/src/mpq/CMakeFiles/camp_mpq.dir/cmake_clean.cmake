file(REMOVE_RECURSE
  "CMakeFiles/camp_mpq.dir/rational.cpp.o"
  "CMakeFiles/camp_mpq.dir/rational.cpp.o.d"
  "libcamp_mpq.a"
  "libcamp_mpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_mpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
