# Empty compiler generated dependencies file for camp_mpq.
# This may be replaced when dependencies are built.
