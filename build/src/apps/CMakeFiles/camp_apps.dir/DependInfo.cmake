
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/frac/mandelbrot.cpp" "src/apps/CMakeFiles/camp_apps.dir/frac/mandelbrot.cpp.o" "gcc" "src/apps/CMakeFiles/camp_apps.dir/frac/mandelbrot.cpp.o.d"
  "/root/repo/src/apps/nbody/nbody.cpp" "src/apps/CMakeFiles/camp_apps.dir/nbody/nbody.cpp.o" "gcc" "src/apps/CMakeFiles/camp_apps.dir/nbody/nbody.cpp.o.d"
  "/root/repo/src/apps/pi/chudnovsky.cpp" "src/apps/CMakeFiles/camp_apps.dir/pi/chudnovsky.cpp.o" "gcc" "src/apps/CMakeFiles/camp_apps.dir/pi/chudnovsky.cpp.o.d"
  "/root/repo/src/apps/rsa/rsa.cpp" "src/apps/CMakeFiles/camp_apps.dir/rsa/rsa.cpp.o" "gcc" "src/apps/CMakeFiles/camp_apps.dir/rsa/rsa.cpp.o.d"
  "/root/repo/src/apps/zkcm/statevector.cpp" "src/apps/CMakeFiles/camp_apps.dir/zkcm/statevector.cpp.o" "gcc" "src/apps/CMakeFiles/camp_apps.dir/zkcm/statevector.cpp.o.d"
  "/root/repo/src/apps/zkcm/zkcm.cpp" "src/apps/CMakeFiles/camp_apps.dir/zkcm/zkcm.cpp.o" "gcc" "src/apps/CMakeFiles/camp_apps.dir/zkcm/zkcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpz/CMakeFiles/camp_mpz.dir/DependInfo.cmake"
  "/root/repo/build/src/mpf/CMakeFiles/camp_mpf.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/camp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/mpn/CMakeFiles/camp_mpn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/camp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
