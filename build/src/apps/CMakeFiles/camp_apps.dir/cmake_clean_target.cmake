file(REMOVE_RECURSE
  "libcamp_apps.a"
)
