# Empty compiler generated dependencies file for camp_apps.
# This may be replaced when dependencies are built.
