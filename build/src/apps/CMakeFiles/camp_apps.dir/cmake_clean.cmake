file(REMOVE_RECURSE
  "CMakeFiles/camp_apps.dir/frac/mandelbrot.cpp.o"
  "CMakeFiles/camp_apps.dir/frac/mandelbrot.cpp.o.d"
  "CMakeFiles/camp_apps.dir/nbody/nbody.cpp.o"
  "CMakeFiles/camp_apps.dir/nbody/nbody.cpp.o.d"
  "CMakeFiles/camp_apps.dir/pi/chudnovsky.cpp.o"
  "CMakeFiles/camp_apps.dir/pi/chudnovsky.cpp.o.d"
  "CMakeFiles/camp_apps.dir/rsa/rsa.cpp.o"
  "CMakeFiles/camp_apps.dir/rsa/rsa.cpp.o.d"
  "CMakeFiles/camp_apps.dir/zkcm/statevector.cpp.o"
  "CMakeFiles/camp_apps.dir/zkcm/statevector.cpp.o.d"
  "CMakeFiles/camp_apps.dir/zkcm/zkcm.cpp.o"
  "CMakeFiles/camp_apps.dir/zkcm/zkcm.cpp.o.d"
  "libcamp_apps.a"
  "libcamp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
