# Empty dependencies file for camp_mpz.
# This may be replaced when dependencies are built.
