
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpz/integer.cpp" "src/mpz/CMakeFiles/camp_mpz.dir/integer.cpp.o" "gcc" "src/mpz/CMakeFiles/camp_mpz.dir/integer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpn/CMakeFiles/camp_mpn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/camp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
