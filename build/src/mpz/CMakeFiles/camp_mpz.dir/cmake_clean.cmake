file(REMOVE_RECURSE
  "CMakeFiles/camp_mpz.dir/integer.cpp.o"
  "CMakeFiles/camp_mpz.dir/integer.cpp.o.d"
  "libcamp_mpz.a"
  "libcamp_mpz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_mpz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
