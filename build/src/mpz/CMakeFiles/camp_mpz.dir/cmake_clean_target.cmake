file(REMOVE_RECURSE
  "libcamp_mpz.a"
)
