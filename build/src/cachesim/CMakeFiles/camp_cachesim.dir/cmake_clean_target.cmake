file(REMOVE_RECURSE
  "libcamp_cachesim.a"
)
