# Empty dependencies file for camp_cachesim.
# This may be replaced when dependencies are built.
