file(REMOVE_RECURSE
  "CMakeFiles/camp_cachesim.dir/cache.cpp.o"
  "CMakeFiles/camp_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/camp_cachesim.dir/traces.cpp.o"
  "CMakeFiles/camp_cachesim.dir/traces.cpp.o.d"
  "libcamp_cachesim.a"
  "libcamp_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
