file(REMOVE_RECURSE
  "libcamp_support.a"
)
