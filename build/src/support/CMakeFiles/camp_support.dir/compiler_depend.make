# Empty compiler generated dependencies file for camp_support.
# This may be replaced when dependencies are built.
