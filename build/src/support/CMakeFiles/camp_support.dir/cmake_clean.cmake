file(REMOVE_RECURSE
  "CMakeFiles/camp_support.dir/table.cpp.o"
  "CMakeFiles/camp_support.dir/table.cpp.o.d"
  "libcamp_support.a"
  "libcamp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
