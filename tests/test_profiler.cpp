/**
 * @file
 * Profiler tests: category attribution is exclusive, kernel operations
 * from Natural are captured through the op-hook, and the histogram
 * aggregates sizes.
 */
#include <gtest/gtest.h>

#include "mpn/natural.hpp"
#include "profile/profiler.hpp"
#include "support/rng.hpp"

using camp::mpn::Natural;
using camp::mpn::OpKind;
using namespace camp::profile;

TEST(Profiler, CategoriesOfOpKinds)
{
    EXPECT_EQ(category_of(OpKind::Mul), Category::KernelMul);
    EXPECT_EQ(category_of(OpKind::Sqr), Category::KernelMul);
    EXPECT_EQ(category_of(OpKind::Add), Category::KernelAdd);
    EXPECT_EQ(category_of(OpKind::Sub), Category::KernelAdd);
    EXPECT_EQ(category_of(OpKind::Shift), Category::KernelShift);
    EXPECT_EQ(category_of(OpKind::Div), Category::LowLevelOther);
    EXPECT_EQ(category_of(OpKind::Sqrt), Category::LowLevelOther);
}

TEST(Profiler, CapturesKernelOpsViaHook)
{
    ProfileSession session;
    camp::Rng rng(111);
    const Natural a = Natural::random_bits(rng, 50000);
    const Natural b = Natural::random_bits(rng, 50000);
    Natural c;
    for (int i = 0; i < 5; ++i)
        c = a * b;
    auto& profiler = Profiler::instance();
    EXPECT_EQ(profiler.calls(Category::KernelMul), 5u);
    EXPECT_GT(profiler.seconds(Category::KernelMul), 0.0);
    // Multiplication dominated this workload.
    EXPECT_GT(profiler.seconds(Category::KernelMul),
              0.5 * profiler.total_seconds());
}

TEST(Profiler, ExclusiveAttributionForNestedScopes)
{
    ProfileSession session;
    auto& profiler = Profiler::instance();
    {
        CategoryScope outer(Category::Auxiliary);
        camp::Rng rng(112);
        const Natural a = Natural::random_bits(rng, 20000);
        const Natural b = Natural::random_bits(rng, 20000);
        const Natural c = a * b; // attributed to KernelMul, not Auxiliary
        (void)c;
    }
    EXPECT_GT(profiler.seconds(Category::KernelMul), 0.0);
    EXPECT_EQ(profiler.calls(Category::Auxiliary), 1u);
}

TEST(Profiler, HistogramAggregatesBySizeBucket)
{
    ProfileSession session;
    camp::Rng rng(113);
    const Natural a = Natural::random_bits(rng, 1000);
    const Natural b = Natural::random_bits(rng, 1000);
    for (int i = 0; i < 3; ++i) {
        const Natural c = a * b;
        (void)c;
    }
    const auto& hist = Profiler::instance().histogram();
    // bucket = floor(log2(1000)) = 9.
    const auto it = hist.find({OpKind::Mul, 9});
    ASSERT_NE(it, hist.end());
    EXPECT_EQ(it->second.count, 3u);
    EXPECT_DOUBLE_EQ(it->second.sum_bits_a, 3000.0);
}

TEST(Profiler, BreakdownTableRendersAllCategories)
{
    ProfileSession session;
    const std::string table =
        Profiler::instance().breakdown_table("unit-test");
    EXPECT_NE(table.find("Multiply"), std::string::npos);
    EXPECT_NE(table.find("Auxiliary"), std::string::npos);
    EXPECT_NE(table.find("unit-test"), std::string::npos);
}

TEST(Profiler, NoHooksMeansNoOverheadPath)
{
    // With no session active, Natural ops run with hooks disabled.
    EXPECT_FALSE(camp::mpn::op_hooks_active());
    camp::Rng rng(114);
    const Natural a = Natural::random_bits(rng, 100);
    const Natural b = a * a;
    EXPECT_FALSE(b.is_zero());
    {
        ProfileSession session;
        EXPECT_TRUE(camp::mpn::op_hooks_active());
    }
    EXPECT_FALSE(camp::mpn::op_hooks_active());
}
