/**
 * @file
 * Execution-plane tests: the device registry (built-ins, duplicates,
 * unknown names, CAMP_BACKEND), cross-backend bit-identity of products
 * (fuzzed), per-device tuning, the self-checking decorator's
 * retry/fallback policy against a deterministic flaky device, and the
 * coalescing submission queue (edge cases, flush semantics, and the
 * batch-coalescing cycle win).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/checked.hpp"
#include "exec/cpu_device.hpp"
#include "exec/device.hpp"
#include "exec/queue.hpp"
#include "exec/registry.hpp"
#include "exec/sim_device.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace exec = camp::exec;
namespace sim = camp::sim;
using camp::mpn::Natural;
using camp::mpapca::Backend;
using camp::mpapca::Runtime;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** Deterministically wrong device: the first @p failures mul() calls
 * return an off-by-one product (reporting one injected fault each),
 * later calls are exact. */
class FlakyDevice : public exec::Device
{
  public:
    explicit FlakyDevice(unsigned failures) : fail_remaining_(failures)
    {
    }

    const char* name() const override { return "flaky"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural& a, const Natural& b) override
    {
        ++calls_;
        Natural product = a * b;
        if (fail_remaining_ > 0) {
            --fail_remaining_;
            return exec::MulOutcome{product + Natural(1), 1};
        }
        return exec::MulOutcome{std::move(product), 0};
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              unsigned) override
    {
        sim::BatchResult result;
        for (const auto& [a, b] : pairs)
            result.products.push_back(a * b);
        result.per_product.resize(pairs.size());
        return result;
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return {};
    }

    unsigned calls() const { return calls_; }

  private:
    unsigned fail_remaining_;
    unsigned calls_ = 0;
};

} // namespace

TEST(DeviceRegistry, BuiltinsAreRegistered)
{
    exec::DeviceRegistry& registry = exec::DeviceRegistry::instance();
    for (const char* name : {"cpu", "sim", "analytic"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        const auto device = registry.create(name);
        ASSERT_NE(device, nullptr);
        EXPECT_STREQ(device->name(), name);
    }
    EXPECT_FALSE(registry.contains("gpu"));
}

TEST(DeviceRegistry, UnknownNameThrowsWithAvailableList)
{
    try {
        exec::make_device("not-a-backend");
        FAIL() << "expected camp::InvalidArgument";
    } catch (const camp::InvalidArgument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("not-a-backend"), std::string::npos);
        EXPECT_NE(what.find("cpu"), std::string::npos);
        EXPECT_NE(what.find("sim"), std::string::npos);
    }
}

TEST(DeviceRegistry, DuplicateAndDegenerateRegistrationsRejected)
{
    exec::DeviceRegistry& registry = exec::DeviceRegistry::instance();
    EXPECT_THROW(registry.add("cpu",
                              [](const sim::SimConfig& config) {
                                  return std::make_unique<
                                      exec::CpuDevice>(config);
                              }),
                 camp::InvalidArgument);
    EXPECT_THROW(registry.add("", [](const sim::SimConfig& config) {
        return std::make_unique<exec::CpuDevice>(config);
    }),
                 camp::InvalidArgument);
    EXPECT_THROW(registry.add("null-factory", exec::DeviceFactory{}),
                 camp::InvalidArgument);
}

TEST(DeviceRegistry, CustomBackendRoundTrips)
{
    exec::DeviceRegistry& registry = exec::DeviceRegistry::instance();
    registry.add("test-flaky", [](const sim::SimConfig&) {
        return std::make_unique<FlakyDevice>(0);
    });
    EXPECT_TRUE(registry.contains("test-flaky"));
    const auto device = registry.create("test-flaky");
    EXPECT_STREQ(device->name(), "flaky");
}

TEST(DeviceRegistry, EnvSelectsDefaultBackend)
{
    ::unsetenv("CAMP_BACKEND");
    EXPECT_EQ(exec::default_device_name(), "cpu");
    EXPECT_EQ(exec::default_device_name("sim"), "sim");
    ::setenv("CAMP_BACKEND", "analytic", 1);
    EXPECT_EQ(exec::default_device_name(), "analytic");
    EXPECT_EQ(exec::default_device_name("sim"), "analytic");
    ::unsetenv("CAMP_BACKEND");
}

TEST(DeviceTuning, RetunedThresholdsMatchDecompositionPolicy)
{
    // At the paper's 35904-bit base case the first software algorithm
    // engages exactly above the cap and Toom-3 exactly above six caps
    // (the seed decomposition policy), in monotone order.
    const camp::mpn::MulTuning t = exec::retuned_for_cap(35904);
    EXPECT_EQ(t.karatsuba * 64, 35904u);
    EXPECT_EQ(t.toom3 * 64, 6u * 35904u);
    EXPECT_TRUE(camp::mpn::mul_tuning_monotone(t));
}

TEST(DeviceTuning, PerDeviceEnvOverridesApply)
{
    ::setenv("CAMP_TESTDEV_MUL_THRESH_TOOM3", "1234", 1);
    ::setenv("CAMP_TESTDEV_MUL_THRESH_PARALLEL", "99", 1);
    camp::mpn::MulTuning base;
    const camp::mpn::MulTuning tuned =
        exec::apply_device_env_tuning("testdev", base);
    EXPECT_EQ(tuned.toom3, 1234u);
    EXPECT_EQ(tuned.parallel, 99u);
    EXPECT_EQ(tuned.karatsuba, base.karatsuba) << "untouched fields";
    // Another device name sees none of it.
    const camp::mpn::MulTuning other =
        exec::apply_device_env_tuning("otherdev", base);
    EXPECT_EQ(other.toom3, base.toom3);
    ::unsetenv("CAMP_TESTDEV_MUL_THRESH_TOOM3");
    ::unsetenv("CAMP_TESTDEV_MUL_THRESH_PARALLEL");
}

TEST(ExecDevices, FuzzProductsBitIdenticalAcrossBackends)
{
    // The acceptance fuzz: >= 1000 random pairs within the monolithic
    // capability must multiply bit-identically on every backend.
    const std::uint64_t seed = fuzz_seed(0xe8ec0011ull);
    const auto cpu = exec::make_device("cpu");
    const auto simd = exec::make_device("sim");
    const auto analytic = exec::make_device("analytic");
    camp::Rng rng(seed);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t bits_a = 1 + rng.below(4096);
        const std::uint64_t bits_b = 1 + rng.below(4096);
        const Natural a = Natural::random_bits(rng, bits_a);
        const Natural b = Natural::random_bits(rng, bits_b);
        const Natural golden = a * b;
        ASSERT_EQ(cpu->mul(a, b).product, golden)
            << "cpu i=" << i << " CAMP_FUZZ_SEED=" << seed;
        ASSERT_EQ(simd->mul(a, b).product, golden)
            << "sim i=" << i << " CAMP_FUZZ_SEED=" << seed;
        ASSERT_EQ(analytic->mul(a, b).product, golden)
            << "analytic i=" << i << " CAMP_FUZZ_SEED=" << seed;
    }
    // And once at the exact monolithic boundary.
    const std::uint64_t cap = sim::default_config().monolithic_cap_bits;
    const Natural a = Natural::random_bits(rng, cap);
    const Natural b = Natural::random_bits(rng, cap);
    const Natural golden = a * b;
    EXPECT_EQ(cpu->mul(a, b).product, golden);
    EXPECT_EQ(simd->mul(a, b).product, golden);
    EXPECT_EQ(analytic->mul(a, b).product, golden);
}

TEST(ExecDevices, BatchProductsBitIdenticalAcrossBackends)
{
    camp::Rng rng(fuzz_seed(4041));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1 + rng.below(3000)),
                           Natural::random_bits(rng, 1 + rng.below(3000)));
    pairs.emplace_back(Natural(), Natural(7)); // zero operand
    pairs.push_back(pairs.front());            // duplicated pair

    const sim::BatchResult on_cpu =
        exec::make_device("cpu")->mul_batch(pairs);
    const sim::BatchResult on_sim =
        exec::make_device("sim")->mul_batch(pairs);
    const sim::BatchResult on_analytic =
        exec::make_device("analytic")->mul_batch(pairs);
    ASSERT_EQ(on_cpu.products.size(), pairs.size());
    ASSERT_EQ(on_sim.products.size(), pairs.size());
    ASSERT_EQ(on_analytic.products.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const Natural golden = pairs[i].first * pairs[i].second;
        EXPECT_EQ(on_cpu.products[i], golden) << i;
        EXPECT_EQ(on_sim.products[i], golden) << i;
        EXPECT_EQ(on_analytic.products[i], golden) << i;
    }
    // Simulated and modelled accounting agree on the schedule shape.
    EXPECT_EQ(on_sim.tasks, on_analytic.tasks);
    EXPECT_EQ(on_sim.waves, on_analytic.waves);
}

TEST(ExecDevices, SimDeviceRejectsOversizedBaseProduct)
{
    const auto device = exec::make_device("sim");
    const std::uint64_t cap = device->base_cap_bits();
    ASSERT_GT(cap, 0u);
    camp::Rng rng(4242);
    const Natural a = Natural::random_bits(rng, cap + 1);
    const Natural b = Natural::random_bits(rng, 128);
    EXPECT_THROW(device->mul(a, b), camp::InvalidArgument);
}

TEST(CheckedDevice, DisabledPolicyPassesProductsThrough)
{
    exec::CheckPolicy policy; // disabled
    exec::CheckedDevice checked(std::make_unique<FlakyDevice>(1),
                                policy);
    const Natural a(12345), b(678);
    // Unchecked: the flaky first product leaks through untouched.
    EXPECT_EQ(checked.mul(a, b).product, a * b + Natural(1));
    EXPECT_EQ(checked.stats().checks, 0u);
    EXPECT_EQ(checked.stats().detected, 0u);
}

TEST(CheckedDevice, RetryRecoversTransientFault)
{
    exec::CheckPolicy policy;
    policy.enabled = true;
    exec::CheckedDevice checked(std::make_unique<FlakyDevice>(1),
                                policy);
    std::vector<std::string> diagnostics;
    checked.set_diagnostic_sink(
        [&diagnostics](const std::string& d) {
            diagnostics.push_back(d);
        });
    const Natural a(99991), b(99989);
    const exec::MulOutcome outcome = checked.mul(a, b);
    EXPECT_EQ(outcome.product, a * b);
    EXPECT_EQ(outcome.injected, 1u) << "faulty attempt's injection";
    const exec::CheckStats& stats = checked.stats();
    EXPECT_EQ(stats.checks, 1u);
    EXPECT_EQ(stats.detected, 1u);
    EXPECT_EQ(stats.retried, 1u);
    EXPECT_EQ(stats.fallbacks, 0u);
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_NE(diagnostics[0].find("retrying"), std::string::npos);
}

TEST(CheckedDevice, ExhaustedBudgetFallsBackToGolden)
{
    exec::CheckPolicy policy;
    policy.enabled = true;
    policy.retry_budget = 2;
    // Fails more often than the budget allows: must fall back.
    auto flaky = std::make_unique<FlakyDevice>(100);
    FlakyDevice* raw = flaky.get();
    exec::CheckedDevice checked(std::move(flaky), policy);
    const Natural a(31337), b(271828);
    const exec::MulOutcome outcome = checked.mul(a, b);
    EXPECT_EQ(outcome.product, a * b) << "fallback serves the exact product";
    const exec::CheckStats& stats = checked.stats();
    EXPECT_EQ(stats.checks, 1u);
    EXPECT_EQ(stats.retried, policy.retry_budget);
    EXPECT_EQ(stats.fallbacks, 1u);
    EXPECT_EQ(stats.detected, stats.retried + stats.fallbacks);
    EXPECT_EQ(raw->calls(), 1u + policy.retry_budget);
    EXPECT_EQ(outcome.injected, 1u + policy.retry_budget)
        << "every faulty attempt's injection is accumulated";
}

TEST(CheckedDevice, ZeroSampleRateNeverChecks)
{
    exec::CheckPolicy policy;
    policy.enabled = true;
    policy.sample_rate = 0.0;
    exec::CheckedDevice checked(std::make_unique<FlakyDevice>(100),
                                policy);
    const Natural a(5), b(7);
    for (int i = 0; i < 10; ++i)
        checked.mul(a, b);
    EXPECT_EQ(checked.stats().checks, 0u);
    EXPECT_EQ(checked.stats().detected, 0u);
}

TEST(CheckedDevice, TuningForwardsToInner)
{
    exec::CheckedDevice checked(
        std::make_unique<exec::CpuDevice>(), exec::CheckPolicy{});
    camp::mpn::MulTuning tuning = checked.tuning();
    tuning.toom3 = tuning.karatsuba + 777;
    checked.set_tuning(tuning);
    EXPECT_EQ(checked.inner().tuning().toom3, tuning.toom3);
    EXPECT_EQ(checked.tuning().toom3, tuning.toom3);
}

TEST(SubmitQueue, EmptyQueueIsInert)
{
    auto device = exec::make_device("sim");
    exec::SubmitQueue queue(*device);
    EXPECT_EQ(queue.flush(), 0u);
    queue.wait_all();
    EXPECT_EQ(queue.pending(), 0u);
    const exec::QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 0u);
    EXPECT_EQ(stats.flushes, 0u);
}

TEST(SubmitQueue, SinglePairResolvesExactly)
{
    auto device = exec::make_device("sim");
    exec::SubmitQueue queue(*device);
    camp::Rng rng(5100);
    const Natural a = Natural::random_bits(rng, 2000);
    const Natural b = Natural::random_bits(rng, 1500);
    exec::SubmitQueue::Future future = queue.submit(a, b);
    EXPECT_FALSE(future.ready()) << "nothing executes before a flush";
    EXPECT_EQ(future.get(), a * b);
    EXPECT_TRUE(future.ready());
    EXPECT_EQ(future.injected(), 0u);
    EXPECT_FALSE(future.faulty());
    const exec::QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.flushes, 1u);
    EXPECT_EQ(stats.largest_batch, 1u);
}

TEST(SubmitQueue, CoalescesIndependentSubmissionsIntoOneBatch)
{
    auto device = exec::make_device("sim");
    exec::SubmitQueue queue(*device);
    camp::Rng rng(fuzz_seed(5200));
    std::vector<std::pair<Natural, Natural>> pairs;
    std::vector<exec::SubmitQueue::Future> futures;
    for (int i = 0; i < 16; ++i) {
        pairs.emplace_back(Natural::random_bits(rng, 1 + rng.below(2048)),
                           Natural::random_bits(rng, 1 + rng.below(2048)));
        futures.push_back(
            queue.submit(pairs.back().first, pairs.back().second));
    }
    pairs.emplace_back(Natural(), Natural(5)); // zero operand
    futures.push_back(queue.submit(pairs.back().first, pairs.back().second));
    pairs.push_back(pairs.front()); // duplicated pair
    futures.push_back(queue.submit(pairs.back().first, pairs.back().second));

    EXPECT_EQ(queue.pending(), pairs.size());
    // The first get() drains everything buffered in ONE coalesced batch.
    EXPECT_EQ(futures.front().get(), pairs.front().first * pairs.front().second);
    const exec::QueueStats stats = queue.stats();
    EXPECT_EQ(stats.flushes, 1u);
    EXPECT_EQ(stats.largest_batch, pairs.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        EXPECT_TRUE(futures[i].ready()) << i;
        EXPECT_EQ(futures[i].get(), pairs[i].first * pairs[i].second)
            << i;
    }
    EXPECT_EQ(queue.pending(), 0u);
}

TEST(SubmitQueue, WatermarkAutoFlushes)
{
    auto device = exec::make_device("sim");
    exec::SubmitQueue queue(*device, /*max_pending=*/4);
    camp::Rng rng(5300);
    std::vector<exec::SubmitQueue::Future> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(queue.submit(Natural::random_bits(rng, 512),
                                       Natural::random_bits(rng, 512)));
    // 10 submissions at watermark 4: two full batches executed, the
    // trailing 2 still buffered.
    const exec::QueueStats stats = queue.stats();
    EXPECT_EQ(stats.flushes, 2u);
    EXPECT_EQ(stats.largest_batch, 4u);
    EXPECT_EQ(queue.pending(), 2u);
    EXPECT_TRUE(futures[0].ready());
    EXPECT_FALSE(futures[9].ready());
    queue.wait_all();
    EXPECT_TRUE(futures[9].ready());
    EXPECT_EQ(queue.stats().flushes, 3u);
}

TEST(SubmitQueue, CoalescedBatchBeatsSerialSubmissionCycles)
{
    // The point of coalescing: tasks from independent products pack
    // the IPU fabric in shared waves, so one coalesced batch costs
    // fewer simulated cycles than the same products submitted and
    // flushed one at a time. Deterministic (pure schedule counts).
    auto device = exec::make_device("sim");
    camp::Rng rng(5400);
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 64; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 2048),
                           Natural::random_bits(rng, 2048));

    exec::SubmitQueue serial(*device);
    std::uint64_t serial_cycles = 0;
    for (const auto& [a, b] : pairs) {
        serial.submit(a, b);
        serial.flush(); // one product per batch: no coalescing
    }
    serial_cycles = serial.stats().sim_cycles;

    exec::SubmitQueue coalesced(*device);
    for (const auto& [a, b] : pairs)
        coalesced.submit(a, b);
    coalesced.wait_all();
    const std::uint64_t coalesced_cycles =
        coalesced.stats().sim_cycles;

    EXPECT_EQ(coalesced.stats().flushes, 1u);
    EXPECT_LT(coalesced_cycles, serial_cycles)
        << "coalescing must reduce simulated cycles";
    // 64 x 2048-bit products: 64 partial waves pool into far fewer
    // shared waves; demand at least a 2x cycle win.
    EXPECT_LT(2 * coalesced_cycles, serial_cycles);
}

namespace {

/** Device whose batch path throws a configurable exception for the
 * first @p failures flushes, then heals and computes exactly. */
class ThrowingBatchDevice : public exec::Device
{
  public:
    ThrowingBatchDevice(std::function<void()> thrower,
                        unsigned failures)
        : thrower_(std::move(thrower)), fail_remaining_(failures)
    {
    }

    const char* name() const override { return "throwing-batch"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural& a, const Natural& b) override
    {
        return exec::MulOutcome{a * b, 0};
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              unsigned) override
    {
        if (fail_remaining_ > 0) {
            --fail_remaining_;
            thrower_();
        }
        sim::BatchResult result;
        for (const auto& [a, b] : pairs)
            result.products.push_back(a * b);
        result.per_product.resize(pairs.size());
        return result;
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return {};
    }

  private:
    std::function<void()> thrower_;
    unsigned fail_remaining_;
};

} // namespace

TEST(SubmitQueue, FlushFailurePreservesErrorCategory)
{
    // A device throw during a flush must reach every waiter typed —
    // retryable HardwareFault distinguishable from fatal
    // InvalidArgument — and must not wedge the queue.
    ThrowingBatchDevice device(
        [] { throw camp::HardwareFault("fabric offline"); },
        /*failures=*/1);
    exec::SubmitQueue queue(device);
    auto f1 = queue.submit(Natural(3), Natural(5));
    auto f2 = queue.submit(Natural(7), Natural(11));
    queue.flush();
    ASSERT_TRUE(f1.ready());
    ASSERT_TRUE(f2.ready());
    EXPECT_EQ(f1.error(), camp::ErrorCode::HardwareFault);
    EXPECT_EQ(f2.error(), camp::ErrorCode::HardwareFault);
    try {
        f1.get();
        FAIL() << "get() must rethrow the flush failure";
    } catch (const camp::HardwareFault& e) {
        EXPECT_STREQ(e.what(), "fabric offline");
    }
    EXPECT_THROW(f2.get(), camp::HardwareFault);
    const exec::QueueStats stats = queue.stats();
    EXPECT_EQ(stats.failed, 2u);
    EXPECT_EQ(stats.flushes, 1u);

    // The queue survives: the device healed, the next flush resolves.
    auto f3 = queue.submit(Natural(13), Natural(17));
    EXPECT_EQ(f3.get(), Natural(13 * 17));
    EXPECT_EQ(f3.error(), camp::ErrorCode::Ok);
    EXPECT_EQ(queue.stats().failed, 2u);
}

TEST(SubmitQueue, FlushFailurePreservesInvalidArgument)
{
    ThrowingBatchDevice device(
        [] { throw camp::InvalidArgument("operand too wide"); },
        /*failures=*/1);
    exec::SubmitQueue queue(device);
    auto future = queue.submit(Natural(2), Natural(9));
    EXPECT_THROW(future.get(), camp::InvalidArgument);
    EXPECT_EQ(future.error(), camp::ErrorCode::InvalidArgument);
    EXPECT_FALSE(camp::error_retryable(future.error()));

    // Unclassified exceptions cross the boundary as Internal.
    ThrowingBatchDevice opaque(
        [] { throw std::runtime_error("???"); }, /*failures=*/1);
    exec::SubmitQueue queue2(opaque);
    auto f2 = queue2.submit(Natural(1), Natural(1));
    EXPECT_THROW(f2.get(), camp::Error);
    EXPECT_EQ(f2.error(), camp::ErrorCode::Internal);
}

TEST(SubmitQueue, TakeMovesProductOutWithoutCopy)
{
    // take() hands the delivered limb vector to the caller by move —
    // the serving front-end uses it to avoid one deep copy per
    // response (DESIGN.md §14).
    auto device = exec::make_device("sim");
    exec::SubmitQueue queue(*device);
    camp::Rng rng(5600);
    const Natural a = Natural::random_bits(rng, 3000);
    const Natural b = Natural::random_bits(rng, 2500);
    exec::SubmitQueue::Future future = queue.submit(a, b);
    const Natural product = future.take();
    EXPECT_EQ(product, a * b);
    EXPECT_TRUE(future.ready());
    EXPECT_EQ(future.error(), camp::ErrorCode::Ok);
    EXPECT_FALSE(future.faulty());

    // Mixed access stays fine on distinct futures of one batch.
    auto f1 = queue.submit(Natural(3), Natural(5));
    auto f2 = queue.submit(Natural(7), Natural(11));
    queue.flush();
    EXPECT_EQ(f1.get(), Natural(15));
    EXPECT_EQ(f2.take(), Natural(77));
}

TEST(SubmitQueue, TakeRethrowsTypedFlushFailure)
{
    ThrowingBatchDevice device(
        [] { throw camp::HardwareFault("fabric offline"); },
        /*failures=*/1);
    exec::SubmitQueue queue(device);
    auto future = queue.submit(Natural(2), Natural(9));
    EXPECT_THROW(future.take(), camp::HardwareFault);
    EXPECT_EQ(future.error(), camp::ErrorCode::HardwareFault);
}

TEST(RuntimeExec, StringBackendMatchesEnumBackend)
{
    Runtime by_enum(Backend::CambriconP);
    Runtime by_name("sim");
    camp::Rng rng(6000);
    const Natural a = Natural::random_bits(rng, 100000);
    const Natural b = Natural::random_bits(rng, 99000);
    EXPECT_EQ(by_enum.mul_functional(a, b), by_name.mul_functional(a, b));
    EXPECT_EQ(by_enum.base_products(), by_name.base_products())
        << "identical decomposition on both construction paths";
    EXPECT_EQ(by_name.backend(), Backend::CambriconP);
    EXPECT_EQ(Runtime("cpu").backend(), Backend::Cpu);
    EXPECT_THROW(Runtime("not-a-backend"), camp::InvalidArgument);
}

TEST(RuntimeExec, FunctionalMulBitIdenticalAcrossBackends)
{
    camp::Rng rng(6100);
    // Oversized: forces decomposition on sim/analytic, monolithic on cpu.
    const Natural a = Natural::random_bits(rng, 90000);
    const Natural b = Natural::random_bits(rng, 80000);
    const Natural golden = a * b;
    for (const char* name : {"cpu", "sim", "analytic"}) {
        Runtime runtime(name);
        EXPECT_EQ(runtime.mul_functional(a, b), golden) << name;
    }
    Runtime cpu("cpu");
    cpu.mul_functional(a, b);
    EXPECT_EQ(cpu.base_products(), 1u)
        << "the host takes any size monolithically";
}

TEST(RuntimeExec, MultiplyBatchEdgeCases)
{
    Runtime runtime(Backend::CambriconP);
    // Empty batch: a no-op, not a crash.
    const sim::BatchResult empty = runtime.multiply_batch({});
    EXPECT_TRUE(empty.products.empty());
    EXPECT_EQ(empty.cycles, 0u);
    EXPECT_EQ(runtime.base_products(), 0u);

    camp::Rng rng(6200);
    // Single pair stays serial by policy.
    const Natural a = Natural::random_bits(rng, 1024);
    const Natural b = Natural::random_bits(rng, 768);
    const sim::BatchResult single = runtime.multiply_batch({{a, b}});
    ASSERT_EQ(single.products.size(), 1u);
    EXPECT_EQ(single.products[0], a * b);
    EXPECT_EQ(single.parallelism, 1u);
    EXPECT_EQ(runtime.base_products(), 1u);

    // Zero operands and duplicated pairs.
    std::vector<std::pair<Natural, Natural>> pairs;
    pairs.emplace_back(Natural(), Natural(123));
    pairs.emplace_back(Natural(55), Natural());
    pairs.emplace_back(a, b);
    pairs.emplace_back(a, b);
    const sim::BatchResult mixed = runtime.multiply_batch(pairs);
    ASSERT_EQ(mixed.products.size(), pairs.size());
    EXPECT_TRUE(mixed.products[0].is_zero());
    EXPECT_TRUE(mixed.products[1].is_zero());
    EXPECT_EQ(mixed.products[2], a * b);
    EXPECT_EQ(mixed.products[3], a * b);
    EXPECT_EQ(mixed.per_product[2], mixed.per_product[3])
        << "duplicated pairs account identically (no faults armed)";
}

TEST(RuntimeExec, BatchSerialAndPooledBitIdentical)
{
    // CAMP_THREADS=1 vs pooled execution must produce identical
    // products AND identical per-product accounting; exercised through
    // the device's explicit parallelism switch so the test is
    // meaningful on any host core count.
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(fuzz_seed(6300));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1 + rng.below(2000)),
                           Natural::random_bits(rng, 1 + rng.below(2000)));
    const sim::BatchResult serial =
        runtime.device().mul_batch(pairs, /*parallelism=*/1);
    const sim::BatchResult pooled =
        runtime.device().mul_batch(pairs, /*parallelism=*/0);
    ASSERT_EQ(serial.products.size(), pooled.products.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(serial.products[i], pooled.products[i]) << i;
        EXPECT_EQ(serial.per_product[i], pooled.per_product[i]) << i;
    }
    EXPECT_EQ(serial.cycles, pooled.cycles);
    EXPECT_EQ(serial.tasks, pooled.tasks);
}
