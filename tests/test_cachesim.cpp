/**
 * @file
 * Cache hierarchy simulator tests: LRU behaviour, inclusive fill
 * traffic accounting, and the qualitative Figure 3 signatures of the
 * three workload traces.
 */
#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "cachesim/traces.hpp"

using namespace camp::cachesim;

TEST(CacheLevel, HitsAfterFill)
{
    CacheLevel l1({"L1", 1024, 2, 64, 0.0});
    EXPECT_FALSE(l1.access(0x1000)); // cold miss
    EXPECT_TRUE(l1.access(0x1000));  // hit
    EXPECT_TRUE(l1.access(0x1010));  // same line
    EXPECT_FALSE(l1.access(0x2000));
    EXPECT_EQ(l1.hits(), 2u);
    EXPECT_EQ(l1.misses(), 2u);
}

TEST(CacheLevel, LruEvictsOldest)
{
    // 2-way, 64B lines, 2 sets (1024/64/... = 8 sets actually); use
    // conflicting addresses within one set.
    CacheLevel cache({"L1", 2 * 64 * 1, 2, 64, 0.0}); // 1 set, 2 ways
    const std::uint64_t a = 0 * 64, b = 1 * 64, c = 2 * 64;
    cache.access(a);
    cache.access(b);
    cache.access(a);        // a most recent
    cache.access(c);        // evicts b
    EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(b)); // was evicted
}

TEST(CacheLevel, WorkingSetSmallerThanCacheAllHits)
{
    CacheLevel cache({"L2", 64 * 1024, 8, 64, 0.0});
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t addr = 0; addr < 32 * 1024; addr += 64)
            cache.access(addr);
    // First pass cold misses only.
    EXPECT_EQ(cache.misses(), 32u * 1024 / 64);
    EXPECT_EQ(cache.hits(), 2u * 32 * 1024 / 64);
}

TEST(Hierarchy, TrafficDecreasesDownTheHierarchy)
{
    Hierarchy h = Hierarchy::zen3_like();
    // Stream over a 1 MB buffer twice: fits L3, not L2.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 1 << 20; a += 8)
            h.access(a, 8);
    const auto traffic = h.traffic_bytes();
    ASSERT_EQ(traffic.size(), 4u); // RF, L1, L2, L3(DRAM fill)
    EXPECT_GT(traffic[0], 0);
    // Second pass hits in L3 -> DRAM fill only from the first pass.
    EXPECT_NEAR(traffic[3], 1 << 20, 64);
    EXPECT_GE(traffic[1], traffic[2]);
}

TEST(Traces, ApcMulIsRfBoundMatMulIsL1Bound)
{
    // The Figure 3(b) signature: APC multiply concentrates traffic at
    // the register file; matmul at L1; random access reaches DRAM.
    Hierarchy h1 = Hierarchy::zen3_like();
    const TraceResult apc = trace_apc_mul(h1, 2048); // 128 Kbit operands
    const auto t1 = h1.traffic_bytes();

    Hierarchy h2 = Hierarchy::zen3_like();
    const TraceResult mm = trace_matmul(h2, 128);
    const auto t2 = h2.traffic_bytes();

    // Random access needs a working set beyond the last-level cache;
    // use a scaled-down hierarchy so the test stays fast.
    Hierarchy h3({{"L1", 32 * 1024, 8, 64, 2000.0},
                  {"L2", 256 * 1024, 8, 64, 1000.0},
                  {"L3", 1024 * 1024, 16, 64, 700.0}},
                 6000.0, 50.0);
    const TraceResult ra = trace_random_access(h3, 1 << 19);
    const auto t3 = h3.traffic_bytes();

    // Operational intensity at the RF boundary (ops per RF byte):
    // APC multiply's is the lowest of the three workloads relative to
    // its DRAM intensity (the "stuck at the nearest hierarchy" shape).
    const double apc_rf_oi = apc.ops / t1[0];
    const double apc_dram_ratio = t1[3] / t1[0];
    const double mm_dram_ratio = t2[3] / t2[0];
    const double ra_dram_ratio = t3[3] / t3[0];
    EXPECT_LT(apc_dram_ratio, 0.02);  // almost no DRAM traffic
    EXPECT_LT(mm_dram_ratio, 0.05);
    EXPECT_GT(ra_dram_ratio, 0.5);    // random access hammers DRAM
    EXPECT_GT(apc_rf_oi, 0.0);
}

TEST(Traces, ApcMulOpsMatchSchoolbookBelowThreshold)
{
    Hierarchy h = Hierarchy::zen3_like();
    const TraceResult r = trace_apc_mul(h, 16); // below Karatsuba
    EXPECT_DOUBLE_EQ(r.ops, 256.0);             // 16x16 MACs
}

TEST(Traces, RandomAccessCountsNLogN)
{
    Hierarchy h = Hierarchy::zen3_like();
    const TraceResult r = trace_random_access(h, 1 << 10);
    EXPECT_DOUBLE_EQ(r.ops, 1024.0 * 10);
    EXPECT_EQ(h.accesses(), 1024u * 10);
}
