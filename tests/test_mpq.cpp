/**
 * @file
 * Rational (mpq layer) tests: canonicalization, field axioms on random
 * samples, ordering, and decimal expansion.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "mpq/rational.hpp"
#include "support/rng.hpp"

using camp::mpn::Natural;
using camp::mpq::Rational;
using camp::mpz::Integer;

namespace {

Rational
random_rational(camp::Rng& rng)
{
    const Natural n = Natural::random_bits(rng, 1 + rng.below(60));
    const Natural d = Natural::random_bits(rng, 1 + rng.below(60));
    return {Integer(n, rng.below(2) == 0), d};
}

} // namespace

TEST(Rational, CanonicalizesToLowestTerms)
{
    const Rational r(Integer(6), Natural(8));
    EXPECT_EQ(r.num(), Integer(3));
    EXPECT_EQ(r.den(), Natural(4));
    const Rational z(Integer(0), Natural(17));
    EXPECT_EQ(z.den(), Natural(1));
    EXPECT_TRUE(z.is_zero());
}

TEST(Rational, ZeroDenominatorThrows)
{
    EXPECT_THROW(Rational(Integer(1), Natural(0)), std::invalid_argument);
    EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, FieldAxiomsOnRandomSamples)
{
    camp::Rng rng(71);
    for (int iter = 0; iter < 25; ++iter) {
        const Rational a = random_rational(rng);
        const Rational b = random_rational(rng);
        const Rational c = random_rational(rng);
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a - a, Rational(0));
        if (!b.is_zero())
            EXPECT_EQ(a / b * b, a);
    }
}

TEST(Rational, OrderingMatchesCrossMultiplication)
{
    EXPECT_LT(Rational(Integer(1), Natural(3)),
              Rational(Integer(1), Natural(2)));
    EXPECT_LT(Rational(Integer(-1), Natural(2)),
              Rational(Integer(1), Natural(3)));
    EXPECT_GT(Rational(Integer(7), Natural(8)),
              Rational(Integer(6), Natural(7)));
}

TEST(Rational, DecimalExpansion)
{
    EXPECT_EQ(Rational(Integer(1), Natural(4)).to_decimal(4), "0.2500");
    EXPECT_EQ(Rational(Integer(1), Natural(3)).to_decimal(6), "0.333333");
    EXPECT_EQ(Rational(Integer(-22), Natural(7)).to_decimal(5),
              "-3.14285");
}

TEST(Rational, ToDoubleApproximates)
{
    EXPECT_NEAR(Rational(Integer(1), Natural(3)).to_double(),
                1.0 / 3.0, 1e-15);
    EXPECT_NEAR(Rational(Integer(-355), Natural(113)).to_double(),
                -355.0 / 113.0, 1e-12);
}
