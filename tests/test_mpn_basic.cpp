/**
 * @file
 * Unit and property tests for the O(n) mpn kernels.
 */
#include <gtest/gtest.h>

#include <vector>

#include "mpn/basic.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;

namespace {

std::vector<Limb>
random_limbs(camp::Rng& rng, std::size_t n)
{
    std::vector<Limb> v(n);
    for (auto& limb : v)
        limb = rng.next();
    return v;
}

} // namespace

TEST(MpnBasic, AddSingleCarryChain)
{
    std::vector<Limb> a{mpn::kLimbMax, mpn::kLimbMax, mpn::kLimbMax};
    std::vector<Limb> r(3);
    const Limb carry = mpn::add_1(r.data(), a.data(), 3, 1);
    EXPECT_EQ(carry, 1u);
    EXPECT_EQ(r, (std::vector<Limb>{0, 0, 0}));
}

TEST(MpnBasic, AddSubRoundTrip)
{
    camp::Rng rng(1);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = 1 + rng.below(40);
        const auto a = random_limbs(rng, n);
        const auto b = random_limbs(rng, n);
        std::vector<Limb> s(n), d(n);
        const Limb carry = mpn::add_n(s.data(), a.data(), b.data(), n);
        const Limb borrow = mpn::sub_n(d.data(), s.data(), b.data(), n);
        EXPECT_EQ(borrow, carry) << "iteration " << iter;
        EXPECT_EQ(d, a);
    }
}

TEST(MpnBasic, AddDifferentSizes)
{
    camp::Rng rng(2);
    for (int iter = 0; iter < 100; ++iter) {
        const std::size_t an = 2 + rng.below(30);
        const std::size_t bn = 1 + rng.below(an);
        const auto a = random_limbs(rng, an);
        const auto b = random_limbs(rng, bn);
        std::vector<Limb> s(an), back(an);
        const Limb carry =
            mpn::add(s.data(), a.data(), an, b.data(), bn);
        const Limb borrow =
            mpn::sub(back.data(), s.data(), an, b.data(), bn);
        EXPECT_EQ(carry, borrow);
        EXPECT_EQ(back, a);
    }
}

TEST(MpnBasic, SubSelfIsZero)
{
    camp::Rng rng(3);
    const auto a = random_limbs(rng, 17);
    std::vector<Limb> d(17);
    EXPECT_EQ(mpn::sub_n(d.data(), a.data(), a.data(), 17), 0u);
    EXPECT_EQ(mpn::normalized_size(d.data(), 17), 0u);
}

TEST(MpnBasic, CompareOrdersLexicographically)
{
    std::vector<Limb> a{5, 7};
    std::vector<Limb> b{9, 7};
    EXPECT_LT(mpn::cmp_n(a.data(), b.data(), 2), 0);
    EXPECT_GT(mpn::cmp_n(b.data(), a.data(), 2), 0);
    EXPECT_EQ(mpn::cmp_n(a.data(), a.data(), 2), 0);
    // Size dominates for normalized operands.
    std::vector<Limb> c{1, 1, 1};
    EXPECT_LT(mpn::cmp(b.data(), 2, c.data(), 3), 0);
}

TEST(MpnBasic, ShiftRoundTrip)
{
    camp::Rng rng(4);
    for (unsigned cnt = 1; cnt < 64; ++cnt) {
        const std::size_t n = 1 + rng.below(20);
        const auto a = random_limbs(rng, n);
        std::vector<Limb> l(n), back(n);
        const Limb out = mpn::lshift(l.data(), a.data(), n, cnt);
        const Limb low = mpn::rshift(back.data(), l.data(), n, cnt);
        EXPECT_EQ(low, 0u);
        // Reinsert the shifted-out high bits.
        back[n - 1] |= out << (64 - cnt);
        EXPECT_EQ(back, a) << "cnt=" << cnt;
    }
}

TEST(MpnBasic, LshiftInPlaceMatchesCopy)
{
    camp::Rng rng(5);
    const auto a = random_limbs(rng, 9);
    auto b = a;
    std::vector<Limb> r(9);
    const Limb o1 = mpn::lshift(r.data(), a.data(), 9, 13);
    const Limb o2 = mpn::lshift(b.data(), b.data(), 9, 13);
    EXPECT_EQ(o1, o2);
    EXPECT_EQ(r, b);
}

TEST(MpnBasic, BitSizeAndGetBit)
{
    std::vector<Limb> a{0, 0, 1}; // 2^128
    EXPECT_EQ(mpn::bit_size(a.data(), 3), 129u);
    EXPECT_TRUE(mpn::get_bit(a.data(), 3, 128));
    EXPECT_FALSE(mpn::get_bit(a.data(), 3, 127));
    EXPECT_FALSE(mpn::get_bit(a.data(), 3, 500));
    EXPECT_EQ(mpn::bit_size(a.data(), 2), 0u); // truncated view is zero
}

TEST(MpnBasic, NormalizedSizeStripsHighZeros)
{
    std::vector<Limb> a{1, 0, 0};
    EXPECT_EQ(mpn::normalized_size(a.data(), 3), 1u);
    std::vector<Limb> z{0, 0};
    EXPECT_EQ(mpn::normalized_size(z.data(), 2), 0u);
}

TEST(MpnBasic, LogicOpsMatchScalar)
{
    camp::Rng rng(6);
    const auto a = random_limbs(rng, 8);
    const auto b = random_limbs(rng, 8);
    std::vector<Limb> r(8);
    mpn::and_n(r.data(), a.data(), b.data(), 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r[i], a[i] & b[i]);
    mpn::or_n(r.data(), a.data(), b.data(), 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r[i], a[i] | b[i]);
    mpn::xor_n(r.data(), a.data(), b.data(), 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r[i], a[i] ^ b[i]);
}

// Associativity / commutativity style property sweeps.
class MpnBasicSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MpnBasicSizes, AdditionIsCommutative)
{
    camp::Rng rng(7 + GetParam());
    const std::size_t n = GetParam();
    const auto a = random_limbs(rng, n);
    const auto b = random_limbs(rng, n);
    std::vector<Limb> r1(n), r2(n);
    const Limb c1 = mpn::add_n(r1.data(), a.data(), b.data(), n);
    const Limb c2 = mpn::add_n(r2.data(), b.data(), a.data(), n);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(r1, r2);
}

TEST_P(MpnBasicSizes, AdditionIsAssociative)
{
    camp::Rng rng(8 + GetParam());
    const std::size_t n = GetParam();
    const auto a = random_limbs(rng, n);
    const auto b = random_limbs(rng, n);
    const auto c = random_limbs(rng, n);
    std::vector<Limb> ab(n + 1), bc(n + 1), r1(n + 2), r2(n + 2);
    ab[n] = mpn::add_n(ab.data(), a.data(), b.data(), n);
    bc[n] = mpn::add_n(bc.data(), b.data(), c.data(), n);
    r1[n + 1] = mpn::add(r1.data(), ab.data(), n + 1, c.data(), n);
    r2[n + 1] = mpn::add(r2.data(), bc.data(), n + 1, a.data(), n);
    EXPECT_EQ(r1, r2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpnBasicSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64,
                                           127));
