/**
 * @file
 * Unit tests for the Cambricon-P functional blocks: Converter pattern
 * generation, BIPS identity in the IPU, carry parallel gathering in the
 * GU, and the fractal CC/PEC scheduling.
 */
#include <gtest/gtest.h>

#include <array>

#include "sim/controller.hpp"
#include "sim/converter.hpp"
#include "sim/gather_unit.hpp"
#include "sim/ipu.hpp"
#include "support/rng.hpp"

using namespace camp::sim;
using camp::u128;
using camp::mpn::Natural;

namespace {

std::vector<Bitflow>
flows_from(const std::array<std::uint32_t, 4>& x, std::size_t len = 32)
{
    std::vector<Bitflow> flows;
    for (const auto v : x)
        flows.push_back(Bitflow::from_value(v, len));
    return flows;
}

} // namespace

TEST(Bitflow, ValueRoundTrip)
{
    camp::Rng rng(90);
    for (int iter = 0; iter < 50; ++iter) {
        const u128 v = (static_cast<u128>(rng.next()) << 64) | rng.next();
        const Bitflow flow = Bitflow::from_value(v, 128);
        EXPECT_TRUE(flow.value() == v);
        EXPECT_EQ(flow.length(), 128u);
    }
}

TEST(Converter, GeneratesAllSubsetSums)
{
    camp::Rng rng(91);
    const Converter converter;
    for (int iter = 0; iter < 30; ++iter) {
        const std::array<std::uint32_t, 4> x{
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next())};
        const auto patterns = converter.convert(flows_from(x));
        ASSERT_EQ(patterns.size(), 16u);
        for (unsigned s = 0; s < 16; ++s) {
            u128 expect = 0;
            for (unsigned i = 0; i < 4; ++i)
                if (s & (1u << i))
                    expect += x[i];
            EXPECT_TRUE(patterns[s].value() == expect) << "s=" << s;
        }
    }
}

TEST(Converter, ActiveAdderCountMatchesPaperBound)
{
    // 2^q - q - 1 = 11 serial adders for q = 4 (paper §IV-B).
    const Converter converter;
    EXPECT_EQ(converter.active_adders(), 11u);
    // Measured bit ops = adders * stream length.
    ConverterStats stats;
    const std::array<std::uint32_t, 4> x{1, 2, 3, 4};
    converter.convert(flows_from(x), &stats);
    EXPECT_EQ(stats.adder_bit_ops, 11u * stats.cycles);
}

TEST(Ipu, BipsIdentityRandomSweep)
{
    camp::Rng rng(92);
    const Ipu ipu;
    for (int iter = 0; iter < 200; ++iter) {
        IpuTask task;
        for (int i = 0; i < 4; ++i) {
            task.x[i] = static_cast<std::uint32_t>(rng.next());
            task.y[i] = static_cast<std::uint32_t>(rng.next());
        }
        u128 expect = 0;
        for (int i = 0; i < 4; ++i)
            expect += static_cast<u128>(task.x[i]) * task.y[i];
        EXPECT_TRUE(ipu.run_task(task) == expect);
        EXPECT_TRUE(ipu.run_naive(task) == expect);
    }
}

TEST(Ipu, ZeroColumnsAreSkipped)
{
    const Ipu ipu;
    IpuTask task;
    task.x = {0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff};
    task.y = {0, 0, 0, 0};
    IpuStats stats;
    EXPECT_TRUE(ipu.run_task(task, &stats) == 0);
    EXPECT_EQ(stats.zero_skips, 32u); // every column all-zero
    EXPECT_EQ(stats.accum_bit_ops, 0u);
}

TEST(Ipu, BipsBeatsNaiveOnBops)
{
    // Paper §IV-B: lambda = bops(BIPS)/bops(naive) ~ 0.367 for dense
    // operands (q = 4, p_y = 32). Converter + accumulate vs naive.
    camp::Rng rng(93);
    const Ipu ipu;
    std::uint64_t bips_bops = 0, naive_bops = 0;
    for (int iter = 0; iter < 100; ++iter) {
        IpuTask task;
        for (int i = 0; i < 4; ++i) {
            task.x[i] = static_cast<std::uint32_t>(rng.next());
            task.y[i] = static_cast<std::uint32_t>(rng.next());
        }
        IpuStats istats;
        ConverterStats cstats;
        ipu.run_task(task, &istats, &cstats);
        bips_bops += istats.accum_bit_ops + cstats.adder_bit_ops;
        IpuStats nstats;
        ipu.run_naive(task, &nstats);
        naive_bops += nstats.naive_bit_ops;
    }
    const double lambda = static_cast<double>(bips_bops) /
                          static_cast<double>(naive_bops);
    // Paper §IV-B: lambda_min = 0.367 at q = 4, p_y = 32. The measured
    // ratio carries the q extra carry-drain bits per add, so allow a
    // small band around the closed form.
    EXPECT_NEAR(lambda, 0.367, 0.05);
}

TEST(GatherUnit, MatchesDirectSum)
{
    camp::Rng rng(94);
    const GatherUnit gu;
    for (int iter = 0; iter < 50; ++iter) {
        const std::size_t n = 1 + rng.below(32);
        std::vector<u128> psums(n);
        Natural expect;
        for (std::size_t i = 0; i < n; ++i) {
            // Realistic partial sums: up to 66 bits.
            psums[i] = (static_cast<u128>(rng.below(4)) << 64) |
                       rng.next();
            Natural term = Natural(static_cast<std::uint64_t>(psums[i]));
            term += Natural(static_cast<std::uint64_t>(psums[i] >> 64))
                    << 64;
            expect += term << (32 * i);
        }
        EXPECT_EQ(gu.gather(psums), expect) << "n=" << n;
    }
}

TEST(GatherUnit, CarryParallelLatencyBeatsSequential)
{
    const GatherUnit gu;
    std::vector<u128> psums(32, static_cast<u128>(1) << 40);
    GatherStats stats;
    gu.gather(psums, &stats);
    EXPECT_LT(stats.latency_parallel, stats.latency_sequential / 4);
}

TEST(GatherUnit, CombiningModes)
{
    camp::Rng rng(95);
    const GatherUnit gu;
    std::vector<u128> psums(32);
    for (auto& p : psums)
        p = rng.next();
    for (unsigned mode : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto results = gu.gather_combined(psums, mode);
        EXPECT_EQ(results.size(), 32u / mode);
        for (std::size_t g = 0; g < results.size(); ++g) {
            Natural expect;
            for (unsigned i = 0; i < mode; ++i)
                expect += Natural(static_cast<std::uint64_t>(
                              psums[g * mode + i]))
                          << (32 * i);
            EXPECT_EQ(results[g], expect) << "mode=" << mode;
        }
    }
}

TEST(Controller, AllPairsCoveredExactlyOnce)
{
    const SimConfig& config = default_config();
    for (const auto [nx, ny] :
         {std::pair<std::size_t, std::size_t>{1, 1},
          std::pair<std::size_t, std::size_t>{7, 5},
          std::pair<std::size_t, std::size_t>{128, 128},
          std::pair<std::size_t, std::size_t>{300, 17}}) {
        const Schedule schedule =
            CoreController::schedule_multiply(nx, ny, config);
        // Each (i, j) pair must appear exactly once across all works.
        std::vector<int> seen(nx * ny, 0);
        for (const auto& pe : schedule.per_pe) {
            for (const auto& work : pe) {
                for (std::uint32_t j = work.j_begin; j < work.j_end;
                     ++j) {
                    ASSERT_LT(j, ny);
                    ASSERT_GE(work.t, j);
                    ASSERT_LT(work.t - j, nx);
                    seen[(work.t - j) * ny + j] += 1;
                }
            }
        }
        for (const int count : seen)
            EXPECT_EQ(count, 1);
    }
}

TEST(Controller, TaskChunksRespectQ)
{
    const SimConfig& config = default_config();
    const Schedule schedule =
        CoreController::schedule_multiply(100, 90, config);
    for (const auto& pe : schedule.per_pe)
        for (const auto& work : pe)
            EXPECT_LE(work.j_end - work.j_begin, config.q);
    EXPECT_GT(schedule.waves, 0u);
}
