/**
 * @file
 * Fuzz-style robustness tests: randomized algorithm thresholds force
 * deep cross-algorithm recursions, adversarial bit patterns stress
 * carry paths, and off-nominal simulator configurations validate the
 * schedule model beyond the paper's single design point.
 *
 * Seeds: every randomized test uses a fixed per-test default seed,
 * overridable with the CAMP_FUZZ_SEED environment variable. Failure
 * messages carry the effective seed, so any failure replays with
 * CAMP_FUZZ_SEED=<printed seed> ctest -R Fuzz.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "sim/analytic_model.hpp"
#include "sim/core.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;
using mpn::Natural;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** RAII: scramble the mul/div thresholds, restore on exit. */
class TuningFuzz
{
  public:
    TuningFuzz(camp::Rng& rng)
        : saved_mul_(mpn::mul_tuning()), saved_div_(mpn::div_tuning())
    {
        auto& mul = mpn::mul_tuning();
        mul.karatsuba = 4 + rng.below(28);
        mul.toom3 = mul.karatsuba + 6 + rng.below(40);
        mul.toom4 = mul.toom3 + 8 + rng.below(60);
        mul.toom6 = mul.toom4 + 12 + rng.below(80);
        mul.ssa = mul.toom6 + 16 + rng.below(200);
        mpn::div_tuning().bz = 4 + rng.below(40);
    }
    ~TuningFuzz()
    {
        mpn::mul_tuning() = saved_mul_;
        mpn::div_tuning() = saved_div_;
    }

  private:
    mpn::MulTuning saved_mul_;
    mpn::DivTuning saved_div_;
};

std::vector<Limb>
adversarial_limbs(camp::Rng& rng, std::size_t n)
{
    std::vector<Limb> v(n);
    const int mode = static_cast<int>(rng.below(5));
    for (std::size_t i = 0; i < n; ++i) {
        switch (mode) {
        case 0: v[i] = mpn::kLimbMax; break;               // all ones
        case 1: v[i] = i == 0 || i + 1 == n ? 1 : 0; break; // sparse
        case 2: v[i] = 0xaaaaaaaaaaaaaaaaULL; break;       // stripes
        case 3: v[i] = rng.below(2) ? mpn::kLimbMax : 0; break;
        default: v[i] = rng.next(); break;
        }
    }
    if (v.back() == 0)
        v.back() = 1;
    return v;
}

} // namespace

TEST(Fuzz, MulWithScrambledThresholds)
{
    const std::uint64_t seed = fuzz_seed(160);
    camp::Rng rng(seed);
    for (int round = 0; round < 15; ++round) {
        TuningFuzz fuzz(rng);
        const std::size_t an = 1 + rng.below(600);
        const std::size_t bn = 1 + rng.below(an);
        const auto a = adversarial_limbs(rng, an);
        const auto b = adversarial_limbs(rng, bn);
        std::vector<Limb> got(an + bn), expect(an + bn);
        mpn::mul(got.data(), a.data(), an, b.data(), bn);
        mpn::mul_basecase(expect.data(), a.data(), an, b.data(), bn);
        EXPECT_EQ(got, expect)
            << "round " << round << " seed " << seed;
    }
}

TEST(Fuzz, DivremWithScrambledThresholds)
{
    const std::uint64_t seed = fuzz_seed(161);
    camp::Rng rng(seed);
    for (int round = 0; round < 15; ++round) {
        TuningFuzz fuzz(rng);
        const std::size_t dn = 1 + rng.below(120);
        const std::size_t an = dn + rng.below(3 * dn + 1);
        const auto a = adversarial_limbs(rng, an);
        const auto d = adversarial_limbs(rng, dn);
        std::vector<Limb> q(an - dn + 1), r(dn);
        mpn::divrem(q.data(), r.data(), a.data(), an, d.data(), dn);
        // Invariant check with full-precision arithmetic.
        const Natural na = Natural::from_limbs({a.begin(), a.end()});
        const Natural nd = Natural::from_limbs({d.begin(), d.end()});
        const Natural nq = Natural::from_limbs({q.begin(), q.end()});
        const Natural nr = Natural::from_limbs({r.begin(), r.end()});
        EXPECT_EQ(nq * nd + nr, na)
            << "round " << round << " seed " << seed;
        EXPECT_LT(nr, nd) << "round " << round << " seed " << seed;
    }
}

TEST(Fuzz, SsaAdversarialPatterns)
{
    const std::uint64_t seed = fuzz_seed(162);
    camp::Rng rng(seed);
    for (int round = 0; round < 10; ++round) {
        const std::size_t an = 64 + rng.below(400);
        const std::size_t bn = 32 + rng.below(an - 31);
        const auto a = adversarial_limbs(rng, an);
        const auto b = adversarial_limbs(rng, bn);
        std::vector<Limb> got(an + bn), expect(an + bn);
        mpn::mul_ssa(got.data(), a.data(), an, b.data(), bn);
        mpn::mul(expect.data(), a.data(), an, b.data(), bn);
        EXPECT_EQ(got, expect)
            << "round " << round << " seed " << seed;
    }
}

TEST(Fuzz, PowersOfTwoBoundaries)
{
    // 2^k-1, 2^k, 2^k+1 operand combinations around limb boundaries.
    for (const std::uint64_t k : {63u, 64u, 65u, 127u, 128u, 4095u,
                                  4096u}) {
        const Natural p = Natural(1) << k;
        for (const Natural& a : {p - Natural(1), p, p + Natural(1)}) {
            for (const Natural& b :
                 {p - Natural(1), p, p + Natural(1)}) {
                // Cross-check mul against square-difference identity:
                // a*b = ((a+b)^2 - (a-b)^2) / 4 for a >= b.
                const Natural& hi = a >= b ? a : b;
                const Natural& lo = a >= b ? b : a;
                const Natural s = hi + lo, d = hi - lo;
                EXPECT_EQ((s * s - d * d) >> 2, a * b)
                    << "k=" << k;
            }
        }
    }
}

TEST(Fuzz, SimCoreOffNominalConfigs)
{
    const std::uint64_t seed = fuzz_seed(163);
    camp::Rng rng(seed);
    for (const unsigned n_pe : {16u, 64u, 333u}) {
        for (const unsigned n_ipu : {8u, 32u}) {
            camp::sim::SimConfig config;
            config.n_pe = n_pe;
            config.n_ipu = n_ipu;
            camp::sim::Core core(config);
            const camp::sim::AnalyticModel model(config);
            const std::uint64_t bits = 500 + rng.below(8000);
            const Natural a = Natural::random_bits(rng, bits);
            const Natural b = Natural::random_bits(rng, bits);
            const auto result = core.multiply(a, b);
            EXPECT_EQ(result.product, a * b) << "seed " << seed;
            EXPECT_EQ(result.stats.cycles,
                      model.multiply_cycles(bits, bits))
                << n_pe << "x" << n_ipu << " seed " << seed;
        }
    }
}

TEST(Fuzz, DecimalConversionAdversarial)
{
    const std::uint64_t seed = fuzz_seed(164);
    camp::Rng rng(seed);
    // Numbers with long runs of 0/9 digits stress the split logic.
    for (int round = 0; round < 10; ++round) {
        std::string digits = std::to_string(1 + rng.below(9));
        const std::size_t len = 1 + rng.below(3000);
        const int mode = static_cast<int>(rng.below(3));
        for (std::size_t i = 0; i < len; ++i) {
            digits.push_back(mode == 0   ? '0'
                             : mode == 1 ? '9'
                                         : static_cast<char>(
                                               '0' + rng.below(10)));
        }
        EXPECT_EQ(Natural::from_decimal(digits).to_decimal(), digits)
            << "round " << round << " seed " << seed;
    }
}
