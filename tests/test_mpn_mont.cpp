/**
 * @file
 * Montgomery arithmetic tests: REDC correctness against plain modular
 * reduction, round trips, and the identity element.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mont.hpp"
#include "mpn/natural.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;
using mpn::MontCtx;
using mpn::Natural;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

Natural
mont_mul_via_ctx(const MontCtx& ctx, const Natural& a, const Natural& b)
{
    const std::size_t nn = ctx.size();
    std::vector<Limb> av(nn, 0), bv(nn, 0), am(nn), bm(nn), rm(nn),
        r(nn);
    mpn::copy(av.data(), a.data(), a.size());
    mpn::copy(bv.data(), b.data(), b.size());
    ctx.to_mont(am.data(), av.data());
    ctx.to_mont(bm.data(), bv.data());
    ctx.mul(rm.data(), am.data(), bm.data());
    ctx.from_mont(r.data(), rm.data());
    return Natural::from_limbs(std::move(r));
}

} // namespace

TEST(MpnMont, RejectsEvenModulus)
{
    std::vector<Limb> m{42};
    EXPECT_THROW(MontCtx(m.data(), 1), std::invalid_argument);
}

TEST(MpnMont, ToFromMontRoundTrip)
{
    camp::Rng rng(41);
    for (std::uint64_t bits : {64u, 65u, 128u, 300u, 1024u}) {
        Natural m = Natural::random_bits(rng, bits);
        if (!m.is_odd())
            m += Natural(1);
        const MontCtx ctx(m.data(), m.size());
        for (int iter = 0; iter < 10; ++iter) {
            const Natural a = Natural::random_bits(rng, bits - 1) % m;
            std::vector<Limb> av(ctx.size(), 0), am(ctx.size()),
                back(ctx.size());
            mpn::copy(av.data(), a.data(), a.size());
            ctx.to_mont(am.data(), av.data());
            ctx.from_mont(back.data(), am.data());
            EXPECT_EQ(Natural::from_limbs({back.begin(), back.end()}), a);
        }
    }
}

TEST(MpnMont, MulMatchesPlainModularMul)
{
    camp::Rng rng(42);
    for (std::uint64_t bits : {64u, 127u, 256u, 1000u, 2048u}) {
        Natural m = Natural::random_bits(rng, bits);
        if (!m.is_odd())
            m += Natural(1);
        const MontCtx ctx(m.data(), m.size());
        for (int iter = 0; iter < 8; ++iter) {
            const Natural a = Natural::random_bits(rng, bits) % m;
            const Natural b = Natural::random_bits(rng, bits) % m;
            EXPECT_EQ(mont_mul_via_ctx(ctx, a, b), (a * b) % m)
                << "bits=" << bits;
        }
    }
}

TEST(MpnMont, RoundTripAndModMulFuzz)
{
    // >= 1000 cases: for random odd moduli of random width and random
    // residues a, b < m,
    //  - to_mont/from_mont round-trips a exactly, and
    //  - the full Montgomery pipeline (to_mont both, mont-mul, REDC
    //    back) equals the plain mpn modular product (a * b) mod m.
    const std::uint64_t seed = fuzz_seed(0x3070601dull);
    camp::Rng rng(seed);
    int cases = 0;
    while (cases < 1000) {
        const std::uint64_t bits = 64 + rng.below(1024);
        Natural m = Natural::random_bits(rng, bits);
        if (!m.is_odd())
            m += Natural(1);
        const MontCtx ctx(m.data(), m.size());
        for (int iter = 0; iter < 8; ++iter) {
            SCOPED_TRACE("cases=" + std::to_string(cases) +
                         " bits=" + std::to_string(bits) +
                         " seed=" + std::to_string(seed) +
                         " (replay: CAMP_FUZZ_SEED=<seed>)");
            const Natural a = Natural::random_bits(rng, bits) % m;
            const Natural b = Natural::random_bits(rng, bits) % m;
            // Round trip.
            std::vector<Limb> av(ctx.size(), 0), am(ctx.size()),
                back(ctx.size());
            mpn::copy(av.data(), a.data(), a.size());
            ctx.to_mont(am.data(), av.data());
            ctx.from_mont(back.data(), am.data());
            ASSERT_EQ(Natural::from_limbs({back.begin(), back.end()}),
                      a);
            // Modular product vs the plain mpn reference.
            ASSERT_EQ(mont_mul_via_ctx(ctx, a, b), (a * b) % m);
            cases += 2;
        }
    }
}

TEST(MpnMont, OneIsMultiplicativeIdentity)
{
    camp::Rng rng(43);
    Natural m = Natural::random_bits(rng, 320);
    if (!m.is_odd())
        m += Natural(1);
    const MontCtx ctx(m.data(), m.size());
    const Natural a = Natural::random_bits(rng, 319) % m;
    std::vector<Limb> av(ctx.size(), 0), am(ctx.size()), rm(ctx.size()),
        r(ctx.size());
    mpn::copy(av.data(), a.data(), a.size());
    ctx.to_mont(am.data(), av.data());
    // mont(a) * one() == mont(a) since one() is R mod m.
    ctx.mul(rm.data(), am.data(), ctx.one());
    ctx.from_mont(r.data(), rm.data());
    EXPECT_EQ(Natural::from_limbs({r.begin(), r.end()}), a);
}

TEST(MpnMont, SquaringChainMatchesPow)
{
    camp::Rng rng(44);
    Natural m = Natural::random_bits(rng, 200);
    if (!m.is_odd())
        m += Natural(1);
    const MontCtx ctx(m.data(), m.size());
    Natural a = Natural::random_bits(rng, 150) % m;
    // a^(2^5) via repeated Montgomery squaring.
    std::vector<Limb> x(ctx.size(), 0), xm(ctx.size()), t(ctx.size());
    mpn::copy(x.data(), a.data(), a.size());
    ctx.to_mont(xm.data(), x.data());
    for (int i = 0; i < 5; ++i) {
        ctx.mul(t.data(), xm.data(), xm.data());
        xm = t;
    }
    std::vector<Limb> r(ctx.size());
    ctx.from_mont(r.data(), xm.data());
    Natural expect = a;
    for (int i = 0; i < 5; ++i)
        expect = (expect * expect) % m;
    EXPECT_EQ(Natural::from_limbs({r.begin(), r.end()}), expect);
}
