/**
 * @file
 * Support-layer tests: bit helpers, deterministic RNG, least-squares
 * fitting, the table printer, and the multi-hook op-observation
 * mechanism everything above relies on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mpn/natural.hpp"
#include "mpn/ophook.hpp"
#include "support/bits.hpp"
#include "support/regression.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace camp;

TEST(Bits, BitLength)
{
    EXPECT_EQ(bit_length(std::uint64_t{0}), 0);
    EXPECT_EQ(bit_length(std::uint64_t{1}), 1);
    EXPECT_EQ(bit_length(std::uint64_t{255}), 8);
    EXPECT_EQ(bit_length(~std::uint64_t{0}), 64);
    EXPECT_EQ(bit_length(static_cast<u128>(1) << 100), 101);
}

TEST(Bits, Logs)
{
    EXPECT_EQ(floor_log2(1), 0);
    EXPECT_EQ(floor_log2(7), 2);
    EXPECT_EQ(floor_log2(8), 3);
    EXPECT_EQ(ceil_log2(1), 0);
    EXPECT_EQ(ceil_log2(7), 3);
    EXPECT_EQ(ceil_log2(8), 3);
    EXPECT_EQ(ceil_log2(9), 4);
    EXPECT_EQ(ceil_div(10, 3), 4u);
    EXPECT_EQ(ceil_div(9, 3), 3u);
}

TEST(Rng, DeterministicAndWellSpread)
{
    Rng a(42), b(42), c(43);
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t v = a.next();
        seq.push_back(v);
        EXPECT_EQ(v, b.next());
    }
    // Different seed diverges immediately.
    EXPECT_NE(seq[0], c.next());
    // below() respects the bound; uniform() in [0, 1).
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(a.below(17), 17u);
        const double u = a.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Regression, ExactLinearData)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys;
    for (const double x : xs)
        ys.push_back(3.0 * x + 7.0);
    const LinearFit fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, PowerLawRecovery)
{
    std::vector<double> ns, ts;
    for (const double n : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
        ns.push_back(n);
        ts.push_back(2.5e-9 * std::pow(n, 1.585));
    }
    const LinearFit fit = power_law_fit(ns, ts);
    EXPECT_NEAR(fit.slope, 1.585, 1e-9);
    EXPECT_NEAR(std::exp(fit.intercept), 2.5e-9, 1e-12);
}

TEST(Table, AlignmentAndFormat)
{
    Table table({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"b", "22222"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Columns aligned: the second column starts at the same offset in
    // the header line and in each data line.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < out.size()) {
        const std::size_t end = out.find('\n', start);
        lines.push_back(out.substr(start, end - start));
        start = end + 1;
    }
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[0].find("value"), lines[3].find("22222"));
    EXPECT_EQ(Table::fmt_si(2048.0, 3), "2.05K");
    EXPECT_EQ(Table::fmt_si(5.0e9, 3), "5G");
}

namespace {

/** Records enter/exit order for hook-mechanics tests. */
class RecordingHook : public mpn::OpHook
{
  public:
    void
    on_enter(mpn::OpKind kind, std::uint64_t, std::uint64_t) override
    {
        entered.push_back(kind);
    }
    void on_exit(mpn::OpKind kind) override { exited.push_back(kind); }

    std::vector<mpn::OpKind> entered;
    std::vector<mpn::OpKind> exited;
};

} // namespace

TEST(OpHook, MultipleHooksAllObserve)
{
    RecordingHook h1, h2;
    mpn::add_op_hook(&h1);
    mpn::add_op_hook(&h2);
    {
        const mpn::Natural a(7), b(9);
        const mpn::Natural c = a * b;
        (void)c;
    }
    mpn::remove_op_hook(&h1);
    {
        const mpn::Natural c = mpn::Natural(3) + mpn::Natural(4);
        (void)c;
    }
    mpn::remove_op_hook(&h2);
    EXPECT_FALSE(mpn::op_hooks_active());
    ASSERT_EQ(h1.entered.size(), 1u);
    EXPECT_EQ(h1.entered[0], mpn::OpKind::Mul);
    ASSERT_EQ(h2.entered.size(), 2u);
    EXPECT_EQ(h2.entered[1], mpn::OpKind::Add);
    EXPECT_EQ(h1.entered.size(), h1.exited.size());
    EXPECT_EQ(h2.entered.size(), h2.exited.size());
}

TEST(OpHook, KindNamesAreStable)
{
    EXPECT_STREQ(mpn::op_kind_name(mpn::OpKind::Mul), "Mul");
    EXPECT_STREQ(mpn::op_kind_name(mpn::OpKind::Sqrt), "Sqrt");
    EXPECT_STREQ(mpn::op_kind_name(mpn::OpKind::Gcd), "Gcd");
}
