/**
 * @file
 * Wall-clock async serving acceptance suite (DESIGN.md §15): the Clock
 * abstraction, the submit_async/Handle client edge, the SubmitQueue
 * wave ring, sticky-session shard affinity, hardened CAMP_SERVE_* env
 * parsing, and above all the virtual-as-oracle differential property —
 * a wall-clock run with overlapping in-flight waves settles exactly
 * the admitted/shed/timeout outcome set the deterministic virtual
 * engine computes for the same workload and config, with bit-identical
 * products, at every CAMP_SHARDS x CAMP_SERVE_INFLIGHT combination the
 * acceptance matrix names ({1,4} x {1,4}).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/queue.hpp"
#include "exec/scheduler.hpp"
#include "exec/sim_device.hpp"
#include "mpapca/cost_model.hpp"
#include "mpapca/ledger.hpp"
#include "mpn/natural.hpp"
#include "serve/breaker.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "support/clock.hpp"
#include "support/errors.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace exec = camp::exec;
namespace serve = camp::serve;
namespace sim = camp::sim;
namespace support = camp::support;
using camp::mpn::Natural;

namespace {

std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

std::vector<serve::RequestStatus>
statuses_of(const serve::ServeReport& report)
{
    std::vector<serve::RequestStatus> out;
    out.reserve(report.outcomes.size());
    for (const serve::Outcome& outcome : report.outcomes)
        out.push_back(outcome.status);
    return out;
}

/** The differential identity: a wall run reproduces the virtual
 * oracle's full settled set — statuses, shed/timeout id sets, wave
 * count, attempts, and bit-identical products. */
void
expect_differential_match(const serve::ServeReport& oracle,
                          const serve::ServeReport& wall,
                          const std::vector<serve::Request>& workload)
{
    ASSERT_EQ(oracle.outcomes.size(), wall.outcomes.size());
    EXPECT_EQ(statuses_of(oracle), statuses_of(wall));
    EXPECT_EQ(oracle.shed_ids, wall.shed_ids);
    EXPECT_EQ(oracle.timeout_ids, wall.timeout_ids);
    EXPECT_EQ(oracle.waves, wall.waves);
    EXPECT_TRUE(oracle.conserved()) << oracle.table();
    EXPECT_TRUE(wall.conserved()) << wall.table();
    for (std::size_t i = 0; i < oracle.outcomes.size(); ++i) {
        const serve::Outcome& a = oracle.outcomes[i];
        const serve::Outcome& b = wall.outcomes[i];
        EXPECT_EQ(a.status, b.status) << "request " << i;
        EXPECT_EQ(a.attempts, b.attempts) << "request " << i;
        EXPECT_EQ(a.latency_us, b.latency_us)
            << "virtual latency is mode-invariant, request " << i;
        if (a.status == serve::RequestStatus::Completed) {
            EXPECT_EQ(a.product, b.product)
                << "bit-identical products, request " << i;
            EXPECT_EQ(a.product, workload[i].a * workload[i].b)
                << "and exact, request " << i;
        }
    }
    ASSERT_EQ(oracle.tenants.size(), wall.tenants.size());
    for (std::size_t t = 0; t < oracle.tenants.size(); ++t) {
        EXPECT_EQ(oracle.tenants[t].latencies_us,
                  wall.tenants[t].latencies_us)
            << oracle.tenants[t].name;
    }
}

serve::ServeConfig
differential_config(unsigned inflight, bool wall)
{
    serve::ServeConfig config;
    config.limits.max_queue_depth = 16;
    config.max_backlog_us = 32.0;
    config.wave_size = 8;
    config.max_inflight_waves = inflight;
    config.wall_clock = wall;
    return config;
}

std::vector<serve::Request>
differential_workload(std::uint64_t seed)
{
    serve::WorkloadSpec spec;
    spec.seed = seed;
    spec.requests = 160;
    spec.mean_interarrival_us = 1.5; // overloaded: decisions bite
    spec.max_bits = 1024;
    spec.deadline_fraction = 0.2;
    spec.deadline_slack_us = 60;
    return serve::generate_workload(spec);
}

} // namespace

// ---------------------------------------------------------------------
// Clock contract
// ---------------------------------------------------------------------

TEST(Clock, VirtualClockIsASteerableMonotoneLedger)
{
    support::VirtualClock clock;
    EXPECT_TRUE(clock.is_virtual());
    EXPECT_EQ(clock.now_us(), 0u);
    clock.advance_to_us(40);
    EXPECT_EQ(clock.now_us(), 40u);
    clock.advance_to_us(25); // never backwards
    EXPECT_EQ(clock.now_us(), 40u);
    EXPECT_EQ(clock.now(), support::Clock::duration(40));
}

TEST(Clock, WallClockIgnoresSteeringAndMovesForward)
{
    support::WallClock clock;
    EXPECT_FALSE(clock.is_virtual());
    const std::uint64_t before = clock.now_us();
    clock.advance_to_us(before + 1000000000ull); // steering is a no-op
    const std::uint64_t after = clock.now_us();
    EXPECT_GE(after, before);
    EXPECT_LT(after, before + 1000000000ull);
}

// ---------------------------------------------------------------------
// SubmitQueue wave ring
// ---------------------------------------------------------------------

TEST(SubmitQueueRing, OverlappingFlushesResolveOutOfOrder)
{
    exec::SimDevice device;
    exec::SubmitQueue queue(device, /*max_pending=*/0,
                            /*parallelism=*/1, /*inflight_waves=*/2);
    EXPECT_EQ(queue.inflight_waves(), 2u);

    camp::Rng rng(fuzz_seed(0x41a9));
    std::vector<std::pair<Natural, Natural>> pairs;
    std::vector<exec::SubmitQueue::Future> futures;
    for (int i = 0; i < 12; ++i) {
        pairs.emplace_back(Natural::random_bits(rng, 256),
                           Natural::random_bits(rng, 256));
        futures.push_back(
            queue.submit(pairs.back().first, pairs.back().second));
    }
    exec::SubmitQueue::Ticket first = queue.begin_flush();
    ASSERT_TRUE(first.valid());
    EXPECT_EQ(queue.inflight_flushes(), 1u);
    // Everything was already claimed by `first`; submit more for the
    // second wave.
    std::vector<std::pair<Natural, Natural>> more;
    for (int i = 0; i < 5; ++i) {
        more.emplace_back(Natural::random_bits(rng, 128),
                          Natural::random_bits(rng, 128));
        futures.push_back(
            queue.submit(more.back().first, more.back().second));
    }
    exec::SubmitQueue::Ticket second = queue.begin_flush();
    ASSERT_TRUE(second.valid());
    EXPECT_EQ(queue.inflight_flushes(), 2u);
    EXPECT_GE(queue.stats().overlapped, 1u)
        << "the second begin overlapped the first";

    // Publish out of order: the ring does not require FIFO completion.
    EXPECT_EQ(queue.run_flush(std::move(second)), more.size());
    EXPECT_EQ(queue.run_flush(std::move(first)), pairs.size());
    EXPECT_EQ(queue.inflight_flushes(), 0u);

    pairs.insert(pairs.end(), more.begin(), more.end());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(futures[i].get(), pairs[i].first * pairs[i].second)
            << "product " << i;
    EXPECT_EQ(queue.stats().flushes, 2u);
}

TEST(SubmitQueueRing, ClassicFlushStillDrainsEverything)
{
    exec::SimDevice device;
    exec::SubmitQueue queue(device, 0, 1, /*inflight_waves=*/3);
    camp::Rng rng(fuzz_seed(0x9921));
    std::vector<std::pair<Natural, Natural>> pairs;
    std::vector<exec::SubmitQueue::Future> futures;
    for (int i = 0; i < 9; ++i) {
        pairs.emplace_back(Natural::random_bits(rng, 200),
                           Natural::random_bits(rng, 200));
        futures.push_back(
            queue.submit(pairs.back().first, pairs.back().second));
    }
    EXPECT_EQ(queue.flush(), 9u);
    queue.wait_all();
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(futures[i].get(), pairs[i].first * pairs[i].second);
}

// ---------------------------------------------------------------------
// The virtual-as-oracle differential property
// ---------------------------------------------------------------------

TEST(ServeDifferential, WallRunSettlesTheVirtualOracleSet)
{
    // The acceptance matrix: shards {1,4} x inflight {1,4}, fault-free
    // (timing-dependent breaker episodes need armed faults AND overlap
    // to diverge; fault-free, the decision ledger is the whole story).
    const std::vector<serve::Request> workload =
        differential_workload(fuzz_seed(0xd1ff5e47e));
    for (const unsigned shards : {1u, 4u}) {
        for (const unsigned inflight : {1u, 4u}) {
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " inflight=" + std::to_string(inflight));
            exec::ShardPolicy shard_policy;
            shard_policy.shards = shards;
            shard_policy.drain_fault_threshold = 0;

            exec::ShardedScheduler oracle_device(
                sim::default_config(), shard_policy);
            serve::Server oracle_server(
                differential_config(inflight, /*wall=*/false),
                oracle_device);
            const serve::ServeReport oracle =
                oracle_server.process(workload);

            exec::ShardedScheduler wall_device(sim::default_config(),
                                               shard_policy);
            serve::Server wall_server(
                differential_config(inflight, /*wall=*/true),
                wall_device);
            const serve::ServeReport wall =
                wall_server.process(workload);

            expect_differential_match(oracle, wall, workload);
            // The oracle's clock IS the ledger: skew identically 0.
            for (const serve::Outcome& outcome : oracle.outcomes)
                EXPECT_EQ(outcome.skew_us, 0);
            EXPECT_EQ(oracle.totals.wall_late, 0u);
            EXPECT_EQ(oracle.wall_end_us, oracle.virtual_end_us);
        }
    }
}

TEST(ServeDifferential, ArmedFaultsMatchAtSerialInflight)
{
    // With faults armed the device-health observations stay
    // deterministic as long as waves execute serially (inflight=1):
    // wave composition, fault streams (position-seeded), retries, and
    // fallbacks are then identical between virtual and wall runs.
    sim::SimConfig sim_config = sim::default_config();
    sim_config.faults.seed = 0x5e47e1ull;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.02;
    sim_config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.01;

    const std::vector<serve::Request> workload =
        differential_workload(fuzz_seed(0xfa0c7));

    exec::SimDevice oracle_device(sim_config);
    serve::Server oracle_server(differential_config(1, false),
                                oracle_device);
    const serve::ServeReport oracle = oracle_server.process(workload);

    exec::SimDevice wall_device(sim_config);
    serve::Server wall_server(differential_config(1, true),
                              wall_device);
    const serve::ServeReport wall = wall_server.process(workload);

    EXPECT_GT(oracle.totals.faulty_results, 0u)
        << "faults must fire for this differential to bite";
    expect_differential_match(oracle, wall, workload);
    EXPECT_EQ(oracle.totals.faulty_results, wall.totals.faulty_results);
    EXPECT_EQ(oracle.totals.retries, wall.totals.retries);
    EXPECT_EQ(oracle.totals.fallbacks, wall.totals.fallbacks);
}

TEST(ServeDifferential, LedgerFoldIsExactInWallMode)
{
    sim::SimConfig sim_config = sim::default_config();
    sim_config.faults.seed = 0x1ed6e4ull;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.02;
    exec::SimDevice device(sim_config);

    camp::mpapca::CostModel model{};
    camp::mpapca::Ledger ledger(model);
    serve::Server server(differential_config(4, true), device,
                         &ledger);
    const serve::ServeReport report =
        server.process(differential_workload(fuzz_seed(0x1ed6)));
    EXPECT_TRUE(report.conserved()) << report.table();

    std::uint64_t attempts = 0;
    for (const serve::Outcome& outcome : report.outcomes)
        attempts += outcome.attempts;
    const camp::mpapca::FaultStats folded =
        ledger.fault_stats_snapshot();
    EXPECT_EQ(folded.checks, attempts);
    EXPECT_EQ(folded.detected, report.totals.faulty_results);
    EXPECT_EQ(folded.retried, report.totals.retries);
    EXPECT_EQ(folded.fallbacks, report.totals.fallbacks);
}

// ---------------------------------------------------------------------
// The async client edge
// ---------------------------------------------------------------------

TEST(ServeAsync, HandlesSettleWithCallbacksExactlyOnce)
{
    const std::vector<serve::Request> workload =
        differential_workload(fuzz_seed(0xa51c));
    exec::SimDevice device;
    serve::Server server(differential_config(2, false), device);

    std::vector<serve::Server::Handle> handles;
    std::vector<std::atomic<int>> fired(workload.size());
    for (auto& f : fired)
        f.store(0);
    handles.reserve(workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        serve::Server::Handle handle =
            server.submit_async(workload[i]);
        ASSERT_TRUE(handle.valid());
        handle.on_settle([&fired, i](const serve::Outcome& outcome) {
            fired[i].fetch_add(1);
            EXPECT_EQ(outcome.id, i);
        });
        handles.push_back(std::move(handle));
    }
    const serve::ServeReport report = server.finish();
    EXPECT_TRUE(report.conserved()) << report.table();
    ASSERT_EQ(report.outcomes.size(), workload.size());

    for (std::size_t i = 0; i < handles.size(); ++i) {
        EXPECT_TRUE(handles[i].settled()) << i;
        EXPECT_EQ(fired[i].load(), 1) << "exactly-once callback " << i;
        const serve::Outcome& outcome = handles[i].outcome();
        EXPECT_EQ(outcome.status, report.outcomes[i].status) << i;
        EXPECT_EQ(outcome.attempts, report.outcomes[i].attempts);
        if (outcome.status == serve::RequestStatus::Completed)
            EXPECT_EQ(outcome.product,
                      workload[i].a * workload[i].b)
                << "the handle retains the exact product, " << i;
        // Registering after settlement fires immediately.
        int late = 0;
        handles[i].on_settle(
            [&late](const serve::Outcome&) { ++late; });
        EXPECT_EQ(late, 1);
    }
}

TEST(ServeAsync, AsyncSessionMatchesBatchProcess)
{
    const std::vector<serve::Request> workload =
        differential_workload(fuzz_seed(0xbac4));
    exec::SimDevice device_a;
    serve::Server batch(differential_config(1, false), device_a);
    const serve::ServeReport batch_report = batch.process(workload);

    exec::SimDevice device_b;
    serve::Server incremental(differential_config(1, false), device_b);
    for (const serve::Request& request : workload)
        incremental.submit_async(request);
    const serve::ServeReport async_report = incremental.finish();

    EXPECT_EQ(statuses_of(batch_report), statuses_of(async_report));
    EXPECT_EQ(batch_report.shed_ids, async_report.shed_ids);
    EXPECT_EQ(batch_report.timeout_ids, async_report.timeout_ids);
    EXPECT_EQ(batch_report.waves, async_report.waves);
    EXPECT_EQ(batch_report.virtual_end_us,
              async_report.virtual_end_us);
}

TEST(ServeAsync, WaitBlocksUntilAnotherThreadFinishes)
{
    std::vector<serve::Request> workload =
        differential_workload(fuzz_seed(0x3a17));
    exec::SimDevice device;
    serve::Server server(differential_config(2, true), device);
    serve::Server::Handle last;
    for (const serve::Request& request : workload)
        last = server.submit_async(request);
    std::atomic<bool> settled_seen{false};
    std::thread waiter([&last, &settled_seen] {
        last.wait();
        settled_seen.store(true);
    });
    const serve::ServeReport report = server.finish();
    waiter.join();
    EXPECT_TRUE(settled_seen.load());
    EXPECT_TRUE(last.settled());
    EXPECT_TRUE(report.conserved());
}

TEST(ServeAsync, SessionDisciplineIsEnforced)
{
    exec::SimDevice device;
    serve::Server server(differential_config(1, false), device);
    serve::Request first;
    first.id = 0;
    first.tenant = "alpha";
    first.arrival_us = 100;
    first.a = Natural(3);
    first.b = Natural(5);
    server.submit_async(first);

    // The ledger cannot run backwards.
    serve::Request earlier = first;
    earlier.id = 1;
    earlier.arrival_us = 50;
    EXPECT_THROW(server.submit_async(earlier), camp::InvalidArgument);

    // process() refuses to trample an open session.
    EXPECT_THROW(server.process({}), camp::InvalidArgument);
    // finish() closes it; a second finish has nothing to close.
    EXPECT_TRUE(server.finish().conserved());
    EXPECT_THROW(server.finish(), camp::InvalidArgument);
}

// ---------------------------------------------------------------------
// Sticky sessions
// ---------------------------------------------------------------------

TEST(StickySessions, RepeatedOperandsPinWithoutChangingOutcomes)
{
    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x571c4);
    spec.requests = 200;
    spec.max_bits = 1024;
    spec.repeat_fraction = 0.5; // heavy repeated-operand traffic
    spec.deadline_fraction = 0.0;
    const std::vector<serve::Request> workload =
        serve::generate_workload(spec);

    exec::ShardPolicy plain_policy;
    plain_policy.shards = 4;
    plain_policy.drain_fault_threshold = 0;
    exec::ShardPolicy sticky_policy = plain_policy;
    sticky_policy.sticky_sessions = true;

    exec::ShardedScheduler plain(sim::default_config(), plain_policy);
    exec::ShardedScheduler sticky(sim::default_config(),
                                  sticky_policy);

    // The affinity table only sees operands that reach the device;
    // disable the serve-layer product cache so the repeat traffic this
    // test is about actually hits the scheduler (with the cache on,
    // repeats are served upstream — tests/test_opcache.cpp covers
    // that path).
    serve::ServeConfig config = differential_config(1, false);
    config.use_opcache = false;
    const serve::ServeReport plain_report =
        serve::Server(config, plain).process(workload);
    const serve::ServeReport sticky_report =
        serve::Server(config, sticky).process(workload);

    // Placement is invisible in the outcome (the resharding
    // determinism contract) ...
    EXPECT_EQ(statuses_of(plain_report), statuses_of(sticky_report));
    EXPECT_EQ(plain_report.shed_ids, sticky_report.shed_ids);
    for (std::size_t i = 0; i < workload.size(); ++i)
        if (sticky_report.outcomes[i].status ==
            serve::RequestStatus::Completed)
            EXPECT_EQ(sticky_report.outcomes[i].product,
                      workload[i].a * workload[i].b);
    // ... but the affinity table genuinely pinned repeats.
    EXPECT_GT(sticky.stats().affinity_hits, 0u);
    EXPECT_GT(sticky.stats().affinity_misses, 0u);
    EXPECT_EQ(plain.stats().affinity_hits, 0u);
}

// ---------------------------------------------------------------------
// Breaker on the serving clock
// ---------------------------------------------------------------------

namespace {

/** Device whose batch path throws HardwareFault for the first
 * @p sick batches, exact afterwards. */
class SickThenHealedDevice : public exec::Device
{
  public:
    explicit SickThenHealedDevice(unsigned sick) : sick_(sick) {}

    const char* name() const override { return "sick-then-healed"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural& a, const Natural& b) override
    {
        return exec::MulOutcome{a * b, 0};
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              unsigned) override
    {
        if (sick_ > 0) {
            --sick_;
            throw camp::HardwareFault("sick batch");
        }
        sim::BatchResult result;
        result.products.reserve(pairs.size());
        for (const auto& [a, b] : pairs)
            result.products.push_back(a * b);
        result.per_product.resize(pairs.size());
        result.parallelism = 1;
        return result;
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return exec::CostEstimate{1.0, 1e-6, 0.0};
    }

  private:
    unsigned sick_;
};

} // namespace

TEST(BreakerClock, OpenResidencyAccumulatesOnTheSharedClock)
{
    serve::BreakerPolicy policy;
    policy.open_threshold = 2;
    policy.probe_after = 1;
    support::VirtualClock clock;
    serve::BreakerDevice breaker(
        std::make_unique<SickThenHealedDevice>(2), policy, &clock);
    const std::vector<std::pair<Natural, Natural>> pairs = {
        {Natural(7), Natural(9)}};

    clock.advance_to_us(10);
    EXPECT_THROW(breaker.mul_batch(pairs), camp::HardwareFault);
    EXPECT_THROW(breaker.mul_batch(pairs), camp::HardwareFault);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Open);
    EXPECT_EQ(breaker.stats().last_transition_us, 10u);

    clock.advance_to_us(50);
    // Quarantined batch: exact fallback, then HalfOpen (probe_after=1)
    // — 40 virtual us of Open residency on the shared clock.
    const sim::BatchResult quarantined = breaker.mul_batch(pairs);
    EXPECT_EQ(quarantined.products[0], Natural(63));
    EXPECT_EQ(breaker.state(), serve::BreakerState::HalfOpen);
    EXPECT_EQ(breaker.stats().open_total.count(), 40);
    EXPECT_EQ(breaker.stats().last_transition_us, 50u);

    clock.advance_to_us(60);
    const sim::BatchResult probe = breaker.mul_batch(pairs); // healed
    EXPECT_EQ(probe.products[0], Natural(63));
    EXPECT_EQ(breaker.state(), serve::BreakerState::Closed);
    EXPECT_EQ(breaker.stats().open_total.count(), 40)
        << "HalfOpen time is not Open residency";
    EXPECT_EQ(breaker.stats().last_transition_us, 60u);
}

// ---------------------------------------------------------------------
// Hardened CAMP_SERVE_* environment parsing
// ---------------------------------------------------------------------

namespace {

void
expect_env_throws_naming(const char* name, const char* value)
{
    ::setenv(name, value, 1);
    try {
        serve::serve_config_from_env();
        ADD_FAILURE() << name << "='" << value
                      << "' must throw InvalidArgument";
    } catch (const camp::InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find(name),
                  std::string::npos)
            << "the error must name the variable: " << e.what();
    }
    ::unsetenv(name);
}

} // namespace

TEST(ServeEnv, JunkOverflowAndEmptyValuesThrowNamingTheVariable)
{
    const char* numeric[] = {
        "CAMP_SERVE_DEPTH",       "CAMP_SERVE_RETRY_BUDGET",
        "CAMP_SERVE_BACKLOG_US",  "CAMP_SERVE_WAVE",
        "CAMP_SERVE_INFLIGHT",    "CAMP_SERVE_DEADLINE_US",
        "CAMP_SERVE_BACKOFF_US",  "CAMP_SERVE_ATTEMPTS",
        "CAMP_SERVE_BREAKER_THRESHOLD", "CAMP_SERVE_BREAKER_PROBE"};
    for (const char* name : numeric) {
        SCOPED_TRACE(name);
        expect_env_throws_naming(name, "banana");
        expect_env_throws_naming(name, "12abc");
        expect_env_throws_naming(
            name, "123456789012345678901234567890"); // ERANGE
        expect_env_throws_naming(name, ""); // set-but-empty is a typo
        expect_env_throws_naming(name, "-4");
    }
    // Zero is junk for the positive knobs, fine for the deadline.
    expect_env_throws_naming("CAMP_SERVE_WAVE", "0");
    ::setenv("CAMP_SERVE_DEADLINE_US", "0", 1);
    EXPECT_EQ(serve::serve_config_from_env().default_deadline.count(),
              0);
    ::unsetenv("CAMP_SERVE_DEADLINE_US");
    // The wall-clock flag accepts 1/true/on and 0/false/off only.
    expect_env_throws_naming("CAMP_SERVE_WALL", "banana");
    expect_env_throws_naming("CAMP_SERVE_WALL", "");
    ::setenv("CAMP_SERVE_WALL", "true", 1);
    EXPECT_TRUE(serve::serve_config_from_env().wall_clock);
    ::setenv("CAMP_SERVE_WALL", "off", 1);
    EXPECT_FALSE(serve::serve_config_from_env().wall_clock);
    ::unsetenv("CAMP_SERVE_WALL");
}

TEST(ServeEnv, WorkloadRequestCountIsHardenedToo)
{
    for (const char* bad :
         {"junk", "", "0", "-3", "123456789012345678901234567890"}) {
        ::setenv("CAMP_SERVE_REQUESTS", bad, 1);
        try {
            serve::workload_spec_from_env();
            ADD_FAILURE() << "CAMP_SERVE_REQUESTS='" << bad
                          << "' must throw";
        } catch (const camp::InvalidArgument& e) {
            EXPECT_NE(
                std::string(e.what()).find("CAMP_SERVE_REQUESTS"),
                std::string::npos)
                << e.what();
        }
    }
    ::setenv("CAMP_SERVE_REQUESTS", "17", 1);
    EXPECT_EQ(serve::workload_spec_from_env().requests, 17u);
    ::unsetenv("CAMP_SERVE_REQUESTS");
}
