/**
 * @file
 * ShardedScheduler tests: the cross-shard differential suite (products
 * bit-identical across CAMP_SHARDS=1/2/8 and vs the host CPU, with
 * per-product fault streams invariant under resharding), the LPT
 * partitioner, the drain/redistribution failure protocol, the
 * registry/environment surface, queue integration, backpressure, and
 * Runtime fault-stats folding.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "exec/cpu_device.hpp"
#include "exec/queue.hpp"
#include "exec/registry.hpp"
#include "exec/scheduler.hpp"
#include "exec/sim_device.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "support/errors.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace exec = camp::exec;
namespace sim = camp::sim;
namespace metrics = camp::support::metrics;
using camp::mpn::Natural;
using camp::mpapca::Runtime;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** Scheduler over @p shards sim instances (fault-free default
 * config), waves never draining. */
std::unique_ptr<exec::ShardedScheduler>
sim_sharded(unsigned shards,
            const sim::SimConfig& config = sim::default_config())
{
    exec::ShardPolicy policy;
    policy.shards = shards;
    policy.drain_fault_threshold = 0; // keep the shard set constant
    return std::make_unique<exec::ShardedScheduler>(config, policy);
}

/** One random batch mixing the differential-suite shapes: wide spread
 * of widths, the 35904-bit monolithic cap boundary, zero and one-limb
 * operands, and duplicated pairs. */
std::vector<std::pair<Natural, Natural>>
random_batch(camp::Rng& rng, std::uint64_t cap_bits)
{
    const std::size_t count = 1 + rng.below(6);
    std::vector<std::pair<Natural, Natural>> pairs;
    pairs.reserve(count + 1);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t shape = rng.below(100);
        std::uint64_t bits_a = 1 + rng.below(2048);
        std::uint64_t bits_b = 1 + rng.below(2048);
        if (shape < 2) {
            // The simulator's monolithic capability boundary.
            bits_a = cap_bits - rng.below(64);
            bits_b = cap_bits - rng.below(64);
        } else if (shape < 10) {
            bits_a = 1 + rng.below(64); // one-limb operand
        } else if (shape < 14) {
            pairs.emplace_back(Natural(), Natural(7)); // zero operand
            continue;
        }
        pairs.emplace_back(Natural::random_bits(rng, bits_a),
                           Natural::random_bits(rng, bits_b));
    }
    if (pairs.size() > 1 && rng.below(3) == 0)
        pairs.push_back(pairs.front()); // duplicated pair
    return pairs;
}

/** A device whose batch path always throws (its mul is exact), for
 * exercising the wave redistribution protocol. */
class ThrowingBatchDevice : public exec::Device
{
  public:
    const char* name() const override { return "throwing"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural& a, const Natural& b) override
    {
        return exec::MulOutcome{a * b, 0};
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>&,
              unsigned) override
    {
        throw std::runtime_error("batch fabric offline");
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return {};
    }
};

/** A device whose single-product path always throws (its batch path is
 * exact), for exercising the mul() drain protocol. */
class ThrowingMulDevice : public exec::Device
{
  public:
    const char* name() const override { return "throwing-mul"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural&, const Natural&) override
    {
        throw camp::HardwareFault("mul datapath offline");
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              unsigned) override
    {
        sim::BatchResult result;
        for (const auto& [a, b] : pairs) {
            result.products.push_back(a * b);
            result.per_product.push_back({});
        }
        return result;
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return {};
    }
};

} // namespace

TEST(LptAssign, DeterministicBalancedPartition)
{
    // Identical weights on both shards: classic LPT lands a perfectly
    // balanced 8/8 split, deterministically.
    const std::vector<std::vector<double>> weights = {
        {5, 3, 3, 2, 2, 1},
        {5, 3, 3, 2, 2, 1},
    };
    const auto assign = exec::ShardedScheduler::lpt_assign(weights);
    ASSERT_EQ(assign.size(), 2u);
    EXPECT_EQ(assign[0], (std::vector<std::size_t>{0, 3, 5}));
    EXPECT_EQ(assign[1], (std::vector<std::size_t>{1, 2, 4}));
    EXPECT_EQ(assign, exec::ShardedScheduler::lpt_assign(weights))
        << "assignment must be deterministic";
}

TEST(LptAssign, CoversEveryItemOnceAndBeatsRoundRobin)
{
    camp::Rng rng(fuzz_seed(0x10f7));
    for (int round = 0; round < 50; ++round) {
        const std::size_t shards = 2 + rng.below(7);
        const std::size_t items = 1 + rng.below(40);
        std::vector<double> w(items);
        for (double& x : w)
            x = 1.0 + static_cast<double>(rng.below(1000));
        const std::vector<std::vector<double>> weights(shards, w);
        const auto assign = exec::ShardedScheduler::lpt_assign(weights);
        ASSERT_EQ(assign.size(), shards);

        std::vector<int> seen(items, 0);
        double makespan = 0;
        for (const auto& mine : assign) {
            double load = 0;
            EXPECT_TRUE(
                std::is_sorted(mine.begin(), mine.end()));
            for (const std::size_t item : mine) {
                ASSERT_LT(item, items);
                ++seen[item];
                load += w[item];
            }
            makespan = std::max(makespan, load);
        }
        for (std::size_t i = 0; i < items; ++i)
            EXPECT_EQ(seen[i], 1) << "item " << i;

        // Cost balancing is the point: LPT's makespan never exceeds a
        // round-robin split's.
        std::vector<double> rr(shards, 0.0);
        for (std::size_t i = 0; i < items; ++i)
            rr[i % shards] += w[i];
        const double rr_makespan =
            *std::max_element(rr.begin(), rr.end());
        EXPECT_LE(makespan, rr_makespan + 1e-9) << "round " << round;
    }
}

TEST(ShardedScheduler, DifferentialBitIdenticalAcrossShardCounts)
{
    // The acceptance differential: >= 1000 random batches, products
    // bit-identical across shard counts 1/2/8 and vs the host CPU.
    const std::uint64_t seed = fuzz_seed(0x5a7d);
    const std::uint64_t cap =
        sim::default_config().monolithic_cap_bits;
    exec::CpuDevice cpu;
    const auto s1 = sim_sharded(1);
    const auto s2 = sim_sharded(2);
    const auto s8 = sim_sharded(8);
    EXPECT_EQ(s1->base_cap_bits(), cap);
    camp::Rng rng(seed);
    for (int batch = 0; batch < 1000; ++batch) {
        const auto pairs = random_batch(rng, cap);
        const sim::BatchResult golden = cpu.mul_batch(pairs);
        const sim::BatchResult r1 = s1->mul_batch(pairs);
        const sim::BatchResult r2 = s2->mul_batch(pairs);
        const sim::BatchResult r8 = s8->mul_batch(pairs);
        ASSERT_EQ(r1.products.size(), pairs.size());
        ASSERT_EQ(r2.products.size(), pairs.size());
        ASSERT_EQ(r8.products.size(), pairs.size());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            ASSERT_EQ(r1.products[i], golden.products[i])
                << "shards=1 batch=" << batch << " i=" << i
                << " CAMP_FUZZ_SEED=" << seed;
            ASSERT_EQ(r2.products[i], golden.products[i])
                << "shards=2 batch=" << batch << " i=" << i
                << " CAMP_FUZZ_SEED=" << seed;
            ASSERT_EQ(r8.products[i], golden.products[i])
                << "shards=8 batch=" << batch << " i=" << i
                << " CAMP_FUZZ_SEED=" << seed;
        }
    }
    EXPECT_EQ(s8->stats().waves, 1000u);
    EXPECT_EQ(s8->alive_count(), 8u) << "nothing drains fault-free";
}

TEST(ShardedScheduler, FaultStreamsInvariantUnderResharding)
{
    // Armed fault injection: every product's fault stream is seeded by
    // its wave-global index, so per-product injection accounting is
    // bit-identical at every shard count — and recovery keeps the
    // returned products exact everywhere.
    sim::SimConfig config = sim::default_config();
    config.faults.seed = 0xdeadfa17ull;
    config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.01;
    config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.01;

    const auto s1 = sim_sharded(1, config);
    const auto s2 = sim_sharded(2, config);
    const auto s8 = sim_sharded(8, config);
    EXPECT_TRUE(s1->shard(0).policy().enabled)
        << "armed faults auto-enable per-shard checking";

    const std::uint64_t redistributed_metric_before =
        metrics::counter("exec.scheduler.redistributed").value();

    const std::uint64_t seed = fuzz_seed(0xfa175eedull);
    camp::Rng rng(seed);
    std::uint64_t total_faulty = 0;
    for (int batch = 0; batch < 40; ++batch) {
        std::vector<std::pair<Natural, Natural>> pairs;
        for (int i = 0; i < 16; ++i)
            pairs.emplace_back(
                Natural::random_bits(rng, 1 + rng.below(2500)),
                Natural::random_bits(rng, 1 + rng.below(2500)));
        const sim::BatchResult r1 = s1->mul_batch(pairs);
        const sim::BatchResult r2 = s2->mul_batch(pairs);
        const sim::BatchResult r8 = s8->mul_batch(pairs);
        ASSERT_EQ(r1.per_product.size(), pairs.size());
        EXPECT_EQ(r1.faulty, r2.faulty);
        EXPECT_EQ(r1.faulty, r8.faulty);
        total_faulty += r1.faulty;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            const Natural golden =
                pairs[i].first * pairs[i].second;
            ASSERT_EQ(r1.products[i], golden)
                << "batch=" << batch << " i=" << i
                << " CAMP_FUZZ_SEED=" << seed;
            ASSERT_EQ(r2.products[i], golden)
                << "batch=" << batch << " i=" << i;
            ASSERT_EQ(r8.products[i], golden)
                << "batch=" << batch << " i=" << i;
            // The resharding-determinism contract, element-wise.
            EXPECT_EQ(r1.per_product[i].injected,
                      r2.per_product[i].injected)
                << i;
            EXPECT_EQ(r1.per_product[i].injected,
                      r8.per_product[i].injected)
                << i;
            EXPECT_EQ(r1.per_product[i].faulty,
                      r2.per_product[i].faulty)
                << i;
            EXPECT_EQ(r1.per_product[i].faulty,
                      r8.per_product[i].faulty)
                << i;
        }
    }
    EXPECT_GT(total_faulty, 0u)
        << "rates must actually corrupt products for this test to "
           "mean anything";
    // drain_fault_threshold = 0: the shard set never shrank, so every
    // shard count executed its full configuration throughout.
    EXPECT_EQ(s2->alive_count(), 2u);
    EXPECT_EQ(s8->alive_count(), 8u);
    EXPECT_EQ(s1->stats().redistributed, total_faulty);
    EXPECT_EQ(s2->stats().redistributed, total_faulty);
    EXPECT_EQ(s8->stats().redistributed, total_faulty);
    // Drain-path accounting: the process-wide counter moved by exactly
    // the redistributions the three schedulers performed, and each
    // scheduler's per-shard stats sum to the faults injected into it.
    EXPECT_EQ(metrics::counter("exec.scheduler.redistributed").value() -
                  redistributed_metric_before,
              3 * total_faulty);
    for (const auto* scheduler : {s1.get(), s2.get(), s8.get()}) {
        std::uint64_t per_shard_sum = 0;
        for (std::size_t i = 0; i < scheduler->shard_count(); ++i)
            per_shard_sum += scheduler->shard_stats(i).redistributed;
        EXPECT_EQ(per_shard_sum, total_faulty)
            << "shards=" << scheduler->shard_count();
    }
}

TEST(ShardedScheduler, PersistentlyFaultyShardDrainsAndRedistributes)
{
    // Shard 0 faults on essentially every product; shard 1 is clean.
    // The wave must come back exact, the faulty share redistributed,
    // and shard 0 drained from the next wave on.
    sim::SimConfig faulty = sim::default_config();
    faulty.faults.seed = 7;
    faulty.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.2;
    faulty.faults.rate_at(camp::FaultSite::GatherCarry) = 0.1;

    std::vector<std::unique_ptr<exec::Device>> devices;
    devices.push_back(std::make_unique<exec::SimDevice>(faulty));
    devices.push_back(std::make_unique<exec::SimDevice>());
    exec::ShardPolicy policy;
    policy.check.enabled = true;
    policy.check.sample_rate = 1.0;
    policy.drain_fault_threshold = 1;
    exec::ShardedScheduler scheduler(std::move(devices), policy);

    const std::uint64_t redistributed_before =
        metrics::counter("exec.shard.0.redistributed").value();

    camp::Rng rng(fuzz_seed(0xd7a1full));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 16; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 2048),
                           Natural::random_bits(rng, 2048));
    const sim::BatchResult wave1 = scheduler.mul_batch(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        ASSERT_EQ(wave1.products[i],
                  pairs[i].first * pairs[i].second)
            << i;
    EXPECT_GT(wave1.faulty, 0u);
    const exec::ShardStats shard0 = scheduler.shard_stats(0);
    EXPECT_GT(shard0.redistributed, 0u);
    EXPECT_TRUE(shard0.drained);
    EXPECT_FALSE(scheduler.shard_alive(0));
    EXPECT_TRUE(scheduler.shard_alive(1));
    EXPECT_EQ(scheduler.stats().drains, 1u);
    EXPECT_EQ(metrics::counter("exec.shard.0.redistributed").value() -
                  redistributed_before,
              shard0.redistributed)
        << "exec.shard.0.redistributed must track the shard stat";

    // The next wave runs entirely on the survivor — and is exact.
    const sim::BatchResult wave2 = scheduler.mul_batch(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        ASSERT_EQ(wave2.products[i],
                  pairs[i].first * pairs[i].second)
            << i;
    EXPECT_EQ(wave2.faulty, 0u);
    EXPECT_EQ(scheduler.shard_stats(0).waves, 1u);
    EXPECT_EQ(scheduler.shard_stats(1).waves, 2u);
}

TEST(ShardedScheduler, ThrowingShardWaveRedistributesToSurvivors)
{
    std::vector<std::unique_ptr<exec::Device>> devices;
    devices.push_back(std::make_unique<ThrowingBatchDevice>());
    devices.push_back(std::make_unique<exec::CpuDevice>());
    exec::ShardPolicy policy;
    exec::ShardedScheduler scheduler(std::move(devices), policy);

    camp::Rng rng(fuzz_seed(0x7777));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1024),
                           Natural::random_bits(rng, 1024));
    const sim::BatchResult wave = scheduler.mul_batch(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        ASSERT_EQ(wave.products[i],
                  pairs[i].first * pairs[i].second)
            << i;
    EXPECT_FALSE(scheduler.shard_alive(0)) << "thrower drained";
    EXPECT_GT(scheduler.shard_stats(0).redistributed, 0u);
    // Recovery runs on the surviving host shard, never the process
    // CPU-of-last-resort.
    EXPECT_EQ(scheduler.stats().cpu_fallbacks, 0u);
}

TEST(ShardedScheduler, MulThrowRedistributionIsAccounted)
{
    // The single-product drain path must account the moved product as
    // redistributed, in both the stats block and the metric counters —
    // it used to drain silently.
    std::vector<std::unique_ptr<exec::Device>> devices;
    devices.push_back(std::make_unique<ThrowingMulDevice>());
    devices.push_back(std::make_unique<exec::CpuDevice>());
    exec::ShardPolicy policy;
    exec::ShardedScheduler scheduler(std::move(devices), policy);

    const std::uint64_t scheduler_metric_before =
        metrics::counter("exec.scheduler.redistributed").value();
    const std::uint64_t shard_metric_before =
        metrics::counter("exec.shard.0.redistributed").value();

    const Natural a(123456789), b(987654321);
    EXPECT_EQ(scheduler.mul(a, b).product, a * b)
        << "the survivor serves the product exactly";
    EXPECT_FALSE(scheduler.shard_alive(0)) << "thrower drained";
    EXPECT_EQ(scheduler.shard_stats(0).redistributed, 1u);
    EXPECT_EQ(scheduler.stats().redistributed, 1u);
    EXPECT_EQ(metrics::counter("exec.scheduler.redistributed").value() -
                  scheduler_metric_before,
              1u);
    EXPECT_EQ(metrics::counter("exec.shard.0.redistributed").value() -
                  shard_metric_before,
              1u);
}

TEST(ShardedScheduler, MixedSimCpuShardsStayExact)
{
    exec::ShardPolicy policy;
    policy.shards = 2;
    policy.backends = {"sim", "cpu"};
    exec::ShardedScheduler scheduler(sim::default_config(), policy);
    EXPECT_EQ(scheduler.kind(), exec::DeviceKind::Accelerator);
    EXPECT_EQ(scheduler.base_cap_bits(),
              sim::default_config().monolithic_cap_bits)
        << "cap is the most conservative shard";

    camp::Rng rng(fuzz_seed(0x3137));
    for (int batch = 0; batch < 100; ++batch) {
        const auto pairs =
            random_batch(rng, scheduler.base_cap_bits());
        const sim::BatchResult result = scheduler.mul_batch(pairs);
        for (std::size_t i = 0; i < pairs.size(); ++i)
            ASSERT_EQ(result.products[i],
                      pairs[i].first * pairs[i].second)
                << "batch=" << batch << " i=" << i;
    }
    // Both shards saw work: the LPT partitioner balances by cost, and
    // 100 multi-product waves cannot all fit one shard.
    EXPECT_GT(scheduler.shard_stats(0).products, 0u);
    EXPECT_GT(scheduler.shard_stats(1).products, 0u);
}

TEST(ShardedScheduler, MulRoutesToShardsAndStaysExact)
{
    const auto scheduler = sim_sharded(2);
    camp::Rng rng(fuzz_seed(0xb00b1e5));
    for (int i = 0; i < 50; ++i) {
        const Natural a =
            Natural::random_bits(rng, 1 + rng.below(4096));
        const Natural b =
            Natural::random_bits(rng, 1 + rng.below(4096));
        EXPECT_EQ(scheduler->mul(a, b).product, a * b) << i;
    }
    EXPECT_EQ(scheduler->stats().products, 50u);
}

TEST(ShardedScheduler, OversizedOperandAndEdgeCases)
{
    const auto scheduler = sim_sharded(2);
    const std::uint64_t cap = scheduler->base_cap_bits();
    camp::Rng rng(42);
    const Natural big = Natural::random_bits(rng, cap + 1);
    const Natural small = Natural::random_bits(rng, 64);
    EXPECT_THROW(scheduler->mul(big, small), camp::InvalidArgument);
    EXPECT_THROW(scheduler->mul_batch({{big, small}}),
                 camp::InvalidArgument);

    const sim::BatchResult empty = scheduler->mul_batch({});
    EXPECT_TRUE(empty.products.empty());
    EXPECT_EQ(scheduler->stats().waves, 0u)
        << "an empty wave is not a wave";

    const sim::BatchResult zeros =
        scheduler->mul_batch({{Natural(), Natural()},
                              {Natural(), Natural(5)},
                              {Natural(3), Natural(4)}});
    ASSERT_EQ(zeros.products.size(), 3u);
    EXPECT_TRUE(zeros.products[0].is_zero());
    EXPECT_TRUE(zeros.products[1].is_zero());
    EXPECT_EQ(zeros.products[2], Natural(12));
}

TEST(ShardedScheduler, SubmitQueueCoalescesThroughScheduler)
{
    const auto scheduler = sim_sharded(4);
    exec::SubmitQueue queue(*scheduler, /*max_pending=*/16);
    camp::Rng rng(fuzz_seed(0x9e9e));
    std::vector<std::pair<Natural, Natural>> pairs;
    std::vector<exec::SubmitQueue::Future> futures;
    for (int i = 0; i < 50; ++i) {
        pairs.emplace_back(
            Natural::random_bits(rng, 1 + rng.below(2048)),
            Natural::random_bits(rng, 1 + rng.below(2048)));
        futures.push_back(
            queue.submit(pairs.back().first, pairs.back().second));
    }
    queue.wait_all();
    for (std::size_t i = 0; i < futures.size(); ++i)
        EXPECT_EQ(futures[i].get(),
                  pairs[i].first * pairs[i].second)
            << i;
    const exec::QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 50u);
    EXPECT_GE(stats.largest_batch, 16u)
        << "watermark flushes coalesce into scheduler waves";
    EXPECT_GE(scheduler->stats().waves, stats.flushes);
}

TEST(ShardedScheduler, ConcurrentWavesRespectBackpressure)
{
    exec::ShardPolicy policy;
    policy.shards = 2;
    policy.max_inflight_waves = 1;
    policy.drain_fault_threshold = 0;
    exec::ShardedScheduler scheduler(sim::default_config(), policy);

    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&scheduler, &failures, t] {
            camp::Rng rng(0xc0ffee + static_cast<unsigned>(t));
            std::vector<std::pair<Natural, Natural>> pairs;
            for (int i = 0; i < 20; ++i)
                pairs.emplace_back(
                    Natural::random_bits(rng, 1 + rng.below(1024)),
                    Natural::random_bits(rng, 1 + rng.below(1024)));
            const sim::BatchResult result =
                scheduler.mul_batch(pairs);
            for (std::size_t i = 0; i < pairs.size(); ++i)
                if (result.products[i] !=
                    pairs[i].first * pairs[i].second)
                    ++failures[t];
        });
    for (std::thread& thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_EQ(scheduler.stats().waves,
              static_cast<std::uint64_t>(kThreads));
}

TEST(ShardPolicy, EnvironmentParsingAndValidation)
{
    ::unsetenv("CAMP_SHARDS");
    ::unsetenv("CAMP_SHARD_BACKENDS");
    ::unsetenv("CAMP_SHARD_INFLIGHT");
    exec::ShardPolicy defaults = exec::shard_policy_from_env();
    EXPECT_EQ(defaults.shards, 1u);
    EXPECT_TRUE(defaults.backends.empty());

    ::setenv("CAMP_SHARDS", "4", 1);
    ::setenv("CAMP_SHARD_BACKENDS", "sim,cpu", 1);
    ::setenv("CAMP_SHARD_INFLIGHT", "3", 1);
    exec::ShardPolicy policy = exec::shard_policy_from_env();
    EXPECT_EQ(policy.shards, 4u);
    EXPECT_EQ(policy.backends,
              (std::vector<std::string>{"sim", "cpu"}));
    EXPECT_EQ(policy.max_inflight_waves, 3u);

    ::setenv("CAMP_SHARDS", "junk", 1);
    EXPECT_THROW(exec::shard_policy_from_env(),
                 camp::InvalidArgument);
    ::setenv("CAMP_SHARDS", "0", 1);
    EXPECT_THROW(exec::shard_policy_from_env(),
                 camp::InvalidArgument);
    ::unsetenv("CAMP_SHARDS");
    ::unsetenv("CAMP_SHARD_BACKENDS");
    ::unsetenv("CAMP_SHARD_INFLIGHT");

    // Recursion guard: a scheduler cannot shard onto itself.
    exec::ShardPolicy recursive;
    recursive.backends = {"sharded"};
    EXPECT_THROW(exec::ShardedScheduler(sim::default_config(),
                                        recursive),
                 camp::InvalidArgument);
}

TEST(ShardedScheduler, RegistryExposesShardedBackend)
{
    EXPECT_TRUE(
        exec::DeviceRegistry::instance().contains("sharded"));
    ::setenv("CAMP_SHARDS", "3", 1);
    const auto device = exec::make_device("sharded");
    ::unsetenv("CAMP_SHARDS");
    ASSERT_NE(device, nullptr);
    EXPECT_STREQ(device->name(), "sharded");
    auto* scheduler =
        dynamic_cast<exec::ShardedScheduler*>(device.get());
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->shard_count(), 3u);
    EXPECT_EQ(scheduler->kind(), exec::DeviceKind::Accelerator);

    const Natural a(123456789), b(987654321);
    EXPECT_EQ(device->mul(a, b).product, a * b);
}

TEST(RuntimeSharded, BatchFoldsSchedulerRecoveryIntoFaultStats)
{
    sim::SimConfig config = sim::default_config();
    config.faults.seed = 0xfa0175ull;
    config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.05;
    config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.02;

    ::setenv("CAMP_SHARDS", "2", 1);
    const std::uint64_t checked_fallbacks_before =
        metrics::counter("exec.checked.fallbacks").value();
    Runtime runtime("sharded", config);
    ::unsetenv("CAMP_SHARDS");
    ASSERT_NE(runtime.scheduler(), nullptr);
    EXPECT_FALSE(runtime.self_check().enabled)
        << "outer wrapper stays transparent: shards self-check";

    camp::Rng rng(fuzz_seed(0xfeedface));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 2048),
                           Natural::random_bits(rng, 2048));
    const sim::BatchResult result = runtime.multiply_batch(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        ASSERT_EQ(result.products[i],
                  pairs[i].first * pairs[i].second)
            << i;
    ASSERT_GT(result.faulty, 0u)
        << "rates must corrupt something for the accounting to bite";

    const exec::ShardedScheduler& scheduler = *runtime.scheduler();
    const exec::CheckStats shards = scheduler.check_stats();
    const camp::mpapca::FaultStats& faults = runtime.fault_stats();
    // Every detected-faulty product was redistributed...
    EXPECT_EQ(scheduler.stats().redistributed, result.faulty);
    // ... and the ledger owns the whole recovery story: batch-level
    // detections plus the peers' own golden-check recoveries.
    EXPECT_EQ(faults.detected, result.faulty + shards.detected);
    EXPECT_EQ(faults.checks,
              pairs.size() + shards.checks);
    EXPECT_EQ(faults.retried, shards.retried);
    EXPECT_EQ(faults.fallbacks,
              shards.fallbacks + scheduler.stats().cpu_fallbacks);
    EXPECT_GT(faults.injected, 0u);
    // The process-wide checked-device counter moved exactly by the
    // shards' recovery fallbacks.
    EXPECT_EQ(metrics::counter("exec.checked.fallbacks").value() -
                  checked_fallbacks_before,
              shards.fallbacks);
}

TEST(RuntimeSharded, MulFunctionalDecomposesThroughScheduler)
{
    // Beyond the shard cap the runtime decomposes in software and
    // drives the scheduler for every base product.
    ::setenv("CAMP_SHARDS", "2", 1);
    Runtime runtime("sharded");
    ::unsetenv("CAMP_SHARDS");
    camp::Rng rng(fuzz_seed(0xdec0de));
    const Natural a = Natural::random_bits(rng, 100000);
    const Natural b = Natural::random_bits(rng, 90000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    EXPECT_GT(runtime.base_products(), 1u);
}
