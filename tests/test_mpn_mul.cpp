/**
 * @file
 * Multiplication tests: every fast algorithm (Karatsuba, Toom-3/4/6,
 * SSA) is checked against the schoolbook reference across balanced and
 * unbalanced shapes, plus algebraic property sweeps on the dispatcher.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

std::vector<Limb>
random_limbs(camp::Rng& rng, std::size_t n, bool allow_zero_top = true)
{
    std::vector<Limb> v(n);
    for (auto& limb : v)
        limb = rng.next();
    if (!allow_zero_top && n > 0 && v.back() == 0)
        v.back() = 1;
    return v;
}

std::vector<Limb>
reference_mul(const std::vector<Limb>& a, const std::vector<Limb>& b)
{
    std::vector<Limb> r(a.size() + b.size());
    if (a.size() >= b.size())
        mpn::mul_basecase(r.data(), a.data(), a.size(), b.data(),
                          b.size());
    else
        mpn::mul_basecase(r.data(), b.data(), b.size(), a.data(),
                          a.size());
    return r;
}

} // namespace

TEST(MpnMul, Mul1MatchesU128)
{
    camp::Rng rng(11);
    for (int iter = 0; iter < 100; ++iter) {
        const Limb a = rng.next();
        const Limb b = rng.next();
        Limb r;
        const Limb hi = mpn::mul_1(&r, &a, 1, b);
        const camp::u128 expect = static_cast<camp::u128>(a) * b;
        EXPECT_EQ(r, static_cast<Limb>(expect));
        EXPECT_EQ(hi, static_cast<Limb>(expect >> 64));
    }
}

TEST(MpnMul, AddmulSubmulRoundTrip)
{
    camp::Rng rng(12);
    for (int iter = 0; iter < 100; ++iter) {
        const std::size_t n = 1 + rng.below(30);
        const auto a = random_limbs(rng, n);
        auto r = random_limbs(rng, n);
        const auto saved = r;
        const Limb v = rng.next();
        const Limb c1 = mpn::addmul_1(r.data(), a.data(), n, v);
        const Limb c2 = mpn::submul_1(r.data(), a.data(), n, v);
        EXPECT_EQ(c1, c2);
        EXPECT_EQ(r, saved);
    }
}

TEST(MpnMul, SquareMatchesMul)
{
    camp::Rng rng(13);
    for (std::size_t n : {1, 2, 3, 7, 15, 23}) {
        const auto a = random_limbs(rng, n);
        std::vector<Limb> sq(2 * n), m(2 * n);
        mpn::sqr_basecase(sq.data(), a.data(), n);
        mpn::mul_basecase(m.data(), a.data(), n, a.data(), n);
        EXPECT_EQ(sq, m) << "n=" << n;
    }
}

struct MulCase
{
    std::size_t an, bn;
};

class KaratsubaShapes : public ::testing::TestWithParam<MulCase>
{
};

TEST_P(KaratsubaShapes, MatchesSchoolbook)
{
    const auto [an, bn] = GetParam();
    camp::Rng rng(100 + an * 131 + bn);
    for (int iter = 0; iter < 8; ++iter) {
        const auto a = random_limbs(rng, an);
        const auto b = random_limbs(rng, bn);
        std::vector<Limb> r(an + bn);
        mpn::mul_karatsuba(r.data(), a.data(), an, b.data(), bn);
        EXPECT_EQ(r, reference_mul(a, b)) << "an=" << an << " bn=" << bn;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KaratsubaShapes,
    ::testing::Values(MulCase{4, 3}, MulCase{5, 3}, MulCase{8, 8},
                      MulCase{9, 5}, MulCase{15, 8}, MulCase{16, 16},
                      MulCase{31, 17}, MulCase{33, 32}, MulCase{50, 26},
                      MulCase{64, 64}, MulCase{65, 64}));

struct ToomCase
{
    unsigned k;
    std::size_t an, bn;
};

class ToomShapes : public ::testing::TestWithParam<ToomCase>
{
};

TEST_P(ToomShapes, MatchesSchoolbook)
{
    const auto [k, an, bn] = GetParam();
    camp::Rng rng(200 + k * 1000 + an * 7 + bn);
    for (int iter = 0; iter < 5; ++iter) {
        const auto a = random_limbs(rng, an);
        const auto b = random_limbs(rng, bn);
        std::vector<Limb> r(an + bn);
        mpn::mul_toom(r.data(), a.data(), an, b.data(), bn, k);
        EXPECT_EQ(r, reference_mul(a, b))
            << "k=" << k << " an=" << an << " bn=" << bn;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ToomShapes,
    ::testing::Values(ToomCase{3, 9, 8}, ToomCase{3, 12, 12},
                      ToomCase{3, 17, 13}, ToomCase{3, 30, 25},
                      ToomCase{3, 31, 23}, ToomCase{4, 16, 16},
                      ToomCase{4, 20, 17}, ToomCase{4, 35, 28},
                      ToomCase{4, 40, 40}, ToomCase{6, 36, 36},
                      ToomCase{6, 48, 41}, ToomCase{6, 60, 55},
                      ToomCase{6, 61, 56}));

TEST(MpnMul, ToomWithZeroBlocks)
{
    // Blocks that are entirely zero stress the normalization paths.
    for (unsigned k : {3u, 4u, 6u}) {
        const std::size_t n = 6 * k;
        std::vector<Limb> a(n, 0), b(n, 0);
        a[0] = 7;
        a[n - 1] = 9; // middle blocks zero
        b[2] = 3;
        b[n - 1] = 1;
        std::vector<Limb> r(2 * n);
        mpn::mul_toom(r.data(), a.data(), n, b.data(), n, k);
        EXPECT_EQ(r, reference_mul(a, b)) << "k=" << k;
    }
}

class SsaShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(SsaShapes, MatchesSchoolbook)
{
    const auto [an, bn] = GetParam();
    camp::Rng rng(300 + an * 3 + bn);
    const auto a = random_limbs(rng, an);
    const auto b = random_limbs(rng, bn);
    std::vector<Limb> r(an + bn);
    if (an >= bn)
        mpn::mul_ssa(r.data(), a.data(), an, b.data(), bn);
    else
        mpn::mul_ssa(r.data(), b.data(), bn, a.data(), an);
    EXPECT_EQ(r, reference_mul(a, b)) << "an=" << an << " bn=" << bn;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SsaShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{16, 5},
                      std::pair<std::size_t, std::size_t>{33, 31},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{100, 77},
                      std::pair<std::size_t, std::size_t>{128, 128},
                      std::pair<std::size_t, std::size_t>{200, 1},
                      std::pair<std::size_t, std::size_t>{257, 255}));

TEST(MpnMul, SsaLargeMatchesDispatchedMul)
{
    camp::Rng rng(14);
    const std::size_t an = 700, bn = 650;
    const auto a = random_limbs(rng, an);
    const auto b = random_limbs(rng, bn);
    std::vector<Limb> r1(an + bn), r2(an + bn);
    mpn::mul_ssa(r1.data(), a.data(), an, b.data(), bn);
    mpn::mul(r2.data(), a.data(), an, b.data(), bn);
    EXPECT_EQ(r1, r2);
}

TEST(MpnMul, DispatcherUnbalancedShapes)
{
    camp::Rng rng(15);
    const MulCase cases[] = {{1, 1},  {2, 1},   {7, 2},    {40, 3},
                             {100, 9}, {130, 64}, {300, 40}, {513, 128},
                             {257, 256}, {96, 95}};
    for (const auto& [an, bn] : cases) {
        const auto a = random_limbs(rng, an);
        const auto b = random_limbs(rng, bn);
        std::vector<Limb> r(an + bn);
        mpn::mul(r.data(), a.data(), an, b.data(), bn);
        EXPECT_EQ(r, reference_mul(a, b)) << "an=" << an << " bn=" << bn;
    }
}

TEST(MpnMul, DispatcherHandlesUnnormalizedInputs)
{
    camp::Rng rng(16);
    auto a = random_limbs(rng, 40);
    auto b = random_limbs(rng, 30);
    // Zero out top limbs: mul() must still fill the full product area.
    for (int i = 0; i < 10; ++i)
        a[39 - i] = 0;
    for (int i = 0; i < 29; ++i)
        b[29 - i] = 0;
    std::vector<Limb> r(70, 0xdeadbeef);
    mpn::mul(r.data(), a.data(), 40, b.data(), 30);
    EXPECT_EQ(r, reference_mul(a, b));
}

TEST(MpnMul, MultiplicationIsCommutativeAndDistributive)
{
    camp::Rng rng(17);
    for (int iter = 0; iter < 20; ++iter) {
        const std::size_t n = 1 + rng.below(60);
        const auto a = random_limbs(rng, n);
        const auto b = random_limbs(rng, n);
        const auto c = random_limbs(rng, n);
        // a*(b+c) == a*b + a*c
        std::vector<Limb> bc(n + 1);
        bc[n] = mpn::add_n(bc.data(), b.data(), c.data(), n);
        std::vector<Limb> lhs(2 * n + 1);
        mpn::mul(lhs.data(), bc.data(), n + 1, a.data(), n);
        std::vector<Limb> ab(2 * n), ac(2 * n), rhs(2 * n + 1, 0);
        mpn::mul(ab.data(), a.data(), n, b.data(), n);
        mpn::mul(ac.data(), a.data(), n, c.data(), n);
        rhs[2 * n] = mpn::add_n(rhs.data(), ab.data(), ac.data(), 2 * n);
        EXPECT_EQ(lhs, rhs);
    }
}

TEST(MpnMul, AlgorithmNameRespectsThresholds)
{
    const mpn::MulTuning t; // defaults
    EXPECT_STREQ(mpn::mul_algorithm_name(4, t), "schoolbook");
    EXPECT_STREQ(mpn::mul_algorithm_name(t.karatsuba, t), "karatsuba");
    EXPECT_STREQ(mpn::mul_algorithm_name(t.toom3, t), "toom3");
    EXPECT_STREQ(mpn::mul_algorithm_name(t.toom4, t), "toom4");
    EXPECT_STREQ(mpn::mul_algorithm_name(t.toom6, t), "toom6");
    EXPECT_STREQ(mpn::mul_algorithm_name(t.ssa, t), "ssa");
}

TEST(MpnMul, TuningMonotonePredicate)
{
    mpn::MulTuning t; // defaults must be monotone
    EXPECT_TRUE(mpn::mul_tuning_monotone(t));
    // The active (env-overridden) tuning passed the load-time assert;
    // re-check the predicate agrees.
    EXPECT_TRUE(mpn::mul_tuning_monotone(mpn::mul_tuning()));

    t = mpn::MulTuning{};
    t.toom3 = t.karatsuba; // collision shadows Karatsuba
    EXPECT_FALSE(mpn::mul_tuning_monotone(t));
    t = mpn::MulTuning{};
    t.ssa = t.toom6 - 1; // inversion shadows Toom-6
    EXPECT_FALSE(mpn::mul_tuning_monotone(t));
    t = mpn::MulTuning{};
    t.karatsuba = 1; // below the schoolbook floor
    EXPECT_FALSE(mpn::mul_tuning_monotone(t));
}

namespace {

/** RAII: shrink every threshold so small operands traverse the full
 * schoolbook -> karatsuba -> toom -> SSA ladder and the parallel
 * fork path engages; restores the tuning on exit. */
class CompressedTuning
{
  public:
    CompressedTuning() : saved_(mpn::mul_tuning())
    {
        auto& t = mpn::mul_tuning();
        t.karatsuba = 8;
        t.toom3 = 20;
        t.toom4 = 40;
        t.toom6 = 80;
        t.ssa = 160;
        t.parallel = 16;
        EXPECT_TRUE(mpn::mul_tuning_monotone(t));
    }
    ~CompressedTuning() { mpn::mul_tuning() = saved_; }

  private:
    mpn::MulTuning saved_;
};

} // namespace

TEST(MpnMul, FuzzParallelEqualsSerial)
{
    // The pool determinism contract (support/thread_pool.hpp): a
    // pooled multiplication is bit-identical to the serial one. 1000
    // pairs with compressed thresholds span every regime from
    // schoolbook through SSA while keeping the fork threshold low
    // enough that Karatsuba/Toom/SSA all actually fork when the pool
    // has workers (CI runs this at CAMP_THREADS=1 and 4).
    const std::uint64_t seed = fuzz_seed(0x9e3779b97f4a7c15ull);
    camp::Rng rng(seed);
    CompressedTuning compressed;
    for (int iter = 0; iter < 1000; ++iter) {
        const std::size_t an = 1 + rng.below(400);
        const std::size_t bn = 1 + rng.below(an);
        const auto a = random_limbs(rng, an);
        const auto b = random_limbs(rng, bn);
        std::vector<Limb> serial(an + bn), pooled(an + bn);
        {
            camp::support::SerialGuard guard;
            mpn::mul(serial.data(), a.data(), an, b.data(), bn);
        }
        mpn::mul(pooled.data(), a.data(), an, b.data(), bn);
        ASSERT_EQ(pooled, serial)
            << "iter=" << iter << " an=" << an << " bn=" << bn
            << " CAMP_FUZZ_SEED=" << seed;
    }
}

TEST(MpnMul, FuzzParallelEqualsSerialDefaultTuning)
{
    // Same contract at production thresholds: large operands that hit
    // the real Karatsuba/Toom-6/SSA fork points (parallel = 512 limbs).
    const std::uint64_t seed = fuzz_seed(0xc0ffee1234abcdefull);
    camp::Rng rng(seed);
    const mpn::MulTuning& t = mpn::mul_tuning();
    const std::size_t sizes[] = {t.parallel + 3, 2 * t.parallel + 17,
                                 t.ssa + 211};
    for (const std::size_t an : sizes) {
        const std::size_t bn = an - rng.below(an / 4);
        const auto a = random_limbs(rng, an);
        const auto b = random_limbs(rng, bn);
        std::vector<Limb> serial(an + bn), pooled(an + bn);
        {
            camp::support::SerialGuard guard;
            mpn::mul(serial.data(), a.data(), an, b.data(), bn);
        }
        mpn::mul(pooled.data(), a.data(), an, b.data(), bn);
        ASSERT_EQ(pooled, serial)
            << "an=" << an << " bn=" << bn
            << " CAMP_FUZZ_SEED=" << seed;
    }
}

TEST(MpnMul, SqrMatchesMulAtAllRegimes)
{
    camp::Rng rng(18);
    for (std::size_t n : {1, 5, 30, 100, 300}) {
        const auto a = random_limbs(rng, n);
        std::vector<Limb> s(2 * n), m(2 * n);
        mpn::sqr(s.data(), a.data(), n);
        mpn::mul(m.data(), a.data(), n, a.data(), n);
        EXPECT_EQ(s, m) << "n=" << n;
    }
}

TEST(MpnMul, DispatchMatchesRecordedAlgorithmAtThresholds)
{
    // Drift guard: mul_algorithm_name() (the public predictor) and the
    // dispatcher's metrics-recorded algorithm share the threshold
    // table; if one is edited without the other, boundary sizes are
    // where they disagree first. At each threshold n and at n-1, one
    // balanced product must bump the predicted algorithm's counter and
    // must never touch a counter above it (recursion only descends).
    namespace metrics = camp::support::metrics;
    static const char* const kAlgoMetric[] = {
        "mpn.mul.algo.schoolbook", "mpn.mul.algo.karatsuba",
        "mpn.mul.algo.toom3",      "mpn.mul.algo.toom4",
        "mpn.mul.algo.toom6",      "mpn.mul.algo.ssa",
    };
    constexpr int kAlgos = 6;
    const auto algo_of = [](const char* name) {
        for (int i = 0; i < kAlgos; ++i)
            if (std::string(kAlgoMetric[i]).substr(13) == name)
                return i;
        ADD_FAILURE() << "unknown algorithm name " << name;
        return 0;
    };

    const mpn::MulTuning& t = mpn::mul_tuning();
    camp::Rng rng(fuzz_seed(0xd15bada11ull));
    std::vector<std::size_t> boundaries;
    for (const std::size_t n :
         {t.karatsuba, t.toom3, t.toom4, t.toom6, t.ssa}) {
        boundaries.push_back(n);
        if (n > 0)
            boundaries.push_back(n - 1);
    }
    for (const std::size_t n : boundaries) {
        if (n < 16)
            continue; // below kObserveLimbs: dispatch is unrecorded
        const char* predicted = mpn::mul_algorithm_name(n, t);
        const int expected = algo_of(predicted);
        std::uint64_t before[kAlgos];
        for (int i = 0; i < kAlgos; ++i)
            before[i] = metrics::counter(kAlgoMetric[i]).value();

        const auto a = random_limbs(rng, n, /*allow_zero_top=*/false);
        const auto b = random_limbs(rng, n, /*allow_zero_top=*/false);
        std::vector<Limb> r(2 * n);
        {
            camp::support::SerialGuard guard;
            mpn::mul(r.data(), a.data(), n, b.data(), n);
        }

        for (int i = 0; i < kAlgos; ++i) {
            const std::uint64_t delta =
                metrics::counter(kAlgoMetric[i]).value() - before[i];
            if (i == expected)
                EXPECT_GE(delta, 1u)
                    << "n=" << n << " limbs: predicted '" << predicted
                    << "' but its counter did not move";
            else if (i > expected)
                EXPECT_EQ(delta, 0u)
                    << "n=" << n << " limbs: predicted '" << predicted
                    << "' but " << kAlgoMetric[i]
                    << " moved (dispatch drift)";
        }
    }
}
