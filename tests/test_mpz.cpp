/**
 * @file
 * Integer (mpz layer) tests: sign-magnitude arithmetic, truncated
 * division semantics, modular helpers, and primality testing.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "mpz/integer.hpp"
#include "support/rng.hpp"

using camp::mpn::Natural;
using camp::mpz::Integer;

TEST(Integer, SmallConstructionAndSign)
{
    EXPECT_EQ(Integer(0).to_int64(), 0);
    EXPECT_EQ(Integer(5).to_int64(), 5);
    EXPECT_EQ(Integer(-5).to_int64(), -5);
    EXPECT_FALSE(Integer(0).is_negative());
    EXPECT_FALSE((-Integer(0)).is_negative()); // -0 == 0
    EXPECT_EQ(Integer(INT64_MIN).abs().to_decimal(),
              "9223372036854775808");
}

TEST(Integer, SignedArithmeticMatchesInt64)
{
    camp::Rng rng(61);
    for (int iter = 0; iter < 300; ++iter) {
        const std::int64_t a =
            static_cast<std::int32_t>(rng.next());
        const std::int64_t b =
            static_cast<std::int32_t>(rng.next());
        EXPECT_EQ((Integer(a) + Integer(b)).to_int64(), a + b);
        EXPECT_EQ((Integer(a) - Integer(b)).to_int64(), a - b);
        EXPECT_EQ((Integer(a) * Integer(b)).to_int64(), a * b);
        if (b != 0) {
            EXPECT_EQ((Integer(a) / Integer(b)).to_int64(), a / b)
                << a << "/" << b;
            EXPECT_EQ((Integer(a) % Integer(b)).to_int64(), a % b)
                << a << "%" << b;
        }
    }
}

TEST(Integer, DivremInvariantAllSignCombos)
{
    camp::Rng rng(62);
    for (int iter = 0; iter < 40; ++iter) {
        const Natural am = Natural::random_bits(rng, 1 + rng.below(300));
        const Natural bm = Natural::random_bits(rng, 1 + rng.below(200));
        for (const bool an : {false, true}) {
            for (const bool bn : {false, true}) {
                const Integer a(am, an), b(bm, bn);
                auto [q, r] = Integer::divrem(a, b);
                EXPECT_EQ(q * b + r, a);
                EXPECT_LT(r.abs(), b.abs());
                // Truncated: remainder has the dividend's sign.
                if (!r.is_zero())
                    EXPECT_EQ(r.is_negative(), a.is_negative());
            }
        }
    }
}

TEST(Integer, DecimalRoundTripWithSign)
{
    EXPECT_EQ(Integer::from_decimal("-12345678901234567890").to_decimal(),
              "-12345678901234567890");
    EXPECT_EQ(Integer::from_decimal("0").to_decimal(), "0");
    EXPECT_THROW(Integer::from_decimal(""), std::invalid_argument);
}

TEST(Integer, ComparisonTotalOrder)
{
    EXPECT_LT(Integer(-5), Integer(-4));
    EXPECT_LT(Integer(-5), Integer(0));
    EXPECT_LT(Integer(-5), Integer(3));
    EXPECT_LT(Integer(2), Integer(3));
    EXPECT_GT(Integer(-2), Integer(-3));
    EXPECT_EQ(Integer(7) <=> Integer(7), std::strong_ordering::equal);
}

TEST(Integer, EuclideanMod)
{
    EXPECT_EQ(Integer::mod(Integer(-7), Natural(3)), Natural(2));
    EXPECT_EQ(Integer::mod(Integer(7), Natural(3)), Natural(1));
    EXPECT_EQ(Integer::mod(Integer(-9), Natural(3)), Natural(0));
}

TEST(Integer, PowmodMatchesNaive)
{
    camp::Rng rng(63);
    for (int iter = 0; iter < 15; ++iter) {
        Natural m = Natural::random_bits(rng, 2 + rng.below(120));
        if (m == Natural(1))
            m += Natural(1);
        const Natural b = Natural::random_bits(rng, 1 + rng.below(90));
        const std::uint64_t e = rng.below(200);
        Natural naive(1);
        for (std::uint64_t i = 0; i < e; ++i)
            naive = (naive * b) % m;
        EXPECT_EQ(Integer::powmod(b, Natural(e), m), naive)
            << "odd=" << m.is_odd();
    }
}

TEST(Integer, PowmodFermatLittleTheorem)
{
    // 2^(p-1) == 1 mod p for prime p.
    const Natural p = Natural::from_decimal("1000000007");
    EXPECT_EQ(Integer::powmod(Natural(2), p - Natural(1), p), Natural(1));
    // Large known prime 2^127 - 1.
    const Natural m127 = (Natural(1) << 127) - Natural(1);
    EXPECT_EQ(Integer::powmod(Natural(3), m127 - Natural(1), m127),
              Natural(1));
}

TEST(Integer, InvmodInvertsAndThrowsOnNonCoprime)
{
    camp::Rng rng(64);
    const Natural m = Natural::from_decimal("1000000007");
    for (int iter = 0; iter < 20; ++iter) {
        const Natural a =
            Natural::random_bits(rng, 1 + rng.below(28)) % m;
        if (a.is_zero())
            continue;
        const Natural inv = Integer::invmod(a, m);
        EXPECT_EQ((a * inv) % m, Natural(1));
    }
    EXPECT_THROW(Integer::invmod(Natural(6), Natural(9)),
                 std::invalid_argument);
}

TEST(Integer, MillerRabinKnownValues)
{
    const std::uint64_t primes[] = {2, 3, 5, 97, 65537, 1000000007ULL};
    for (const std::uint64_t p : primes)
        EXPECT_TRUE(Integer::is_probable_prime(Natural(p))) << p;
    const std::uint64_t composites[] = {1,    4,       91,
                                        561, // Carmichael
                                        6601, 1000000008ULL};
    for (const std::uint64_t c : composites)
        EXPECT_FALSE(Integer::is_probable_prime(Natural(c))) << c;
    // Mersenne prime 2^127 - 1 and composite 2^128 + 1.
    EXPECT_TRUE(
        Integer::is_probable_prime((Natural(1) << 127) - Natural(1)));
    EXPECT_FALSE(
        Integer::is_probable_prime((Natural(1) << 128) + Natural(1)));
}

TEST(Integer, PowSigns)
{
    EXPECT_EQ(Integer::pow(Integer(-3), 3).to_int64(), -27);
    EXPECT_EQ(Integer::pow(Integer(-3), 4).to_int64(), 81);
    EXPECT_EQ(Integer::pow(Integer(7), 0).to_int64(), 1);
}
