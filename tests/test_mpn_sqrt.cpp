/**
 * @file
 * Square-root tests: s = floor(sqrt(a)) iff s^2 <= a < (s+1)^2, plus
 * exact squares, boundary values, and large random sweeps.
 */
#include <gtest/gtest.h>

#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "mpn/sqrt.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;
using mpn::Natural;

namespace {

void
check_sqrt(const Natural& a)
{
    auto [s, r] = Natural::sqrtrem(a);
    // a == s^2 + r
    EXPECT_EQ(s * s + r, a);
    // r <= 2s  (equivalent to a < (s+1)^2)
    EXPECT_LE(r, s + s);
}

} // namespace

TEST(MpnSqrt, SmallValues)
{
    for (std::uint64_t v = 0; v < 200; ++v) {
        auto [s, r] = Natural::sqrtrem(Natural(v));
        const std::uint64_t si = s.to_uint64();
        EXPECT_LE(si * si, v);
        EXPECT_GT((si + 1) * (si + 1), v);
        EXPECT_EQ(r.to_uint64(), v - si * si);
    }
}

TEST(MpnSqrt, PerfectSquares)
{
    camp::Rng rng(31);
    for (std::size_t n : {1, 2, 3, 5, 9, 20, 64, 150}) {
        const Natural s = Natural::random_bits(rng, n * 37 + 1);
        const Natural a = s * s;
        auto [s2, r] = Natural::sqrtrem(a);
        EXPECT_EQ(s2, s) << "n=" << n;
        EXPECT_TRUE(r.is_zero());
    }
}

TEST(MpnSqrt, PerfectSquareMinusOne)
{
    camp::Rng rng(32);
    for (int iter = 0; iter < 20; ++iter) {
        const Natural s = Natural::random_bits(rng, 64 + rng.below(900));
        const Natural a = s * s - Natural(1);
        auto [s2, r] = Natural::sqrtrem(a);
        EXPECT_EQ(s2, s - Natural(1));
        EXPECT_EQ(r, (s - Natural(1)) + (s - Natural(1))); // 2(s-1)
    }
}

class SqrtBits : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SqrtBits, RandomInvariantSweep)
{
    camp::Rng rng(33 + GetParam());
    for (int iter = 0; iter < 10; ++iter)
        check_sqrt(Natural::random_bits(rng, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Bits, SqrtBits,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128,
                                           129, 255, 1000, 4096, 10001,
                                           30000));

TEST(MpnSqrt, PowersOfTwo)
{
    for (std::uint64_t e : {10u, 63u, 64u, 65u, 127u, 200u, 1001u}) {
        const Natural a = Natural(1) << e;
        auto [s, r] = Natural::sqrtrem(a);
        if (e % 2 == 0) {
            EXPECT_EQ(s, Natural(1) << (e / 2));
            EXPECT_TRUE(r.is_zero());
        } else {
            EXPECT_EQ(s * s + r, a);
            EXPECT_LE(r, s + s);
        }
    }
}

TEST(MpnSqrt, KernelInterfaceRemainderSize)
{
    camp::Rng rng(34);
    const Natural a = Natural::random_bits(rng, 777);
    std::vector<Limb> s((a.size() + 1) / 2), r(a.size());
    const std::size_t rn =
        mpn::sqrtrem(s.data(), r.data(), a.data(), a.size());
    EXPECT_EQ(rn, mpn::normalized_size(r.data(), r.size()));
    // Null remainder pointer is allowed.
    std::vector<Limb> s2((a.size() + 1) / 2);
    mpn::sqrtrem(s2.data(), nullptr, a.data(), a.size());
    EXPECT_EQ(s, s2);
}
