/**
 * @file
 * Square-root tests: s = floor(sqrt(a)) iff s^2 <= a < (s+1)^2, plus
 * exact squares, boundary values, and large random sweeps.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "mpn/sqrt.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;
using mpn::Natural;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

void
check_sqrt(const Natural& a)
{
    auto [s, r] = Natural::sqrtrem(a);
    // a == s^2 + r
    EXPECT_EQ(s * s + r, a);
    // r <= 2s  (equivalent to a < (s+1)^2)
    EXPECT_LE(r, s + s);
}

} // namespace

TEST(MpnSqrt, SmallValues)
{
    for (std::uint64_t v = 0; v < 200; ++v) {
        auto [s, r] = Natural::sqrtrem(Natural(v));
        const std::uint64_t si = s.to_uint64();
        EXPECT_LE(si * si, v);
        EXPECT_GT((si + 1) * (si + 1), v);
        EXPECT_EQ(r.to_uint64(), v - si * si);
    }
}

TEST(MpnSqrt, PerfectSquares)
{
    camp::Rng rng(31);
    for (std::size_t n : {1, 2, 3, 5, 9, 20, 64, 150}) {
        const Natural s = Natural::random_bits(rng, n * 37 + 1);
        const Natural a = s * s;
        auto [s2, r] = Natural::sqrtrem(a);
        EXPECT_EQ(s2, s) << "n=" << n;
        EXPECT_TRUE(r.is_zero());
    }
}

TEST(MpnSqrt, PerfectSquareMinusOne)
{
    camp::Rng rng(32);
    for (int iter = 0; iter < 20; ++iter) {
        const Natural s = Natural::random_bits(rng, 64 + rng.below(900));
        const Natural a = s * s - Natural(1);
        auto [s2, r] = Natural::sqrtrem(a);
        EXPECT_EQ(s2, s - Natural(1));
        EXPECT_EQ(r, (s - Natural(1)) + (s - Natural(1))); // 2(s-1)
    }
}

class SqrtBits : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SqrtBits, RandomInvariantSweep)
{
    camp::Rng rng(33 + GetParam());
    for (int iter = 0; iter < 10; ++iter)
        check_sqrt(Natural::random_bits(rng, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Bits, SqrtBits,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128,
                                           129, 255, 1000, 4096, 10001,
                                           30000));

TEST(MpnSqrt, PowersOfTwo)
{
    for (std::uint64_t e : {10u, 63u, 64u, 65u, 127u, 200u, 1001u}) {
        const Natural a = Natural(1) << e;
        auto [s, r] = Natural::sqrtrem(a);
        if (e % 2 == 0) {
            EXPECT_EQ(s, Natural(1) << (e / 2));
            EXPECT_TRUE(r.is_zero());
        } else {
            EXPECT_EQ(s * s + r, a);
            EXPECT_LE(r, s + s);
        }
    }
}

TEST(MpnSqrt, InvariantFuzzRandomAndBoundary)
{
    // >= 1000 cases of the floor-sqrt invariant s*s <= n < (s+1)^2,
    // mixing uniform random widths with the boundary family around
    // each width: 0, 1, 2^k, 2^k +- 1, perfect squares, and perfect
    // squares +- 1 (the values where Zimmermann's recursion switches
    // remainder normalization).
    const std::uint64_t seed = fuzz_seed(0x5c47f00dull);
    camp::Rng rng(seed);
    check_sqrt(Natural());         // 0
    check_sqrt(Natural(1));        // 1
    int cases = 2;
    while (cases < 1000) {
        SCOPED_TRACE("cases=" + std::to_string(cases) +
                     " seed=" + std::to_string(seed) +
                     " (replay: CAMP_FUZZ_SEED=<seed>)");
        const std::uint64_t bits = 1 + rng.below(4000);
        // Random value at this width.
        check_sqrt(Natural::random_bits(rng, bits));
        // 2^k and neighbors.
        const Natural pow2 = Natural(1) << bits;
        check_sqrt(pow2);
        check_sqrt(pow2 + Natural(1));
        check_sqrt(pow2 - Natural(1));
        // Perfect square and neighbors.
        const Natural root =
            Natural::random_bits(rng, (bits + 1) / 2 + 1);
        const Natural square = root * root;
        auto [s, r] = Natural::sqrtrem(square);
        EXPECT_EQ(s, root);
        EXPECT_TRUE(r.is_zero());
        check_sqrt(square + Natural(1));
        if (!square.is_zero())
            check_sqrt(square - Natural(1));
        cases += 7;
    }
}

TEST(MpnSqrt, AllOnesLimbsHitRootCarryPath)
{
    // Regression: a == B^n - 1 drives the Zimmermann recursion into the
    // q == B^l quotient-overflow case with s1 all ones; the clamped
    // root's low part is B^l - 1 and the remainder is exactly 2s.
    for (const std::size_t n : {4u, 5u, 8u, 12u, 33u}) {
        const Natural a = (Natural(1) << (64 * n)) - Natural(1);
        auto [s, r] = Natural::sqrtrem(a);
        EXPECT_EQ(s * s + r, a) << "n=" << n;
        EXPECT_LE(r, s + s) << "n=" << n;
        if (n % 2 == 0) {
            // Even limb count: s == B^(n/2) - 1, r == 2s.
            EXPECT_EQ(s, (Natural(1) << (32 * n)) - Natural(1));
            EXPECT_EQ(r, s + s);
        }
    }
}

TEST(MpnSqrt, KernelInterfaceRemainderSize)
{
    camp::Rng rng(34);
    const Natural a = Natural::random_bits(rng, 777);
    std::vector<Limb> s((a.size() + 1) / 2), r(a.size());
    const std::size_t rn =
        mpn::sqrtrem(s.data(), r.data(), a.data(), a.size());
    EXPECT_EQ(rn, mpn::normalized_size(r.data(), r.size()));
    // Null remainder pointer is allowed.
    std::vector<Limb> s2((a.size() + 1) / 2);
    mpn::sqrtrem(s2.data(), nullptr, a.data(), a.size());
    EXPECT_EQ(s, s2);
}
