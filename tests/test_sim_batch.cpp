/**
 * @file
 * Batch-engine tests: product correctness across batch shapes, wave
 * accounting vs pooled capacity, amortized-time behaviour, and the
 * host-parallelism contract — a pooled batch is bit-identical to a
 * serial one (results and aggregate accounting), and the per-product
 * fault streams replay deterministically per seed at any parallelism.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/analytic_model.hpp"
#include "sim/batch.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

using namespace camp::sim;
using camp::mpn::Natural;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

std::vector<std::pair<Natural, Natural>>
random_batch(camp::Rng& rng, std::size_t count, std::uint64_t max_bits)
{
    std::vector<std::pair<Natural, Natural>> pairs;
    pairs.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        pairs.emplace_back(
            Natural::random_bits(rng, 32 + rng.below(max_bits - 32)),
            Natural::random_bits(rng, 32 + rng.below(max_bits - 32)));
    return pairs;
}

} // namespace

TEST(BatchEngine, ProductsMatchReference)
{
    BatchEngine engine;
    camp::Rng rng(150);
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 20; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 64 + rng.below(2000)),
                           Natural::random_bits(rng, 64 + rng.below(2000)));
    const BatchResult result = engine.multiply_batch(pairs);
    ASSERT_EQ(result.products.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(result.products[i],
                  pairs[i].first * pairs[i].second);
}

TEST(BatchEngine, ZeroOperandsYieldZeroProducts)
{
    BatchEngine engine;
    camp::Rng rng(151);
    std::vector<std::pair<Natural, Natural>> pairs;
    pairs.emplace_back(Natural(), Natural(5));
    pairs.emplace_back(Natural::random_bits(rng, 100), Natural());
    const BatchResult result = engine.multiply_batch(pairs);
    EXPECT_TRUE(result.products[0].is_zero());
    EXPECT_TRUE(result.products[1].is_zero());
}

TEST(BatchEngine, WavesScaleWithBatchSize)
{
    BatchEngine engine(default_config(), /*validate=*/false);
    camp::Rng rng(152);
    auto make_batch = [&](std::size_t count) {
        std::vector<std::pair<Natural, Natural>> pairs;
        for (std::size_t i = 0; i < count; ++i)
            pairs.emplace_back(Natural::random_bits(rng, 1024),
                               Natural::random_bits(rng, 1024));
        return pairs;
    };
    const BatchResult small = engine.multiply_batch(make_batch(8));
    const BatchResult big = engine.multiply_batch(make_batch(512));
    EXPECT_GT(big.tasks, 32 * small.tasks);
    EXPECT_GE(big.waves, small.waves);
    // Amortized time improves with batch size until capacity saturates.
    EXPECT_LE(big.amortized_seconds(default_config()),
              small.amortized_seconds(default_config()) + 1e-12);
}

TEST(BatchEngine, TaskAndWaveAccountingMatchesModel)
{
    BatchEngine engine(default_config(), /*validate=*/false);
    camp::Rng rng(153);
    const std::size_t batch = 96;
    std::vector<std::pair<Natural, Natural>> pairs;
    for (std::size_t i = 0; i < batch; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1024),
                           Natural::random_bits(rng, 1024));
    const BatchResult result = engine.multiply_batch(pairs);
    // Independent products pool tasks over the whole fabric.
    const camp::sim::AnalyticModel model;
    const auto per_product = model.multiply_counts(32, 32); // 1024 bits
    EXPECT_EQ(result.tasks, batch * per_product.tasks);
    const std::uint64_t expect_waves =
        (result.tasks + default_config().total_ipus() - 1) /
        default_config().total_ipus();
    EXPECT_EQ(result.waves, expect_waves);
}

TEST(BatchEngine, PooledBatchBitIdenticalToSerial)
{
    // The host-parallelism determinism contract: products and every
    // aggregate counter match the serial run exactly, at any pool
    // size (CI runs this at CAMP_THREADS=1 and 4).
    const std::uint64_t seed = fuzz_seed(0xba7c4ull);
    camp::Rng rng(seed);
    BatchEngine engine;
    for (int round = 0; round < 6; ++round) {
        const auto pairs = random_batch(rng, 3 + rng.below(60), 3000);
        const BatchResult serial = engine.multiply_batch(pairs, 1);
        const BatchResult pooled = engine.multiply_batch(pairs, 0);
        EXPECT_EQ(serial.parallelism, 1u);
        ASSERT_EQ(pooled.products, serial.products)
            << "round=" << round << " CAMP_FUZZ_SEED=" << seed;
        EXPECT_EQ(pooled.tasks, serial.tasks);
        EXPECT_EQ(pooled.waves, serial.waves);
        EXPECT_EQ(pooled.bytes, serial.bytes);
        EXPECT_EQ(pooled.cycles, serial.cycles);
    }
}

TEST(BatchEngine, PerProductStatsDeterministicWithTracing)
{
    // Observability must not perturb the simulation: with the tracing
    // layer force-enabled (spans recording into the ring from every
    // worker), a pooled batch still reports *per-product* task, byte,
    // stall-cycle, and fault counters identical to the serial run —
    // element-wise via BatchResult::per_product, not just in
    // aggregate. CI runs this at CAMP_THREADS=1 and 4, covering both
    // pool widths; faults are armed so injected/faulty are nonzero.
    namespace trace = camp::support::trace;
    const bool was_enabled = trace::enabled();
    trace::set_enabled(true);
    const std::uint64_t seed = fuzz_seed(0xde7e2717ull);
    camp::Rng rng(seed);

    SimConfig config = default_config();
    config.faults.seed = seed;
    config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.002;
    BatchEngine engine(config, /*validate=*/true);
    std::uint64_t total_injected = 0;
    for (int round = 0; round < 4; ++round) {
        const auto pairs = random_batch(rng, 4 + rng.below(48), 2500);
        const BatchResult serial = engine.multiply_batch(pairs, 1);
        const BatchResult pooled = engine.multiply_batch(pairs, 0);
        ASSERT_EQ(serial.per_product.size(), pairs.size());
        ASSERT_EQ(pooled.per_product.size(), pairs.size());
        ASSERT_EQ(pooled.products, serial.products)
            << "round=" << round << " CAMP_FUZZ_SEED=" << seed;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            const BatchProductStats& s = serial.per_product[i];
            const BatchProductStats& p = pooled.per_product[i];
            EXPECT_TRUE(s == p)
                << "round=" << round << " product=" << i
                << " serial{tasks=" << s.tasks << " bytes=" << s.bytes
                << " stalls=" << s.stall_cycles
                << " injected=" << s.injected << " faulty=" << s.faulty
                << "} pooled{tasks=" << p.tasks << " bytes=" << p.bytes
                << " stalls=" << p.stall_cycles
                << " injected=" << p.injected << " faulty=" << p.faulty
                << "} CAMP_FUZZ_SEED=" << seed;
            total_injected += s.injected;
        }
        // The aggregate counters are the fold of per_product.
        std::uint64_t tasks = 0, injected = 0, faulty = 0;
        for (const BatchProductStats& s : serial.per_product) {
            tasks += s.tasks;
            injected += s.injected;
            faulty += s.faulty ? 1 : 0;
        }
        EXPECT_EQ(tasks, serial.tasks);
        EXPECT_EQ(injected, serial.injected);
        EXPECT_EQ(faulty, serial.faulty);
    }
    // Rates are chosen so the armed counters actually move.
    EXPECT_GT(total_injected, 0u);
    trace::set_enabled(was_enabled);
}

TEST(BatchEngine, SerialGuardSuppressesForking)
{
    BatchEngine engine;
    camp::Rng rng(154);
    const auto pairs = random_batch(rng, 8, 1024);
    camp::support::SerialGuard guard;
    const BatchResult result = engine.multiply_batch(pairs, 0);
    EXPECT_EQ(result.parallelism, 1u);
}

TEST(BatchEngine, FaultStreamsReplayPerSeedAtAnyParallelism)
{
    // Product i's fault stream is seeded faults.seed + i, so an armed
    // batch corrupts *identically* serial vs pooled, run after run —
    // PR-1's replayable-injection property survives the thread pool.
    SimConfig config = default_config();
    config.faults.seed = 0xdeadfa17ull;
    config.faults.rate_at(camp::FaultSite::IpuAccumulator) =
        0.002;
    config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.01;
    BatchEngine engine(config, /*validate=*/true);
    camp::Rng rng(fuzz_seed(0xfa177ull));
    const auto pairs = random_batch(rng, 48, 2048);

    const BatchResult serial = engine.multiply_batch(pairs, 1);
    const BatchResult pooled = engine.multiply_batch(pairs, 0);
    const BatchResult replay = engine.multiply_batch(pairs, 0);
    // Deterministic corruption: the faulty products are byte-equal.
    ASSERT_EQ(pooled.products, serial.products);
    ASSERT_EQ(replay.products, serial.products);
    EXPECT_EQ(pooled.injected, serial.injected);
    EXPECT_EQ(pooled.faulty, serial.faulty);
    EXPECT_GT(serial.injected, 0u);
    // Injection really corrupted something (rates chosen to fire).
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i)
        if (serial.products[i] != pairs[i].first * pairs[i].second)
            ++mismatches;
    EXPECT_EQ(mismatches, serial.faulty);
}

TEST(BatchEngine, FaultSeedSelectsDifferentStreams)
{
    SimConfig config = default_config();
    config.faults.rate_at(camp::FaultSite::IpuAccumulator) =
        0.005;
    camp::Rng rng(155);
    const auto pairs = random_batch(rng, 32, 2048);
    config.faults.seed = 1;
    const BatchResult one =
        BatchEngine(config, true).multiply_batch(pairs);
    config.faults.seed = 2;
    const BatchResult two =
        BatchEngine(config, true).multiply_batch(pairs);
    // Different seeds, different injected sequences (overwhelmingly).
    EXPECT_NE(one.products, two.products);
}

#include "sim/stream_sim.hpp"

TEST(StreamingSimulator, ComputeBoundShapeHidesStreaming)
{
    // 35904x35904: compute bound; double buffering must fully hide the
    // stream except for the initial fill.
    const StreamingSimulator streamer(default_config(), 2);
    const StreamStats stats = streamer.run_multiply(35904, 35904);
    const AnalyticModel model;
    const std::uint64_t analytic = model.multiply_cycles(35904, 35904);
    EXPECT_EQ(stats.stall_cycles, 0u);
    EXPECT_GE(stats.cycles, analytic);
    EXPECT_LE(stats.cycles, analytic + stats.fill_cycles + 32);
}

TEST(StreamingSimulator, MemoryBoundShapeStalls)
{
    // 35904x32: memory bound; the pipeline must stall roughly down to
    // the bandwidth bound regardless of buffering depth.
    const AnalyticModel model;
    const std::uint64_t analytic = model.multiply_cycles(35904, 32);
    const StreamingSimulator streamer(default_config(), 4);
    const StreamStats stats = streamer.run_multiply(35904, 32);
    EXPECT_GT(stats.stall_cycles + stats.fill_cycles, 0u);
    EXPECT_GE(stats.cycles, analytic);
    EXPECT_LE(stats.cycles, analytic + analytic / 4 + 64);
}

TEST(StreamingSimulator, DeeperBuffersNeverHurt)
{
    for (const auto [a, b] :
         {std::pair<std::uint64_t, std::uint64_t>{35904, 35904},
          std::pair<std::uint64_t, std::uint64_t>{35904, 512},
          std::pair<std::uint64_t, std::uint64_t>{20000, 4000}}) {
        std::uint64_t prev = ~0ull;
        for (const unsigned depth : {1u, 2u, 4u, 8u}) {
            const StreamingSimulator streamer(default_config(), depth);
            const StreamStats stats = streamer.run_multiply(a, b);
            EXPECT_LE(stats.cycles, prev) << a << "x" << b << " depth "
                                          << depth;
            prev = stats.cycles;
        }
    }
}

TEST(StreamingSimulator, ZeroOperandIsFree)
{
    const StreamingSimulator streamer;
    EXPECT_EQ(streamer.run_multiply(0, 100).cycles, 0u);
}
