/**
 * @file
 * Batch-engine tests: product correctness across batch shapes, wave
 * accounting vs pooled capacity, and amortized-time behaviour.
 */
#include <gtest/gtest.h>

#include "sim/analytic_model.hpp"
#include "sim/batch.hpp"
#include "support/rng.hpp"

using namespace camp::sim;
using camp::mpn::Natural;

TEST(BatchEngine, ProductsMatchReference)
{
    BatchEngine engine;
    camp::Rng rng(150);
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 20; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 64 + rng.below(2000)),
                           Natural::random_bits(rng, 64 + rng.below(2000)));
    const BatchResult result = engine.multiply_batch(pairs);
    ASSERT_EQ(result.products.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(result.products[i],
                  pairs[i].first * pairs[i].second);
}

TEST(BatchEngine, ZeroOperandsYieldZeroProducts)
{
    BatchEngine engine;
    camp::Rng rng(151);
    std::vector<std::pair<Natural, Natural>> pairs;
    pairs.emplace_back(Natural(), Natural(5));
    pairs.emplace_back(Natural::random_bits(rng, 100), Natural());
    const BatchResult result = engine.multiply_batch(pairs);
    EXPECT_TRUE(result.products[0].is_zero());
    EXPECT_TRUE(result.products[1].is_zero());
}

TEST(BatchEngine, WavesScaleWithBatchSize)
{
    BatchEngine engine(default_config(), /*validate=*/false);
    camp::Rng rng(152);
    auto make_batch = [&](std::size_t count) {
        std::vector<std::pair<Natural, Natural>> pairs;
        for (std::size_t i = 0; i < count; ++i)
            pairs.emplace_back(Natural::random_bits(rng, 1024),
                               Natural::random_bits(rng, 1024));
        return pairs;
    };
    const BatchResult small = engine.multiply_batch(make_batch(8));
    const BatchResult big = engine.multiply_batch(make_batch(512));
    EXPECT_GT(big.tasks, 32 * small.tasks);
    EXPECT_GE(big.waves, small.waves);
    // Amortized time improves with batch size until capacity saturates.
    EXPECT_LE(big.amortized_seconds(default_config()),
              small.amortized_seconds(default_config()) + 1e-12);
}

TEST(BatchEngine, TaskAndWaveAccountingMatchesModel)
{
    BatchEngine engine(default_config(), /*validate=*/false);
    camp::Rng rng(153);
    const std::size_t batch = 96;
    std::vector<std::pair<Natural, Natural>> pairs;
    for (std::size_t i = 0; i < batch; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1024),
                           Natural::random_bits(rng, 1024));
    const BatchResult result = engine.multiply_batch(pairs);
    // Independent products pool tasks over the whole fabric.
    const camp::sim::AnalyticModel model;
    const auto per_product = model.multiply_counts(32, 32); // 1024 bits
    EXPECT_EQ(result.tasks, batch * per_product.tasks);
    const std::uint64_t expect_waves =
        (result.tasks + default_config().total_ipus() - 1) /
        default_config().total_ipus();
    EXPECT_EQ(result.waves, expect_waves);
}

#include "sim/stream_sim.hpp"

TEST(StreamingSimulator, ComputeBoundShapeHidesStreaming)
{
    // 35904x35904: compute bound; double buffering must fully hide the
    // stream except for the initial fill.
    const StreamingSimulator streamer(default_config(), 2);
    const StreamStats stats = streamer.run_multiply(35904, 35904);
    const AnalyticModel model;
    const std::uint64_t analytic = model.multiply_cycles(35904, 35904);
    EXPECT_EQ(stats.stall_cycles, 0u);
    EXPECT_GE(stats.cycles, analytic);
    EXPECT_LE(stats.cycles, analytic + stats.fill_cycles + 32);
}

TEST(StreamingSimulator, MemoryBoundShapeStalls)
{
    // 35904x32: memory bound; the pipeline must stall roughly down to
    // the bandwidth bound regardless of buffering depth.
    const AnalyticModel model;
    const std::uint64_t analytic = model.multiply_cycles(35904, 32);
    const StreamingSimulator streamer(default_config(), 4);
    const StreamStats stats = streamer.run_multiply(35904, 32);
    EXPECT_GT(stats.stall_cycles + stats.fill_cycles, 0u);
    EXPECT_GE(stats.cycles, analytic);
    EXPECT_LE(stats.cycles, analytic + analytic / 4 + 64);
}

TEST(StreamingSimulator, DeeperBuffersNeverHurt)
{
    for (const auto [a, b] :
         {std::pair<std::uint64_t, std::uint64_t>{35904, 35904},
          std::pair<std::uint64_t, std::uint64_t>{35904, 512},
          std::pair<std::uint64_t, std::uint64_t>{20000, 4000}}) {
        std::uint64_t prev = ~0ull;
        for (const unsigned depth : {1u, 2u, 4u, 8u}) {
            const StreamingSimulator streamer(default_config(), depth);
            const StreamStats stats = streamer.run_multiply(a, b);
            EXPECT_LE(stats.cycles, prev) << a << "x" << b << " depth "
                                          << depth;
            prev = stats.cycles;
        }
    }
}

TEST(StreamingSimulator, ZeroOperandIsFree)
{
    const StreamingSimulator streamer;
    EXPECT_EQ(streamer.run_multiply(0, 100).cycles, 0u);
}
