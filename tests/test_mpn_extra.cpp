/**
 * @file
 * Tests for the optimization-oriented operators: mullo against the low
 * half of the full product, divexact against divrem on constructed
 * exact quotients, and Lehmer GCD against binary GCD.
 */
#include <gtest/gtest.h>

#include <vector>

#include "mpn/basic.hpp"
#include "mpn/extra.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;
using mpn::Natural;

namespace {

std::vector<Limb>
random_limbs(camp::Rng& rng, std::size_t n)
{
    std::vector<Limb> v(n);
    for (auto& limb : v)
        limb = rng.next();
    return v;
}

} // namespace

class MulloSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MulloSizes, MatchesLowHalfOfFullProduct)
{
    const std::size_t n = GetParam();
    camp::Rng rng(140 + n);
    for (int iter = 0; iter < 6; ++iter) {
        const auto a = random_limbs(rng, n);
        const auto b = random_limbs(rng, n);
        std::vector<Limb> lo(n), full(2 * n);
        mpn::mullo_n(lo.data(), a.data(), b.data(), n);
        mpn::mul(full.data(), a.data(), n, b.data(), n);
        EXPECT_EQ(mpn::cmp_n(lo.data(), full.data(), n), 0)
            << "n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MulloSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 47, 48, 49,
                                           100, 200, 333));

TEST(DivExact, MatchesConstructedQuotient)
{
    camp::Rng rng(141);
    for (int iter = 0; iter < 40; ++iter) {
        const std::size_t qn = 1 + rng.below(60);
        const std::size_t dn = 1 + rng.below(40);
        auto qv = random_limbs(rng, qn);
        auto dv = random_limbs(rng, dn);
        if (qv.back() == 0)
            qv.back() = 1;
        if (dv.back() == 0)
            dv.back() = 1;
        std::vector<Limb> a(qn + dn);
        if (qn >= dn)
            mpn::mul(a.data(), qv.data(), qn, dv.data(), dn);
        else
            mpn::mul(a.data(), dv.data(), dn, qv.data(), qn);
        const std::size_t an = mpn::normalized_size(a.data(), a.size());
        std::vector<Limb> q(an - dn + 1, 0);
        mpn::divexact(q.data(), a.data(), an, dv.data(), dn);
        EXPECT_EQ(mpn::normalized_size(q.data(), q.size()), qn);
        EXPECT_EQ(mpn::cmp_n(q.data(), qv.data(), qn), 0);
    }
}

TEST(DivExact, EvenDivisors)
{
    camp::Rng rng(142);
    for (const unsigned twos : {1u, 7u, 64u, 65u, 130u}) {
        const Natural d0 = Natural::random_bits(rng, 100);
        const Natural d = d0 << twos;
        const Natural q = Natural::random_bits(rng, 150);
        const Natural a = q * d;
        std::vector<Limb> qv(a.size() - d.size() + 1, 0);
        mpn::divexact(qv.data(), a.data(), a.size(), d.data(),
                      d.size());
        EXPECT_EQ(Natural::from_limbs({qv.begin(), qv.end()}), q)
            << "twos=" << twos;
    }
}

TEST(DivExact, DivisorOfOneLimb)
{
    camp::Rng rng(143);
    const Natural q = Natural::random_bits(rng, 500);
    const Natural d(0x1234567b);
    const Natural a = q * d;
    std::vector<Limb> qv(a.size(), 0);
    mpn::divexact(qv.data(), a.data(), a.size(), d.data(), d.size());
    EXPECT_EQ(Natural::from_limbs({qv.begin(), qv.end()}), q);
}

TEST(GcdLehmer, MatchesBinaryGcdRandom)
{
    camp::Rng rng(144);
    for (int iter = 0; iter < 25; ++iter) {
        const Natural g =
            Natural::random_bits(rng, 1 + rng.below(100));
        const Natural a =
            g * Natural::random_bits(rng, 1 + rng.below(600));
        const Natural b =
            g * Natural::random_bits(rng, 1 + rng.below(600));
        EXPECT_EQ(mpn::gcd_lehmer(a, b), Natural::gcd(a, b));
    }
}

TEST(GcdLehmer, EdgeCases)
{
    EXPECT_EQ(mpn::gcd_lehmer(Natural(), Natural(7)), Natural(7));
    EXPECT_EQ(mpn::gcd_lehmer(Natural(7), Natural()), Natural(7));
    EXPECT_EQ(mpn::gcd_lehmer(Natural(1), Natural(1)), Natural(1));
    camp::Rng rng(145);
    const Natural a = Natural::random_bits(rng, 2000);
    EXPECT_EQ(mpn::gcd_lehmer(a, a), a);
    // Coprime pair: gcd 1 (consecutive integers).
    EXPECT_EQ(mpn::gcd_lehmer(a, a + Natural(1)), Natural(1));
}

TEST(GcdLehmer, FibonacciWorstCase)
{
    // Consecutive Fibonacci numbers maximize Euclid steps.
    Natural f0(0), f1(1);
    for (int i = 0; i < 600; ++i) {
        const Natural f2 = f0 + f1;
        f0 = f1;
        f1 = f2;
    }
    EXPECT_EQ(mpn::gcd_lehmer(f1, f0), Natural(1));
}

#include "mpn/newton.hpp"

TEST(Newton, ReciprocalIsExactFloor)
{
    camp::Rng rng(146);
    for (int iter = 0; iter < 20; ++iter) {
        const Natural d =
            Natural::random_bits(rng, 65 + rng.below(2000));
        const std::uint64_t extra = 64 + rng.below(2000);
        const Natural x = mpn::newton_reciprocal(d, extra);
        const Natural pow = Natural(1) << (d.bits() + extra);
        EXPECT_LE(x * d, pow);
        EXPECT_GT((x + Natural(1)) * d, pow);
    }
}

TEST(Newton, ReciprocalSmallPathsMatch)
{
    // extra < 64 and tiny divisors take the direct path.
    const Natural d(10);
    EXPECT_EQ(mpn::newton_reciprocal(d, 10).to_uint64(),
              (1u << (4 + 10)) / 10);
    EXPECT_THROW(mpn::newton_reciprocal(Natural(), 100),
                 std::invalid_argument);
}

TEST(Newton, DivremMatchesReferenceDivision)
{
    camp::Rng rng(147);
    for (int iter = 0; iter < 20; ++iter) {
        const Natural d =
            Natural::random_bits(rng, 64 + rng.below(1500));
        const Natural a =
            Natural::random_bits(rng, d.bits() + rng.below(3000));
        auto [q, r] = mpn::divrem_newton(a, d);
        auto [q2, r2] = Natural::divrem(a, d);
        EXPECT_EQ(q, q2);
        EXPECT_EQ(r, r2);
    }
}

TEST(Newton, DivremEdgeCases)
{
    EXPECT_THROW(mpn::divrem_newton(Natural(5), Natural()),
                 std::invalid_argument);
    const auto [q, r] = mpn::divrem_newton(Natural(3), Natural(7));
    EXPECT_TRUE(q.is_zero());
    EXPECT_EQ(r, Natural(3));
    // Power-of-two divisor: quotient is a shift.
    camp::Rng rng(148);
    const Natural a = Natural::random_bits(rng, 1000);
    const Natural d = Natural(1) << 137;
    const auto [q2, r2] = mpn::divrem_newton(a, d);
    EXPECT_EQ(q2, a >> 137);
    EXPECT_EQ(r2, a & (d - Natural(1)));
}
