/**
 * @file
 * Division tests: the Euclidean invariant a == q*d + r, 0 <= r < d is
 * checked for Knuth schoolbook and Burnikel–Ziegler across shapes,
 * including adversarial all-ones patterns that stress qhat correction.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "mpn/basic.hpp"
#include "mpn/div.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "mpn/newton.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
using mpn::Limb;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

std::vector<Limb>
random_limbs(camp::Rng& rng, std::size_t n, bool nonzero_top = false)
{
    std::vector<Limb> v(n);
    for (auto& limb : v)
        limb = rng.next();
    if (nonzero_top && n > 0 && v.back() == 0)
        v.back() = 1;
    return v;
}

void
check_divrem(const std::vector<Limb>& a, const std::vector<Limb>& d)
{
    const std::size_t an = a.size(), dn = d.size();
    ASSERT_GE(an, dn);
    ASSERT_NE(d.back(), 0u);
    std::vector<Limb> q(an - dn + 1), r(dn);
    mpn::divrem(q.data(), r.data(), a.data(), an, d.data(), dn);
    // r < d.
    EXPECT_LT(mpn::cmp(r.data(), mpn::normalized_size(r.data(), dn),
                       d.data(), dn),
              0);
    // q*d + r == a.
    std::vector<Limb> prod(an + 1, 0);
    const std::size_t qn = mpn::normalized_size(q.data(), q.size());
    if (qn > 0) {
        std::vector<Limb> full(qn + dn);
        if (qn >= dn)
            mpn::mul(full.data(), q.data(), qn, d.data(), dn);
        else
            mpn::mul(full.data(), d.data(), dn, q.data(), qn);
        ASSERT_LE(mpn::normalized_size(full.data(), full.size()), an + 1);
        mpn::copy(prod.data(), full.data(),
                  std::min(full.size(), prod.size()));
    }
    const Limb carry = mpn::add(prod.data(), prod.data(), an + 1,
                                r.data(), mpn::normalized_size(r.data(),
                                                               dn));
    EXPECT_EQ(carry, 0u);
    EXPECT_EQ(prod[an], 0u);
    EXPECT_EQ(mpn::cmp_n(prod.data(), a.data(), an), 0);
}

} // namespace

TEST(MpnDiv, DivRem1MatchesU128)
{
    camp::Rng rng(21);
    for (int iter = 0; iter < 50; ++iter) {
        const auto a = random_limbs(rng, 2);
        const Limb d = rng.next() | 1;
        std::vector<Limb> q(2);
        const Limb r = mpn::divrem_1(q.data(), a.data(), 2, d);
        const camp::u128 av =
            (static_cast<camp::u128>(a[1]) << 64) | a[0];
        EXPECT_EQ(r, static_cast<Limb>(av % d));
        EXPECT_EQ(q[0], static_cast<Limb>(av / d));
        EXPECT_EQ(q[1], static_cast<Limb>((av / d) >> 64));
    }
}

struct DivCase
{
    std::size_t an, dn;
};

class DivShapes : public ::testing::TestWithParam<DivCase>
{
};

TEST_P(DivShapes, EuclideanInvariant)
{
    const auto [an, dn] = GetParam();
    camp::Rng rng(400 + an * 17 + dn);
    for (int iter = 0; iter < 6; ++iter) {
        const auto a = random_limbs(rng, an);
        const auto d = random_limbs(rng, dn, true);
        check_divrem(a, d);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DivShapes,
    ::testing::Values(DivCase{1, 1}, DivCase{2, 1}, DivCase{2, 2},
                      DivCase{3, 2}, DivCase{5, 2}, DivCase{8, 4},
                      DivCase{16, 7}, DivCase{30, 13}, DivCase{50, 50},
                      DivCase{60, 31}, DivCase{100, 49},
                      DivCase{128, 64}, DivCase{200, 100},
                      DivCase{300, 97}, DivCase{399, 200},
                      DivCase{512, 256}, DivCase{1000, 333}));

TEST(MpnDiv, ExactDivision)
{
    camp::Rng rng(22);
    for (int iter = 0; iter < 30; ++iter) {
        const std::size_t qn = 1 + rng.below(120);
        const std::size_t dn = 1 + rng.below(120);
        const auto qv = random_limbs(rng, qn, true);
        const auto dv = random_limbs(rng, dn, true);
        std::vector<Limb> a(qn + dn);
        if (qn >= dn)
            mpn::mul(a.data(), qv.data(), qn, dv.data(), dn);
        else
            mpn::mul(a.data(), dv.data(), dn, qv.data(), qn);
        const std::size_t an = mpn::normalized_size(a.data(), a.size());
        std::vector<Limb> q(an - dn + 1), r(dn);
        mpn::divrem(q.data(), r.data(), a.data(), an, dv.data(), dn);
        EXPECT_EQ(mpn::normalized_size(r.data(), dn), 0u);
        EXPECT_EQ(mpn::normalized_size(q.data(), q.size()), qn);
        EXPECT_EQ(mpn::cmp_n(q.data(), qv.data(), qn), 0);
    }
}

TEST(MpnDiv, AllOnesStressesQhatCorrection)
{
    // Dividend of all ones divided by B^k-ish divisors triggers the
    // qhat-too-large add-back path.
    for (std::size_t dn : {2u, 3u, 5u, 17u}) {
        std::vector<Limb> a(3 * dn, mpn::kLimbMax);
        std::vector<Limb> d(dn, 0);
        d[dn - 1] = 1; // d = B^(dn-1)
        check_divrem(a, d);
        d[0] = 1; // d = B^(dn-1) + 1
        check_divrem(a, d);
        std::vector<Limb> dmax(dn, mpn::kLimbMax);
        check_divrem(a, dmax);
    }
}

TEST(MpnDiv, QuotientZeroWhenDividendSmaller)
{
    camp::Rng rng(23);
    auto d = random_limbs(rng, 8, true);
    auto a = d;
    a[0] -= 1; // a = d - 1 (no borrow risk: top limb nonzero)
    if (d[0] == 0) {
        a = d;
        a[7] -= 1;
        if (a[7] == 0)
            a[7] = 1; // keep normalized-ish; still < d unless equal
    }
    std::vector<Limb> q(1), r(8);
    mpn::divrem(q.data(), r.data(), a.data(), 8, d.data(), 8);
    if (mpn::cmp_n(a.data(), d.data(), 8) < 0) {
        EXPECT_EQ(q[0], 0u);
        EXPECT_EQ(mpn::cmp_n(r.data(), a.data(), 8), 0);
    }
}

TEST(MpnDiv, BurnikelZieglerMatchesKnuth)
{
    camp::Rng rng(24);
    // Force both paths on identical inputs by toggling the threshold.
    for (int iter = 0; iter < 4; ++iter) {
        const std::size_t dn = 64 + rng.below(64);
        const std::size_t an = dn + 1 + rng.below(3 * dn);
        const auto a = random_limbs(rng, an);
        const auto d = random_limbs(rng, dn, true);
        std::vector<Limb> q1(an - dn + 1), r1(dn);
        std::vector<Limb> q2(an - dn + 1), r2(dn);
        auto& tuning = mpn::div_tuning();
        const std::size_t saved = tuning.bz;
        tuning.bz = 8;
        mpn::divrem(q1.data(), r1.data(), a.data(), an, d.data(), dn);
        tuning.bz = 1u << 30; // force pure Knuth
        mpn::divrem(q2.data(), r2.data(), a.data(), an, d.data(), dn);
        tuning.bz = saved;
        EXPECT_EQ(q1, q2);
        EXPECT_EQ(r1, r2);
    }
}

TEST(MpnDiv, DifferentialFuzzKnuthVsBurnikelZiegler)
{
    // Property-based differential fuzz (>= 1000 cases): every random
    // (dividend, divisor) pair is divided twice — Burnikel–Ziegler
    // forced on (threshold 8) and pure Knuth-D (threshold maxed) —
    // and the two results must agree limb-for-limb AND satisfy the
    // multiply-back identity q*d + r == n with r < d. Shapes sweep
    // from single-limb divisors up through heavily unbalanced and
    // near-square pairs so both the qhat-correction and the recursive
    // 2n/n split paths get hit.
    const std::uint64_t seed = fuzz_seed(0xd1f5eedull);
    camp::Rng rng(seed);
    auto& tuning = mpn::div_tuning();
    const std::size_t saved = tuning.bz;
    for (int iter = 0; iter < 1000; ++iter) {
        SCOPED_TRACE("iter=" + std::to_string(iter) +
                     " seed=" + std::to_string(seed) +
                     " (replay: CAMP_FUZZ_SEED=<seed>)");
        const std::size_t dn = 1 + rng.below(96);
        const std::size_t an = dn + rng.below(160);
        auto a = random_limbs(rng, an);
        auto d = random_limbs(rng, dn, true);
        // A slice of the cases gets adversarial bit patterns: all-ones
        // dividends and power-of-B divisors stress qhat correction.
        if (iter % 7 == 0)
            for (auto& limb : a)
                limb = mpn::kLimbMax;
        if (iter % 11 == 0) {
            std::fill(d.begin(), d.end(), Limb{0});
            d[dn - 1] = 1 + rng.below(2);
        }

        std::vector<Limb> q_bz(an - dn + 1), r_bz(dn);
        std::vector<Limb> q_kn(an - dn + 1), r_kn(dn);
        tuning.bz = 8; // recursive Burnikel–Ziegler wherever legal
        mpn::divrem(q_bz.data(), r_bz.data(), a.data(), an, d.data(),
                    dn);
        tuning.bz = 1u << 30; // pure Knuth-D
        mpn::divrem(q_kn.data(), r_kn.data(), a.data(), an, d.data(),
                    dn);
        tuning.bz = saved;
        ASSERT_EQ(q_bz, q_kn);
        ASSERT_EQ(r_bz, r_kn);

        // Multiply-back identity on the agreed result.
        check_divrem(a, d);
    }
}

TEST(MpnDiv, NewtonMatchesKnuthDifferential)
{
    // Regression suite for divrem_newton's degenerate shapes (a < d,
    // d == 1, power-of-two divisors, all-ones operands) plus a
    // >= 1000-case random differential against pure Knuth-D: quotient
    // and remainder must agree exactly and satisfy the Euclidean
    // invariant.
    using camp::mpn::Natural;
    const std::uint64_t seed = fuzz_seed(0x0e37700ull);
    camp::Rng rng(seed);
    auto& tuning = mpn::div_tuning();
    const std::size_t saved = tuning.bz;
    tuning.bz = 1u << 30; // the reference divides with pure Knuth-D
    for (int iter = 0; iter < 1200; ++iter) {
        SCOPED_TRACE("iter=" + std::to_string(iter) +
                     " seed=" + std::to_string(seed) +
                     " (replay: CAMP_FUZZ_SEED=<seed>)");
        Natural a = Natural::random_bits(rng, 1 + rng.below(6000));
        Natural d = Natural::random_bits(rng, 1 + rng.below(4000));
        switch (iter % 8) {
        case 0: // a < d: quotient must be zero, remainder a
            if (a > d)
                std::swap(a, d);
            break;
        case 1: // d == 1: previously built a 2^(bits(a)+3) temporary
            d = Natural(1);
            break;
        case 2: // power-of-two divisor: pure shift/mask path
            d = Natural(1) << rng.below(3000);
            break;
        case 3: // all-ones operands stress the final correction
            a = (Natural(1) << (1 + rng.below(5000))) - Natural(1);
            d = (Natural(1) << (1 + rng.below(3000))) - Natural(1);
            break;
        case 4: // exact multiples: remainder must be exactly zero
            a = a * d;
            break;
        case 5: // a == d
            a = d;
            break;
        default:
            break;
        }
        if (d.is_zero())
            d = Natural(1);
        const auto [q, r] = mpn::divrem_newton(a, d);
        const auto [qk, rk] = Natural::divrem(a, d);
        ASSERT_EQ(q, qk);
        ASSERT_EQ(r, rk);
        ASSERT_TRUE(r < d);
        ASSERT_EQ(q * d + r, a);
    }
    tuning.bz = saved;

    EXPECT_THROW(mpn::divrem_newton(Natural(5), Natural()),
                 std::invalid_argument);
    EXPECT_THROW(mpn::newton_reciprocal(Natural(), 64),
                 std::invalid_argument);
    // The power-of-two reciprocal short-circuit stays exact.
    // floor(2^(bits(d) + extra) / 2^k) with bits(d) = k + 1.
    for (std::uint64_t k : {0u, 1u, 63u, 64u, 500u})
        EXPECT_EQ(mpn::newton_reciprocal(Natural(1) << k, 200),
                  Natural(1) << 201);
}

TEST(MpnDiv, UnnormalizedDividendHighZeros)
{
    camp::Rng rng(25);
    auto a = random_limbs(rng, 40);
    for (int i = 0; i < 15; ++i)
        a[39 - i] = 0;
    const auto d = random_limbs(rng, 9, true);
    check_divrem(a, d);
}
