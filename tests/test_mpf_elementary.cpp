/**
 * @file
 * Transcendental-layer tests: pi, atan, sin/cos/exp against known
 * high-precision digit strings and identities.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "mpf/elementary.hpp"

using namespace camp::mpf;
using camp::mpn::Natural;

TEST(Elementary, PiKnownDigits)
{
    const Float pi = pi_float(256);
    EXPECT_EQ(pi.to_decimal(60).substr(0, 52),
              "3.14159265358979323846264338327950288419716939937510");
}

TEST(Elementary, PiCacheConsistentAcrossPrecisions)
{
    const Float lo = pi_float(64);
    const Float hi = pi_float(512);
    const Float diff = Float::abs(hi - lo);
    EXPECT_TRUE(diff.is_zero() || diff.magnitude_exp() < -60);
}

TEST(Elementary, AtanReciprocalKnownValue)
{
    // atan(1/2) = 0.46364760900080611621...
    const Float a = atan_reciprocal(2, 200);
    EXPECT_EQ(a.to_decimal(20).substr(0, 21), "0.4636476090008061162");
}

TEST(Elementary, SinCosPythagoreanIdentity)
{
    const std::uint64_t prec = 256;
    for (const double xd : {0.1, 0.5, 1.0, 2.0, 3.0, 6.0}) {
        const Float x = Float::from_double(xd, prec);
        const Float s = sin(x, prec);
        const Float c = cos(x, prec);
        const Float err = Float::abs(
            s * s + c * c - Float::from_natural(Natural(1), prec));
        EXPECT_TRUE(err.is_zero() || err.magnitude_exp() < -200)
            << "x=" << xd;
    }
}

TEST(Elementary, SinPiIsZeroCosPiIsMinusOne)
{
    const std::uint64_t prec = 300;
    const Float pi = pi_float(prec);
    const Float s = sin(pi, prec);
    EXPECT_TRUE(s.is_zero() || s.magnitude_exp() < -280);
    const Float c1 = cos(pi, prec) + Float::from_natural(Natural(1),
                                                         prec);
    EXPECT_TRUE(c1.is_zero() || c1.magnitude_exp() < -280);
}

TEST(Elementary, SinMatchesDoubleAtLowPrecision)
{
    for (const double xd : {0.3, 1.2, 2.8, 5.5}) {
        EXPECT_NEAR(sin(Float::from_double(xd, 128), 128).to_double(),
                    std::sin(xd), 1e-14);
        EXPECT_NEAR(cos(Float::from_double(xd, 128), 128).to_double(),
                    std::cos(xd), 1e-14);
    }
}

TEST(Elementary, ExpKnownValues)
{
    const Float e = exp(Float::from_natural(Natural(1), 256), 256);
    EXPECT_EQ(e.to_decimal(40).substr(0, 40),
              "2.71828182845904523536028747135266249775");
    EXPECT_NEAR(exp(Float::from_double(-3.0, 128), 128).to_double(),
                std::exp(-3.0), 1e-14);
    EXPECT_NEAR(exp(Float::with_prec(64), 64).to_double(), 1.0, 1e-15);
}
