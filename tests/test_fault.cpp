/**
 * @file
 * Fault injection and recovery: the FaultEngine is deterministic,
 * every hardware site actually corrupts results when armed, config
 * validation rejects non-buildable hardware, and — the headline — the
 * self-checking MPApca runtime returns bit-exact products under
 * injection at every site while the ledger accounts for every
 * detected fault (detected == retried + fallbacks, injected covers
 * detected).
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "sim/analytic_model.hpp"
#include "sim/core.hpp"
#include "support/assert.hpp"
#include "support/errors.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

using camp::ConfigError;
using camp::FaultConfig;
using camp::FaultEngine;
using camp::FaultSite;
using camp::HardwareFault;
using camp::mpn::Natural;
using namespace camp::mpapca;
namespace sim = camp::sim;

namespace {

/** Nonzero rates at every site, scaled for per-task opportunities. */
sim::SimConfig
faulty_config(std::uint64_t seed)
{
    sim::SimConfig config;
    config.faults.seed = seed;
    config.faults.rate_at(FaultSite::IpuAccumulator) = 2e-5;
    config.faults.rate_at(FaultSite::ConverterPattern) = 2e-5;
    config.faults.rate_at(FaultSite::GatherCarry) = 0.1;
    config.faults.rate_at(FaultSite::MemoryTruncate) = 0.05;
    config.faults.rate_at(FaultSite::MemoryStall) = 0.05;
    return config;
}

} // namespace

TEST(FaultEngine, DeterministicInSeed)
{
    FaultConfig config;
    config.seed = 7;
    config.rate_at(FaultSite::IpuAccumulator) = 0.5;
    FaultEngine a(config), b(config);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.fire(FaultSite::IpuAccumulator),
                  b.fire(FaultSite::IpuAccumulator));
    EXPECT_EQ(a.total_injected(), b.total_injected());
    EXPECT_GT(a.total_injected(), 0u);
    EXPECT_LT(a.total_injected(), 200u);
}

TEST(FaultEngine, ZeroRateNeverFiresAndOneAlwaysFires)
{
    FaultConfig config;
    config.rate_at(FaultSite::GatherCarry) = 1.0;
    FaultEngine engine(config);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(engine.fire(FaultSite::IpuAccumulator));
        EXPECT_TRUE(engine.fire(FaultSite::GatherCarry));
    }
    EXPECT_EQ(engine.injected(FaultSite::IpuAccumulator), 0u);
    EXPECT_EQ(engine.injected(FaultSite::GatherCarry), 50u);
    EXPECT_EQ(engine.total_injected(), 50u);
}

TEST(FaultEngine, EnvOverridesConfig)
{
    ASSERT_EQ(setenv("CAMP_FAULT_SEED", "99", 1), 0);
    ASSERT_EQ(setenv("CAMP_FAULT_RATE", "0.25", 1), 0);
    ASSERT_EQ(setenv("CAMP_FAULT_GATHER", "0.75", 1), 0);
    const FaultConfig config = FaultConfig::from_env(FaultConfig{});
    unsetenv("CAMP_FAULT_SEED");
    unsetenv("CAMP_FAULT_RATE");
    unsetenv("CAMP_FAULT_GATHER");
    EXPECT_EQ(config.seed, 99u);
    EXPECT_DOUBLE_EQ(config.rate_at(FaultSite::IpuAccumulator), 0.25);
    EXPECT_DOUBLE_EQ(config.rate_at(FaultSite::GatherCarry), 0.75);
    EXPECT_TRUE(config.enabled());
    EXPECT_FALSE(FaultConfig::from_env(FaultConfig{}).enabled());
}

TEST(FaultInjection, EverySiteCorruptsValidatedProducts)
{
    // Arm one site at a time with certainty-level rates; a validating
    // Core must detect the corruption as HardwareFault on at least one
    // of a handful of products (sites like GatherCarry can be masked
    // when the victim segment happens to carry nothing).
    struct Case
    {
        FaultSite site;
        double rate;
    };
    const Case cases[] = {
        {FaultSite::IpuAccumulator, 0.01},
        {FaultSite::ConverterPattern, 0.01},
        {FaultSite::GatherCarry, 1.0},
        {FaultSite::MemoryTruncate, 1.0},
    };
    for (const Case& c : cases) {
        sim::SimConfig config;
        config.faults.seed = 11;
        config.faults.rate_at(c.site) = c.rate;
        sim::Core core(config, sim::Fidelity::Fast, /*validate=*/true);
        camp::Rng rng(500 + static_cast<int>(c.site));
        int detections = 0;
        for (int round = 0; round < 5; ++round) {
            const Natural a = Natural::random_bits(rng, 8000);
            const Natural b = Natural::random_bits(rng, 8000);
            try {
                core.multiply(a, b);
            } catch (const HardwareFault&) {
                ++detections;
            }
        }
        ASSERT_NE(core.fault_engine(), nullptr);
        EXPECT_GT(core.fault_engine()->injected(c.site), 0u)
            << camp::fault_site_name(c.site);
        EXPECT_GT(detections, 0) << camp::fault_site_name(c.site);
    }
}

TEST(FaultInjection, BitSerialFidelityDetectsConverterAndIpuFaults)
{
    // The bit-serial datapath exercises the real Converter pattern
    // streams and serial accumulators, not the word-level emulation.
    for (const FaultSite site :
         {FaultSite::IpuAccumulator, FaultSite::ConverterPattern}) {
        sim::SimConfig config;
        config.faults.seed = 13;
        config.faults.rate_at(site) = 0.05;
        sim::Core core(config, sim::Fidelity::BitSerial,
                       /*validate=*/true);
        camp::Rng rng(600 + static_cast<int>(site));
        int detections = 0;
        for (int round = 0; round < 3; ++round) {
            const Natural a = Natural::random_bits(rng, 2000);
            const Natural b = Natural::random_bits(rng, 2000);
            try {
                core.multiply(a, b);
            } catch (const HardwareFault&) {
                ++detections;
            }
        }
        EXPECT_GT(core.fault_engine()->injected(site), 0u)
            << camp::fault_site_name(site);
        EXPECT_GT(detections, 0) << camp::fault_site_name(site);
    }
}

TEST(FaultInjection, MemoryStallCostsCyclesButStaysExact)
{
    sim::SimConfig config;
    config.faults.seed = 17;
    config.faults.rate_at(FaultSite::MemoryStall) = 1.0;
    sim::Core faulty(config, sim::Fidelity::Fast, /*validate=*/true);
    sim::Core clean;
    camp::Rng rng(700);
    const Natural a = Natural::random_bits(rng, 20000);
    const Natural b = Natural::random_bits(rng, 20000);
    const auto slow = faulty.multiply(a, b); // exact: stalls only delay
    const auto fast = clean.multiply(a, b);
    EXPECT_EQ(slow.product, a * b);
    EXPECT_GT(slow.stats.memory_cycles, fast.stats.memory_cycles);
    EXPECT_EQ(slow.stats.bytes, fast.stats.bytes);
}

TEST(FaultInjection, DisabledFaultsChangeNothing)
{
    // Default config: no engine, and cycle accounting still matches
    // the calibrated analytic model exactly.
    sim::Core core;
    EXPECT_EQ(core.fault_engine(), nullptr);
    const sim::AnalyticModel model(core.config());
    camp::Rng rng(800);
    for (const std::uint64_t bits : {900ull, 9000ull, 30000ull}) {
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        const auto result = core.multiply(a, b);
        EXPECT_EQ(result.product, a * b);
        EXPECT_EQ(result.stats.cycles, model.multiply_cycles(bits, bits))
            << bits;
    }
}

TEST(ConfigValidation, RejectsNonBuildableHardware)
{
    const auto expect_rejected = [](auto mutate) {
        sim::SimConfig config;
        mutate(config);
        EXPECT_THROW(sim::validate(config), ConfigError);
        EXPECT_THROW(sim::Core{config}, ConfigError);
        EXPECT_THROW(Runtime(Backend::CambriconP, config), ConfigError);
    };
    expect_rejected([](sim::SimConfig& c) { c.n_pe = 0; });
    expect_rejected([](sim::SimConfig& c) { c.n_ipu = 0; });
    expect_rejected([](sim::SimConfig& c) {
        c.n_pe = 1u << 20;
        c.n_ipu = 1u << 20; // n_pe * n_ipu overflows unsigned
    });
    expect_rejected([](sim::SimConfig& c) { c.limb_bits = 16; });
    expect_rejected([](sim::SimConfig& c) { c.q = 5; });
    expect_rejected([](sim::SimConfig& c) { c.freq_ghz = 0; });
    expect_rejected([](sim::SimConfig& c) { c.llc_gbps = 0; });
    expect_rejected([](sim::SimConfig& c) { c.ma_duty = 0; });
    expect_rejected([](sim::SimConfig& c) { c.ma_duty = 1.5; });
    expect_rejected([](sim::SimConfig& c) { c.monolithic_cap_bits = 0; });
    expect_rejected([](sim::SimConfig& c) {
        c.faults.rate_at(FaultSite::GatherCarry) = 1.5;
    });
    EXPECT_NO_THROW(sim::validate(sim::default_config()));
}

TEST(SelfCheck, ExactProductsAndConsistentLedgerAcrossSeeds)
{
    // The acceptance scenario: nonzero rates at every site, operands
    // beyond 64K bits, three fixed seeds. mul_functional must stay
    // bit-exact and the ledger must account for every detected fault.
    for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
        Runtime runtime(Backend::CambriconP, faulty_config(seed));
        EXPECT_TRUE(runtime.self_check().enabled);
        camp::Rng rng(900 + seed);
        for (const std::uint64_t bits : {20000ull, 70000ull}) {
            const Natural a = Natural::random_bits(rng, bits);
            const Natural b = Natural::random_bits(rng, bits - 500);
            EXPECT_EQ(runtime.mul_functional(a, b), a * b)
                << "seed " << seed << " bits " << bits;
        }
        const FaultStats& stats = runtime.fault_stats();
        EXPECT_EQ(stats.checks, runtime.base_products())
            << "full sampling checks every base product";
        EXPECT_GT(stats.injected, 0u) << "seed " << seed;
        EXPECT_GT(stats.detected, 0u) << "seed " << seed;
        EXPECT_EQ(stats.detected, stats.retried + stats.fallbacks)
            << "every detected fault resolves to a retry or a fallback";
        EXPECT_GE(stats.injected, stats.detected)
            << "detections cannot outnumber injections";
        EXPECT_FALSE(runtime.ledger().fault_diagnostics().empty());
    }
}

TEST(SelfCheck, ExhaustedRetryBudgetFallsBackToCpu)
{
    // Certain corruption on every gather: retries can never succeed,
    // so every checked base product must degrade to the CPU path and
    // still return the exact product.
    sim::SimConfig config;
    config.faults.seed = 31;
    config.faults.rate_at(FaultSite::MemoryTruncate) = 1.0;
    SelfCheckPolicy policy;
    policy.enabled = true;
    policy.retry_budget = 1;
    Runtime runtime(Backend::CambriconP, config, policy);
    camp::Rng rng(1000);
    const Natural a = Natural::random_bits(rng, 120000);
    const Natural b = Natural::random_bits(rng, 110000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    const FaultStats& stats = runtime.fault_stats();
    EXPECT_GT(stats.fallbacks, 0u);
    EXPECT_EQ(stats.fallbacks, runtime.base_products())
        << "every base product needed the CPU fallback";
    EXPECT_EQ(stats.retried,
              stats.checks * runtime.self_check().retry_budget);
    EXPECT_EQ(stats.detected, stats.retried + stats.fallbacks);
}

TEST(SelfCheck, SampledCheckingWithoutFaultsIsFreeOfDetections)
{
    SelfCheckPolicy policy;
    policy.enabled = true;
    policy.sample_rate = 0.5;
    Runtime runtime(Backend::CambriconP, sim::default_config(), policy);
    camp::Rng rng(1100);
    const Natural a = Natural::random_bits(rng, 150000);
    const Natural b = Natural::random_bits(rng, 140000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    const FaultStats& stats = runtime.fault_stats();
    EXPECT_GT(stats.checks, 0u);
    EXPECT_LT(stats.checks, runtime.base_products());
    EXPECT_EQ(stats.detected, 0u);
    EXPECT_EQ(stats.injected, 0u);
}

TEST(SelfCheck, ReportCarriesFaultCounters)
{
    Runtime runtime(Backend::CambriconP, faulty_config(41));
    camp::Rng rng(1200);
    const Natural a = Natural::random_bits(rng, 50000);
    const Natural b = Natural::random_bits(rng, 50000);
    const AppReport report = runtime.run("faulty-mul", [&] {
        const Natural c = runtime.mul_functional(a, b);
        CAMP_ASSERT(c == a * b);
    });
    EXPECT_GT(report.faults.checks, 0u);
    EXPECT_EQ(report.faults.detected,
              report.faults.retried + report.faults.fallbacks);
    const std::string table = runtime.ledger().table("faulty-mul");
    EXPECT_NE(table.find("faults:"), std::string::npos);
}
