/**
 * @file
 * Natural value-type tests: operators, string conversion round trips
 * against known constants, pow/gcd, and cross-operation properties.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "mpn/natural.hpp"
#include "support/rng.hpp"

using camp::mpn::Natural;

TEST(Natural, ZeroBasics)
{
    const Natural z;
    EXPECT_TRUE(z.is_zero());
    EXPECT_EQ(z.bits(), 0u);
    EXPECT_EQ(z.to_decimal(), "0");
    EXPECT_EQ(z.to_hex(), "0");
    EXPECT_EQ(z + z, z);
    EXPECT_EQ(z * Natural(12345), z);
}

TEST(Natural, DecimalRoundTripKnownValues)
{
    const char* cases[] = {
        "1",
        "9",
        "10",
        "18446744073709551615",  // 2^64 - 1
        "18446744073709551616",  // 2^64
        "340282366920938463463374607431768211456", // 2^128
        "123456789012345678901234567890123456789012345678901234567890",
    };
    for (const char* s : cases) {
        EXPECT_EQ(Natural::from_decimal(s).to_decimal(), s);
    }
}

TEST(Natural, HexRoundTrip)
{
    EXPECT_EQ(Natural::from_hex("ff").to_uint64(), 255u);
    EXPECT_EQ(Natural::from_hex("DEADbeef").to_hex(), "deadbeef");
    const Natural big = Natural::from_hex("123456789abcdef0fedcba9876543210");
    EXPECT_EQ(big.to_hex(), "123456789abcdef0fedcba9876543210");
}

TEST(Natural, DecimalRandomRoundTrip)
{
    camp::Rng rng(51);
    for (std::uint64_t bits : {10u, 100u, 1000u, 20000u}) {
        const Natural a = Natural::random_bits(rng, bits);
        EXPECT_EQ(Natural::from_decimal(a.to_decimal()), a)
            << "bits=" << bits;
    }
}

TEST(Natural, FromDecimalRejectsGarbage)
{
    EXPECT_THROW(Natural::from_decimal(""), std::invalid_argument);
    EXPECT_THROW(Natural::from_decimal("12a3"), std::invalid_argument);
    EXPECT_THROW(Natural::from_hex("xyz"), std::invalid_argument);
}

TEST(Natural, SubtractionUnderflowThrows)
{
    EXPECT_THROW(Natural(3) - Natural(5), std::invalid_argument);
    EXPECT_EQ(Natural(5) - Natural(5), Natural());
}

TEST(Natural, DivisionByZeroThrows)
{
    EXPECT_THROW(Natural(5) / Natural(), std::invalid_argument);
}

TEST(Natural, ShiftIdentities)
{
    camp::Rng rng(52);
    const Natural a = Natural::random_bits(rng, 500);
    EXPECT_EQ((a << 64) >> 64, a);
    EXPECT_EQ((a << 13) >> 13, a);
    EXPECT_EQ(a << 3, a * Natural(8));
    EXPECT_EQ(a >> 700, Natural());
    EXPECT_EQ((a >> 5) << 5 | (a & Natural(31)), a);
}

TEST(Natural, BitsMatchesDefinition)
{
    EXPECT_EQ(Natural(1).bits(), 1u);
    EXPECT_EQ(Natural(255).bits(), 8u);
    EXPECT_EQ(Natural(256).bits(), 9u);
    EXPECT_EQ((Natural(1) << 1000).bits(), 1001u);
}

TEST(Natural, PowMatchesRepeatedMul)
{
    const Natural three(3);
    Natural expect(1);
    for (int e = 0; e < 50; ++e) {
        EXPECT_EQ(Natural::pow(three, e), expect);
        expect *= three;
    }
}

TEST(Natural, Pow10MatchesDecimal)
{
    for (std::uint64_t e : {0u, 1u, 5u, 19u, 20u, 100u, 1000u}) {
        const Natural p = Natural::pow10(e);
        std::string expect = "1" + std::string(e, '0');
        EXPECT_EQ(p.to_decimal(), expect);
    }
}

TEST(Natural, GcdProperties)
{
    camp::Rng rng(53);
    EXPECT_EQ(Natural::gcd(Natural(0), Natural(7)), Natural(7));
    EXPECT_EQ(Natural::gcd(Natural(12), Natural(18)), Natural(6));
    for (int iter = 0; iter < 20; ++iter) {
        const Natural g = Natural::random_bits(rng, 1 + rng.below(80));
        const Natural a = g * Natural::random_bits(rng, 1 + rng.below(80));
        const Natural b = g * Natural::random_bits(rng, 1 + rng.below(80));
        const Natural got = Natural::gcd(a, b);
        // g divides gcd(a, b); gcd divides both.
        EXPECT_TRUE((got % g).is_zero());
        EXPECT_TRUE((a % got).is_zero());
        EXPECT_TRUE((b % got).is_zero());
    }
}

TEST(Natural, ComparisonIsTotalOrder)
{
    const Natural a = Natural::from_decimal("99999999999999999999");
    const Natural b = Natural::from_decimal("100000000000000000000");
    EXPECT_LT(a, b);
    EXPECT_GT(b, a);
    EXPECT_LE(a, a);
    EXPECT_EQ(a <=> a, std::strong_ordering::equal);
}

TEST(Natural, DivremQuotientRemainder)
{
    camp::Rng rng(54);
    for (int iter = 0; iter < 30; ++iter) {
        const Natural a = Natural::random_bits(rng, 1 + rng.below(3000));
        const Natural d = Natural::random_bits(rng, 1 + rng.below(1500));
        auto [q, r] = Natural::divrem(a, d);
        EXPECT_EQ(q * d + r, a);
        EXPECT_LT(r, d);
    }
}

TEST(Natural, RandomBitsHasExactBitLength)
{
    camp::Rng rng(55);
    for (std::uint64_t bits : {1u, 2u, 63u, 64u, 65u, 1000u}) {
        const Natural a = Natural::random_bits(rng, bits);
        EXPECT_EQ(a.bits(), bits);
    }
}

TEST(Natural, ToDoubleApproximation)
{
    EXPECT_DOUBLE_EQ(Natural(12345).to_double(), 12345.0);
    const Natural big = Natural(1) << 100;
    EXPECT_DOUBLE_EQ(big.to_double(), 1.2676506002282294e30);
}

TEST(Natural, PopcountAndScan)
{
    EXPECT_EQ(Natural().popcount(), 0u);
    EXPECT_EQ(Natural(0xff).popcount(), 8u);
    EXPECT_EQ(((Natural(1) << 1000) | Natural(7)).popcount(), 4u);
    EXPECT_EQ((Natural(8)).scan1(), 3u);
    EXPECT_EQ((Natural(1) << 777).scan1(), 777u);
    EXPECT_EQ(Natural().scan1(), 0u); // one past the (empty) top
    camp::Rng rng(56);
    const Natural a = Natural::random_bits(rng, 500);
    EXPECT_EQ((a << 123).trailing_zeros(), a.trailing_zeros() + 123);
}

TEST(Natural, ByteSerializationRoundTrip)
{
    camp::Rng rng(57);
    for (const std::uint64_t bits : {1u, 8u, 9u, 64u, 65u, 4000u}) {
        const Natural a = Natural::random_bits(rng, bits);
        const auto bytes = a.to_bytes();
        EXPECT_EQ(bytes.size(), (bits + 7) / 8);
        EXPECT_EQ(Natural::from_bytes(bytes.data(), bytes.size()), a);
    }
    EXPECT_TRUE(Natural().to_bytes().empty());
    EXPECT_TRUE(Natural::from_bytes(nullptr, 0).is_zero());
    const std::uint8_t le[] = {0x34, 0x12};
    EXPECT_EQ(Natural::from_bytes(le, 2).to_uint64(), 0x1234u);
}
