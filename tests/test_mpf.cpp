/**
 * @file
 * Float (mpf layer) tests: exact dyadic cases against double, precision
 * truncation, sqrt/div convergence at high precision, and known
 * constants.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "mpf/float.hpp"
#include "support/rng.hpp"

using camp::mpf::Float;
using camp::mpn::Natural;
using camp::mpz::Integer;

namespace {

/** |a - b| <= 2^max_exp_err relative-ish tolerance via doubles. */
void
expect_close(const Float& a, double expect, double rel = 1e-14)
{
    const double got = a.to_double();
    EXPECT_NEAR(got, expect,
                std::abs(expect) * rel + 1e-300);
}

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** Reference for Float::normalize(): truncate toward zero to @p prec
 * mantissa bits, then strip trailing zero 64-bit limbs — computed
 * here with raw Natural shifts so Float results can be checked
 * limb-exactly, not through doubles. */
std::pair<Natural, std::int64_t>
ref_normalize(Natural mant, std::int64_t exp, std::uint64_t prec)
{
    if (mant.is_zero())
        return {Natural(), 0};
    const std::uint64_t bits = mant.bits();
    if (bits > prec) {
        mant >>= (bits - prec);
        exp += static_cast<std::int64_t>(bits - prec);
    }
    std::uint64_t tz = 0;
    while (mant.limb(tz / 64) == 0)
        tz += 64;
    if (tz > 0) {
        mant >>= tz;
        exp += static_cast<std::int64_t>(tz);
    }
    return {std::move(mant), exp};
}

/** Limb-exact check: @p f's (mantissa, exponent) must equal the raw
 * pair (@p mant, @p exp) after reference normalization at @p prec. */
void
expect_parts(const Float& f, const Natural& mant, std::int64_t exp,
             std::uint64_t prec)
{
    const auto [m, e] = ref_normalize(mant, exp, prec);
    EXPECT_EQ(f.mantissa(), m);
    EXPECT_EQ(f.exponent(), e);
}

} // namespace

TEST(Float, DyadicExactArithmetic)
{
    camp::Rng rng(81);
    for (int iter = 0; iter < 200; ++iter) {
        // Dyadic doubles: arithmetic on them is exact in both systems
        // as long as no rounding occurs.
        const double a = static_cast<double>(
                             static_cast<std::int32_t>(rng.next())) /
                         1024.0;
        const double b = static_cast<double>(
                             static_cast<std::int32_t>(rng.next())) /
                         1024.0;
        const Float fa = Float::from_double(a, 128);
        const Float fb = Float::from_double(b, 128);
        EXPECT_DOUBLE_EQ((fa + fb).to_double(), a + b);
        EXPECT_DOUBLE_EQ((fa - fb).to_double(), a - b);
        EXPECT_DOUBLE_EQ((fa * fb).to_double(), a * b);
    }
}

TEST(Float, FromDoubleRoundTrip)
{
    for (const double v : {0.0, 1.0, -1.0, 0.5, 3.141592653589793,
                           -2.2250738585072014e-308, 1.7976931348623157e308,
                           123456789.123456789}) {
        EXPECT_DOUBLE_EQ(Float::from_double(v, 64).to_double(), v);
    }
}

TEST(Float, PrecisionTruncationDropsLowBits)
{
    // (2^100 + 1) at 64-bit precision loses the +1.
    const Natural big = (Natural(1) << 100) + Natural(1);
    const Float f = Float::from_parts(big, 0, false, 64);
    EXPECT_EQ(f.mantissa(), Natural(1) << 63);
    EXPECT_EQ(f.exponent(), 37);
}

TEST(Float, DivisionConvergesToKnownValue)
{
    const Float one = Float::from_natural(Natural(1), 512);
    const Float three = Float::from_natural(Natural(3), 512);
    const Float third = one / three;
    // 1/3 * 3 == 1 - eps with eps < 2^-500.
    const Float err = Float::abs(Float::from_natural(Natural(1), 512) -
                                 third * three);
    EXPECT_TRUE(err.is_zero() || err.magnitude_exp() < -500);
}

TEST(Float, SqrtTwoMatchesKnownDigits)
{
    const Float two = Float::from_natural(Natural(2), 400);
    const Float s = Float::sqrt(two);
    // First 60 fractional digits of sqrt(2).
    EXPECT_EQ(s.to_decimal(60).substr(0, 62),
              "1.414213562373095048801688724209698078569671875376948073"
              "176679");
}

TEST(Float, SqrtSquareRoundTrip)
{
    camp::Rng rng(82);
    for (int iter = 0; iter < 20; ++iter) {
        const Natural m = Natural::random_bits(rng, 1 + rng.below(200));
        const Float f = Float::from_natural(m * m, 600);
        EXPECT_EQ(Float::sqrt(f).to_integer(), Integer(m));
    }
}

TEST(Float, SqrtNegativeThrows)
{
    EXPECT_THROW(Float::sqrt(Float::from_double(-1.0, 64)),
                 std::invalid_argument);
}

TEST(Float, ComparisonAcrossExponents)
{
    const Float a = Float::from_double(1.5, 64);
    const Float b = Float::from_double(1.25, 64);
    EXPECT_GT(a, b);
    EXPECT_LT(-a, -b);
    EXPECT_LT(-a, b);
    EXPECT_GT(a, Float());
    EXPECT_LT(-a, Float());
    EXPECT_EQ(Float::from_double(0.5, 64),
              Float::from_parts(Natural(1), -1, false, 64));
}

TEST(Float, AbsorptionOfTinyAddend)
{
    // Adding something below the precision window is a no-op under
    // truncation semantics.
    const Float big = Float::from_parts(Natural(1), 200, false, 128);
    const Float tiny = Float::from_double(1.0, 128);
    EXPECT_EQ(big + tiny, big);
}

TEST(Float, LdexpIsExact)
{
    const Float f = Float::from_double(1.5, 64);
    expect_close(f.ldexp(10), 1536.0);
    expect_close(f.ldexp(-4), 0.09375);
}

TEST(Float, ToDecimalKnownValues)
{
    EXPECT_EQ(Float::from_double(0.25, 64).to_decimal(4), "0.2500");
    EXPECT_EQ(Float::from_double(-2.5, 64).to_decimal(2), "-2.50");
    EXPECT_EQ(Float::from_natural(Natural(42), 64).to_decimal(3),
              "42.000");
}

TEST(Float, ToIntegerTruncatesTowardZero)
{
    EXPECT_EQ(Float::from_double(2.75, 64).to_integer(), Integer(2));
    EXPECT_EQ(Float::from_double(-2.75, 64).to_integer(), Integer(-2));
    EXPECT_EQ(Float().to_integer(), Integer(0));
}

TEST(Float, EdgeVectorsLimbExact)
{
    // Directed edge-case vectors at the exact truncation/absorption
    // boundaries, checked limb-for-limb against Natural arithmetic
    // (never through doubles).

    // Carry out of the precision window: (2^64 - 1) + 1 = 2^64 has 65
    // bits at prec 64 — one bit is truncated away.
    {
        const Float ones =
            Float::from_parts((Natural(1) << 64) - Natural(1), 0,
                              false, 64);
        const Float one = Float::from_parts(Natural(1), 0, false, 64);
        expect_parts(ones + one, Natural(1) << 64, 0, 64);
    }
    // Same carry at prec 128: the result 2^128 also crosses a limb
    // boundary, so the trailing-zero-limb strip kicks in.
    {
        const Float ones =
            Float::from_parts((Natural(1) << 128) - Natural(1), 0,
                              false, 128);
        const Float one = Float::from_parts(Natural(1), 0, false, 128);
        const Float sum = ones + one;
        expect_parts(sum, Natural(1) << 128, 0, 128);
        EXPECT_EQ(sum.mantissa(), Natural(1) << 63);
        EXPECT_EQ(sum.exponent(), 65);
    }
    // Catastrophic cancellation across an exponent boundary:
    // 2^100 - (2^100 - 2^36) = 2^36 exactly, full leading-bit loss.
    {
        const Float a = Float::from_parts(Natural(1), 100, false, 64);
        const Float b = Float::from_parts((Natural(1) << 64) - Natural(1),
                                          36, false, 64);
        const Float diff = a - b;
        EXPECT_FALSE(diff.is_negative());
        expect_parts(diff, Natural(1), 36, 64);
        const Float neg = b - a;
        EXPECT_TRUE(neg.is_negative());
        expect_parts(neg, Natural(1), 36, 64);
    }
    // Absorption boundary (documented GMP-style drop): a magnitude gap
    // of prec + 3 is discarded entirely; a gap of prec + 2 still
    // borrows one ulp out of the window on subtraction.
    {
        const Float one = Float::from_parts(Natural(1), 0, false, 64);
        const Float dropped = Float::from_parts(Natural(1), -67, false,
                                                64);
        EXPECT_EQ((one - dropped).mantissa(), one.mantissa());
        EXPECT_EQ((one - dropped).exponent(), one.exponent());
        const Float kept = Float::from_parts(Natural(1), -66, false, 64);
        expect_parts(one - kept, (Natural(1) << 66) - Natural(1), -66,
                     64);
    }
    // Multiplication at the precision limit: (2^64 - 1)^2 has 128
    // bits; exactly the top 64 survive.
    {
        const Natural ones = (Natural(1) << 64) - Natural(1);
        const Float f = Float::from_parts(ones, 0, false, 64);
        expect_parts(f * f, ones * ones, 0, 64);
    }
    // Division rounding at the precision limit: 1/3 truncates the
    // infinite 0b01 pattern after the prec + 2 guard bits the
    // implementation documents.
    {
        const Float one = Float::from_parts(Natural(1), 0, false, 64);
        const Float three = Float::from_parts(Natural(3), 0, false, 64);
        expect_parts(one / three, (Natural(1) << 67) / Natural(3), -67,
                     64);
    }
}

TEST(Float, FuzzLimbExactVsNaturalReference)
{
    // >= 1000 randomized cases cross-checking Float arithmetic
    // limb-exactly against raw Natural computations:
    //  - subtraction whose exact result fits in prec bits must be
    //    EXACT (cancellation means truncation cannot fire);
    //  - addition of a value just inside/outside the absorption
    //    window matches the documented alignment semantics;
    //  - multiplication is truncation of the exact Natural product;
    //  - division matches the documented prec+2-guard-bit scaling.
    const std::uint64_t seed = fuzz_seed(0xf10a7ull);
    camp::Rng rng(seed);
    int cases = 0;
    while (cases < 1000) {
        SCOPED_TRACE("cases=" + std::to_string(cases) +
                     " seed=" + std::to_string(seed) +
                     " (replay: CAMP_FUZZ_SEED=<seed>)");
        const std::uint64_t prec = 64 + rng.below(256);
        const std::int64_t e =
            static_cast<std::int64_t>(rng.below(400)) - 200;
        const Natural ma = Natural::random_bits(rng, 1 + rng.below(prec));
        const Natural mb = Natural::random_bits(rng, 1 + rng.below(prec));
        const bool neg = rng.below(2) != 0;
        const Float fa = Float::from_parts(ma, e, neg, prec);

        // Exact-fit subtraction at a shared exponent: |ma - mb| has at
        // most prec bits, so the Float result must be bit-exact.
        {
            const Float fb = Float::from_parts(mb, e, neg, prec);
            const Float diff = fa - fb;
            if (ma >= mb)
                expect_parts(diff, ma - mb, e, prec);
            else
                expect_parts(diff, mb - ma, e, prec);
            if (ma != mb) {
                EXPECT_EQ(diff.is_negative(), (ma < mb) != neg);
            }
        }

        // Absorption window: tiny at gap prec + 3 is dropped; at gap
        // prec + 2 it aligns into the window (same-sign add appends a
        // 1 below the mantissa).
        {
            const std::int64_t mag =
                e + static_cast<std::int64_t>(ma.bits()) - 1;
            const Float dropped = Float::from_parts(
                Natural(1), mag - static_cast<std::int64_t>(prec) - 3,
                neg, prec);
            const Float same = fa + dropped;
            EXPECT_EQ(same.mantissa(), fa.mantissa());
            EXPECT_EQ(same.exponent(), fa.exponent());
            const std::int64_t et =
                mag - static_cast<std::int64_t>(prec) - 2;
            const Float kept =
                Float::from_parts(Natural(1), et, neg, prec);
            const Natural aligned =
                ma << static_cast<std::uint64_t>(e - et);
            expect_parts(fa + kept, aligned + Natural(1), et, prec);
        }

        // Multiplication: truncation of the exact product.
        {
            const Float fb =
                Float::from_parts(mb, -e / 2, false, prec);
            expect_parts(fa * fb, ma * mb, e + (-e / 2), prec);
        }

        // Division: quotient carries prec + 2 bits via the documented
        // dividend scaling, then truncates.
        {
            const std::int64_t e2 =
                static_cast<std::int64_t>(rng.below(100)) - 50;
            const Float fb = Float::from_parts(mb, e2, false, prec);
            const std::int64_t scale =
                static_cast<std::int64_t>(prec) + 2 +
                static_cast<std::int64_t>(mb.bits()) -
                static_cast<std::int64_t>(ma.bits());
            const std::uint64_t up =
                scale > 0 ? static_cast<std::uint64_t>(scale) : 0;
            const Natural q = (ma << up) / mb;
            expect_parts(fa / fb,  q,
                         e - e2 - static_cast<std::int64_t>(up), prec);
        }
        cases += 5;
    }
}

TEST(Float, HighPrecisionNewtonPi)
{
    // Machin-like check: 4*atan-free; instead verify that
    // sqrt(10005) used by Chudnovsky has the right leading digits.
    const Float v =
        Float::sqrt(Float::from_natural(Natural(10005), 300));
    EXPECT_EQ(v.to_decimal(30).substr(0, 20), "100.0249968757810059");
}
