/**
 * @file
 * Float (mpf layer) tests: exact dyadic cases against double, precision
 * truncation, sqrt/div convergence at high precision, and known
 * constants.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "mpf/float.hpp"
#include "support/rng.hpp"

using camp::mpf::Float;
using camp::mpn::Natural;
using camp::mpz::Integer;

namespace {

/** |a - b| <= 2^max_exp_err relative-ish tolerance via doubles. */
void
expect_close(const Float& a, double expect, double rel = 1e-14)
{
    const double got = a.to_double();
    EXPECT_NEAR(got, expect,
                std::abs(expect) * rel + 1e-300);
}

} // namespace

TEST(Float, DyadicExactArithmetic)
{
    camp::Rng rng(81);
    for (int iter = 0; iter < 200; ++iter) {
        // Dyadic doubles: arithmetic on them is exact in both systems
        // as long as no rounding occurs.
        const double a = static_cast<double>(
                             static_cast<std::int32_t>(rng.next())) /
                         1024.0;
        const double b = static_cast<double>(
                             static_cast<std::int32_t>(rng.next())) /
                         1024.0;
        const Float fa = Float::from_double(a, 128);
        const Float fb = Float::from_double(b, 128);
        EXPECT_DOUBLE_EQ((fa + fb).to_double(), a + b);
        EXPECT_DOUBLE_EQ((fa - fb).to_double(), a - b);
        EXPECT_DOUBLE_EQ((fa * fb).to_double(), a * b);
    }
}

TEST(Float, FromDoubleRoundTrip)
{
    for (const double v : {0.0, 1.0, -1.0, 0.5, 3.141592653589793,
                           -2.2250738585072014e-308, 1.7976931348623157e308,
                           123456789.123456789}) {
        EXPECT_DOUBLE_EQ(Float::from_double(v, 64).to_double(), v);
    }
}

TEST(Float, PrecisionTruncationDropsLowBits)
{
    // (2^100 + 1) at 64-bit precision loses the +1.
    const Natural big = (Natural(1) << 100) + Natural(1);
    const Float f = Float::from_parts(big, 0, false, 64);
    EXPECT_EQ(f.mantissa(), Natural(1) << 63);
    EXPECT_EQ(f.exponent(), 37);
}

TEST(Float, DivisionConvergesToKnownValue)
{
    const Float one = Float::from_natural(Natural(1), 512);
    const Float three = Float::from_natural(Natural(3), 512);
    const Float third = one / three;
    // 1/3 * 3 == 1 - eps with eps < 2^-500.
    const Float err = Float::abs(Float::from_natural(Natural(1), 512) -
                                 third * three);
    EXPECT_TRUE(err.is_zero() || err.magnitude_exp() < -500);
}

TEST(Float, SqrtTwoMatchesKnownDigits)
{
    const Float two = Float::from_natural(Natural(2), 400);
    const Float s = Float::sqrt(two);
    // First 60 fractional digits of sqrt(2).
    EXPECT_EQ(s.to_decimal(60).substr(0, 62),
              "1.414213562373095048801688724209698078569671875376948073"
              "176679");
}

TEST(Float, SqrtSquareRoundTrip)
{
    camp::Rng rng(82);
    for (int iter = 0; iter < 20; ++iter) {
        const Natural m = Natural::random_bits(rng, 1 + rng.below(200));
        const Float f = Float::from_natural(m * m, 600);
        EXPECT_EQ(Float::sqrt(f).to_integer(), Integer(m));
    }
}

TEST(Float, SqrtNegativeThrows)
{
    EXPECT_THROW(Float::sqrt(Float::from_double(-1.0, 64)),
                 std::invalid_argument);
}

TEST(Float, ComparisonAcrossExponents)
{
    const Float a = Float::from_double(1.5, 64);
    const Float b = Float::from_double(1.25, 64);
    EXPECT_GT(a, b);
    EXPECT_LT(-a, -b);
    EXPECT_LT(-a, b);
    EXPECT_GT(a, Float());
    EXPECT_LT(-a, Float());
    EXPECT_EQ(Float::from_double(0.5, 64),
              Float::from_parts(Natural(1), -1, false, 64));
}

TEST(Float, AbsorptionOfTinyAddend)
{
    // Adding something below the precision window is a no-op under
    // truncation semantics.
    const Float big = Float::from_parts(Natural(1), 200, false, 128);
    const Float tiny = Float::from_double(1.0, 128);
    EXPECT_EQ(big + tiny, big);
}

TEST(Float, LdexpIsExact)
{
    const Float f = Float::from_double(1.5, 64);
    expect_close(f.ldexp(10), 1536.0);
    expect_close(f.ldexp(-4), 0.09375);
}

TEST(Float, ToDecimalKnownValues)
{
    EXPECT_EQ(Float::from_double(0.25, 64).to_decimal(4), "0.2500");
    EXPECT_EQ(Float::from_double(-2.5, 64).to_decimal(2), "-2.50");
    EXPECT_EQ(Float::from_natural(Natural(42), 64).to_decimal(3),
              "42.000");
}

TEST(Float, ToIntegerTruncatesTowardZero)
{
    EXPECT_EQ(Float::from_double(2.75, 64).to_integer(), Integer(2));
    EXPECT_EQ(Float::from_double(-2.75, 64).to_integer(), Integer(-2));
    EXPECT_EQ(Float().to_integer(), Integer(0));
}

TEST(Float, HighPrecisionNewtonPi)
{
    // Machin-like check: 4*atan-free; instead verify that
    // sqrt(10005) used by Chudnovsky has the right leading digits.
    const Float v =
        Float::sqrt(Float::from_natural(Natural(10005), 300));
    EXPECT_EQ(v.to_decimal(30).substr(0, 20), "100.0249968757810059");
}
