/**
 * @file
 * Integration tests of the Cambricon-P Core: simulated multiplication
 * equals the mpn reference across sizes and fidelities; the analytic
 * model agrees with the functional schedule; the Table III calibration
 * point (4096x4096 in 32 cycles = 1.6e-8 s) is reproduced.
 */
#include <gtest/gtest.h>

#include "mpn/natural.hpp"
#include "sim/analytic_model.hpp"
#include "sim/core.hpp"
#include "sim/tech_model.hpp"
#include "support/rng.hpp"

using namespace camp::sim;
using camp::mpn::Natural;

TEST(SimCore, SmallProductsBitSerialFidelity)
{
    camp::Rng rng(101);
    Core core(default_config(), Fidelity::BitSerial);
    for (const std::uint64_t bits : {1u, 17u, 32u, 33u, 64u, 100u, 256u}) {
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        const MulResult r = core.multiply(a, b);
        EXPECT_EQ(r.product, a * b) << "bits=" << bits;
    }
}

TEST(SimCore, FastFidelityMatchesBitSerial)
{
    camp::Rng rng(102);
    Core bit_serial(default_config(), Fidelity::BitSerial);
    Core fast(default_config(), Fidelity::Fast);
    for (int iter = 0; iter < 5; ++iter) {
        const Natural a = Natural::random_bits(rng, 200 + rng.below(800));
        const Natural b = Natural::random_bits(rng, 200 + rng.below(800));
        const MulResult r1 = bit_serial.multiply(a, b);
        const MulResult r2 = fast.multiply(a, b);
        EXPECT_EQ(r1.product, r2.product);
        EXPECT_EQ(r1.stats.tasks, r2.stats.tasks);
        EXPECT_EQ(r1.stats.waves, r2.stats.waves);
        EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
        // Event accounting agrees (fast mode mirrors the counters).
        EXPECT_EQ(r1.stats.ipu.selects, r2.stats.ipu.selects);
        EXPECT_EQ(r1.stats.ipu.zero_skips, r2.stats.ipu.zero_skips);
    }
}

class SimCoreSizes : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimCoreSizes, ProductMatchesReference)
{
    camp::Rng rng(103 + GetParam());
    Core core(default_config(), Fidelity::Fast);
    const Natural a = Natural::random_bits(rng, GetParam());
    const Natural b = Natural::random_bits(rng, GetParam());
    EXPECT_EQ(core.multiply(a, b).product, a * b);
}

INSTANTIATE_TEST_SUITE_P(Bits, SimCoreSizes,
                         ::testing::Values(8, 31, 32, 64, 96, 512, 1024,
                                           4096, 10000, 35904));

TEST(SimCore, RejectsOversizedOperands)
{
    Core core;
    camp::Rng rng(104);
    const Natural big = Natural::random_bits(rng, 35905);
    EXPECT_THROW(core.multiply(big, Natural(3)), std::invalid_argument);
}

TEST(SimCore, ZeroOperandsShortCircuit)
{
    Core core;
    const MulResult r = core.multiply(Natural(), Natural(5));
    EXPECT_TRUE(r.product.is_zero());
    EXPECT_EQ(r.stats.cycles, 0u);
}

TEST(SimCore, Table3CalibrationPoint)
{
    // 4096x4096 bits = 128x128 hardware limbs -> 4096 tasks on 8192
    // IPUs -> 1 wave of 32 cycles = 1.6e-8 s @ 2 GHz (Table III).
    Core core(default_config(), Fidelity::Fast);
    camp::Rng rng(105);
    const Natural a = Natural::random_bits(rng, 4096);
    const Natural b = Natural::random_bits(rng, 4096);
    const MulResult r = core.multiply(a, b);
    EXPECT_EQ(r.stats.waves, 1u);
    EXPECT_EQ(r.stats.compute_cycles, 32u);
    EXPECT_EQ(r.stats.cycles, 32u);
    EXPECT_NEAR(r.stats.seconds(default_config()), 1.6e-8, 1e-12);
}

TEST(SimCore, AnalyticModelMatchesFunctionalSchedule)
{
    camp::Rng rng(106);
    Core core(default_config(), Fidelity::Fast);
    const AnalyticModel model;
    for (const std::uint64_t bits :
         {33u, 128u, 1000u, 4096u, 9999u, 20000u}) {
        const Natural a = Natural::random_bits(rng, bits);
        const Natural b = Natural::random_bits(rng, bits);
        const MulResult r = core.multiply(a, b);
        const CoreStats s = model.multiply_stats(bits, bits);
        EXPECT_EQ(r.stats.tasks, s.tasks) << bits;
        EXPECT_EQ(r.stats.waves, s.waves) << bits;
        EXPECT_EQ(r.stats.cycles, s.cycles) << bits;
        EXPECT_EQ(r.stats.bytes, s.bytes) << bits;
    }
}

TEST(SimCore, UnbalancedOperands)
{
    camp::Rng rng(107);
    Core core(default_config(), Fidelity::Fast);
    const AnalyticModel model;
    const Natural a = Natural::random_bits(rng, 30000);
    const Natural b = Natural::random_bits(rng, 700);
    const MulResult r = core.multiply(a, b);
    EXPECT_EQ(r.product, a * b);
    EXPECT_EQ(r.stats.cycles, model.multiply_cycles(30000, 700));
}

TEST(SimCore, MemoryBoundForSkinnyOperands)
{
    // 35904 x 32 bits: tiny compute, streaming dominates.
    const AnalyticModel model;
    const CoreStats s = model.multiply_stats(35904, 32);
    EXPECT_GT(s.memory_cycles, s.compute_cycles);
    EXPECT_EQ(s.cycles, s.memory_cycles);
}

TEST(TechModel, AreaMatchesPaperTotal)
{
    const AreaBreakdown area = cambricon_p_area();
    EXPECT_NEAR(area.total(), 1.894, 1e-9);
}

TEST(TechModel, PowerNearPaperAtFullUtilization)
{
    // A large dense multiplication should run the chip near the
    // published 3.644 W.
    const AnalyticModel model;
    const CoreStats stats = model.multiply_stats(35904, 35904);
    const EnergyModel energy = cambricon_p_energy();
    const double watts = energy.power(stats, default_config());
    EXPECT_GT(watts, 2.0);
    EXPECT_LT(watts, 5.5);
}

TEST(TechModel, EnergyScalesWithWork)
{
    const AnalyticModel model;
    const EnergyModel energy = cambricon_p_energy();
    const double e1 = energy.energy(model.multiply_stats(4096, 4096),
                                    default_config());
    const double e2 = energy.energy(model.multiply_stats(16384, 16384),
                                    default_config());
    EXPECT_GT(e2, 8 * e1); // ~16x tasks
    EXPECT_LT(e2, 32 * e1);
}
