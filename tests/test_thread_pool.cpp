/**
 * @file
 * Thread-pool tests: fork/join recursion (a task may open its own
 * TaskGroup and wait without deadlock, because wait() helps), exception
 * propagation across the join, work stealing under multi-submitter
 * contention, the serial inline path, the TLS scratch arena's LIFO
 * frame discipline, and SerialGuard.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

using namespace camp::support;

TEST(ThreadPool, EnvAndHardwareCountsSane)
{
    EXPECT_GE(hardware_threads(), 1u);
    EXPECT_GE(env_thread_count(), 1u);
    ThreadPool& pool = ThreadPool::global();
    EXPECT_EQ(pool.executors(), pool.workers() + 1);
    EXPECT_EQ(pool.parallel(), pool.workers() > 0);
}

TEST(ThreadPool, SerialPoolRunsInlineOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workers(), 0u);
    EXPECT_FALSE(pool.parallel());
    const std::thread::id self = std::this_thread::get_id();
    int order = 0;
    TaskGroup group(pool);
    group.run([&] {
        EXPECT_EQ(std::this_thread::get_id(), self);
        EXPECT_EQ(order, 0);
        order = 1;
    });
    // Inline execution: the task already ran, before wait().
    EXPECT_EQ(order, 1);
    group.run([&] { order = 2; });
    group.wait();
    EXPECT_EQ(order, 2);
}

namespace {

/** Fork/join Fibonacci: every level opens a TaskGroup inside a pool
 * task, the worst case for a blocking join. */
std::uint64_t
fib_forked(ThreadPool& pool, unsigned n)
{
    if (n < 2)
        return n;
    std::uint64_t left = 0;
    TaskGroup group(pool);
    group.run([&pool, n, &left] { left = fib_forked(pool, n - 1); });
    const std::uint64_t right = fib_forked(pool, n - 2);
    group.wait();
    return left + right;
}

} // namespace

TEST(ThreadPool, RecursiveForkJoinDoesNotDeadlock)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 3u);
    // fib(18) = 2584: thousands of nested groups across 4 executors.
    EXPECT_EQ(fib_forked(pool, 18), 2584u);
    // Pool stays healthy for a second wave.
    EXPECT_EQ(fib_forked(pool, 10), 55u);
}

TEST(ThreadPool, ExceptionPropagatesThroughWait)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> survivors{0};
    group.run([] { throw std::runtime_error("task boom"); });
    for (int i = 0; i < 8; ++i)
        group.run([&survivors] { ++survivors; });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The failing task does not cancel its siblings.
    EXPECT_EQ(survivors.load(), 8);
    // A rethrown error is consumed: the group is reusable.
    group.run([&survivors] { ++survivors; });
    EXPECT_NO_THROW(group.wait());
    EXPECT_EQ(survivors.load(), 9);
}

TEST(ThreadPool, DestructorDrainsWithoutThrowing)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    {
        TaskGroup group(pool);
        for (int i = 0; i < 16; ++i)
            group.run([&ran] { ++ran; });
        group.run([] { throw std::runtime_error("dropped"); });
        // No wait(): ~TaskGroup must drain and swallow the error.
    }
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, StealingUnderMultiSubmitterContention)
{
    // Several external threads hammer one pool concurrently; every
    // task forks children onto the submitting worker's own deque, so
    // finishing requires cross-queue steals.
    ThreadPool pool(4);
    constexpr int kSubmitters = 3;
    constexpr int kTasks = 64;
    constexpr int kChildren = 8;
    std::atomic<std::uint64_t> total{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &total] {
            TaskGroup group(pool);
            for (int i = 0; i < kTasks; ++i)
                group.run([&pool, &total] {
                    TaskGroup inner(pool);
                    for (int c = 0; c < kChildren; ++c)
                        inner.run([&total] { ++total; });
                    inner.wait();
                    ++total;
                });
            group.wait();
        });
    }
    for (std::thread& t : submitters)
        t.join();
    EXPECT_EQ(total.load(),
              std::uint64_t(kSubmitters) * kTasks * (kChildren + 1));
}

TEST(ThreadPool, ScratchArenaFramesAreLifo)
{
    ScratchFrame outer;
    std::uint64_t* a = outer.alloc(16);
    a[0] = 1;
    a[15] = 2;
    std::uint64_t* reused = nullptr;
    {
        ScratchFrame inner;
        std::uint64_t* b = inner.alloc(32);
        EXPECT_NE(a, b);
        b[31] = 3;
        reused = b;
    }
    // Inner frame released: the same words come back immediately.
    ScratchFrame again;
    EXPECT_EQ(again.alloc(32), reused);
    // Outer allocations survived the inner frame's lifetime.
    EXPECT_EQ(a[0], 1u);
    EXPECT_EQ(a[15], 2u);
}

TEST(ThreadPool, ScratchArenaPointersStableAcrossGrowth)
{
    ScratchFrame frame;
    // Force the arena through several block boundaries; earlier
    // pointers must stay valid (blocks are chained, never moved).
    std::vector<std::uint64_t*> ptrs;
    for (std::size_t n : {100u, 5000u, 20000u, 100000u}) {
        std::uint64_t* p = frame.alloc(n);
        p[0] = n;
        p[n - 1] = n + 1;
        ptrs.push_back(p);
    }
    std::size_t i = 0;
    for (std::size_t n : {100u, 5000u, 20000u, 100000u}) {
        EXPECT_EQ(ptrs[i][0], n);
        EXPECT_EQ(ptrs[i][n - 1], n + 1);
        ++i;
    }
}

TEST(ThreadPool, SerialGuardNestsAndRestores)
{
    EXPECT_TRUE(parallel_allowed());
    {
        SerialGuard outer;
        EXPECT_FALSE(parallel_allowed());
        {
            SerialGuard inner;
            EXPECT_FALSE(parallel_allowed());
        }
        EXPECT_FALSE(parallel_allowed());
    }
    EXPECT_TRUE(parallel_allowed());
}

TEST(ThreadPool, SerialGuardIsPerThread)
{
    SerialGuard guard;
    EXPECT_FALSE(parallel_allowed());
    bool other_thread_parallel = false;
    std::thread([&] { other_thread_parallel = parallel_allowed(); })
        .join();
    EXPECT_TRUE(other_thread_parallel);
}

TEST(ThreadPool, PoolTasksSeeIndependentArenas)
{
    ThreadPool pool(3);
    // Each task runs a full frame cycle on whatever thread executes
    // it; the TLS arenas must never hand out overlapping live words.
    std::atomic<int> failures{0};
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i)
        group.run([&failures, i] {
            ScratchFrame frame;
            std::uint64_t* p = frame.alloc(512);
            for (int w = 0; w < 512; ++w)
                p[w] = static_cast<std::uint64_t>(i) * 1000 + w;
            for (int w = 0; w < 512; ++w)
                if (p[w] != static_cast<std::uint64_t>(i) * 1000 + w)
                    ++failures;
        });
    group.wait();
    EXPECT_EQ(failures.load(), 0);
}
