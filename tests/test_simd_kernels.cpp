/**
 * @file
 * Differential fuzz of the runtime-dispatched SIMD limb kernels: every
 * vectorized primitive is compared case-by-case against the scalar
 * reference (the oracle), across random operands and the boundary
 * shapes carry bugs hide in — all-ones limbs, generate/propagate worst
 * cases, n = 0/1, unaligned vector tails, aliased rp/ap. A second
 * layer asserts the hard bit-identity invariant end to end: full
 * mpn_mul, the SoA batch driver, and Device::mul_batch produce
 * identical bits under every CAMP_SIMD tier the host supports.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "exec/registry.hpp"
#include "mpn/basic.hpp"
#include "mpn/kernels/internal.hpp"
#include "mpn/kernels/kernels.hpp"
#include "mpn/kernels/soa.hpp"
#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "support/rng.hpp"

namespace mpn = camp::mpn;
namespace kernels = camp::mpn::kernels;
using camp::Rng;
using mpn::Limb;
using mpn::Natural;

namespace {

std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** Restores the dispatched tier on scope exit (tests switch tiers). */
class TierGuard
{
  public:
    TierGuard() : saved_(kernels::active_tier()) {}
    ~TierGuard() { kernels::set_active_tier(saved_); }

  private:
    kernels::Tier saved_;
};

/**
 * One fuzz operand: mostly random limbs, with boundary patterns mixed
 * in (all-ones rows force maximal carries; zeros force propagate-only
 * blocks; 0x...fff/0x8000... force generate/propagate interleaving).
 */
std::vector<Limb>
fuzz_limbs(Rng& rng, std::size_t n)
{
    std::vector<Limb> v(n);
    const std::uint64_t mode = rng.below(5);
    for (std::size_t i = 0; i < n; ++i) {
        switch (mode) {
        case 0:
            v[i] = rng.next();
            break;
        case 1:
            v[i] = ~Limb{0}; // carry worst case
            break;
        case 2:
            v[i] = rng.below(2) ? ~Limb{0} : 0;
            break;
        case 3:
            v[i] = rng.below(2) ? ~Limb{0} : rng.next();
            break;
        default:
            v[i] = Limb{1} << rng.below(64);
            break;
        }
    }
    return v;
}

/** Scalars that stress the split-radix mid-word carries. */
Limb
fuzz_scalar(Rng& rng)
{
    switch (rng.below(4)) {
    case 0:
        return rng.next();
    case 1:
        return ~Limb{0};
    case 2:
        return 0xffffffffULL;
    default:
        return Limb{1} << rng.below(64);
    }
}

struct NamedKernels
{
    const char* name;
    Limb (*mul_1)(Limb*, const Limb*, std::size_t, Limb);
    Limb (*addmul_1)(Limb*, const Limb*, std::size_t, Limb);
    Limb (*submul_1)(Limb*, const Limb*, std::size_t, Limb);
    Limb (*add_n)(Limb*, const Limb*, const Limb*, std::size_t);
    Limb (*sub_n)(Limb*, const Limb*, const Limb*, std::size_t);
    void (*mul_basecase)(Limb*, const Limb*, std::size_t, const Limb*,
                         std::size_t);
};

/**
 * Every compiled vectorized kernel set, whether or not the dispatch
 * table currently points at it ("vectorize where it wins" may park a
 * slot on scalar; the vectorized body still has to be correct so
 * retuning can re-enable it safely).
 */
std::vector<NamedKernels>
vector_kernel_sets()
{
    std::vector<NamedKernels> sets;
#if defined(__x86_64__) || defined(_M_X64)
    if (kernels::host_supports(kernels::Tier::Sse4) &&
        kernels::sse4_table() != nullptr)
        sets.push_back({"sse4", kernels::sse4_mul_1,
                        kernels::sse4_addmul_1, kernels::sse4_submul_1,
                        kernels::sse4_add_n, kernels::sse4_sub_n,
                        kernels::sse4_mul_basecase});
    if (kernels::host_supports(kernels::Tier::Avx2) &&
        kernels::avx2_table() != nullptr)
        sets.push_back({"avx2", kernels::avx2_mul_1,
                        kernels::avx2_addmul_1, kernels::avx2_submul_1,
                        kernels::avx2_add_n, kernels::avx2_sub_n,
                        kernels::avx2_mul_basecase});
#endif
    return sets;
}

/** Sizes cover sub-vector, exact-vector, and ragged-tail lengths. */
std::size_t
fuzz_size(Rng& rng)
{
    switch (rng.below(6)) {
    case 0:
        return 0;
    case 1:
        return 1;
    case 2:
        return 1 + rng.below(8); // below every vector threshold
    case 3:
        return 8 + rng.below(8); // around the kVecMinLimbs gate
    default:
        return 1 + rng.below(200);
    }
}

std::vector<kernels::Tier>
supported_tiers()
{
    std::vector<kernels::Tier> tiers{kernels::Tier::Scalar};
    if (kernels::table_for(kernels::Tier::Sse4) != nullptr)
        tiers.push_back(kernels::Tier::Sse4);
    if (kernels::table_for(kernels::Tier::Avx2) != nullptr)
        tiers.push_back(kernels::Tier::Avx2);
    return tiers;
}

} // namespace

TEST(SimdKernels, DispatchReportsSupportedTier)
{
    const kernels::KernelTable& table = kernels::active();
    EXPECT_NE(table.mul_1, nullptr);
    EXPECT_NE(table.add_n, nullptr);
    EXPECT_NE(table.mul_basecase, nullptr);
    EXPECT_TRUE(kernels::host_supports(table.tier));
    EXPECT_STREQ(kernels::tier_name(table.tier), table.name);
    // Scalar is always forceable; the guard restores the probed tier.
    TierGuard guard;
    ASSERT_TRUE(kernels::set_active_tier(kernels::Tier::Scalar));
    EXPECT_EQ(kernels::active_tier(), kernels::Tier::Scalar);
}

TEST(SimdKernels, Mul1DifferentialFuzz)
{
    const auto sets = vector_kernel_sets();
    if (sets.empty())
        GTEST_SKIP() << "host has no SIMD kernel tier";
    Rng rng(fuzz_seed(0x51D0001));
    for (const NamedKernels& set : sets) {
        for (int iter = 0; iter < 1200; ++iter) {
            const std::size_t n = fuzz_size(rng);
            const std::vector<Limb> a = fuzz_limbs(rng, n);
            const Limb b = fuzz_scalar(rng);
            std::vector<Limb> want(n), got(n);
            const Limb want_c =
                kernels::scalar_mul_1(want.data(), a.data(), n, b);
            const Limb got_c = set.mul_1(got.data(), a.data(), n, b);
            ASSERT_EQ(want, got) << set.name << " n=" << n
                                 << " iter=" << iter;
            ASSERT_EQ(want_c, got_c) << set.name << " n=" << n;
            if (n != 0) {
                // Aliased rp == ap (documented in-place form).
                std::vector<Limb> in_place = a;
                const Limb alias_c =
                    set.mul_1(in_place.data(), in_place.data(), n, b);
                ASSERT_EQ(want, in_place)
                    << set.name << " aliased n=" << n;
                ASSERT_EQ(want_c, alias_c);
            }
        }
    }
}

TEST(SimdKernels, Addmul1DifferentialFuzz)
{
    const auto sets = vector_kernel_sets();
    if (sets.empty())
        GTEST_SKIP() << "host has no SIMD kernel tier";
    Rng rng(fuzz_seed(0x51D0002));
    for (const NamedKernels& set : sets) {
        for (int iter = 0; iter < 1200; ++iter) {
            const std::size_t n = fuzz_size(rng);
            const std::vector<Limb> a = fuzz_limbs(rng, n);
            const std::vector<Limb> r0 = fuzz_limbs(rng, n);
            const Limb b = fuzz_scalar(rng);
            std::vector<Limb> want = r0, got = r0;
            const Limb want_c =
                kernels::scalar_addmul_1(want.data(), a.data(), n, b);
            const Limb got_c = set.addmul_1(got.data(), a.data(), n, b);
            ASSERT_EQ(want, got) << set.name << " n=" << n
                                 << " iter=" << iter;
            ASSERT_EQ(want_c, got_c) << set.name << " n=" << n;
            if (n != 0) {
                // rp aliased to ap: rp += rp * b.
                std::vector<Limb> want_alias = a, got_alias = a;
                const Limb wc = kernels::scalar_addmul_1(
                    want_alias.data(), want_alias.data(), n, b);
                const Limb gc = set.addmul_1(got_alias.data(),
                                             got_alias.data(), n, b);
                ASSERT_EQ(want_alias, got_alias)
                    << set.name << " aliased n=" << n;
                ASSERT_EQ(wc, gc);
            }
        }
    }
}

TEST(SimdKernels, Submul1DifferentialFuzz)
{
    const auto sets = vector_kernel_sets();
    if (sets.empty())
        GTEST_SKIP() << "host has no SIMD kernel tier";
    Rng rng(fuzz_seed(0x51D0003));
    for (const NamedKernels& set : sets) {
        for (int iter = 0; iter < 1200; ++iter) {
            const std::size_t n = fuzz_size(rng);
            const std::vector<Limb> a = fuzz_limbs(rng, n);
            const std::vector<Limb> r0 = fuzz_limbs(rng, n);
            const Limb b = fuzz_scalar(rng);
            std::vector<Limb> want = r0, got = r0;
            const Limb want_c =
                kernels::scalar_submul_1(want.data(), a.data(), n, b);
            const Limb got_c = set.submul_1(got.data(), a.data(), n, b);
            ASSERT_EQ(want, got) << set.name << " n=" << n
                                 << " iter=" << iter;
            ASSERT_EQ(want_c, got_c) << set.name << " n=" << n;
        }
    }
}

TEST(SimdKernels, AddNDifferentialFuzz)
{
    const auto sets = vector_kernel_sets();
    if (sets.empty())
        GTEST_SKIP() << "host has no SIMD kernel tier";
    Rng rng(fuzz_seed(0x51D0004));
    for (const NamedKernels& set : sets) {
        for (int iter = 0; iter < 1500; ++iter) {
            const std::size_t n = fuzz_size(rng);
            const std::vector<Limb> a = fuzz_limbs(rng, n);
            const std::vector<Limb> b = fuzz_limbs(rng, n);
            std::vector<Limb> want(n), got(n);
            const Limb want_c = kernels::scalar_add_n(
                want.data(), a.data(), b.data(), n);
            const Limb got_c =
                set.add_n(got.data(), a.data(), b.data(), n);
            ASSERT_EQ(want, got) << set.name << " n=" << n
                                 << " iter=" << iter;
            ASSERT_EQ(want_c, got_c) << set.name << " n=" << n;
            if (n != 0) {
                // In-place rp == ap (the dominant caller shape).
                std::vector<Limb> acc = a;
                const Limb alias_c = set.add_n(acc.data(), acc.data(),
                                               b.data(), n);
                ASSERT_EQ(want, acc)
                    << set.name << " aliased n=" << n;
                ASSERT_EQ(want_c, alias_c);
            }
        }
    }
}

TEST(SimdKernels, SubNDifferentialFuzz)
{
    const auto sets = vector_kernel_sets();
    if (sets.empty())
        GTEST_SKIP() << "host has no SIMD kernel tier";
    Rng rng(fuzz_seed(0x51D0005));
    for (const NamedKernels& set : sets) {
        for (int iter = 0; iter < 1500; ++iter) {
            const std::size_t n = fuzz_size(rng);
            const std::vector<Limb> a = fuzz_limbs(rng, n);
            const std::vector<Limb> b = fuzz_limbs(rng, n);
            std::vector<Limb> want(n), got(n);
            const Limb want_c = kernels::scalar_sub_n(
                want.data(), a.data(), b.data(), n);
            const Limb got_c =
                set.sub_n(got.data(), a.data(), b.data(), n);
            ASSERT_EQ(want, got) << set.name << " n=" << n
                                 << " iter=" << iter;
            ASSERT_EQ(want_c, got_c) << set.name << " n=" << n;
            if (n != 0) {
                std::vector<Limb> acc = a;
                const Limb alias_c = set.sub_n(acc.data(), acc.data(),
                                               b.data(), n);
                ASSERT_EQ(want, acc)
                    << set.name << " aliased n=" << n;
                ASSERT_EQ(want_c, alias_c);
            }
        }
    }
}

TEST(SimdKernels, MulBasecaseDifferentialFuzz)
{
    const auto sets = vector_kernel_sets();
    if (sets.empty())
        GTEST_SKIP() << "host has no SIMD kernel tier";
    Rng rng(fuzz_seed(0x51D0006));
    for (const NamedKernels& set : sets) {
        for (int iter = 0; iter < 1000; ++iter) {
            // Cover both sides of the reduced-radix crossover, where
            // the column kernel and the scalar fallback meet.
            const std::size_t bn = 1 + rng.below(80);
            const std::size_t an = bn + rng.below(40);
            const std::vector<Limb> a = fuzz_limbs(rng, an);
            const std::vector<Limb> b = fuzz_limbs(rng, bn);
            std::vector<Limb> want(an + bn), got(an + bn);
            kernels::scalar_mul_basecase(want.data(), a.data(), an,
                                         b.data(), bn);
            set.mul_basecase(got.data(), a.data(), an, b.data(), bn);
            ASSERT_EQ(want, got) << set.name << " an=" << an
                                 << " bn=" << bn << " iter=" << iter;
        }
    }
}

TEST(SimdKernels, SoaVerticalMatchesPerProduct)
{
    if (kernels::active().soa_width == 0)
        GTEST_SKIP() << "active tier has no SoA kernel";
    Rng rng(fuzz_seed(0x51D0007));
    for (int iter = 0; iter < 60; ++iter) {
        const std::size_t count = 1 + rng.below(40);
        std::vector<std::pair<Natural, Natural>> pairs;
        for (std::size_t i = 0; i < count; ++i) {
            // Mixed shapes: same-shape runs (SoA groups), odd shapes
            // (remainders), zeros and oversize pairs (fallback).
            const std::uint64_t mode = rng.below(5);
            std::uint64_t bits_a = 2048, bits_b = 2048;
            if (mode == 1)
                bits_a = bits_b = 64 + rng.below(1024);
            else if (mode == 2) {
                bits_a = 1 + rng.below(4096);
                bits_b = 1 + rng.below(4096);
            } else if (mode == 3)
                bits_a = 0;
            else if (mode == 4)
                bits_a = kernels::kSoaMaxLimbs * 64 + 512;
            pairs.emplace_back(
                bits_a ? Natural::random_bits(rng, bits_a) : Natural(),
                bits_b ? Natural::random_bits(rng, bits_b) : Natural());
        }
        std::vector<Natural> got(count);
        kernels::soa_mul_batch(pairs, got);
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(got[i], pairs[i].first * pairs[i].second)
                << "iter=" << iter << " i=" << i;
    }
}

TEST(SimdKernels, FullMulBitIdenticalAcrossTiers)
{
    const auto tiers = supported_tiers();
    if (tiers.size() < 2)
        GTEST_SKIP() << "host supports only the scalar tier";
    TierGuard guard;
    Rng rng(fuzz_seed(0x51D0008));
    for (int iter = 0; iter < 40; ++iter) {
        const Natural a =
            Natural::random_bits(rng, 1 + rng.below(1 << 15));
        const Natural b =
            Natural::random_bits(rng, 1 + rng.below(1 << 15));
        ASSERT_TRUE(kernels::set_active_tier(kernels::Tier::Scalar));
        const Natural want = a * b;
        for (const kernels::Tier tier : tiers) {
            ASSERT_TRUE(kernels::set_active_tier(tier));
            ASSERT_EQ(a * b, want)
                << kernels::tier_name(tier) << " iter=" << iter;
        }
    }
}

TEST(SimdKernels, DeviceMulBatchBitIdenticalAcrossTiers)
{
    const auto tiers = supported_tiers();
    if (tiers.size() < 2)
        GTEST_SKIP() << "host supports only the scalar tier";
    TierGuard guard;
    Rng rng(fuzz_seed(0x51D0009));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 48; ++i) {
        const std::uint64_t bits =
            i % 3 == 0 ? 2048 : 1 + rng.below(4096);
        pairs.emplace_back(Natural::random_bits(rng, bits),
                           Natural::random_bits(rng, bits));
    }
    ASSERT_TRUE(kernels::set_active_tier(kernels::Tier::Scalar));
    const camp::sim::BatchResult want =
        camp::exec::make_device("cpu")->mul_batch(pairs);
    for (const kernels::Tier tier : tiers) {
        ASSERT_TRUE(kernels::set_active_tier(tier));
        const camp::sim::BatchResult got =
            camp::exec::make_device("cpu")->mul_batch(pairs);
        ASSERT_EQ(got.products.size(), want.products.size());
        for (std::size_t i = 0; i < pairs.size(); ++i)
            ASSERT_EQ(got.products[i], want.products[i])
                << kernels::tier_name(tier) << " i=" << i;
    }
}
