/**
 * @file
 * Application-level tests: known pi digits, Mandelbrot perturbation vs
 * direct iteration, QFT unitarity and known entries, RSA round trips.
 */
#include <gtest/gtest.h>

#include <complex>

#include "apps/frac/mandelbrot.hpp"
#include "apps/pi/chudnovsky.hpp"
#include "apps/rsa/rsa.hpp"
#include "apps/zkcm/zkcm.hpp"
#include "support/rng.hpp"

namespace pi_app = camp::apps::pi;
namespace frac = camp::apps::frac;
namespace zkcm = camp::apps::zkcm;
namespace rsa = camp::apps::rsa;
using camp::mpn::Natural;

namespace {

constexpr const char* kPi100 =
    "3.1415926535897932384626433832795028841971693993751058209749445923"
    "078164062862089986280348253421170679";

} // namespace

TEST(PiApp, First100Digits)
{
    EXPECT_EQ(pi_app::compute_pi(100), kPi100);
}

TEST(PiApp, PrefixStableAcrossSizes)
{
    const std::string pi1000 = pi_app::compute_pi(1000);
    const std::string pi300 = pi_app::compute_pi(300);
    EXPECT_EQ(pi1000.substr(0, 302), pi300);
    EXPECT_EQ(pi1000.size(), 1002u);
    EXPECT_EQ(pi1000.substr(0, 102), kPi100);
}

TEST(PiApp, TermEstimate)
{
    EXPECT_EQ(pi_app::terms_for_digits(100), 9u);
    EXPECT_GE(pi_app::terms_for_digits(1000000), 70510u);
}

TEST(PiApp, BinarySplittingMergeInvariant)
{
    // T(a,b) = T(a,m) Q(m,b) + P(a,m) T(m,b) must equal direct leaves.
    const auto whole = pi_app::binary_split(0, 8);
    auto acc = pi_app::binary_split(0, 1);
    for (std::uint64_t k = 1; k < 8; ++k) {
        const auto leaf = pi_app::binary_split(k, k + 1);
        pi_app::SplitTriple merged;
        merged.p = acc.p * leaf.p;
        merged.q = acc.q * leaf.q;
        merged.t = acc.t * leaf.q + acc.p * leaf.t;
        acc = merged;
    }
    EXPECT_EQ(acc.p, whole.p);
    EXPECT_EQ(acc.q, whole.q);
    EXPECT_EQ(acc.t, whole.t);
}

TEST(FracApp, ParseDecimalRoundTrip)
{
    const auto v = frac::parse_decimal("-0.5", 128);
    EXPECT_DOUBLE_EQ(v.to_double(), -0.5);
    EXPECT_NEAR(frac::parse_decimal("3.14159", 128).to_double(),
                3.14159, 1e-12);
}

TEST(FracApp, ReferenceOrbitMatchesDoubleIterationShallow)
{
    // At shallow depth the high-precision orbit must agree with plain
    // double iteration.
    const frac::FloatComplex c{frac::parse_decimal("-0.1", 256),
                               frac::parse_decimal("0.65", 256)};
    const auto orbit = frac::reference_orbit(c, 50);
    std::complex<double> z = 0;
    const std::complex<double> cd(-0.1, 0.65);
    for (std::size_t n = 0; n < orbit.size(); ++n) {
        EXPECT_NEAR(orbit[n].real(), z.real(), 1e-9) << n;
        EXPECT_NEAR(orbit[n].imag(), z.imag(), 1e-9) << n;
        z = z * z + cd;
    }
}

TEST(FracApp, InteriorCenterOrbitDoesNotEscape)
{
    frac::RenderParams params;
    params.max_iterations = 500;
    const frac::FloatComplex c{
        frac::parse_decimal(params.center_re, 256),
        frac::parse_decimal(params.center_im, 256)};
    const auto orbit = frac::reference_orbit(c, 500);
    EXPECT_EQ(orbit.size(), 501u);
}

TEST(FracApp, RenderProducesMixedEscapeMap)
{
    frac::RenderParams params;
    params.width = 32;
    params.height = 24;
    params.zoom_log2 = 4; // shallow zoom: varied escape behaviour
    params.max_iterations = 300;
    const auto result = frac::render(params);
    EXPECT_EQ(result.iterations.size(), 32u * 24);
    EXPECT_GT(result.escape_fraction, 0.05);
    EXPECT_LT(result.escape_fraction, 0.995);
    // Deterministic rendering.
    EXPECT_EQ(frac::render(params).checksum, result.checksum);
}

TEST(FracApp, DeepZoomRunsOnPerturbation)
{
    frac::RenderParams params;
    params.width = 16;
    params.height = 12;
    params.zoom_log2 = 60; // far beyond double pixel resolution
    params.precision_bits = 256;
    params.max_iterations = 400;
    const auto result = frac::render(params);
    EXPECT_EQ(result.orbit_length, 401u);
    EXPECT_EQ(result.iterations.size(), 16u * 12);
}

TEST(ZkcmApp, ComplexArithmetic)
{
    const auto prec = 128u;
    const zkcm::Complex i{camp::mpf::Float::with_prec(prec),
                          camp::mpf::Float::from_natural(Natural(1),
                                                         prec)};
    const zkcm::Complex sq = i * i;
    EXPECT_NEAR(sq.re.to_double(), -1.0, 1e-30);
    EXPECT_TRUE(sq.im.is_zero());
    EXPECT_NEAR(i.norm2().to_double(), 1.0, 1e-30);
}

TEST(ZkcmApp, HadamardIsUnitaryAndInvolutory)
{
    const auto h = zkcm::hadamard(256);
    EXPECT_LT(zkcm::unitarity_error(h), 1e-60);
    // H^2 = I.
    EXPECT_LT(zkcm::CMatrix::max_abs2_diff(
                  h * h, zkcm::CMatrix::identity(2, 256)),
              1e-60);
}

TEST(ZkcmApp, PhaseGateEighthRootOfUnity)
{
    const auto r3 = zkcm::phase_gate(256, 3); // e^{2 pi i / 8}
    // (R_3)^8 = I on the phase entry.
    auto acc = zkcm::CMatrix::identity(2, 256);
    for (int i = 0; i < 8; ++i)
        acc = acc * r3;
    EXPECT_LT(zkcm::CMatrix::max_abs2_diff(
                  acc, zkcm::CMatrix::identity(2, 256)),
              1e-60);
}

TEST(ZkcmApp, KroneckerDimensions)
{
    const auto h = zkcm::hadamard(128);
    const auto hh = zkcm::CMatrix::kron(h, h);
    EXPECT_EQ(hh.rows(), 4u);
    EXPECT_LT(zkcm::unitarity_error(hh), 1e-30);
}

TEST(ZkcmApp, QftMatchesClosedForm)
{
    // QFT entries: (1/sqrt(N)) w^{jk}, w = e^{2 pi i / N}.
    const unsigned qubits = 3;
    const std::size_t dim = 8;
    const std::uint64_t prec = 192;
    const auto u = zkcm::qft_circuit(qubits, prec);
    EXPECT_LT(zkcm::unitarity_error(u), 1e-40);
    const double inv_sqrt_n = 1.0 / std::sqrt(8.0);
    double max_err = 0;
    for (std::size_t j = 0; j < dim; ++j) {
        for (std::size_t k = 0; k < dim; ++k) {
            const double angle = 2.0 * M_PI *
                                 static_cast<double>(j * k % dim) / 8.0;
            const std::complex<double> expect =
                inv_sqrt_n * std::polar(1.0, angle);
            // The circuit realizes QFT with bit-reversed output order.
            std::size_t jr = 0;
            for (unsigned b = 0; b < qubits; ++b)
                jr |= ((j >> b) & 1) << (qubits - 1 - b);
            const auto& got = u.at(jr, k);
            max_err = std::max(
                max_err,
                std::abs(std::complex<double>(got.re.to_double(),
                                              got.im.to_double()) -
                         expect));
        }
    }
    EXPECT_LT(max_err, 1e-12);
}

TEST(RsaApp, PrimeGenerationIsDeterministic)
{
    const Natural p1 = rsa::generate_prime(64, 7);
    const Natural p2 = rsa::generate_prime(64, 7);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(p1.bits(), 64u);
    EXPECT_TRUE(camp::mpz::Integer::is_probable_prime(p1));
}

TEST(RsaApp, EncryptDecryptRoundTrip)
{
    const rsa::KeyPair key = rsa::generate_key(256, 42);
    camp::Rng rng(130);
    for (int iter = 0; iter < 5; ++iter) {
        const Natural message =
            Natural::random_bits(rng, 255) % key.n;
        const Natural cipher = rsa::encrypt(message, key);
        EXPECT_NE(cipher, message);
        EXPECT_EQ(rsa::decrypt(cipher, key), message);
    }
}

TEST(RsaApp, KeyInternalConsistency)
{
    const rsa::KeyPair key = rsa::generate_key(128, 9);
    EXPECT_EQ(key.p * key.q, key.n);
    const Natural phi = (key.p - Natural(1)) * (key.q - Natural(1));
    EXPECT_EQ((key.e * key.d) % phi, Natural(1));
}

TEST(RsaApp, ModexpWorkloadDeterministic)
{
    const auto c1 = rsa::modexp_workload(512, 3, 99);
    const auto c2 = rsa::modexp_workload(512, 3, 99);
    EXPECT_EQ(c1, c2);
    EXPECT_NE(c1, rsa::modexp_workload(512, 3, 100));
}

#include "apps/zkcm/statevector.hpp"

TEST(ZkcmStateVector, NormIsPreserved)
{
    using namespace camp::apps::zkcm;
    StateVector state = StateVector::basis(4, 5, 256);
    apply_qft(state);
    const double norm = state.norm2().to_double();
    EXPECT_NEAR(norm, 1.0, 1e-40);
}

TEST(ZkcmStateVector, MatchesMatrixCircuitOnAllBasisStates)
{
    using namespace camp::apps::zkcm;
    const unsigned qubits = 3;
    const std::uint64_t prec = 192;
    const CMatrix u = qft_circuit(qubits, prec);
    for (std::size_t basis = 0; basis < (1u << qubits); ++basis) {
        StateVector state = StateVector::basis(qubits, basis, prec);
        apply_qft(state);
        // Column `basis` of the matrix must equal the evolved state.
        double max_err = 0;
        for (std::size_t row = 0; row < (1u << qubits); ++row) {
            const Complex d = u.at(row, basis) - state.amplitude(row);
            max_err = std::max(max_err, d.norm2().to_double());
        }
        EXPECT_LT(max_err, 1e-40) << "basis " << basis;
    }
}

TEST(ZkcmStateVector, SwapAndControlledGates)
{
    using namespace camp::apps::zkcm;
    const std::uint64_t prec = 128;
    // |10> --swap--> |01>.
    StateVector state = StateVector::basis(2, 2, prec);
    state.swap_qubits(0, 1);
    EXPECT_NEAR(state.amplitude(1).norm2().to_double(), 1.0, 1e-30);
    // Controlled-X on |11> flips the target: |11> -> |10>.
    StateVector cx = StateVector::basis(2, 3, prec);
    cx.apply_controlled(pauli_x(prec), 0, 1);
    EXPECT_NEAR(cx.amplitude(2).norm2().to_double(), 1.0, 1e-30);
    // Control clear: no action on |01>.
    StateVector idle = StateVector::basis(2, 1, prec);
    idle.apply_controlled(pauli_x(prec), 0, 1);
    EXPECT_NEAR(idle.amplitude(1).norm2().to_double(), 1.0, 1e-30);
}

TEST(ZkcmStateVector, LargerRegisterThanMatrixPath)
{
    // 10 qubits = 1024 amplitudes: far beyond what the 2^n x 2^n
    // matrix path could build, demonstrating the state-vector shape.
    using namespace camp::apps::zkcm;
    StateVector state = StateVector::basis(10, 123, 128);
    apply_qft(state);
    EXPECT_NEAR(state.norm2().to_double(), 1.0, 1e-25);
}

TEST(PiApp, ThousandthDigitTailMatchesIndependentReference)
{
    // Tail digits 971..1000 cross-checked against an independent
    // Decimal-based Chudnovsky evaluation.
    const std::string pi1000 = pi_app::compute_pi(1000);
    EXPECT_EQ(pi1000.substr(pi1000.size() - 30),
              "130019278766111959092164201989");
}

#include "apps/nbody/nbody.hpp"

TEST(NbodyApp, MultiprecisionEnergyIsPrecisionStable)
{
    using namespace camp::apps::nbody;
    const auto charges = cancellation_lattice(3, 7);
    const auto e256 = coulomb_energy(charges, 256);
    const auto e512 = coulomb_energy(charges, 512);
    const auto diff = camp::mpf::Float::abs(e512 - e256);
    EXPECT_TRUE(diff.is_zero() || diff.magnitude_exp() <
                                      e512.magnitude_exp() - 200);
    // Double agrees to leading digits only.
    const double d = coulomb_energy_double(charges);
    EXPECT_NEAR(d, e512.to_double(), std::abs(d) * 1e-9 + 1e-12);
}

TEST(NbodyApp, TwoChargeClosedForm)
{
    using namespace camp::apps::nbody;
    // Unit charges at distance 2: E = -1/2.
    const std::vector<Charge> pair{{0, 0, 0, 1}, {2, 0, 0, -1}};
    EXPECT_DOUBLE_EQ(coulomb_energy(pair, 128).to_double(), -0.5);
    EXPECT_DOUBLE_EQ(coulomb_energy_double(pair), -0.5);
}
