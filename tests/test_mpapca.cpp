/**
 * @file
 * MPApca runtime tests: cost-model structure (regimes, monotonicity,
 * calibration points), ledger accounting with nesting guards, backend
 * dispatch, and the functional decomposition path over the simulated
 * hardware.
 */
#include <gtest/gtest.h>

#include "mpapca/cost_model.hpp"
#include "mpapca/ledger.hpp"
#include "mpapca/runtime.hpp"
#include "mpn/natural.hpp"
#include "support/rng.hpp"

using namespace camp::mpapca;
using camp::mpn::Natural;
using camp::mpn::OpKind;

TEST(CostModel, AlgorithmRegimes)
{
    // Selection is cost based: the monolithic range is fixed, fast
    // algorithms must take over above it, and SSA must win eventually.
    const CostModel model;
    EXPECT_STREQ(model.mul_algorithm(4096), "monolithic");
    EXPECT_STREQ(model.mul_algorithm(35904), "monolithic");
    const std::string just_above = model.mul_algorithm(35905);
    EXPECT_NE(just_above, "monolithic");
    EXPECT_NE(just_above, "ssa");
    EXPECT_STREQ(model.mul_algorithm(64'000'000), "ssa");
}

TEST(CostModel, RegimeBoundariesAreOrdered)
{
    // Sweeping up in size, once SSA wins it keeps winning; Toom order
    // is non-decreasing before that.
    const CostModel model;
    bool seen_ssa = false;
    int max_toom = 0;
    for (std::uint64_t bits = 40000; bits <= (1ull << 27); bits *= 2) {
        const std::string algo = model.mul_algorithm(bits);
        if (algo == "ssa") {
            seen_ssa = true;
        } else {
            EXPECT_FALSE(seen_ssa) << bits << " " << algo;
            const int k = algo.back() - '0';
            EXPECT_GE(k, max_toom) << bits << " " << algo;
            max_toom = std::max(max_toom, k);
        }
    }
    EXPECT_TRUE(seen_ssa);
}

TEST(CostModel, Table3CalibrationPoint)
{
    const CostModel model;
    const Cost c = model.mul(4096, 4096);
    EXPECT_DOUBLE_EQ(c.cycles, 32.0);
    EXPECT_NEAR(model.seconds(c.cycles), 1.6e-8, 1e-12);
    EXPECT_GT(c.energy_j, 0);
}

TEST(CostModel, MulCostIsMonotoneInSize)
{
    const CostModel model;
    double prev = 0;
    for (std::uint64_t bits = 1024; bits <= (1ull << 26); bits *= 2) {
        const double cycles = model.mul(bits, bits).cycles;
        // Small sizes share the single-wave latency floor (one 32-cycle
        // wave covers everything up to 4096x4096).
        EXPECT_GE(cycles, prev) << bits;
        if (bits > 65536)
            EXPECT_GT(cycles, prev) << bits;
        prev = cycles;
    }
}

TEST(CostModel, SubquadraticAboveCap)
{
    // Above the monolithic range the software stack keeps the growth
    // subquadratic: quadrupling the size must cost < 16x.
    const CostModel model;
    const double c1 = model.mul(1ull << 21, 1ull << 21).cycles;
    const double c2 = model.mul(1ull << 23, 1ull << 23).cycles;
    EXPECT_LT(c2, 16.0 * c1);
    EXPECT_GT(c2, 3.0 * c1);
}

TEST(CostModel, DivAndSqrtCostMoreThanOneMul)
{
    const CostModel model;
    for (std::uint64_t bits : {10000ull, 1000000ull}) {
        const double m = model.mul(bits, bits).cycles;
        EXPECT_GT(model.div(2 * bits, bits).cycles, m);
        EXPECT_GT(model.sqrt(2 * bits).cycles, 0.5 * m);
    }
}

TEST(CostModel, UnbalancedBlockDecomposition)
{
    const CostModel model;
    // 100 blocks of cap x cap.
    const std::uint64_t cap = 35904;
    const double one = model.mul(cap, cap).cycles;
    const double blocks = model.mul(100 * cap, cap / 4).cycles;
    EXPECT_GT(blocks, one);
    const double balanced = model.mul(100 * cap, 100 * cap).cycles;
    EXPECT_GT(balanced, blocks);
}

TEST(Ledger, ChargesTopLevelOpsOnly)
{
    const CostModel model;
    Ledger ledger(model);
    {
        LedgerSession session(ledger);
        camp::Rng rng(121);
        const Natural a = Natural::random_bits(rng, 4096);
        const Natural b = Natural::random_bits(rng, 4096);
        const Natural c = a * b;
        (void)c;
        // gcd nests shifts/subs internally; only Gcd is charged.
        const Natural g = Natural::gcd(a, b);
        (void)g;
    }
    EXPECT_EQ(ledger.entry(OpKind::Mul).count, 1u);
    EXPECT_EQ(ledger.entry(OpKind::Gcd).count, 1u);
    EXPECT_EQ(ledger.entry(OpKind::Sub).count, 0u);
    EXPECT_EQ(ledger.entry(OpKind::Shift).count, 0u);
    EXPECT_DOUBLE_EQ(ledger.entry(OpKind::Mul).cost.cycles, 32.0);
    EXPECT_GT(ledger.total_energy_j(), 0.0);
}

TEST(Ledger, TableListsChargedOps)
{
    const CostModel model;
    Ledger ledger(model);
    {
        LedgerSession session(ledger);
        const Natural c = Natural(12345) * Natural(678);
        (void)c;
    }
    const std::string table = ledger.table("unit");
    EXPECT_NE(table.find("Mul"), std::string::npos);
    EXPECT_EQ(table.find("Div"), std::string::npos);
}

TEST(Runtime, CpuBackendMeasuresWallTime)
{
    Runtime runtime(Backend::Cpu);
    camp::Rng rng(122);
    const Natural a = Natural::random_bits(rng, 60000);
    const Natural b = Natural::random_bits(rng, 60000);
    const AppReport report = runtime.run("cpu-mul", [&] {
        for (int i = 0; i < 20; ++i) {
            const Natural c = a * b;
            (void)c;
        }
    });
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_GT(report.kernel_seconds, 0.0);
    EXPECT_GT(report.energy_j, 0.0);
    EXPECT_EQ(report.backend, Backend::Cpu);
}

TEST(Runtime, CambriconBackendUsesSimulatedKernelTime)
{
    Runtime cpu(Backend::Cpu);
    Runtime accel(Backend::CambriconP);
    camp::Rng rng(123);
    const Natural a = Natural::random_bits(rng, 30000);
    const Natural b = Natural::random_bits(rng, 30000);
    auto workload = [&] {
        for (int i = 0; i < 10; ++i) {
            const Natural c = a * b;
            (void)c;
        }
    };
    const AppReport r_cpu = cpu.run("mul", workload);
    const AppReport r_acc = accel.run("mul", workload);
    // A 30k-bit multiplication takes ~5 waves = 160 cycles = 80 ns on
    // the accelerator vs microseconds on the host.
    EXPECT_LT(r_acc.kernel_seconds, r_cpu.kernel_seconds);
    EXPECT_GT(r_acc.kernel_seconds, 0.0);
}

TEST(Runtime, FunctionalMulMatchesReferenceWithinCap)
{
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(124);
    const Natural a = Natural::random_bits(rng, 20000);
    const Natural b = Natural::random_bits(rng, 15000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    EXPECT_EQ(runtime.base_products(), 1u);
}

TEST(Runtime, FunctionalMulDecomposesOversizedOperands)
{
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(125);
    // ~100k bits: needs two Karatsuba levels above the 35904-bit cap.
    const Natural a = Natural::random_bits(rng, 100000);
    const Natural b = Natural::random_bits(rng, 99000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    EXPECT_GT(runtime.base_products(), 3u);
}

TEST(Runtime, FunctionalMulBlockPathForSkinnyOperands)
{
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(126);
    const Natural a = Natural::random_bits(rng, 200000);
    const Natural b = Natural::random_bits(rng, 5000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    EXPECT_GE(runtime.base_products(), 200000u / 35904);
}

TEST(Runtime, FunctionalToom3PathForLargeBalancedOperands)
{
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(127);
    // > 6x the monolithic cap and balanced: routes through Toom-3.
    const Natural a = Natural::random_bits(rng, 260000);
    const Natural b = Natural::random_bits(rng, 250000);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
    EXPECT_GT(runtime.base_products(), 5u);
}

TEST(Runtime, FunctionalPathHandlesExtremeImbalance)
{
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(128);
    const Natural a = Natural::random_bits(rng, 300000);
    const Natural b = Natural::random_bits(rng, 40);
    EXPECT_EQ(runtime.mul_functional(a, b), a * b);
}

TEST(Runtime, MultiplyBatchFoldsIntoLedger)
{
    Runtime runtime(Backend::CambriconP);
    camp::Rng rng(129);
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1024),
                           Natural::random_bits(rng, 1024));
    const camp::sim::BatchResult result = runtime.multiply_batch(pairs);
    ASSERT_EQ(result.products.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(result.products[i], pairs[i].first * pairs[i].second);
    EXPECT_EQ(runtime.base_products(), pairs.size());
    // No injection armed: nothing may be counted as faulty.
    EXPECT_EQ(runtime.fault_stats().injected, 0u);
    EXPECT_EQ(runtime.fault_stats().detected, 0u);
}

TEST(Runtime, MultiplyBatchCountsInjectedFaults)
{
    camp::sim::SimConfig config = camp::sim::default_config();
    config.faults.seed = 77;
    config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.002;
    Runtime runtime(Backend::CambriconP, config);
    camp::Rng rng(130);
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 2048),
                           Natural::random_bits(rng, 2048));
    const camp::sim::BatchResult result = runtime.multiply_batch(pairs);
    EXPECT_GT(result.injected, 0u);
    EXPECT_EQ(runtime.fault_stats().injected, result.injected);
    EXPECT_EQ(runtime.fault_stats().detected, result.faulty);
    EXPECT_EQ(runtime.fault_stats().checks, pairs.size());
}
