/**
 * @file
 * Operand-digest inverse cache (support::OpCache, DESIGN.md §16):
 * unit behavior (LRU, byte budgets, sharding, forced digest
 * collisions), the immutability negative control (a payload mutated
 * behind the cache's back throws camp::Error(Internal) instead of
 * being served), the ≥1000-case cache-on vs cache-off differential
 * fuzz across modexp / divrem / pi / frac, the incremental-path
 * property tests (pi binary-splitting growth, frac reference-orbit
 * extension), and concurrent hit/miss/evict traffic from the PR-2
 * thread pool (the TSan leg's target).
 *
 * Seeds: randomized tests use a fixed per-test default seed,
 * overridable with CAMP_FUZZ_SEED; failure messages carry the
 * effective seed for exact replay.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/frac/mandelbrot.hpp"
#include "apps/pi/chudnovsky.hpp"
#include "mpn/natural.hpp"
#include "mpn/newton.hpp"
#include "mpz/integer.hpp"
#include "support/errors.hpp"
#include "support/opcache.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace support = camp::support;
using camp::Rng;
using camp::mpn::Natural;
using camp::mpz::Integer;
using support::OpCache;
using support::OpCacheStats;
using support::OpKey;
using support::OpTag;
using support::OpValue;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** RAII around the process-global cache: force a known enabled state
 * and a cold start, restore the entry state on exit. */
class GlobalCacheGuard
{
  public:
    explicit GlobalCacheGuard(bool enabled)
        : saved_(OpCache::global().enabled())
    {
        OpCache::global().set_enabled(enabled);
        OpCache::global().clear();
    }

    ~GlobalCacheGuard()
    {
        OpCache::global().set_enabled(saved_);
        OpCache::global().clear();
    }

  private:
    bool saved_;
};

/** Run @p compute with the global cache disabled (the differential
 * "off" arm), restoring the previous state afterwards. */
template <typename Fn>
auto
with_cache_disabled(Fn&& compute)
{
    OpCache& cache = OpCache::global();
    const bool saved = cache.enabled();
    cache.set_enabled(false);
    auto result = compute();
    cache.set_enabled(saved);
    return result;
}

OpValue
test_value(std::uint64_t word, std::size_t limbs = 1)
{
    OpValue value;
    value.parts.emplace_back(limbs, word);
    value.scalars.push_back(word ^ 0xabcdef);
    return value;
}

} // namespace

// ---------------------------------------------------------------------
// Unit behavior
// ---------------------------------------------------------------------

TEST(OpCacheUnit, MissThenHitRoundTripsTheValue)
{
    OpCache cache(1 << 20, true, 4, "opcache.test");
    const OpKey key = support::make_key(OpTag::Test, {1, 2, 3});
    EXPECT_EQ(cache.lookup(key), nullptr);
    cache.insert(key, test_value(42, 3));
    const auto hit = cache.lookup(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->parts[0], (std::vector<std::uint64_t>{42, 42, 42}));
    EXPECT_EQ(hit->scalars[0], 42u ^ 0xabcdefu);
    const OpCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.inserts, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(OpCacheUnit, ReplacementKeepsOneEntryPerKey)
{
    OpCache cache(1 << 20, true, 1, "opcache.test");
    const OpKey key = support::make_key(OpTag::Test, {7});
    cache.insert(key, test_value(1));
    cache.insert(key, test_value(2, 8)); // supersedes, larger payload
    const auto hit = cache.lookup(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->parts[0].size(), 8u);
    EXPECT_EQ(hit->parts[0][0], 2u);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(OpCacheUnit, LruEvictionPrefersStaleEntries)
{
    // One shard so the LRU order is global; budget fits roughly two
    // entries of this payload size (entry overhead is 128 bytes).
    OpCache cache(600, true, 1, "opcache.test");
    const OpKey a = support::make_key(OpTag::Test, {1});
    const OpKey b = support::make_key(OpTag::Test, {2});
    const OpKey c = support::make_key(OpTag::Test, {3});
    cache.insert(a, test_value(1, 8));
    cache.insert(b, test_value(2, 8));
    ASSERT_NE(cache.lookup(a), nullptr); // refresh a: b is now LRU
    cache.insert(c, test_value(3, 8));   // evicts b, not a
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_NE(cache.lookup(c), nullptr);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_LE(cache.stats().bytes, 600u);
}

TEST(OpCacheUnit, TinyBudgetChurnsButStaysWithinBytes)
{
    OpCache cache(1024, true, 2, "opcache.test");
    for (std::uint64_t i = 0; i < 200; ++i) {
        cache.insert(support::make_key(OpTag::Test, {i}),
                     test_value(i, 4));
        EXPECT_LE(cache.stats().bytes, 1024u);
    }
    const OpCacheStats stats = cache.stats();
    EXPECT_EQ(stats.inserts, 200u);
    EXPECT_GT(stats.evictions, 100u);
    EXPECT_GT(stats.entries, 0u);
}

TEST(OpCacheUnit, OversizedValueIsRefusedNotChurned)
{
    OpCache cache(512, true, 2, "opcache.test"); // 256 per shard
    cache.insert(support::make_key(OpTag::Test, {1}), test_value(1));
    ASSERT_EQ(cache.stats().entries, 1u);
    // A payload bigger than a whole shard budget must not wipe the
    // shard only to be evicted itself.
    cache.insert(support::make_key(OpTag::Test, {2}),
                 test_value(2, 4096));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(OpCacheUnit, DisabledCacheIsInert)
{
    OpCache cache(1 << 20, false, 4, "opcache.test");
    const OpKey key = support::make_key(OpTag::Test, {5});
    cache.insert(key, test_value(5));
    EXPECT_EQ(cache.lookup(key), nullptr);
    const OpCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(OpCacheUnit, TagIsPartOfTheIdentity)
{
    OpCache cache(1 << 20, true, 4, "opcache.test");
    cache.insert(support::make_key(OpTag::Reciprocal, {9}),
                 test_value(1));
    // Same material, different semantic tag: a different constant.
    EXPECT_EQ(cache.lookup(support::make_key(OpTag::Montgomery, {9})),
              nullptr);
    EXPECT_NE(cache.lookup(support::make_key(OpTag::Reciprocal, {9})),
              nullptr);
}

// ---------------------------------------------------------------------
// Forced digest collisions
// ---------------------------------------------------------------------

TEST(OpCacheCollisions, SameDigestDifferentMaterialCoexist)
{
    OpCache cache(1 << 20, true, 4, "opcache.test");
    OpKey a = support::make_key(OpTag::Test, {11, 12});
    OpKey b = support::make_key(OpTag::Test, {99, 98, 97});
    b.digest = a.digest; // forced collision: digest routes, material decides
    cache.insert(a, test_value(1));
    cache.insert(b, test_value(2));
    EXPECT_EQ(cache.stats().entries, 2u);

    const auto hit_a = cache.lookup(a);
    const auto hit_b = cache.lookup(b);
    ASSERT_NE(hit_a, nullptr);
    ASSERT_NE(hit_b, nullptr);
    EXPECT_EQ(hit_a->parts[0][0], 1u);
    EXPECT_EQ(hit_b->parts[0][0], 2u);
    // Every colliding-chain scan was counted.
    EXPECT_GT(cache.stats().collisions, 0u);
}

TEST(OpCacheCollisions, CollidingLookupIsAMissNeverAWrongHit)
{
    OpCache cache(1 << 20, true, 4, "opcache.test");
    const OpKey real = support::make_key(OpTag::Test, {21, 22});
    cache.insert(real, test_value(7));
    OpKey impostor = support::make_key(OpTag::Test, {31, 32, 33});
    impostor.digest = real.digest;
    EXPECT_EQ(cache.lookup(impostor), nullptr);
    EXPECT_EQ(cache.stats().collisions, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

// ---------------------------------------------------------------------
// Immutability negative control (the PR-8 stale-view discipline)
// ---------------------------------------------------------------------

TEST(OpCacheNegativeControl, MutatedPayloadThrowsInternalOnNextHit)
{
    OpCache cache(1 << 20, true, 1, "opcache.test");
    const OpKey key = support::make_key(OpTag::Test, {77});
    cache.insert(key, test_value(77, 4));
    const auto hit = cache.lookup(key);
    ASSERT_NE(hit, nullptr);

    // Simulate the aliasing bug the contract defends against: a caller
    // scribbling over the cached limb span it was handed.
    auto& corrupt = const_cast<OpValue&>(*hit);
    corrupt.parts[0][2] ^= 0x1;

    try {
        cache.lookup(key);
        FAIL() << "mutated payload was served";
    } catch (const camp::Error& error) {
        EXPECT_EQ(error.code(), camp::ErrorCode::Internal);
    }
}

TEST(OpCacheNegativeControl, IntactPayloadKeepsVerifyingClean)
{
    // Control for the control: many lookups of an untouched payload
    // never trip the checksum.
    OpCache cache(1 << 20, true, 1, "opcache.test");
    const OpKey key = support::make_key(OpTag::Test, {78});
    cache.insert(key, test_value(78, 4));
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW({ ASSERT_NE(cache.lookup(key), nullptr); });
}

TEST(OpCacheNegativeControl, HitsHandOutCopiesNotViews)
{
    // The mpn call sites copy limbs out of the payload; mutating the
    // copy must not poison the cache (copy-on-return guard).
    GlobalCacheGuard guard(true);
    Rng rng(fuzz_seed(0x0cac8e01));
    const Natural d = Natural::random_bits(rng, 200) | Natural(1);
    const Natural r1 = camp::mpn::newton_reciprocal(d, 128);
    Natural mutated = camp::mpn::newton_reciprocal(d, 128); // cache hit
    mutated += Natural(1); // caller-side mutation of the returned copy
    const Natural r2 = camp::mpn::newton_reciprocal(d, 128);
    EXPECT_EQ(r1, r2);
    EXPECT_NE(mutated, r2);
    EXPECT_GT(OpCache::global().stats().hits, 0u);
}

// ---------------------------------------------------------------------
// Differential fuzz: cache-on vs cache-off, bit identical
// ---------------------------------------------------------------------

namespace {

/** Odd random modulus of ~bits bits (Montgomery wants odd). */
Natural
random_odd(Rng& rng, std::uint64_t bits)
{
    return Natural::random_bits(rng, bits) | Natural(1);
}

} // namespace

TEST(OpCacheFuzz, DifferentialModexpAndDivrem)
{
    const std::uint64_t seed = fuzz_seed(0x0cac8e10);
    SCOPED_TRACE("CAMP_FUZZ_SEED=" + std::to_string(seed));
    GlobalCacheGuard guard(true);
    Rng rng(seed);

    // A small modulus/divisor pool per chunk produces the repeated
    // operands the cache exists for: within a chunk most cases hit.
    constexpr int kChunks = 10;
    constexpr int kCasesPerChunk = 45; // 2 ops/case, 900 cases total
    for (int chunk = 0; chunk < kChunks; ++chunk) {
        std::vector<Natural> moduli;
        for (int i = 0; i < 4; ++i)
            moduli.push_back(random_odd(rng, 128 + rng.below(192)));
        // One even modulus exercises the square-and-mod ladder (whose
        // divisions reach the Newton-reciprocal cache path).
        moduli.push_back(Natural::random_bits(rng, 192) << 1 |
                         Natural(2));

        // Forced digest collisions against *live* keys: before any
        // division runs, forge a foreign entry onto every pool
        // divisor's future reciprocal digest. The real entries chain
        // behind these impostors, so every later hit must skip them
        // by the full material compare — a wrong hit would surface as
        // a differential mismatch below.
        for (std::size_t m = 0; m < moduli.size(); ++m) {
            OpKey forged = support::make_key(
                OpTag::Test,
                {0xdeadbeef, static_cast<std::uint64_t>(chunk), m});
            forged.digest =
                support::make_key(OpTag::Reciprocal, moduli[m].limbs())
                    .digest;
            OpCache::global().insert(forged, test_value(0xbad));
        }

        for (int i = 0; i < kCasesPerChunk; ++i) {
            SCOPED_TRACE("chunk " + std::to_string(chunk) + " case " +
                         std::to_string(i));
            // modexp case.
            const Natural& m = moduli[rng.below(moduli.size())];
            const Natural base =
                Natural::random_bits(rng, 32 + rng.below(256));
            const Natural exp =
                Natural::random_bits(rng, 8 + rng.below(56));
            const Natural on = Integer::powmod(base, exp, m);
            const Natural off = with_cache_disabled(
                [&] { return Integer::powmod(base, exp, m); });
            ASSERT_EQ(on, off);

            // divrem case, through the Newton reciprocal path.
            const Natural d = moduli[rng.below(moduli.size())];
            const Natural a =
                Natural::random_bits(rng, 256 + rng.below(768));
            const auto qr_on = camp::mpn::divrem_newton(a, d);
            const auto qr_off = with_cache_disabled(
                [&] { return camp::mpn::divrem_newton(a, d); });
            ASSERT_EQ(qr_on.first, qr_off.first);
            ASSERT_EQ(qr_on.second, qr_off.second);
            ASSERT_EQ(qr_on.first * d + qr_on.second, a);
        }
    }
    const OpCacheStats stats = OpCache::global().stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.collisions, 0u); // the forged entries were scanned
}

TEST(OpCacheFuzz, DifferentialPiAndFrac)
{
    const std::uint64_t seed = fuzz_seed(0x0cac8e11);
    SCOPED_TRACE("CAMP_FUZZ_SEED=" + std::to_string(seed));
    GlobalCacheGuard guard(true);
    Rng rng(seed);

    // pi: an incremental calculator fed a random digit walk vs the
    // cold cache-off arm, exact string equality (60 cases).
    camp::apps::pi::PiCalculator calculator;
    for (int i = 0; i < 60; ++i) {
        const std::uint64_t digits = 10 + rng.below(120);
        SCOPED_TRACE("pi case " + std::to_string(i) + " digits " +
                     std::to_string(digits));
        const std::string on = calculator.digits(digits);
        const std::string off = with_cache_disabled(
            [&] { return camp::apps::pi::compute_pi(digits); });
        ASSERT_EQ(on, off);
    }

    // frac: a render session fed a random zoom/iteration walk vs the
    // cold cache-off arm, exact iteration-map equality (60 cases).
    camp::apps::frac::RenderSession session;
    camp::apps::frac::RenderParams params;
    params.width = 8;
    params.height = 6;
    params.precision_bits = 96;
    for (int i = 0; i < 60; ++i) {
        params.max_iterations =
            static_cast<unsigned>(10 + rng.below(80));
        params.zoom_log2 = static_cast<int>(4 + rng.below(40));
        SCOPED_TRACE("frac case " + std::to_string(i) + " iters " +
                     std::to_string(params.max_iterations));
        const auto on = session.render(params);
        const auto off = with_cache_disabled(
            [&] { return camp::apps::frac::render(params); });
        ASSERT_EQ(on.iterations, off.iterations);
        ASSERT_EQ(on.checksum, off.checksum);
        ASSERT_EQ(on.orbit_length, off.orbit_length);
    }
}

TEST(OpCacheFuzz, DifferentialSurvivesTinyBudgetEviction)
{
    // Same differential contract while the *global* cache thrashes: a
    // dedicated tiny instance is swapped in by clearing and shrinking
    // via a local cache… the global budget is fixed at construction,
    // so emulate pressure by spamming large foreign entries instead.
    const std::uint64_t seed = fuzz_seed(0x0cac8e12);
    SCOPED_TRACE("CAMP_FUZZ_SEED=" + std::to_string(seed));
    GlobalCacheGuard guard(true);
    Rng rng(seed);
    for (int i = 0; i < 50; ++i) {
        const Natural d = random_odd(rng, 128 + rng.below(128));
        const Natural a = Natural::random_bits(rng, 512);
        const auto qr_on = camp::mpn::divrem_newton(a, d);
        const auto qr_off = with_cache_disabled(
            [&] { return camp::mpn::divrem_newton(a, d); });
        ASSERT_EQ(qr_on.first, qr_off.first);
        ASSERT_EQ(qr_on.second, qr_off.second);
        // Foreign churn: push the shards toward eviction between
        // cases so hits and evictions interleave.
        OpCache::global().insert(
            support::make_key(OpTag::Test,
                              {static_cast<std::uint64_t>(i)}),
            test_value(static_cast<std::uint64_t>(i), 4096));
    }
}

// ---------------------------------------------------------------------
// Incremental pi: growth == cold, boundaries included
// ---------------------------------------------------------------------

TEST(PiIncremental, GrowthWalkMatchesColdExactly)
{
    GlobalCacheGuard guard(true);
    camp::apps::pi::PiCalculator calculator;
    std::uint64_t digits = 40;
    // k = 0 (exact repeat), +1, +13 (same-terms regime), +100 and
    // +500 (new terms), chained so every step extends the last.
    const std::uint64_t steps[] = {0, 1, 13, 100, 500};
    for (const std::uint64_t k : steps) {
        digits += k;
        SCOPED_TRACE("digits " + std::to_string(digits));
        const std::string incremental = calculator.digits(digits);
        const std::string cold = camp::apps::pi::compute_pi(digits);
        ASSERT_EQ(incremental, cold);
        EXPECT_EQ(calculator.terms(),
                  camp::apps::pi::terms_for_digits(digits));
    }
}

TEST(PiIncremental, RepeatIsMemoizedAndFreshTermsAreCounted)
{
    GlobalCacheGuard guard(true);
    camp::apps::pi::PiCalculator calculator;
    calculator.digits(100);
    const std::uint64_t cold_terms = calculator.last_fresh_terms();
    EXPECT_EQ(cold_terms, camp::apps::pi::terms_for_digits(100));

    calculator.digits(100); // k = 0: memo, no new terms
    EXPECT_EQ(calculator.last_fresh_terms(), 0u);

    calculator.digits(101); // same term count, new scale only
    EXPECT_EQ(calculator.last_fresh_terms(), 0u);

    calculator.digits(400); // growth: only the tail is split
    EXPECT_EQ(calculator.last_fresh_terms(),
              camp::apps::pi::terms_for_digits(400) -
                  camp::apps::pi::terms_for_digits(101));
}

TEST(PiIncremental, TargetShrinkRecomputesExactly)
{
    GlobalCacheGuard guard(true);
    camp::apps::pi::PiCalculator calculator;
    calculator.digits(500);
    const std::string shrunk = calculator.digits(60);
    EXPECT_EQ(shrunk, camp::apps::pi::compute_pi(60));
    EXPECT_EQ(calculator.terms(),
              camp::apps::pi::terms_for_digits(60));
    // And growth from the shrunk state still extends correctly.
    EXPECT_EQ(calculator.digits(200),
              camp::apps::pi::compute_pi(200));
}

TEST(PiIncremental, MergeTriplesIsAssociative)
{
    // The exactness argument in one identity: any split point yields
    // the same triple, so incremental merge order cannot matter.
    using camp::apps::pi::binary_split;
    using camp::apps::pi::merge_triples;
    for (const std::uint64_t cut : {1ull, 2ull, 7ull, 19ull}) {
        const auto merged =
            merge_triples(binary_split(0, cut), binary_split(cut, 24));
        const auto whole = binary_split(0, 24);
        EXPECT_EQ(merged.p, whole.p);
        EXPECT_EQ(merged.q, whole.q);
        EXPECT_EQ(merged.t, whole.t);
    }
}

TEST(PiIncremental, CacheOffArmIsColdEveryCall)
{
    GlobalCacheGuard guard(false);
    camp::apps::pi::PiCalculator calculator;
    const std::string first = calculator.digits(80);
    EXPECT_EQ(calculator.last_fresh_terms(),
              camp::apps::pi::terms_for_digits(80));
    const std::string second = calculator.digits(80);
    // No memo with the cache off: the full split re-ran.
    EXPECT_EQ(calculator.last_fresh_terms(),
              camp::apps::pi::terms_for_digits(80));
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, camp::apps::pi::compute_pi(80));
}

// ---------------------------------------------------------------------
// Incremental frac: orbit extension == cold, boundaries included
// ---------------------------------------------------------------------

namespace {

camp::apps::frac::FloatComplex
default_center(std::uint64_t precision_bits)
{
    camp::apps::frac::RenderParams params;
    return {camp::apps::frac::parse_decimal(params.center_re,
                                            precision_bits),
            camp::apps::frac::parse_decimal(params.center_im,
                                            precision_bits)};
}

} // namespace

TEST(FracIncremental, OrbitExtensionMatchesColdExactly)
{
    const auto c = default_center(160);
    camp::apps::frac::OrbitTracker tracker(c);
    // Grow, repeat (k = 0), shrink (prefix view), grow again.
    for (const unsigned target : {50u, 200u, 200u, 30u, 400u}) {
        SCOPED_TRACE("target " + std::to_string(target));
        const auto incremental = tracker.orbit(target);
        const auto cold =
            camp::apps::frac::reference_orbit(c, target);
        ASSERT_EQ(incremental.size(), cold.size());
        for (std::size_t i = 0; i < cold.size(); ++i) {
            ASSERT_EQ(incremental[i].real(), cold[i].real());
            ASSERT_EQ(incremental[i].imag(), cold[i].imag());
        }
    }
    // The shrink and repeat steps cost zero full-precision points.
    tracker.orbit(400);
    EXPECT_EQ(tracker.last_fresh_points(), 0u);
}

TEST(FracIncremental, EscapedOrbitStopsExtendingForever)
{
    // A center far outside the set escapes immediately; any larger
    // target must return the identical short orbit.
    const camp::apps::frac::FloatComplex c{
        camp::apps::frac::parse_decimal("2.5", 128),
        camp::apps::frac::parse_decimal("0.0", 128)};
    camp::apps::frac::OrbitTracker tracker(c);
    const auto first = tracker.orbit(10);
    EXPECT_TRUE(tracker.escaped());
    const auto more = tracker.orbit(1000);
    EXPECT_EQ(first.size(), more.size());
    EXPECT_EQ(tracker.last_fresh_points(), 0u);
    const auto cold = camp::apps::frac::reference_orbit(c, 1000);
    EXPECT_EQ(more.size(), cold.size());
}

TEST(FracIncremental, RenderSessionZoomSequenceMatchesColdRender)
{
    GlobalCacheGuard guard(true);
    camp::apps::frac::RenderSession session;
    camp::apps::frac::RenderParams params;
    params.width = 16;
    params.height = 12;
    params.precision_bits = 192;
    std::size_t cold_points = 0;
    for (const unsigned zoom_step : {0u, 1u, 2u, 3u}) {
        params.zoom_log2 = static_cast<int>(20 + 8 * zoom_step);
        params.max_iterations = 200 + 150 * zoom_step;
        SCOPED_TRACE("zoom " + std::to_string(params.zoom_log2));
        const auto incremental = session.render(params);
        const auto cold = camp::apps::frac::render(params);
        ASSERT_EQ(incremental.iterations, cold.iterations);
        ASSERT_EQ(incremental.checksum, cold.checksum);
        ASSERT_EQ(incremental.orbit_length, cold.orbit_length);
        if (zoom_step == 0)
            cold_points = session.last_fresh_points();
        else
            // Each deeper frame only iterated the new orbit tail.
            EXPECT_LT(session.last_fresh_points(), cold_points);
    }

    // A center change resets the session (no stale-orbit reuse).
    params.center_re = "-0.5";
    params.center_im = "0.0";
    const auto moved = session.render(params);
    const auto moved_cold = camp::apps::frac::render(params);
    EXPECT_EQ(moved.iterations, moved_cold.iterations);
}

// ---------------------------------------------------------------------
// Concurrency: hit/miss/evict from the thread pool (TSan target)
// ---------------------------------------------------------------------

TEST(OpCacheConcurrency, ParallelHitMissEvictStaysCoherent)
{
    const std::uint64_t seed = fuzz_seed(0x0cac8e20);
    SCOPED_TRACE("CAMP_FUZZ_SEED=" + std::to_string(seed));
    // Budget sized to force eviction churn while lookups race.
    OpCache cache(8 * 1024, true, 4, "opcache.test");
    constexpr unsigned kTasks = 16;
    constexpr int kOpsPerTask = 400;
    constexpr std::uint64_t kKeySpace = 64;
    std::atomic<std::uint64_t> wrong_payloads{0};

    camp::support::TaskGroup group;
    for (unsigned t = 0; t < kTasks; ++t) {
        group.run([&cache, &wrong_payloads, t, seed] {
            Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
            for (int i = 0; i < kOpsPerTask; ++i) {
                const std::uint64_t id = rng.below(kKeySpace);
                const OpKey key =
                    support::make_key(OpTag::Test, {id, id * 3});
                if (const auto hit = cache.lookup(key)) {
                    // Payload is a pure function of the key: any
                    // cross-key mixup is corruption.
                    if (hit->parts[0][0] != id * 31 ||
                        hit->scalars[0] != ((id * 31) ^ 0xabcdef))
                        wrong_payloads.fetch_add(1);
                } else {
                    cache.insert(key,
                                 test_value(id * 31, 1 + id % 32));
                }
            }
        });
    }
    group.wait();

    EXPECT_EQ(wrong_payloads.load(), 0u);
    const OpCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
    EXPECT_LE(stats.bytes, 8u * 1024u);
    EXPECT_GT(stats.evictions, 0u);
}

TEST(OpCacheConcurrency, ParallelDivisionSharesTheGlobalCache)
{
    const std::uint64_t seed = fuzz_seed(0x0cac8e21);
    SCOPED_TRACE("CAMP_FUZZ_SEED=" + std::to_string(seed));
    GlobalCacheGuard guard(true);
    Rng setup(seed);
    // A shared divisor pool: workers race miss-then-insert on the
    // same reciprocal keys, then verify exactness independently.
    std::vector<Natural> divisors;
    for (int i = 0; i < 6; ++i)
        divisors.push_back(random_odd(setup, 160 + setup.below(96)));

    std::atomic<std::uint64_t> mismatches{0};
    camp::support::TaskGroup group;
    for (unsigned t = 0; t < 8; ++t) {
        group.run([&divisors, &mismatches, t, seed] {
            Rng rng(seed + 1000 * (t + 1));
            for (int i = 0; i < 25; ++i) {
                const Natural& d = divisors[rng.below(divisors.size())];
                const Natural a = Natural::random_bits(rng, 640);
                const auto [q, r] = camp::mpn::divrem_newton(a, d);
                if (q * d + r != a || r >= d)
                    mismatches.fetch_add(1);
            }
        });
    }
    group.wait();
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_GT(OpCache::global().stats().hits, 0u);
}
