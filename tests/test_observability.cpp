/**
 * @file
 * Observability-layer tests: trace ring semantics (disabled/inert
 * spans, wrap-around, thread attribution, Chrome-JSON export) and the
 * metrics registry (stable references, counter/gauge/histogram
 * behavior cross-checked against a local model over >= 1000 randomized
 * operations, snapshot/table/json rendering, reset).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace trace = camp::support::trace;
namespace metrics = camp::support::metrics;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** RAII save/restore of the global tracing switch so tests cannot
 * leak state into each other. */
struct TraceEnabledGuard
{
    bool saved = trace::enabled();
    ~TraceEnabledGuard() { trace::set_enabled(saved); }
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
count_occurrences(const std::string& text, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST(Trace, DisabledSpanEmitsNothing)
{
    TraceEnabledGuard guard;
    trace::set_enabled(false);
    const std::uint64_t before = trace::total_emitted();
    {
        trace::Span span("test.off", "test");
        span.arg("x", 1.0);
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(trace::total_emitted(), before);
}

TEST(Trace, NullNameSpanIsInertEvenWhenEnabled)
{
    TraceEnabledGuard guard;
    trace::set_enabled(true);
    const std::uint64_t before = trace::total_emitted();
    {
        trace::Span span(nullptr, "test");
        span.arg("x", 1.0);
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(trace::total_emitted(), before);
    trace::set_enabled(false);
}

TEST(Trace, EnabledSpanRecordsAndExportsArgs)
{
    TraceEnabledGuard guard;
    trace::set_enabled(true);
    trace::reset();
    {
        trace::Span span("test.args", "testcat");
        EXPECT_TRUE(span.active());
        span.arg("bits", 1234.0);
        span.arg("count", 7.0);
        span.arg("dropped", 9.0); // beyond kMaxArgs: silently ignored
    }
    EXPECT_EQ(trace::total_emitted(), 1u);
    trace::set_enabled(false);

    const std::string path = "test_observability_args.json";
    ASSERT_TRUE(trace::write_json(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"test.args\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\": \"testcat\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"bits\": 1234"), std::string::npos);
    EXPECT_NE(text.find("\"count\": 7"), std::string::npos);
    EXPECT_EQ(text.find("dropped"), std::string::npos);
}

TEST(Trace, SpanDurationCoversEnclosedWork)
{
    TraceEnabledGuard guard;
    trace::set_enabled(true);
    trace::reset();
    {
        trace::Span span("test.timed", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    trace::set_enabled(false);
    const std::string path = "test_observability_timed.json";
    ASSERT_TRUE(trace::write_json(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());
    const std::size_t at = text.find("\"name\": \"test.timed\"");
    ASSERT_NE(at, std::string::npos);
    const std::size_t dur_at = text.find("\"dur\": ", at);
    ASSERT_NE(dur_at, std::string::npos);
    // ts/dur are microseconds; 5 ms of sleep is at least 4000 us.
    EXPECT_GE(std::strtod(text.c_str() + dur_at + 7, nullptr), 4000.0);
}

TEST(Trace, RingWrapKeepsMostRecentCapacityEvents)
{
    if (trace::capacity() > (1u << 20))
        GTEST_SKIP() << "CAMP_TRACE_BUF too large for the wrap sweep";
    TraceEnabledGuard guard;
    trace::set_enabled(true);
    trace::reset();
    const std::size_t extra = 500;
    const std::size_t total = trace::capacity() + extra;
    for (std::size_t i = 0; i < total; ++i) {
        trace::Span span("test.wrap", "test");
        span.arg("i", static_cast<double>(i));
    }
    EXPECT_EQ(trace::total_emitted(), total);
    trace::set_enabled(false);
    const std::string path = "test_observability_wrap.json";
    ASSERT_TRUE(trace::write_json(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());
    // Exactly capacity() events retained; the oldest `extra` were
    // overwritten, so the first retained index is `extra`.
    EXPECT_EQ(count_occurrences(text, "\"ph\": \"X\""),
              trace::capacity());
    EXPECT_EQ(text.find("\"i\": 0}"), std::string::npos);
    EXPECT_NE(text.find("\"i\": " + std::to_string(extra)),
              std::string::npos);
    trace::reset();
    EXPECT_EQ(trace::total_emitted(), 0u);
}

TEST(Trace, ThreadsGetDistinctOrdinals)
{
    TraceEnabledGuard guard;
    trace::set_enabled(true);
    trace::reset();
    {
        trace::Span span("test.tid", "test");
    }
    std::thread worker([] { trace::Span span("test.tid", "test"); });
    worker.join();
    trace::set_enabled(false);
    const std::string path = "test_observability_tid.json";
    ASSERT_TRUE(trace::write_json(path));
    const std::string text = slurp(path);
    std::remove(path.c_str());
    std::set<long> tids;
    for (std::size_t pos = text.find("\"tid\": ");
         pos != std::string::npos; pos = text.find("\"tid\": ", pos + 1))
        tids.insert(std::strtol(text.c_str() + pos + 7, nullptr, 10));
    EXPECT_GE(tids.size(), 2u);
    trace::reset();
}

TEST(Trace, WriteJsonFailsOnUnopenablePath)
{
    EXPECT_FALSE(
        trace::write_json("/nonexistent-dir-camp-test/out.json"));
}

TEST(Metrics, FindOrCreateReturnsStableReference)
{
    metrics::Counter& a = metrics::counter("test.stable.counter");
    metrics::Counter& b = metrics::counter("test.stable.counter");
    EXPECT_EQ(&a, &b);
    metrics::Gauge& g1 = metrics::gauge("test.stable.gauge");
    metrics::Gauge& g2 = metrics::gauge("test.stable.gauge");
    EXPECT_EQ(&g1, &g2);
    metrics::Histogram& h1 = metrics::histogram("test.stable.hist");
    metrics::Histogram& h2 = metrics::histogram("test.stable.hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(Metrics, FuzzAgainstLocalModel)
{
    // >= 1000 randomized operations applied simultaneously to the
    // registry metrics and to a plain local model; every aggregate
    // (counter value, gauge value, histogram buckets/count/sum/max)
    // must match exactly at the end.
    const std::uint64_t seed = fuzz_seed(0x0b5e12ull);
    camp::Rng rng(seed);
    metrics::Counter& counter = metrics::counter("test.fuzz.counter");
    metrics::Gauge& gauge = metrics::gauge("test.fuzz.gauge");
    metrics::Histogram& hist = metrics::histogram("test.fuzz.hist");
    counter.reset();
    gauge.reset();
    hist.reset();

    std::uint64_t model_counter = 0;
    std::int64_t model_gauge = 0;
    std::uint64_t model_buckets[metrics::Histogram::kBuckets] = {};
    std::uint64_t model_count = 0, model_sum = 0, model_max = 0;

    for (int iter = 0; iter < 1000; ++iter) {
        const std::uint64_t add = rng.below(1000);
        counter.add(add);
        model_counter += add;

        const std::int64_t gv =
            static_cast<std::int64_t>(rng.below(1u << 20)) - (1 << 19);
        if (rng.below(2) == 0) {
            gauge.set(gv);
            model_gauge = gv;
        } else {
            gauge.update_max(gv);
            model_gauge = std::max(model_gauge, gv);
        }

        // Mix tiny and huge samples so every bucket regime is hit.
        std::uint64_t v = rng.next() >> (rng.below(64));
        if (iter % 13 == 0)
            v = 0;
        hist.record(v);
        int b = 0;
        if (v > 0)
            b = std::min(64 - __builtin_clzll(v),
                         metrics::Histogram::kBuckets - 1);
        model_buckets[b] += 1;
        model_count += 1;
        model_sum += v;
        model_max = std::max(model_max, v);
    }

    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (replay: CAMP_FUZZ_SEED=<seed>)");
    EXPECT_EQ(counter.value(), model_counter);
    EXPECT_EQ(gauge.value(), model_gauge);
    EXPECT_EQ(hist.count(), model_count);
    EXPECT_EQ(hist.sum(), model_sum);
    EXPECT_EQ(hist.max(), model_max);
    for (int b = 0; b < metrics::Histogram::kBuckets; ++b)
        EXPECT_EQ(hist.bucket(b), model_buckets[b]) << "bucket " << b;
    const double expect_mean =
        model_count == 0
            ? 0.0
            : static_cast<double>(model_sum) /
                  static_cast<double>(model_count);
    EXPECT_DOUBLE_EQ(hist.mean(), expect_mean);
}

TEST(Metrics, HistogramBucketBoundaries)
{
    metrics::Histogram& hist =
        metrics::histogram("test.hist.boundaries");
    hist.reset();
    hist.record(0); // bucket 0
    hist.record(1); // bucket 1: [1, 2)
    hist.record(2); // bucket 2: [2, 4)
    hist.record(3); // bucket 2
    hist.record(4); // bucket 3: [4, 8)
    hist.record(~0ull); // clamped into the last bucket
    EXPECT_EQ(hist.bucket(0), 1u);
    EXPECT_EQ(hist.bucket(1), 1u);
    EXPECT_EQ(hist.bucket(2), 2u);
    EXPECT_EQ(hist.bucket(3), 1u);
    EXPECT_EQ(hist.bucket(metrics::Histogram::kBuckets - 1), 1u);
    EXPECT_EQ(hist.count(), 6u);
    EXPECT_EQ(hist.max(), ~0ull);
}

TEST(Metrics, SnapshotSortedAndRenderingFilters)
{
    metrics::counter("test.render.hits").add(3);
    metrics::counter("test.render.zero"); // registered, stays 0
    metrics::gauge("test.render.depth").set(11);
    metrics::histogram("test.render.sizes").record(100);

    const std::vector<metrics::SnapshotEntry> snap =
        metrics::Registry::instance().snapshot();
    EXPECT_TRUE(std::is_sorted(
        snap.begin(), snap.end(),
        [](const auto& a, const auto& b) { return a.name < b.name; }));
    const auto has = [&](const std::string& name) {
        return std::any_of(snap.begin(), snap.end(), [&](const auto& e) {
            return e.name == name;
        });
    };
    EXPECT_TRUE(has("test.render.hits"));
    EXPECT_TRUE(has("test.render.zero"));

    const std::string table =
        metrics::Registry::instance().render_table("test.render.");
    EXPECT_NE(table.find("test.render.hits"), std::string::npos);
    EXPECT_NE(table.find("test.render.depth"), std::string::npos);
    EXPECT_EQ(table.find("test.render.zero"), std::string::npos);
    const std::string full = metrics::Registry::instance().render_table(
        "test.render.", /*include_zero=*/true);
    EXPECT_NE(full.find("test.render.zero"), std::string::npos);

    const std::string json = metrics::Registry::instance().to_json();
    EXPECT_NE(json.find("\"test.render.hits\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.render.sizes\""), std::string::npos);
}

TEST(Metrics, RegistryResetZeroesButKeepsReferences)
{
    metrics::Counter& c = metrics::counter("test.reset.counter");
    metrics::Gauge& g = metrics::gauge("test.reset.gauge");
    metrics::Histogram& h = metrics::histogram("test.reset.hist");
    c.add(5);
    g.set(9);
    h.record(42);
    metrics::Registry::instance().reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    c.add(2); // references stay live after reset
    EXPECT_EQ(metrics::counter("test.reset.counter").value(), 2u);
}
