/**
 * @file
 * Negative-path coverage for the documented throw sites across the
 * number-type stack, plus the typed error taxonomy of
 * support/errors.hpp. Every public-API contract violation must throw
 * the documented type (std::invalid_argument family) and leave no
 * aborted state behind.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "mpf/float.hpp"
#include "mpn/mont.hpp"
#include "mpn/natural.hpp"
#include "mpn/ophook.hpp"
#include "mpn/newton.hpp"
#include "mpq/rational.hpp"
#include "mpz/integer.hpp"
#include "support/errors.hpp"

using camp::mpf::Float;
using camp::mpn::MontCtx;
using camp::mpn::Natural;
using camp::mpq::Rational;
using camp::mpz::Integer;

TEST(ErrorTaxonomy, CodesAndHierarchy)
{
    EXPECT_STREQ(camp::error_code_name(camp::ErrorCode::HardwareFault),
                 "HardwareFault");
    EXPECT_STREQ(camp::error_code_name(camp::ErrorCode::ConfigError),
                 "ConfigError");

    // Typed errors are catchable via the shared base with their code.
    try {
        throw camp::HardwareFault("ipu bit flip");
    } catch (const camp::Error& e) {
        EXPECT_EQ(e.code(), camp::ErrorCode::HardwareFault);
        EXPECT_STREQ(e.what(), "ipu bit flip");
    }
    try {
        throw camp::ConfigError("zero PEs");
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "zero PEs");
    }
    // InvalidArgument stays compatible with the documented throw type.
    try {
        throw camp::InvalidArgument("bad operand");
    } catch (const std::invalid_argument& e) {
        EXPECT_STREQ(e.what(), "bad operand");
    }
    try {
        throw camp::ResourceExhausted("retry budget");
    } catch (const camp::Error& e) {
        EXPECT_EQ(e.code(), camp::ErrorCode::ResourceExhausted);
    }
}

TEST(ErrorTaxonomy, ServingCodesAndRetryability)
{
    EXPECT_STREQ(
        camp::error_code_name(camp::ErrorCode::DeadlineExceeded),
        "DeadlineExceeded");
    EXPECT_STREQ(camp::error_code_name(camp::ErrorCode::Unavailable),
                 "Unavailable");
    EXPECT_STREQ(camp::error_code_name(camp::ErrorCode::Internal),
                 "Internal");

    // Only transient conditions are retryable.
    EXPECT_TRUE(camp::error_retryable(camp::ErrorCode::HardwareFault));
    EXPECT_TRUE(camp::error_retryable(camp::ErrorCode::Unavailable));
    EXPECT_FALSE(
        camp::error_retryable(camp::ErrorCode::InvalidArgument));
    EXPECT_FALSE(
        camp::error_retryable(camp::ErrorCode::DeadlineExceeded));
    EXPECT_FALSE(
        camp::error_retryable(camp::ErrorCode::ResourceExhausted));

    try {
        throw camp::Unavailable("queue full", 1500);
    } catch (const camp::Unavailable& e) {
        EXPECT_EQ(e.code(), camp::ErrorCode::Unavailable);
        EXPECT_EQ(e.retry_after_us(), 1500u);
    }
    try {
        throw camp::DeadlineExceeded("too slow");
    } catch (const camp::Error& e) {
        EXPECT_EQ(e.code(), camp::ErrorCode::DeadlineExceeded);
    }
}

TEST(ErrorTaxonomy, MarshallingRoundTrip)
{
    // error_code_of classifies any exception; throw_error is its
    // inverse for queue waiters rethrowing a marshalled failure.
    EXPECT_EQ(camp::error_code_of(camp::HardwareFault("x")),
              camp::ErrorCode::HardwareFault);
    EXPECT_EQ(camp::error_code_of(camp::InvalidArgument("x")),
              camp::ErrorCode::InvalidArgument);
    EXPECT_EQ(camp::error_code_of(std::invalid_argument("x")),
              camp::ErrorCode::InvalidArgument);
    EXPECT_EQ(camp::error_code_of(std::runtime_error("x")),
              camp::ErrorCode::Internal);

    EXPECT_THROW(
        camp::throw_error(camp::ErrorCode::HardwareFault, "m"),
        camp::HardwareFault);
    EXPECT_THROW(
        camp::throw_error(camp::ErrorCode::InvalidArgument, "m"),
        camp::InvalidArgument);
    EXPECT_THROW(
        camp::throw_error(camp::ErrorCode::DeadlineExceeded, "m"),
        camp::DeadlineExceeded);
    EXPECT_THROW(camp::throw_error(camp::ErrorCode::Unavailable, "m"),
                 camp::Unavailable);
    EXPECT_THROW(camp::throw_error(camp::ErrorCode::Internal, "m"),
                 camp::Error);
    // The round trip preserves category and message.
    try {
        camp::throw_error(
            camp::error_code_of(camp::ResourceExhausted("budget")),
            "budget");
    } catch (const camp::Error& e) {
        EXPECT_EQ(e.code(), camp::ErrorCode::ResourceExhausted);
        EXPECT_STREQ(e.what(), "budget");
    }
}

TEST(NaturalNegativePaths, SubtractionUnderflow)
{
    EXPECT_THROW(Natural(3) - Natural(5), std::invalid_argument);
    EXPECT_THROW(Natural() - Natural(1), std::invalid_argument);
    const Natural big = Natural(1) << 1000;
    EXPECT_THROW(big - (big + Natural(1)), std::invalid_argument);
    // a - a is fine and must still work after a failed attempt.
    Natural a(42);
    EXPECT_THROW(a - Natural(43), std::invalid_argument);
    EXPECT_TRUE((a - a).is_zero());
}

TEST(NaturalNegativePaths, DivisionByZero)
{
    EXPECT_THROW(Natural(5) / Natural(), std::invalid_argument);
    EXPECT_THROW(Natural(5) % Natural(), std::invalid_argument);
    EXPECT_THROW(Natural::divrem(Natural(5), Natural()),
                 std::invalid_argument);
    EXPECT_THROW(camp::mpn::newton_reciprocal(Natural(), 64),
                 std::invalid_argument);
    EXPECT_THROW(camp::mpn::divrem_newton(Natural(9), Natural()),
                 std::invalid_argument);
}

TEST(RationalNegativePaths, ZeroDenominator)
{
    EXPECT_THROW(Rational(Integer(1), Natural(0)),
                 std::invalid_argument);
    EXPECT_THROW(Rational(7) / Rational(0), std::invalid_argument);
}

TEST(IntegerNegativePaths, InvmodNonInvertibleAndZeroModulus)
{
    // gcd(6, 9) = 3: not invertible.
    EXPECT_THROW(Integer::invmod(Natural(6), Natural(9)),
                 std::invalid_argument);
    EXPECT_THROW(Integer::invmod(Natural(4), Natural(8)),
                 std::invalid_argument);
    EXPECT_THROW(Integer::invmod(Natural(5), Natural(0)),
                 std::invalid_argument);
    EXPECT_THROW(Integer::powmod(Natural(2), Natural(10), Natural(0)),
                 std::invalid_argument);
    // The invertible neighbour still works afterwards.
    const Natural inv = Integer::invmod(Natural(5), Natural(9));
    EXPECT_EQ((Natural(5) * inv) % Natural(9), Natural(1));
}

TEST(FloatNegativePaths, SqrtOfNegativeAndDivisionByZero)
{
    EXPECT_THROW(Float::sqrt(Float::from_double(-1.0, 64)),
                 std::invalid_argument);
    EXPECT_THROW(Float::sqrt(Float::from_double(-1e300, 128)),
                 std::invalid_argument);
    EXPECT_THROW(Float::from_double(1.0, 64) /
                     Float::from_double(0.0, 64),
                 std::invalid_argument);
    // sqrt(+x) still works after the failed calls.
    const Float four = Float::from_double(4.0, 64);
    EXPECT_DOUBLE_EQ(Float::sqrt(four).to_double(), 2.0);
}

TEST(MontNegativePaths, EvenModulusRejected)
{
    const camp::mpn::Limb even[1] = {10};
    EXPECT_THROW(MontCtx(even, 1), std::invalid_argument);
    const camp::mpn::Limb zero[1] = {0};
    EXPECT_THROW(MontCtx(zero, 1), std::invalid_argument);
    // Odd modulus constructs fine.
    const camp::mpn::Limb odd[1] = {9};
    EXPECT_NO_THROW(MontCtx(odd, 1));
}

TEST(ParseNegativePaths, MalformedStringsRejected)
{
    EXPECT_THROW(Natural::from_decimal(""), std::invalid_argument);
    EXPECT_THROW(Natural::from_decimal("12x3"), std::invalid_argument);
    EXPECT_THROW(Natural::from_hex(""), std::invalid_argument);
    EXPECT_THROW(Natural::from_hex("g0"), std::invalid_argument);
    EXPECT_THROW(Integer::from_decimal(""), std::invalid_argument);
}

TEST(OpHookNegativePaths, RegistrationBeyondTableThrows)
{
    // The hook table holds four entries; a fifth registration must be
    // rejected loudly (it used to be a debug-only assert, i.e. a
    // silent out-of-bounds write in release builds). The table must
    // stay fully usable afterwards.
    struct NullHook : camp::mpn::OpHook
    {
        void on_enter(camp::mpn::OpKind, std::uint64_t,
                      std::uint64_t) override
        {
        }
        void on_exit(camp::mpn::OpKind) override {}
    };
    NullHook hooks[5];
    for (int i = 0; i < 4; ++i)
        ASSERT_NO_THROW(camp::mpn::add_op_hook(&hooks[i]));
    EXPECT_THROW(camp::mpn::add_op_hook(&hooks[4]),
                 camp::ResourceExhausted);
    try {
        camp::mpn::add_op_hook(&hooks[4]);
    } catch (const camp::Error& e) {
        EXPECT_EQ(e.code(), camp::ErrorCode::ResourceExhausted);
    }
    for (int i = 0; i < 4; ++i)
        camp::mpn::remove_op_hook(&hooks[i]);
    EXPECT_FALSE(camp::mpn::op_hooks_active());
    // A freed slot accepts a new registration.
    ASSERT_NO_THROW(camp::mpn::add_op_hook(&hooks[4]));
    camp::mpn::remove_op_hook(&hooks[4]);
}
