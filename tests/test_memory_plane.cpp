/**
 * @file
 * Memory-plane tests (DESIGN.md §14): LimbArena invariants (alignment,
 * size-class reuse, magazine flush, byte-budget exhaustion, accounting)
 * plus the WaveBuffer lifetime rules, and the differential
 * lifetime/aliasing fuzz — wave construction, in-place reuse, early
 * release, and shard redistribution interleaved while asserting the
 * zero-copy wave path bit-identical to the copying batch path on every
 * backend. Replay any failure with CAMP_FUZZ_SEED.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "exec/cpu_device.hpp"
#include "exec/queue.hpp"
#include "exec/scheduler.hpp"
#include "exec/sim_device.hpp"
#include "exec/wave.hpp"
#include "mpn/natural.hpp"
#include "mpn/view.hpp"
#include "support/arena.hpp"
#include "support/errors.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace exec = camp::exec;
namespace sim = camp::sim;
namespace support = camp::support;
namespace metrics = camp::support::metrics;
using camp::mpn::LimbView;
using camp::mpn::Natural;
using support::ArenaOptions;
using support::LimbArena;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

exec::ShardPolicy
never_drain(unsigned shards)
{
    exec::ShardPolicy policy;
    policy.shards = shards;
    policy.drain_fault_threshold = 0;
    return policy;
}

} // namespace

// ---------------------------------------------------------------------
// LimbArena invariants
// ---------------------------------------------------------------------

TEST(LimbArena, BlocksAreCacheLineAlignedAcrossClasses)
{
    LimbArena arena;
    std::vector<std::pair<std::uint64_t*, std::size_t>> blocks;
    for (const std::size_t words :
         {std::size_t{0}, std::size_t{1}, std::size_t{8},
          std::size_t{9}, std::size_t{100}, std::size_t{4096},
          LimbArena::kMaxClassWords, LimbArena::kMaxClassWords + 1}) {
        std::uint64_t* p = arena.alloc(words);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u)
            << "words=" << words;
        // The block is writable over the whole class capacity.
        const std::size_t cap = LimbArena::size_class_words(words);
        p[0] = 1;
        p[cap - 1] = 2;
        blocks.emplace_back(p, words);
    }
    for (auto& [p, words] : blocks)
        arena.release(p, words);
    const support::ArenaStats stats = arena.stats();
    EXPECT_EQ(stats.allocs, blocks.size());
    EXPECT_EQ(stats.releases, blocks.size());
    EXPECT_EQ(stats.oversize_allocs, 1u);
}

TEST(LimbArena, SizeClassesArePowersOfTwoWithinBounds)
{
    EXPECT_EQ(LimbArena::size_class_words(0), LimbArena::kMinClassWords);
    EXPECT_EQ(LimbArena::size_class_words(1), LimbArena::kMinClassWords);
    EXPECT_EQ(LimbArena::size_class_words(8), 8u);
    EXPECT_EQ(LimbArena::size_class_words(9), 16u);
    EXPECT_EQ(LimbArena::size_class_words(1000), 1024u);
    EXPECT_EQ(LimbArena::size_class_words(LimbArena::kMaxClassWords),
              LimbArena::kMaxClassWords);
    // Oversize passes through exactly.
    EXPECT_EQ(LimbArena::size_class_words(LimbArena::kMaxClassWords + 5),
              LimbArena::kMaxClassWords + 5);
}

TEST(LimbArena, MagazineServesSameClassLifo)
{
    LimbArena arena;
    std::uint64_t* a = arena.alloc(10); // class: 16 words
    arena.release(a, 10);
    // Same class, different word count: the magazine's LIFO top.
    std::uint64_t* b = arena.alloc(16);
    EXPECT_EQ(a, b);
    arena.release(b, 16);
    const support::ArenaStats stats = arena.stats();
    EXPECT_GE(stats.magazine_hits, 1u);
}

TEST(LimbArena, FullMagazineFlushesToDepot)
{
    ArenaOptions options;
    options.magazine_cap = 2;
    LimbArena arena(options);
    std::vector<std::uint64_t*> blocks;
    for (int i = 0; i < 6; ++i)
        blocks.push_back(arena.alloc(8));
    for (std::uint64_t* p : blocks)
        arena.release(p, 8);
    const support::ArenaStats stats = arena.stats();
    EXPECT_GE(stats.magazine_flushes, 1u);
    EXPECT_EQ(stats.live_bytes, 0u);
    // Everything flushed is servable again — through depot or magazine.
    std::uint64_t* again = arena.alloc(8);
    EXPECT_NE(again, nullptr);
    arena.release(again, 8);
}

TEST(LimbArena, ZeroMagazineCapAlwaysUsesDepot)
{
    ArenaOptions options;
    options.magazine_cap = 0;
    LimbArena arena(options);
    std::uint64_t* a = arena.alloc(8);
    arena.release(a, 8);
    std::uint64_t* b = arena.alloc(8);
    arena.release(b, 8);
    const support::ArenaStats stats = arena.stats();
    EXPECT_EQ(stats.magazine_hits, 0u);
    EXPECT_GE(stats.depot_hits, 1u);
}

TEST(LimbArena, BudgetExhaustionThrowsBeforeMutationAndRecovers)
{
    ArenaOptions options;
    options.max_bytes = std::size_t{1} << 20; // one 2^17-word block
    LimbArena arena(options);
    std::uint64_t* big = arena.alloc(std::size_t{1} << 17);
    ASSERT_NE(big, nullptr);
    const support::ArenaStats before = arena.stats();
    EXPECT_THROW(arena.alloc(std::size_t{1} << 17),
                 camp::ResourceExhausted);
    // The failed request mutated nothing.
    const support::ArenaStats after = arena.stats();
    EXPECT_EQ(after.slab_bytes, before.slab_bytes);
    EXPECT_EQ(after.live_bytes, before.live_bytes);
    // Freed capacity is immediately reusable within the same budget.
    arena.release(big, std::size_t{1} << 17);
    std::uint64_t* again = arena.alloc(std::size_t{1} << 17);
    EXPECT_NE(again, nullptr);
    arena.release(again, std::size_t{1} << 17);
}

TEST(LimbArena, OversizeRequestsRespectBudgetToo)
{
    ArenaOptions options;
    options.max_bytes = 1 << 16; // far below one oversize block
    LimbArena arena(options);
    EXPECT_THROW(arena.alloc(LimbArena::kMaxClassWords + 1),
                 camp::ResourceExhausted);
    // Small allocations still fit.
    std::uint64_t* p = arena.alloc(8);
    EXPECT_NE(p, nullptr);
    arena.release(p, 8);
}

TEST(LimbArena, HighWaterTracksPeakLiveBytes)
{
    LimbArena arena;
    std::uint64_t* a = arena.alloc(64);
    std::uint64_t* b = arena.alloc(64);
    const support::ArenaStats peak = arena.stats();
    EXPECT_EQ(peak.live_bytes, 2 * 64 * sizeof(std::uint64_t));
    EXPECT_EQ(peak.high_water_bytes, peak.live_bytes);
    arena.release(a, 64);
    arena.release(b, 64);
    const support::ArenaStats after = arena.stats();
    EXPECT_EQ(after.live_bytes, 0u);
    EXPECT_EQ(after.high_water_bytes, peak.high_water_bytes);
}

TEST(LimbArena, FlushThreadCacheSpillsMagazines)
{
    LimbArena arena;
    std::uint64_t* p = arena.alloc(8);
    arena.release(p, 8);
    arena.flush_thread_cache();
    // After the spill the next alloc is a depot hit, not a magazine
    // hit.
    const std::uint64_t magazine_before = arena.stats().magazine_hits;
    std::uint64_t* q = arena.alloc(8);
    EXPECT_EQ(arena.stats().magazine_hits, magazine_before);
    EXPECT_GE(arena.stats().depot_hits, 1u);
    arena.release(q, 8);
}

TEST(LimbArena, GlobalArenaPublishesMetrics)
{
    const std::uint64_t before =
        metrics::counter("arena.alloc.count").value();
    std::uint64_t* p = LimbArena::global().alloc(32);
    LimbArena::global().release(p, 32);
    EXPECT_GE(metrics::counter("arena.alloc.count").value(),
              before + 1);
}

// ---------------------------------------------------------------------
// WaveBuffer lifetime rules
// ---------------------------------------------------------------------

TEST(WaveBuffer, RoundTripsOperandsAndResults)
{
    camp::Rng rng(fuzz_seed(0x3a11));
    exec::WaveBuffer wave;
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 16; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 1 + rng.below(700)),
                           Natural::random_bits(rng, 1 + rng.below(700)));
    for (const auto& [a, b] : pairs) {
        const std::size_t item = wave.add(a, b);
        EXPECT_EQ(wave.operand_a(item), LimbView(a));
        EXPECT_EQ(wave.operand_b(item), LimbView(b));
    }
    exec::CpuDevice cpu;
    std::vector<std::size_t> items(pairs.size());
    std::vector<std::uint64_t> indices(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        items[i] = i;
        indices[i] = i;
    }
    const sim::BatchResult result =
        cpu.mul_batch_wave(wave, items, indices, 1);
    EXPECT_TRUE(result.products.empty());
    ASSERT_EQ(result.per_product.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(wave.take_result(i),
                  pairs[i].first * pairs[i].second)
            << "item " << i;
}

TEST(WaveBuffer, ZeroOperandsNeedNoResultStorage)
{
    exec::WaveBuffer wave;
    const Natural seven(7);
    const std::size_t z1 = wave.add(Natural(), seven);
    const std::size_t z2 = wave.add(seven, Natural());
    const std::size_t z3 = wave.add(Natural(), Natural());
    for (const std::size_t item : {z1, z2, z3}) {
        EXPECT_EQ(wave.result_ptr(item), nullptr);
        EXPECT_EQ(wave.result_capacity(item), 0u);
        wave.set_result_size(item, 0);
        EXPECT_TRUE(wave.take_result(item).is_zero());
    }
}

TEST(WaveBuffer, AliasedOperandsSquareCorrectly)
{
    camp::Rng rng(fuzz_seed(0xa11a5));
    exec::WaveBuffer wave;
    const Natural a = Natural::random_bits(rng, 900);
    const std::size_t item = wave.add(a, a);
    exec::CpuDevice cpu;
    cpu.mul_batch_wave(wave, {item}, {0}, 1);
    EXPECT_EQ(wave.take_result(item), a * a);
}

TEST(WaveBuffer, ResetRecyclesSegmentsAndBumpsGeneration)
{
    camp::Rng rng(fuzz_seed(0x5e9));
    exec::WaveBuffer wave;
    const std::uint64_t generation = wave.generation();
    for (int i = 0; i < 8; ++i)
        wave.add(Natural::random_bits(rng, 512),
                 Natural::random_bits(rng, 512));
    const std::size_t warm = wave.capacity_words();
    EXPECT_GT(warm, 0u);
    wave.reset();
    EXPECT_EQ(wave.size(), 0u);
    EXPECT_EQ(wave.generation(), generation + 1);
    // Same-shape refill reuses the warm segments: no capacity growth.
    for (int i = 0; i < 8; ++i)
        wave.add(Natural::random_bits(rng, 512),
                 Natural::random_bits(rng, 512));
    EXPECT_EQ(wave.capacity_words(), warm);
}

TEST(WaveBuffer, ReleaseReturnsStorageAndStaysUsable)
{
    camp::Rng rng(fuzz_seed(0x9e1ea5e));
    LimbArena arena;
    exec::WaveBuffer wave(arena);
    wave.add(Natural::random_bits(rng, 2048),
             Natural::random_bits(rng, 2048));
    EXPECT_GT(wave.capacity_words(), 0u);
    EXPECT_GT(arena.stats().live_bytes, 0u);
    wave.release();
    EXPECT_EQ(wave.capacity_words(), 0u);
    EXPECT_EQ(arena.stats().live_bytes, 0u);
    // A released buffer re-acquires on the next wave.
    const std::size_t item = wave.add(Natural(3), Natural(5));
    exec::CpuDevice cpu;
    cpu.mul_batch_wave(wave, {item}, {0}, 1);
    EXPECT_EQ(wave.take_result(item), Natural(15));
}

TEST(WaveBuffer, SteadyStateWaveExecutionAllocatesNoProductBuffers)
{
    camp::Rng rng(fuzz_seed(0xa110c));
    exec::CpuDevice cpu;
    exec::WaveBuffer wave;
    std::vector<std::size_t> items;
    std::vector<std::uint64_t> indices;
    for (int round = 0; round < 3; ++round) {
        items.clear();
        indices.clear();
        for (int i = 0; i < 64; ++i) {
            items.push_back(
                wave.add(Natural::random_bits(rng, 2048),
                         Natural::random_bits(rng, 2048)));
            indices.push_back(static_cast<std::uint64_t>(i));
        }
        const std::uint64_t before =
            metrics::counter("mpn.alloc.count").value();
        cpu.mul_batch_wave(wave, items, indices);
        // The whole point of the memory plane: executing a wave
        // performs zero product-buffer allocations (the copying path
        // pays one per product).
        EXPECT_EQ(metrics::counter("mpn.alloc.count").value(), before);
        wave.reset();
    }
}

// ---------------------------------------------------------------------
// Queue delivery path
// ---------------------------------------------------------------------

TEST(MemoryPlaneQueue, PooledWavesResolveExactProducts)
{
    camp::Rng rng(fuzz_seed(0x90b5));
    exec::CpuDevice cpu;
    exec::SubmitQueue queue(cpu);
    for (int round = 0; round < 4; ++round) {
        std::vector<std::pair<Natural, Natural>> pairs;
        std::vector<exec::SubmitQueue::Future> futures;
        for (int i = 0; i < 12; ++i) {
            pairs.emplace_back(
                Natural::random_bits(rng, 1 + rng.below(1024)),
                Natural::random_bits(rng, 1 + rng.below(1024)));
            futures.push_back(
                queue.submit(pairs.back().first, pairs.back().second));
        }
        queue.flush();
        for (std::size_t i = 0; i < futures.size(); ++i)
            EXPECT_EQ(futures[i].get(),
                      pairs[i].first * pairs[i].second);
    }
    EXPECT_EQ(queue.stats().flushes, 4u);
}

// ---------------------------------------------------------------------
// Differential lifetime/aliasing fuzz: zero-copy vs copying path
// ---------------------------------------------------------------------

namespace {

struct FuzzBackend
{
    const char* name;
    std::unique_ptr<exec::Device> device;
};

std::vector<FuzzBackend>
fuzz_backends()
{
    std::vector<FuzzBackend> backends;
    backends.push_back({"cpu", std::make_unique<exec::CpuDevice>()});
    backends.push_back({"sim", std::make_unique<exec::SimDevice>()});
    backends.push_back(
        {"sharded1", std::make_unique<exec::ShardedScheduler>(
                         sim::default_config(), never_drain(1))});
    backends.push_back(
        {"sharded4", std::make_unique<exec::ShardedScheduler>(
                         sim::default_config(), never_drain(4))});
    return backends;
}

/** One random wave mixing the aliasing/lifetime shapes: zero and
 * one-limb operands, self-aliased squares, duplicated pairs, and a
 * spread of widths. */
std::vector<std::pair<Natural, Natural>>
random_wave(camp::Rng& rng)
{
    const std::size_t count = 1 + rng.below(6);
    std::vector<std::pair<Natural, Natural>> pairs;
    pairs.reserve(count + 1);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t shape = rng.below(100);
        if (shape < 8) {
            pairs.emplace_back(Natural(),
                               Natural::random_bits(rng, 200));
            continue;
        }
        if (shape < 16) {
            const Natural a =
                Natural::random_bits(rng, 1 + rng.below(1200));
            pairs.emplace_back(a, a); // aliased square
            continue;
        }
        std::uint64_t bits_a = 1 + rng.below(1536);
        std::uint64_t bits_b = 1 + rng.below(1536);
        if (shape < 24)
            bits_a = 1 + rng.below(64); // one-limb operand
        pairs.emplace_back(Natural::random_bits(rng, bits_a),
                           Natural::random_bits(rng, bits_b));
    }
    if (pairs.size() > 1 && rng.below(3) == 0)
        pairs.push_back(pairs.front()); // duplicated pair
    return pairs;
}

} // namespace

TEST(MemoryPlaneFuzz, WavePathBitIdenticalToCopyingPathAllBackends)
{
    const std::uint64_t seed = fuzz_seed(0x77aef1ull);
    for (FuzzBackend& backend : fuzz_backends()) {
        SCOPED_TRACE(std::string("backend=") + backend.name +
                     " seed=" + std::to_string(seed));
        camp::Rng rng(seed);
        // Several live wave buffers: waves interleave construction,
        // reuse, and early release without disturbing each other.
        constexpr std::size_t kWaves = 3;
        exec::WaveBuffer waves[kWaves];
        for (int iter = 0; iter < 250; ++iter) {
            exec::WaveBuffer& wave = waves[iter % kWaves];
            const auto pairs = random_wave(rng);
            std::vector<std::size_t> items;
            std::vector<std::uint64_t> indices;
            items.reserve(pairs.size());
            indices.reserve(pairs.size());
            for (const auto& [a, b] : pairs)
                items.push_back(wave.add(a, b));
            // Wave-global fault-seed indices: occasionally offset to
            // prove index plumbing (fault-free config: accounting
            // only, but the plumbing must agree between paths).
            const std::uint64_t base = rng.below(1000);
            for (std::size_t i = 0; i < pairs.size(); ++i)
                indices.push_back(base + i);
            const unsigned parallelism =
                rng.below(2) == 0 ? 0u : 1u;

            const sim::BatchResult ref = backend.device->
                mul_batch_indexed(pairs, indices, parallelism);
            const sim::BatchResult got = backend.device->mul_batch_wave(
                wave, items, indices, parallelism);

            EXPECT_TRUE(got.products.empty());
            ASSERT_EQ(ref.products.size(), pairs.size());
            ASSERT_EQ(got.per_product.size(), pairs.size());
            for (std::size_t i = 0; i < pairs.size(); ++i) {
                EXPECT_EQ(wave.result(items[i]),
                          LimbView(ref.products[i]))
                    << "iter " << iter << " item " << i;
                EXPECT_TRUE(got.per_product[i] == ref.per_product[i])
                    << "iter " << iter << " item " << i;
            }
            EXPECT_EQ(got.tasks, ref.tasks);
            EXPECT_EQ(got.faulty, ref.faulty);

            // Lifetime interleave: recycle, early-release, or keep the
            // buffer warm for the next round-robin pass.
            const std::uint64_t fate = rng.below(10);
            if (fate < 7)
                wave.reset();
            else if (fate < 9)
                wave.release();
            else {
                wave.reset();
                // Early release of a *different* live buffer: wave
                // lifetimes are independent.
                waves[(iter + 1) % kWaves].release();
            }
        }
    }
}

TEST(MemoryPlaneFuzz, SchedulerWaveRedistributionRecoversExactly)
{
    // One shard's batch fabric dies mid-wave: the scheduler drains it
    // and recovers every product into the wave exactly.
    const std::uint64_t seed = fuzz_seed(0xd7a1d);
    camp::Rng rng(seed);

    class ThrowingBatchDevice : public exec::Device
    {
      public:
        const char* name() const override { return "throwing"; }
        exec::DeviceKind kind() const override
        {
            return exec::DeviceKind::Accelerator;
        }
        std::uint64_t base_cap_bits() const override { return 0; }
        exec::MulOutcome mul(const Natural& a,
                             const Natural& b) override
        {
            return exec::MulOutcome{a * b, 0};
        }
        sim::BatchResult
        mul_batch(const std::vector<std::pair<Natural, Natural>>&,
                  unsigned) override
        {
            throw camp::HardwareFault("batch fabric offline");
        }
        exec::CostEstimate cost(std::uint64_t,
                                std::uint64_t) const override
        {
            return {};
        }
    };

    std::vector<std::unique_ptr<exec::Device>> devices;
    devices.push_back(std::make_unique<exec::CpuDevice>());
    devices.push_back(std::make_unique<ThrowingBatchDevice>());
    exec::ShardPolicy policy;
    exec::ShardedScheduler scheduler(std::move(devices), policy);

    exec::WaveBuffer wave;
    std::vector<std::pair<Natural, Natural>> pairs;
    std::vector<std::size_t> items;
    std::vector<std::uint64_t> indices;
    for (int i = 0; i < 24; ++i) {
        pairs.emplace_back(
            Natural::random_bits(rng, 1 + rng.below(1024)),
            Natural::random_bits(rng, 1 + rng.below(1024)));
        items.push_back(wave.add(pairs.back().first,
                                 pairs.back().second));
        indices.push_back(static_cast<std::uint64_t>(i));
    }
    scheduler.mul_batch_wave(wave, items, indices);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(wave.take_result(items[i]),
                  pairs[i].first * pairs[i].second)
            << "item " << i;
    // The sick shard drained; the survivor carries the next wave.
    EXPECT_EQ(scheduler.alive_count(), 1u);
    EXPECT_GE(scheduler.stats().redistributed, 1u);
    wave.reset();
    const std::size_t item = wave.add(pairs[0].first, pairs[0].second);
    scheduler.mul_batch_wave(wave, {item}, {0});
    EXPECT_EQ(wave.take_result(item),
              pairs[0].first * pairs[0].second);
}
