/**
 * @file
 * Serving-layer acceptance suite: workload replay determinism,
 * deterministic priority-ordered load-shedding, deadline enforcement
 * (admission / dispatch / late completion), the typed-error retry
 * policy with per-tenant budgets, circuit-breaker quarantine and
 * recovery, shard-count invariance of the full serve outcome, exact
 * conservation accounting under armed fault injection, and thread-safe
 * Ledger fault-stats folding.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/cpu_device.hpp"
#include "exec/scheduler.hpp"
#include "exec/sim_device.hpp"
#include "mpapca/cost_model.hpp"
#include "mpapca/ledger.hpp"
#include "mpn/natural.hpp"
#include "serve/breaker.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "support/errors.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace exec = camp::exec;
namespace serve = camp::serve;
namespace sim = camp::sim;
using camp::mpn::Natural;

namespace {

/** Effective fuzz seed: CAMP_FUZZ_SEED when set, else the per-test
 * default. Failures print it for exact replay. */
std::uint64_t
fuzz_seed(std::uint64_t fallback)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env)
            return seed;
    }
    return fallback;
}

/** Device whose batch products come back corrupted *and flagged* for
 * the first @p sick_batches batches, exact afterwards — the breaker's
 * detection signal, shaped like an armed SimDevice run. */
class FaultyBatchDevice : public exec::Device
{
  public:
    explicit FaultyBatchDevice(unsigned sick_batches)
        : sick_remaining_(sick_batches)
    {
    }

    const char* name() const override { return "faulty-batch"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural& a, const Natural& b) override
    {
        return exec::MulOutcome{a * b, 0};
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              unsigned) override
    {
        sim::BatchResult result;
        result.per_product.resize(pairs.size());
        const bool sick = sick_remaining_ > 0;
        if (sick)
            --sick_remaining_;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            Natural product = pairs[i].first * pairs[i].second;
            if (sick) {
                product = product + Natural(1);
                result.per_product[i].faulty = true;
                result.per_product[i].injected = 1;
                ++result.faulty;
                ++result.injected;
            }
            result.products.push_back(std::move(product));
        }
        return result;
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return {};
    }

    void heal() { sick_remaining_ = 0; }
    unsigned batches() const { return batches_; }

  private:
    unsigned sick_remaining_;
    unsigned batches_ = 0;
};

/** Device whose batch path throws for the first @p throws batches,
 * then heals and computes exactly. */
class HealingThrowDevice : public exec::Device
{
  public:
    HealingThrowDevice(std::function<void()> thrower, unsigned throws)
        : thrower_(std::move(thrower)), throw_remaining_(throws)
    {
    }

    const char* name() const override { return "healing-throw"; }
    exec::DeviceKind kind() const override
    {
        return exec::DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override { return 0; }

    exec::MulOutcome mul(const Natural& a, const Natural& b) override
    {
        return exec::MulOutcome{a * b, 0};
    }

    sim::BatchResult
    mul_batch(const std::vector<std::pair<Natural, Natural>>& pairs,
              unsigned) override
    {
        if (throw_remaining_ > 0) {
            --throw_remaining_;
            thrower_();
        }
        sim::BatchResult result;
        for (const auto& [a, b] : pairs)
            result.products.push_back(a * b);
        result.per_product.resize(pairs.size());
        return result;
    }

    exec::CostEstimate cost(std::uint64_t, std::uint64_t) const override
    {
        return {};
    }

  private:
    std::function<void()> thrower_;
    unsigned throw_remaining_;
};

/** A hand-written request (tenant priority consistent per tenant). */
serve::Request
make_request(std::uint64_t id, const std::string& tenant,
             serve::Priority priority, std::uint64_t arrival_us,
             std::uint64_t deadline_us = 0, std::uint64_t bits = 256)
{
    serve::Request request;
    request.id = id;
    request.tenant = tenant;
    request.priority = priority;
    camp::Rng rng(0x9000 + id);
    request.a = Natural::random_bits(rng, bits);
    request.b = Natural::random_bits(rng, bits);
    request.arrival_us = arrival_us;
    request.deadline_us = deadline_us;
    return request;
}

/** Every Completed outcome must carry the exact product. */
void
expect_exact_completions(const std::vector<serve::Request>& workload,
                         const serve::ServeReport& report)
{
    ASSERT_EQ(report.outcomes.size(), workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const serve::Outcome& outcome = report.outcomes[i];
        EXPECT_EQ(outcome.id, workload[i].id) << i;
        if (outcome.status == serve::RequestStatus::Completed) {
            ASSERT_EQ(outcome.product,
                      workload[i].a * workload[i].b)
                << "wrong result for request " << outcome.id;
        }
    }
}

std::vector<serve::RequestStatus>
statuses_of(const serve::ServeReport& report)
{
    std::vector<serve::RequestStatus> out;
    out.reserve(report.outcomes.size());
    for (const serve::Outcome& outcome : report.outcomes)
        out.push_back(outcome.status);
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------

TEST(Workload, ReplayIsBitIdentical)
{
    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x7ea5eed);
    spec.requests = 200;
    const auto first = serve::generate_workload(spec);
    const auto second = serve::generate_workload(spec);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].id, second[i].id);
        EXPECT_EQ(first[i].tenant, second[i].tenant);
        EXPECT_EQ(first[i].priority, second[i].priority);
        EXPECT_EQ(first[i].op, second[i].op);
        EXPECT_EQ(first[i].a, second[i].a) << i;
        EXPECT_EQ(first[i].b, second[i].b) << i;
        EXPECT_EQ(first[i].arrival_us, second[i].arrival_us);
        EXPECT_EQ(first[i].deadline_us, second[i].deadline_us);
    }

    serve::WorkloadSpec other = spec;
    other.seed = spec.seed + 1;
    const auto different = serve::generate_workload(other);
    bool any_difference = false;
    for (std::size_t i = 0; i < first.size(); ++i)
        if (first[i].a != different[i].a) {
            any_difference = true;
            break;
        }
    EXPECT_TRUE(any_difference) << "the seed must matter";
}

TEST(Workload, GeneratedShapeMatchesSpec)
{
    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x5a5e);
    spec.requests = 400;
    const auto workload = serve::generate_workload(spec);
    ASSERT_EQ(workload.size(), 400u);

    bool sorted = true;
    std::size_t squares = 0, deadlines = 0;
    std::size_t tenants_seen[3] = {0, 0, 0};
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const serve::Request& request = workload[i];
        EXPECT_EQ(request.id, i);
        if (i > 0 &&
            request.arrival_us < workload[i - 1].arrival_us)
            sorted = false;
        EXPECT_GE(request.a.bits(), 1u);
        EXPECT_LE(request.a.bits(), spec.max_bits);
        if (request.op == serve::OpKind::Square) {
            ++squares;
            EXPECT_EQ(request.a, request.b);
        }
        if (request.deadline_us != 0) {
            ++deadlines;
            EXPECT_GT(request.deadline_us, request.arrival_us);
        }
        if (request.tenant == "alpha") {
            ++tenants_seen[0];
            EXPECT_EQ(request.priority, serve::Priority::High);
        } else if (request.tenant == "beta") {
            ++tenants_seen[1];
        } else {
            EXPECT_EQ(request.tenant, "gamma");
            ++tenants_seen[2];
        }
    }
    EXPECT_TRUE(sorted) << "arrivals must be nondecreasing";
    EXPECT_GT(squares, 0u);
    EXPECT_GT(deadlines, 0u);
    for (const std::size_t count : tenants_seen)
        EXPECT_GT(count, 0u) << "every tenant gets traffic";
}

TEST(Workload, DegenerateSpecsRejected)
{
    serve::WorkloadSpec spec;
    spec.requests = 0;
    EXPECT_THROW(serve::generate_workload(spec),
                 camp::InvalidArgument);
    spec = {};
    spec.min_bits = 128;
    spec.max_bits = 64;
    EXPECT_THROW(serve::generate_workload(spec),
                 camp::InvalidArgument);
    spec = {};
    spec.burst_fraction = 1.5;
    EXPECT_THROW(serve::generate_workload(spec),
                 camp::InvalidArgument);
    spec = {};
    spec.tenants = {{"", serve::Priority::High, 1.0}};
    EXPECT_THROW(serve::generate_workload(spec),
                 camp::InvalidArgument);
    spec = {};
    spec.tenants = {{"solo", serve::Priority::High, 0.0}};
    EXPECT_THROW(serve::generate_workload(spec),
                 camp::InvalidArgument);
}

TEST(Workload, EnvironmentSeedAndCountApply)
{
    // Save/restore so a CI-level CAMP_FUZZ_SEED replay is unaffected.
    const char* saved_seed = std::getenv("CAMP_FUZZ_SEED");
    const std::string saved_seed_value =
        saved_seed != nullptr ? saved_seed : "";
    ::setenv("CAMP_FUZZ_SEED", "12345", 1);
    ::setenv("CAMP_SERVE_REQUESTS", "17", 1);
    const serve::WorkloadSpec spec = serve::workload_spec_from_env();
    EXPECT_EQ(spec.seed, 12345u);
    EXPECT_EQ(spec.requests, 17u);

    ::setenv("CAMP_SERVE_REQUESTS", "junk", 1);
    EXPECT_THROW(serve::workload_spec_from_env(),
                 camp::InvalidArgument);
    ::unsetenv("CAMP_SERVE_REQUESTS");
    if (saved_seed != nullptr)
        ::setenv("CAMP_FUZZ_SEED", saved_seed_value.c_str(), 1);
    else
        ::unsetenv("CAMP_FUZZ_SEED");
}

TEST(ServeConfig, EnvironmentParsingAndValidation)
{
    const serve::ServeConfig defaults = serve::serve_config_from_env();
    EXPECT_EQ(defaults.limits.max_queue_depth, 64u);
    EXPECT_EQ(defaults.wave_size, 16u);

    ::setenv("CAMP_SERVE_DEPTH", "8", 1);
    ::setenv("CAMP_SERVE_RETRY_BUDGET", "5", 1);
    ::setenv("CAMP_SERVE_BACKLOG_US", "1000", 1);
    ::setenv("CAMP_SERVE_WAVE", "4", 1);
    ::setenv("CAMP_SERVE_INFLIGHT", "3", 1);
    ::setenv("CAMP_SERVE_DEADLINE_US", "0", 1);
    ::setenv("CAMP_SERVE_BACKOFF_US", "50", 1);
    ::setenv("CAMP_SERVE_ATTEMPTS", "2", 1);
    ::setenv("CAMP_SERVE_WALL", "1", 1);
    ::setenv("CAMP_SERVE_BREAKER_THRESHOLD", "3", 1);
    ::setenv("CAMP_SERVE_BREAKER_PROBE", "10", 1);
    const serve::ServeConfig config = serve::serve_config_from_env();
    EXPECT_EQ(config.limits.max_queue_depth, 8u);
    EXPECT_EQ(config.limits.retry_budget, 5u);
    EXPECT_EQ(config.max_backlog_us, 1000.0);
    EXPECT_EQ(config.wave_size, 4u);
    EXPECT_EQ(config.max_inflight_waves, 3u);
    EXPECT_EQ(config.default_deadline.count(), 0);
    EXPECT_EQ(config.backoff_base.count(), 50);
    EXPECT_EQ(config.max_attempts, 2u);
    EXPECT_TRUE(config.wall_clock);
    EXPECT_EQ(config.breaker.open_threshold, 3u);
    EXPECT_EQ(config.breaker.probe_after, 10u);

    ::setenv("CAMP_SERVE_WAVE", "nope", 1);
    EXPECT_THROW(serve::serve_config_from_env(),
                 camp::InvalidArgument);
    for (const char* name :
         {"CAMP_SERVE_DEPTH", "CAMP_SERVE_RETRY_BUDGET",
          "CAMP_SERVE_BACKLOG_US", "CAMP_SERVE_WAVE",
          "CAMP_SERVE_INFLIGHT", "CAMP_SERVE_DEADLINE_US",
          "CAMP_SERVE_BACKOFF_US", "CAMP_SERVE_ATTEMPTS",
          "CAMP_SERVE_WALL", "CAMP_SERVE_BREAKER_THRESHOLD",
          "CAMP_SERVE_BREAKER_PROBE"})
        ::unsetenv(name);
}

// ---------------------------------------------------------------------
// Server basics
// ---------------------------------------------------------------------

TEST(Server, FaultFreeWorkloadCompletesExactly)
{
    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x5e12f3);
    spec.requests = 150;
    spec.max_bits = 2048;
    spec.deadline_fraction = 0.0; // no deadlines: everything completes
    const auto workload = serve::generate_workload(spec);

    exec::SimDevice device;
    serve::Server server(serve::ServeConfig{}, device);
    const serve::ServeReport report = server.process(workload);
    expect_exact_completions(workload, report);
    EXPECT_TRUE(report.conserved()) << report.table();
    EXPECT_EQ(report.totals.submitted, workload.size());
    EXPECT_EQ(report.totals.completed, workload.size());
    EXPECT_EQ(report.totals.failed, 0u);
    EXPECT_GT(report.waves, 0u);
    ASSERT_EQ(report.tenants.size(), 3u);
    for (const serve::TenantReport& tenant : report.tenants) {
        EXPECT_GT(tenant.counters.completed, 0u) << tenant.name;
        EXPECT_GE(tenant.p99_us, tenant.p50_us) << tenant.name;
        EXPECT_GT(tenant.p50_us, 0u) << tenant.name;
    }
    EXPECT_NE(report.table().find("serving report"),
              std::string::npos);
}

TEST(Server, IdenticalRunsProduceIdenticalReports)
{
    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0xd373);
    spec.requests = 250;
    spec.mean_interarrival_us = 1.0; // overload: shedding happens
    const auto workload = serve::generate_workload(spec);

    serve::ServeConfig config;
    config.limits.max_queue_depth = 8;
    config.max_backlog_us = 24.0;
    config.wave_size = 4;

    exec::SimDevice device_a;
    exec::SimDevice device_b;
    const serve::ServeReport first =
        serve::Server(config, device_a).process(workload);
    const serve::ServeReport second =
        serve::Server(config, device_b).process(workload);

    EXPECT_GT(first.shed_ids.size(), 0u)
        << "the overload must actually shed for this test to bite";
    EXPECT_EQ(first.shed_ids, second.shed_ids)
        << "deterministic shed set";
    EXPECT_EQ(first.timeout_ids, second.timeout_ids);
    EXPECT_EQ(statuses_of(first), statuses_of(second));
    EXPECT_EQ(first.waves, second.waves);
    EXPECT_TRUE(first.conserved());
    EXPECT_TRUE(second.conserved());

    // Shed outcomes carry a usable retry-after hint.
    for (const serve::Outcome& outcome : first.outcomes)
        if (outcome.status == serve::RequestStatus::ShedAdmission ||
            outcome.status == serve::RequestStatus::ShedEvicted) {
            EXPECT_EQ(outcome.error, camp::ErrorCode::Unavailable);
            EXPECT_GT(outcome.retry_after.count(), 0);
        }
}

TEST(Server, OpcacheInvariantUnderRepeatTraffic)
{
    // The product cache must change *costs only*, never behavior: on a
    // repeat-heavy workload under shedding pressure, the full
    // ServeReport — outcomes, products, shed/timeout sets, wave count,
    // virtual timeline, tenant ledgers and latency percentiles — is
    // identical with the cache on and off; only opcache.* stats may
    // differ. Hits keep the model cost in the wave, so the virtual
    // clock cannot diverge (DESIGN.md §16).
    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x09cac8e);
    spec.requests = 300;
    spec.repeat_fraction = 0.6; // most traffic re-submits earlier pairs
    spec.mean_interarrival_us = 2.0; // overload: shed/deadline paths live
    const auto workload = serve::generate_workload(spec);

    serve::ServeConfig config;
    config.limits.max_queue_depth = 16;
    config.max_backlog_us = 64.0;
    config.wave_size = 4;

    exec::SimDevice device_on;
    exec::SimDevice device_off;
    config.use_opcache = true;
    serve::Server cached(config, device_on);
    const serve::ServeReport on = cached.process(workload);
    config.use_opcache = false;
    serve::Server uncached(config, device_off);
    const serve::ServeReport off = uncached.process(workload);

    // The cache saw the repeats; the uncached server has no cache.
    EXPECT_GT(cached.opcache_stats().hits, 0u);
    EXPECT_EQ(uncached.opcache_stats().hits +
                  uncached.opcache_stats().misses,
              0u);

    ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
    for (std::size_t i = 0; i < on.outcomes.size(); ++i) {
        const serve::Outcome& a = on.outcomes[i];
        const serve::Outcome& b = off.outcomes[i];
        EXPECT_EQ(a.id, b.id) << i;
        EXPECT_EQ(a.status, b.status) << i;
        EXPECT_EQ(a.error, b.error) << i;
        EXPECT_EQ(a.retry_after.count(), b.retry_after.count()) << i;
        EXPECT_EQ(a.latency_us, b.latency_us) << i;
        EXPECT_EQ(a.wall_completion_us, b.wall_completion_us) << i;
        EXPECT_EQ(a.skew_us, b.skew_us) << i;
        EXPECT_EQ(a.attempts, b.attempts) << i;
        EXPECT_EQ(a.fallback, b.fallback) << i;
        EXPECT_EQ(a.faulty_seen, b.faulty_seen) << i;
        ASSERT_EQ(a.product, b.product) << "request " << a.id;
    }
    EXPECT_GT(on.shed_ids.size(), 0u)
        << "the overload must actually shed for this test to bite";
    EXPECT_EQ(on.shed_ids, off.shed_ids);
    EXPECT_EQ(on.timeout_ids, off.timeout_ids);
    EXPECT_EQ(on.waves, off.waves);
    EXPECT_EQ(on.virtual_end_us, off.virtual_end_us);
    ASSERT_EQ(on.tenants.size(), off.tenants.size());
    for (std::size_t i = 0; i < on.tenants.size(); ++i) {
        const serve::TenantReport& a = on.tenants[i];
        const serve::TenantReport& b = off.tenants[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.counters.submitted, b.counters.submitted);
        EXPECT_EQ(a.counters.admitted, b.counters.admitted);
        EXPECT_EQ(a.counters.completed, b.counters.completed);
        EXPECT_EQ(a.counters.failed, b.counters.failed);
        EXPECT_EQ(a.latencies_us, b.latencies_us) << a.name;
        EXPECT_EQ(a.p50_us, b.p50_us);
        EXPECT_EQ(a.p95_us, b.p95_us);
        EXPECT_EQ(a.p99_us, b.p99_us);
    }
    EXPECT_TRUE(on.conserved()) << on.table();
    EXPECT_TRUE(off.conserved()) << off.table();
    expect_exact_completions(workload, on);

    // A second pass of the same workload through the *same* cached
    // server hits on every previously-seen operand pair.
    const auto before = cached.opcache_stats();
    cached.process(workload);
    EXPECT_GT(cached.opcache_stats().hits, before.hits);
}

TEST(Server, ShedsLowestPriorityFirst)
{
    // Ten low-priority requests land first and fill the backlog; five
    // high-priority requests arrive at the same instant and must evict
    // the youngest low-priority work, deterministically.
    std::vector<serve::Request> workload;
    for (std::uint64_t i = 0; i < 10; ++i)
        workload.push_back(
            make_request(i, "gamma", serve::Priority::Low, 0));
    for (std::uint64_t i = 10; i < 15; ++i)
        workload.push_back(
            make_request(i, "alpha", serve::Priority::High, 0));

    serve::ServeConfig config;
    config.max_backlog_us = 8.0; // eight 1-us-clamped slots
    config.wave_size = 16;

    exec::SimDevice device;
    const serve::ServeReport report =
        serve::Server(config, device).process(workload);
    expect_exact_completions(workload, report);
    EXPECT_TRUE(report.conserved()) << report.table();

    // Low 0..7 admitted; low 8,9 shed at admission (no lower class to
    // evict); high 10..14 evict low 7,6,5,4,3.
    EXPECT_EQ(report.shed_ids,
              (std::vector<std::uint64_t>{3, 4, 5, 6, 7, 8, 9}));
    for (std::uint64_t id = 10; id < 15; ++id)
        EXPECT_EQ(report.outcomes[id].status,
                  serve::RequestStatus::Completed)
            << "high priority must never shed while low is queued";
    EXPECT_EQ(report.outcomes[8].status,
              serve::RequestStatus::ShedAdmission);
    EXPECT_EQ(report.outcomes[7].status,
              serve::RequestStatus::ShedEvicted);
    const serve::TenantReport* alpha = report.tenant("alpha");
    ASSERT_NE(alpha, nullptr);
    EXPECT_EQ(alpha->counters.completed, 5u);
}

TEST(Server, DeadlinesEnforcedAtEveryStage)
{
    exec::SimDevice device;

    // (a) Infeasible at admission: rejected, never computed.
    {
        std::vector<serve::Request> workload = {
            make_request(0, "alpha", serve::Priority::High, 10,
                         /*deadline=*/10)};
        const serve::ServeReport report =
            serve::Server(serve::ServeConfig{}, device)
                .process(workload);
        EXPECT_EQ(report.outcomes[0].status,
                  serve::RequestStatus::RejectedDeadline);
        EXPECT_EQ(report.outcomes[0].error,
                  camp::ErrorCode::DeadlineExceeded);
        EXPECT_EQ(report.outcomes[0].attempts, 0u)
            << "never dispatched";
        EXPECT_EQ(report.timeout_ids,
                  (std::vector<std::uint64_t>{0}));
        EXPECT_TRUE(report.conserved());
    }

    // (b) Expired while queued: dropped at dispatch, attempts == 0.
    {
        std::vector<serve::Request> workload;
        for (std::uint64_t i = 0; i < 3; ++i)
            workload.push_back(make_request(i, "alpha",
                                            serve::Priority::High, 0));
        workload.push_back(make_request(3, "alpha",
                                        serve::Priority::High, 0,
                                        /*deadline=*/3));
        serve::ServeConfig config;
        config.wave_size = 1; // head-of-line requests delay id 3
        const serve::ServeReport report =
            serve::Server(config, device).process(workload);
        expect_exact_completions(workload, report);
        EXPECT_EQ(report.outcomes[3].status,
                  serve::RequestStatus::TimedOut);
        EXPECT_EQ(report.outcomes[3].attempts, 0u)
            << "dropped at dispatch, never computed";
        EXPECT_TRUE(report.conserved());
    }

    // (c) Completed too late: computed, then discarded as timed out.
    {
        std::vector<serve::Request> workload;
        for (std::uint64_t i = 0; i < 9; ++i)
            workload.push_back(make_request(i, "alpha",
                                            serve::Priority::High, 0));
        workload.push_back(make_request(9, "alpha",
                                        serve::Priority::High, 0,
                                        /*deadline=*/5));
        const serve::ServeReport report =
            serve::Server(serve::ServeConfig{}, device)
                .process(workload);
        // One 10-entry wave costs ~10 virtual us > the 5 us deadline.
        EXPECT_EQ(report.outcomes[9].status,
                  serve::RequestStatus::TimedOut);
        EXPECT_EQ(report.outcomes[9].attempts, 1u)
            << "dispatched once, then cancelled at completion";
        EXPECT_TRUE(report.outcomes[9].product.is_zero())
            << "late products are discarded, not delivered";
        EXPECT_TRUE(report.conserved());
    }

    // (d) default_deadline applies to deadline-free requests.
    {
        std::vector<serve::Request> workload;
        for (std::uint64_t i = 0; i < 10; ++i)
            workload.push_back(make_request(i, "alpha",
                                            serve::Priority::High, 0));
        serve::ServeConfig config;
        config.default_deadline = camp::support::Clock::duration(5);
        const serve::ServeReport report =
            serve::Server(config, device).process(workload);
        EXPECT_GT(report.totals.timeouts, 0u)
            << "the implicit deadline must bite in a 10-us wave";
        EXPECT_TRUE(report.conserved());
    }
}

// ---------------------------------------------------------------------
// Retry policy over the typed error taxonomy
// ---------------------------------------------------------------------

TEST(Server, RetryableThrowsRecoverWithinBudget)
{
    HealingThrowDevice device(
        [] { throw camp::HardwareFault("fabric glitch"); },
        /*throws=*/2);
    std::vector<serve::Request> workload;
    for (std::uint64_t i = 0; i < 4; ++i)
        workload.push_back(
            make_request(i, "alpha", serve::Priority::High, 0));

    serve::ServeConfig config;
    config.max_attempts = 3;
    config.backoff_base = camp::support::Clock::duration(10);
    const serve::ServeReport report =
        serve::Server(config, device).process(workload);
    expect_exact_completions(workload, report);
    EXPECT_TRUE(report.conserved()) << report.table();
    EXPECT_EQ(report.totals.completed, 4u);
    EXPECT_EQ(report.totals.failed, 0u);
    EXPECT_EQ(report.totals.fallbacks, 0u)
        << "the device healed inside the attempt budget";
    EXPECT_EQ(report.totals.retries, 8u) << "two retries each";
    for (const serve::Outcome& outcome : report.outcomes)
        EXPECT_EQ(outcome.attempts, 3u);
    // Exponential backoff separates the attempts in virtual time.
    EXPECT_GT(report.virtual_end_us, 30u);
}

TEST(Server, FatalErrorsFailWithoutRetry)
{
    HealingThrowDevice device(
        [] { throw camp::InvalidArgument("bad operand"); },
        /*throws=*/1000);
    std::vector<serve::Request> workload;
    for (std::uint64_t i = 0; i < 3; ++i)
        workload.push_back(
            make_request(i, "beta", serve::Priority::Normal, 0));
    const serve::ServeReport report =
        serve::Server(serve::ServeConfig{}, device).process(workload);
    EXPECT_TRUE(report.conserved());
    EXPECT_EQ(report.totals.failed, 3u);
    EXPECT_EQ(report.totals.retries, 0u)
        << "InvalidArgument is not retryable";
    for (const serve::Outcome& outcome : report.outcomes) {
        EXPECT_EQ(outcome.status, serve::RequestStatus::Failed);
        EXPECT_EQ(outcome.error, camp::ErrorCode::InvalidArgument);
        EXPECT_EQ(outcome.attempts, 1u);
    }
}

TEST(Server, ExhaustedBudgetFallsBackToExactCpu)
{
    HealingThrowDevice device(
        [] { throw camp::HardwareFault("permanently sick"); },
        /*throws=*/1000000);
    std::vector<serve::Request> workload;
    for (std::uint64_t i = 0; i < 3; ++i)
        workload.push_back(
            make_request(i, "beta", serve::Priority::Normal, 0));

    serve::ServeConfig config;
    config.max_attempts = 2;
    config.limits.retry_budget = 1; // one retry for the whole tenant
    const serve::ServeReport report =
        serve::Server(config, device).process(workload);
    expect_exact_completions(workload, report);
    EXPECT_TRUE(report.conserved()) << report.table();
    EXPECT_EQ(report.totals.completed, 3u)
        << "the CPU path serves what the device cannot";
    EXPECT_EQ(report.totals.fallbacks, 3u);
    EXPECT_EQ(report.totals.retries, 1u) << "budget caps retries";
    for (const serve::Outcome& outcome : report.outcomes)
        EXPECT_TRUE(outcome.fallback);
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

TEST(Breaker, QuarantineProbeAndRecovery)
{
    auto inner = std::make_unique<FaultyBatchDevice>(/*sick=*/1000);
    FaultyBatchDevice* device = inner.get();
    serve::BreakerPolicy policy;
    policy.open_threshold = 4;
    policy.probe_after = 8;
    serve::BreakerDevice breaker(std::move(inner), policy);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Closed);

    camp::Rng rng(fuzz_seed(0xb4ea6e4));
    std::vector<std::pair<Natural, Natural>> pairs;
    for (int i = 0; i < 4; ++i)
        pairs.emplace_back(Natural::random_bits(rng, 512),
                           Natural::random_bits(rng, 512));

    // Closed: the sick batch's flags pass through (the server's retry
    // policy owns per-product recovery) and trip the breaker.
    const sim::BatchResult sick = breaker.mul_batch(pairs);
    EXPECT_EQ(sick.faulty, 4u);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Open)
        << "4 consecutive failures reach the threshold";
    EXPECT_EQ(breaker.stats().opens, 1u);

    // Open: quarantined batches are served exactly by the CPU path.
    const sim::BatchResult quarantined = breaker.mul_batch(pairs);
    EXPECT_EQ(quarantined.faulty, 0u);
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(quarantined.products[i],
                  pairs[i].first * pairs[i].second)
            << i;
    EXPECT_EQ(breaker.stats().fallback_products, 4u);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Open)
        << "probe_after not reached yet";
    breaker.mul_batch(pairs); // 8 fallback products now
    EXPECT_EQ(breaker.state(), serve::BreakerState::HalfOpen);

    // Failed probe: straight back to Open.
    const sim::BatchResult probe1 = breaker.mul_batch(pairs);
    EXPECT_EQ(probe1.faulty, 4u) << "the probe hit the sick device";
    EXPECT_EQ(breaker.state(), serve::BreakerState::Open);
    EXPECT_EQ(breaker.stats().probes, 1u);
    EXPECT_EQ(breaker.stats().opens, 2u);

    // Quarantine again, then heal: the next probe closes the breaker.
    breaker.mul_batch(pairs);
    breaker.mul_batch(pairs);
    EXPECT_EQ(breaker.state(), serve::BreakerState::HalfOpen);
    device->heal();
    const sim::BatchResult probe2 = breaker.mul_batch(pairs);
    EXPECT_EQ(probe2.faulty, 0u);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Closed);
    EXPECT_EQ(breaker.stats().closes, 1u);
    EXPECT_EQ(breaker.stats().probes, 2u);

    // Healthy traffic flows to the device again.
    const sim::BatchResult healthy = breaker.mul_batch(pairs);
    EXPECT_EQ(healthy.faulty, 0u);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Closed);
}

TEST(Breaker, SingleProductPathGoldenChecksAndIsolates)
{
    // mul() is golden-checked: a wrong device answer is served exact
    // and counted as a failure event.
    class WrongMulDevice : public exec::Device
    {
      public:
        const char* name() const override { return "wrong-mul"; }
        exec::DeviceKind kind() const override
        {
            return exec::DeviceKind::Accelerator;
        }
        std::uint64_t base_cap_bits() const override { return 0; }
        exec::MulOutcome mul(const Natural& a,
                             const Natural& b) override
        {
            return exec::MulOutcome{a * b + Natural(1), 1};
        }
        sim::BatchResult
        mul_batch(const std::vector<std::pair<Natural, Natural>>&,
                  unsigned) override
        {
            return {};
        }
        exec::CostEstimate cost(std::uint64_t,
                                std::uint64_t) const override
        {
            return {};
        }
    };

    serve::BreakerPolicy policy;
    policy.open_threshold = 2;
    policy.probe_after = 3;
    serve::BreakerDevice breaker(std::make_unique<WrongMulDevice>(),
                                 policy);
    const Natural a(98765), b(43210);
    EXPECT_EQ(breaker.mul(a, b).product, a * b)
        << "golden check repairs the wrong answer";
    EXPECT_EQ(breaker.state(), serve::BreakerState::Closed);
    EXPECT_EQ(breaker.mul(a, b).product, a * b);
    EXPECT_EQ(breaker.state(), serve::BreakerState::Open);
    // Quarantined singles are exact and count toward the probe.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(breaker.mul(a, b).product, a * b);
    EXPECT_EQ(breaker.state(), serve::BreakerState::HalfOpen);
    EXPECT_EQ(breaker.stats().fallback_products, 5u);
}

TEST(Server, BreakerQuarantineKeepsTrafficExact)
{
    // A device that corrupts its first waves and then heals: the
    // server must deliver zero wrong results throughout — retries and
    // the breaker's CPU quarantine carry the traffic — and the breaker
    // must recover once the device does.
    auto inner = std::make_unique<FaultyBatchDevice>(/*sick=*/3);
    serve::BreakerPolicy policy;
    // Early waves are small (arrivals ~2 us apart, ~1 us per entry),
    // so keep the thresholds low enough that three sick batches
    // deterministically trip, probe, and recover the breaker.
    policy.open_threshold = 2;
    policy.probe_after = 8;
    auto breaker = std::make_unique<serve::BreakerDevice>(
        std::move(inner), policy);
    serve::BreakerDevice& breaker_ref = *breaker;

    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0xb4ea6e5);
    spec.requests = 300;
    spec.mean_interarrival_us = 2.0;
    spec.deadline_fraction = 0.0;
    const auto workload = serve::generate_workload(spec);

    serve::ServeConfig config;
    config.breaker = policy;
    serve::Server server(config, breaker_ref);
    const serve::ServeReport report = server.process(workload);
    expect_exact_completions(workload, report);
    EXPECT_TRUE(report.conserved()) << report.table();
    EXPECT_EQ(report.totals.failed, 0u);
    EXPECT_GT(report.totals.faulty_results, 0u)
        << "the sick phase must be observed";
    EXPECT_GT(report.totals.retries, 0u);

    const serve::BreakerStats stats = breaker_ref.stats();
    EXPECT_GE(stats.opens, 1u) << "the sick device must quarantine";
    EXPECT_GE(stats.probes, 1u);
    EXPECT_EQ(breaker_ref.state(), serve::BreakerState::Closed)
        << "the healed device must be readmitted";
    EXPECT_GE(stats.closes, 1u);
    EXPECT_GT(stats.fallback_products, 0u);
    EXPECT_GT(stats.inner_products, 0u);
}

// ---------------------------------------------------------------------
// Shard invariance and fault conservation
// ---------------------------------------------------------------------

namespace {

std::unique_ptr<serve::BreakerDevice>
breaker_over_shards(unsigned shards, const sim::SimConfig& config,
                    const serve::BreakerPolicy& policy)
{
    exec::ShardPolicy shard_policy;
    shard_policy.shards = shards;
    shard_policy.drain_fault_threshold = 0;
    return std::make_unique<serve::BreakerDevice>(
        std::make_unique<exec::ShardedScheduler>(config, shard_policy),
        policy);
}

} // namespace

TEST(Server, OutcomeInvariantAcrossShardCounts)
{
    // The full serve outcome — statuses, shed set, timeout set,
    // per-tenant counters — must be identical whether the device is a
    // 1-shard or 4-shard scheduler, with fault injection armed. This
    // is the serving extension of the exec plane's
    // resharding-determinism contract.
    sim::SimConfig sim_config = sim::default_config();
    sim_config.faults.seed = 0x5e4afa17ull;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.02;
    sim_config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.01;

    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x54a4d);
    spec.requests = 200;
    spec.mean_interarrival_us = 1.0; // overloaded: sheds happen
    const auto workload = serve::generate_workload(spec);

    serve::ServeConfig config;
    config.limits.max_queue_depth = 8;
    config.max_backlog_us = 24.0;
    config.wave_size = 4;
    serve::BreakerPolicy policy;
    policy.open_threshold = 6;
    policy.probe_after = 16;
    config.breaker = policy;

    auto device1 = breaker_over_shards(1, sim_config, policy);
    auto device4 = breaker_over_shards(4, sim_config, policy);
    const serve::ServeReport r1 =
        serve::Server(config, *device1).process(workload);
    const serve::ServeReport r4 =
        serve::Server(config, *device4).process(workload);

    expect_exact_completions(workload, r1);
    expect_exact_completions(workload, r4);
    EXPECT_GT(r1.shed_ids.size(), 0u)
        << "overload must shed for the invariance check to bite";
    EXPECT_EQ(r1.shed_ids, r4.shed_ids);
    EXPECT_EQ(r1.timeout_ids, r4.timeout_ids);
    EXPECT_EQ(statuses_of(r1), statuses_of(r4));
    EXPECT_EQ(r1.waves, r4.waves);
    ASSERT_EQ(r1.tenants.size(), r4.tenants.size());
    for (std::size_t i = 0; i < r1.tenants.size(); ++i) {
        const serve::TenantCounters& a = r1.tenants[i].counters;
        const serve::TenantCounters& b = r4.tenants[i].counters;
        EXPECT_EQ(r1.tenants[i].name, r4.tenants[i].name);
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.shed_admission, b.shed_admission);
        EXPECT_EQ(a.shed_evicted, b.shed_evicted);
        EXPECT_EQ(a.timeouts, b.timeouts);
        EXPECT_EQ(a.retries, b.retries);
        EXPECT_EQ(a.fallbacks, b.fallbacks);
        EXPECT_EQ(r1.tenants[i].latencies_us,
                  r4.tenants[i].latencies_us)
            << "virtual latencies are shard-invariant too";
    }
    EXPECT_TRUE(r1.conserved());
    EXPECT_TRUE(r4.conserved());
}

TEST(Server, ConservationHoldsUnderRawDeviceFaults)
{
    // Soak-shaped: a raw (unchecked) SimDevice with armed faults hands
    // the server corrupted-but-flagged products; the retry policy and
    // CPU fallback must keep every delivered product exact while the
    // ledger identities stay balanced.
    sim::SimConfig sim_config = sim::default_config();
    sim_config.faults.seed = 0xfa117ull;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.05;
    sim_config.faults.rate_at(camp::FaultSite::GatherCarry) = 0.02;
    exec::SimDevice device(sim_config);

    serve::WorkloadSpec spec;
    spec.seed = fuzz_seed(0x50a4);
    spec.requests = 250;
    spec.min_bits = 512;
    spec.max_bits = 2048;
    spec.deadline_fraction = 0.1;
    spec.deadline_slack_us = 50;
    const auto workload = serve::generate_workload(spec);

    camp::mpapca::CostModel model{};
    camp::mpapca::Ledger ledger(model);
    serve::Server server(serve::ServeConfig{}, device, &ledger);
    const serve::ServeReport report = server.process(workload);
    expect_exact_completions(workload, report);
    EXPECT_TRUE(report.conserved()) << report.table();
    EXPECT_GT(report.totals.faulty_results, 0u)
        << "rates must corrupt something (CAMP_FUZZ_SEED="
        << spec.seed << ")";
    EXPECT_GT(report.totals.retries, 0u);

    // The shared ledger saw exactly the per-wave folds.
    std::uint64_t total_attempts = 0;
    for (const serve::Outcome& outcome : report.outcomes)
        total_attempts += outcome.attempts;
    const camp::mpapca::FaultStats folded =
        ledger.fault_stats_snapshot();
    EXPECT_EQ(folded.checks, total_attempts);
    EXPECT_EQ(folded.detected, report.totals.faulty_results);
    EXPECT_EQ(folded.retried, report.totals.retries);
    EXPECT_EQ(folded.fallbacks, report.totals.fallbacks);
    EXPECT_GT(folded.injected, 0u);
}

// ---------------------------------------------------------------------
// Thread-safe ledger folding
// ---------------------------------------------------------------------

TEST(LedgerFolding, ConcurrentFoldsLoseNothing)
{
    camp::mpapca::CostModel model{};
    camp::mpapca::Ledger ledger(model);
    constexpr int kThreads = 8;
    constexpr int kFolds = 2000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&ledger, t] {
            camp::mpapca::FaultStats delta;
            delta.injected = 1;
            delta.checks = 2;
            delta.detected = 3;
            delta.retried = 2;
            delta.fallbacks = 1;
            for (int i = 0; i < kFolds; ++i) {
                ledger.fold_fault_stats(delta);
                if (i % 64 == 0)
                    ledger.record_fault_diagnostic(
                        "thread " + std::to_string(t) + " fold " +
                        std::to_string(i));
                // Snapshots race with folders by design.
                (void)ledger.fault_stats_snapshot();
            }
        });
    for (std::thread& worker : workers)
        worker.join();

    const camp::mpapca::FaultStats total =
        ledger.fault_stats_snapshot();
    const std::uint64_t folds =
        static_cast<std::uint64_t>(kThreads) * kFolds;
    EXPECT_EQ(total.injected, folds);
    EXPECT_EQ(total.checks, 2 * folds);
    EXPECT_EQ(total.detected, 3 * folds);
    EXPECT_EQ(total.retried, 2 * folds);
    EXPECT_EQ(total.fallbacks, folds);
    EXPECT_EQ(ledger.fault_diagnostics().size(),
              camp::mpapca::Ledger::kMaxFaultDiagnostics)
        << "diagnostics stay capped under concurrency";
}

TEST(LedgerFolding, TwoServersShareOneLedger)
{
    sim::SimConfig sim_config = sim::default_config();
    sim_config.faults.seed = 0x2fa17ull;
    sim_config.faults.rate_at(camp::FaultSite::IpuAccumulator) = 0.03;

    serve::WorkloadSpec spec_a;
    spec_a.seed = fuzz_seed(0xaaa1);
    spec_a.requests = 120;
    serve::WorkloadSpec spec_b = spec_a;
    spec_b.seed = fuzz_seed(0xbbb2);
    const auto workload_a = serve::generate_workload(spec_a);
    const auto workload_b = serve::generate_workload(spec_b);

    camp::mpapca::CostModel model{};
    camp::mpapca::Ledger ledger(model);
    serve::ServeReport report_a, report_b;
    {
        // Two servers, two devices, one shared fault ledger, folded
        // from two threads at once.
        exec::SimDevice device_a(sim_config);
        exec::SimDevice device_b(sim_config);
        serve::Server server_a(serve::ServeConfig{}, device_a,
                               &ledger);
        serve::Server server_b(serve::ServeConfig{}, device_b,
                               &ledger);
        std::thread thread_b([&] {
            report_b = server_b.process(workload_b);
        });
        report_a = server_a.process(workload_a);
        thread_b.join();
    }
    expect_exact_completions(workload_a, report_a);
    expect_exact_completions(workload_b, report_b);

    std::uint64_t attempts = 0;
    for (const serve::Outcome& outcome : report_a.outcomes)
        attempts += outcome.attempts;
    for (const serve::Outcome& outcome : report_b.outcomes)
        attempts += outcome.attempts;
    const camp::mpapca::FaultStats folded =
        ledger.fault_stats_snapshot();
    EXPECT_EQ(folded.checks, attempts)
        << "no fold lost between concurrent servers";
    EXPECT_EQ(folded.detected, report_a.totals.faulty_results +
                                   report_b.totals.faulty_results);
    EXPECT_EQ(folded.retried,
              report_a.totals.retries + report_b.totals.retries);
    EXPECT_EQ(folded.fallbacks, report_a.totals.fallbacks +
                                    report_b.totals.fallbacks);
}
