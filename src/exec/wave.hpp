/**
 * @file
 * WaveBuffer: arena-backed storage owning every operand and result of
 * one coalesced wave — the ownership half of the zero-copy dispatch
 * path (DESIGN.md §14). SubmitQueue copies each submitted operand
 * exactly once, into its fill-side WaveBuffer; from there the wave
 * flows through ShardedScheduler and Device::mul_batch_wave as item
 * indices plus mpn::LimbView spans, and devices write products
 * straight into the wave's preallocated result slots. Steady-state
 * pooled dispatch (reset() between waves) touches the system allocator
 * zero times.
 *
 * Lifetime rules (the view-validity contract):
 *  - add() may only be called between construction/reset() and the
 *    first dispatch of the wave, from one thread at a time.
 *  - Views returned by operand_a/operand_b/result are valid until the
 *    buffer is reset(), release()d, or destroyed; escaping limbs
 *    beyond that requires take_result()/to_natural() (a deep copy).
 *  - Concurrent writers (shard wave tasks) may fill result slots of
 *    *disjoint* items; no other concurrent mutation is allowed.
 *  - reset() keeps the arena blocks for the next wave (pooled reuse)
 *    and, under ASan, re-poisons the whole extent — a stale view into
 *    a recycled wave faults instead of reading the next wave's data.
 */
#ifndef CAMP_EXEC_WAVE_HPP
#define CAMP_EXEC_WAVE_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mpn/natural.hpp"
#include "mpn/view.hpp"
#include "support/arena.hpp"

namespace camp::exec {

class WaveBuffer
{
  public:
    /** Storage comes from @p arena (default: the process arena). The
     * arena must outlive the buffer. */
    explicit WaveBuffer(
        support::LimbArena& arena = support::LimbArena::global());

    ~WaveBuffer();

    WaveBuffer(const WaveBuffer&) = delete;
    WaveBuffer& operator=(const WaveBuffer&) = delete;

    /**
     * Append one product's storage: copies @p a and @p b into the wave
     * and reserves the full (an + bn)-limb result slot eagerly, so
     * executing the wave later performs no allocation and concurrent
     * result writers never mutate shared bookkeeping. Returns the item
     * index.
     */
    std::size_t add(const mpn::Natural& a, const mpn::Natural& b);

    /** Items added since the last reset(). */
    std::size_t size() const { return items_.size(); }

    mpn::LimbView
    operand_a(std::size_t i) const
    {
        return {items_[i].a, items_[i].an};
    }

    mpn::LimbView
    operand_b(std::size_t i) const
    {
        return {items_[i].b, items_[i].bn};
    }

    /** Owning copies of both operands (fault recovery, differential
     * tests — the sanctioned escape hatch). */
    std::pair<mpn::Natural, mpn::Natural>
    operand_pair(std::size_t i) const
    {
        return {operand_a(i).to_natural(), operand_b(i).to_natural()};
    }

    /** Writable result slot of item @p i (null when either operand is
     * zero — the product needs no storage). Capacity is
     * result_capacity(i); devices fill it then call
     * set_result_size(). */
    mpn::Limb* result_ptr(std::size_t i) { return items_[i].r; }

    /** an + bn for nonzero operands, else 0. */
    std::size_t
    result_capacity(std::size_t i) const
    {
        return items_[i].r_cap;
    }

    /**
     * Publish item @p i's product as the low @p used limbs of its
     * result slot, trimming high zero limbs (devices may hand the full
     * an + bn extent whose top limb can be zero). Disjoint items may
     * be published from concurrent threads.
     */
    void set_result_size(std::size_t i, std::size_t used);

    /** The published product (valid after set_result_size). */
    mpn::LimbView
    result(std::size_t i) const
    {
        return {items_[i].r, items_[i].r_len};
    }

    /** Owning copy of the published product — the delivery edge where
     * limbs leave the wave's lifetime. */
    mpn::Natural
    take_result(std::size_t i) const
    {
        return result(i).to_natural();
    }

    /** Forget all items but keep the arena blocks for the next wave;
     * every outstanding view is invalidated (and poisoned under
     * ASan). */
    void reset();

    /** reset() plus return every arena block; the buffer is reusable
     * and will re-acquire on the next add(). */
    void release();

    /** Bumped by every reset()/release(); lets tests pin down which
     * wave a view belonged to. */
    std::uint64_t generation() const { return generation_; }

    /** Total arena words currently held (tests). */
    std::size_t capacity_words() const;

  private:
    struct Item
    {
        const mpn::Limb* a = nullptr;
        std::size_t an = 0;
        const mpn::Limb* b = nullptr;
        std::size_t bn = 0;
        mpn::Limb* r = nullptr;
        std::size_t r_cap = 0;
        std::size_t r_len = 0;
    };

    /** One arena block; pointers into it are stable because segments
     * are never reallocated, only appended. */
    struct Segment
    {
        mpn::Limb* ptr = nullptr;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    static constexpr std::size_t kFirstSegmentWords = std::size_t{1}
                                                      << 12;

    mpn::Limb* carve(std::size_t words);

    support::LimbArena& arena_;
    std::vector<Segment> segments_;
    std::size_t cursor_ = 0; ///< segment currently carved from
    std::vector<Item> items_;
    std::uint64_t generation_ = 0;
};

} // namespace camp::exec

#endif // CAMP_EXEC_WAVE_HPP
