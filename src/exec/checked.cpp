#include "exec/checked.hpp"

#include <sstream>
#include <utility>

#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace camp::exec {

using mpn::Natural;

namespace {

struct CheckedMetrics
{
    support::metrics::Counter* checks;
    support::metrics::Counter* detected;
    support::metrics::Counter* retries;
    support::metrics::Counter* fallbacks;
};

CheckedMetrics&
checked_metrics()
{
    static CheckedMetrics* m = [] {
        namespace metrics = support::metrics;
        auto* cm = new CheckedMetrics;
        cm->checks = &metrics::counter("exec.checked.checks");
        cm->detected = &metrics::counter("exec.checked.detected");
        cm->retries = &metrics::counter("exec.checked.retries");
        cm->fallbacks = &metrics::counter("exec.checked.fallbacks");
        return cm;
    }();
    return *m;
}

} // namespace

CheckedDevice::CheckedDevice(std::unique_ptr<Device> inner,
                             CheckPolicy policy)
    : inner_(std::move(inner)), policy_(policy), rng_(policy.seed)
{
    CAMP_ASSERT(inner_ != nullptr);
}

MulOutcome
CheckedDevice::mul(const Natural& a, const Natural& b)
{
    CheckedMetrics& cm = checked_metrics();
    MulOutcome outcome = inner_->mul(a, b);
    if (!policy_.enabled)
        return outcome;
    const bool sampled = policy_.sample_rate >= 1.0 ||
                         rng_.uniform() < policy_.sample_rate;
    if (!sampled)
        return outcome;

    ++stats_.checks;
    cm.checks->add();
    const Natural golden = a * b;
    unsigned attempt = 0;
    while (outcome.product != golden) {
        ++stats_.detected;
        cm.detected->add();
        std::ostringstream diag;
        diag << "base product " << a.bits() << "x" << b.bits()
             << " bits: hardware/golden mismatch (attempt " << attempt
             << ")";
        const bool out_of_budget = attempt >= policy_.retry_budget;
        diag << (out_of_budget
                     ? "; retry budget exhausted, CPU fallback"
                     : "; retrying");
        if (sink_)
            sink_(diag.str());
        if (out_of_budget) {
            // Graceful degradation: serve the exact CPU product.
            ++stats_.fallbacks;
            cm.fallbacks->add();
            outcome.product = golden;
            break;
        }
        ++stats_.retried;
        cm.retries->add();
        ++attempt;
        MulOutcome again = inner_->mul(a, b);
        outcome.product = std::move(again.product);
        outcome.injected += again.injected;
    }
    return outcome;
}

sim::BatchResult
CheckedDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    return inner_->mul_batch(pairs, parallelism);
}

sim::BatchResult
CheckedDevice::mul_batch_indexed(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    return inner_->mul_batch_indexed(pairs, indices, parallelism);
}

sim::BatchResult
CheckedDevice::mul_batch_wave(WaveBuffer& wave,
                              const std::vector<std::size_t>& items,
                              const std::vector<std::uint64_t>& indices,
                              unsigned parallelism)
{
    return inner_->mul_batch_wave(wave, items, indices, parallelism);
}

CostEstimate
CheckedDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    return inner_->cost(bits_a, bits_b);
}

} // namespace camp::exec
