/**
 * @file
 * The execution plane (`camp::exec`): a pluggable device interface
 * that decouples *what* MPApca computes from *where* it runs — the
 * host/accelerator split of paper §V-C (Fig. 1), where the MPApca
 * library routes kernel operators to whichever machine executes them.
 *
 * A Device executes *base products* (multiplications within its
 * capability) and batches of independent products, and answers cost /
 * energy queries so the MPApca layer can plan decompositions. Three
 * implementations ship with the repo:
 *  - CpuDevice      — the mpn kernels (host execution, unlimited size);
 *  - SimDevice      — the functional Cambricon-P simulator
 *                     (sim::Core + sim::BatchEngine);
 *  - AnalyticDevice — exact products via mpn, accounting via the
 *                     calibrated analytic model (large sweeps where
 *                     functional simulation would be pointlessly slow).
 * All devices return bit-identical products; only accounting and
 * placement differ. Devices are selected at runtime through the
 * DeviceRegistry (string-keyed, `CAMP_BACKEND` environment default).
 *
 * Every device carries its own mpn::MulTuning: §V-C retunes the
 * algorithm-selection thresholds per backend ("fast algorithms are
 * delayed accordingly" on hardware with a 35904-bit base case), so
 * thresholds are per-device state, not a process-global.
 */
#ifndef CAMP_EXEC_DEVICE_HPP
#define CAMP_EXEC_DEVICE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "mpn/mul.hpp"
#include "mpn/natural.hpp"
#include "sim/batch.hpp"

namespace camp::exec {

class WaveBuffer;

/** Where a device's time comes from. */
enum class DeviceKind
{
    Host,        ///< measured wall time (the CPU baseline)
    Accelerator, ///< functionally simulated hardware (cycle-accounted)
    Model,       ///< analytically modelled hardware (closed-form cost)
};

const char* device_kind_name(DeviceKind kind);

/** Cost/energy answer for one base product (monolithic operation). */
struct CostEstimate
{
    double cycles = 0;   ///< device cycles (0 when not cycle-based)
    double seconds = 0;  ///< estimated execution time
    double energy_j = 0; ///< estimated energy
};

/** Result of one device multiplication. */
struct MulOutcome
{
    mpn::Natural product;
    std::uint64_t injected = 0; ///< datapath faults injected by this op
};

/**
 * One execution backend. Thread-compatibility contract: a Device may
 * be driven from pool tasks (SubmitQueue does), but concurrent calls
 * into the *same* device instance are not synchronized here — batch
 * fan-out happens inside mul_batch, which owns its parallelism.
 */
class Device
{
  public:
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    /** Registry key ("cpu", "sim", "analytic", ...). */
    virtual const char* name() const = 0;

    virtual DeviceKind kind() const = 0;

    /**
     * Largest operand (bits) this device multiplies without software
     * decomposition; 0 = unlimited. MPApca decomposes above this
     * (paper §V-C), exactly as it decomposes beyond the monolithic
     * capability of the hardware.
     */
    virtual std::uint64_t base_cap_bits() const = 0;

    /**
     * One base product. Operands must respect base_cap_bits() (throws
     * camp::InvalidArgument beyond it, like sim::Core). Returns the
     * exact product plus the number of faults the device's injection
     * engine fired during the op (0 for fault-free devices).
     */
    virtual MulOutcome mul(const mpn::Natural& a,
                           const mpn::Natural& b) = 0;

    /**
     * Many independent products, every operand within
     * base_cap_bits(). @p parallelism follows the BatchEngine
     * convention: 0 = auto (fork across the global pool), 1 = serial,
     * >= 2 = fork. Products are bit-identical across all settings.
     */
    virtual sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) = 0;

    /**
     * mul_batch with explicit per-product fault-seed indices: product
     * i draws its fault stream from seed index @p indices[i] instead
     * of its position in @p pairs. A scheduler that splits one logical
     * wave across several devices passes the wave-global indices so
     * every product's fault stream is invariant under the split (the
     * resharding-determinism contract). The default implementation
     * ignores the indices and delegates to mul_batch — correct for
     * any device without per-product fault streams (cpu, analytic).
     * @p indices must be pairs.size() long.
     */
    virtual sim::BatchResult
    mul_batch_indexed(const std::vector<std::pair<mpn::Natural,
                                                  mpn::Natural>>& pairs,
                      const std::vector<std::uint64_t>& indices,
                      unsigned parallelism = 0);

    /**
     * Zero-copy wave execution (DESIGN.md §14): multiply the given
     * @p items of @p wave (wave-global fault-seed @p indices[k] for
     * item @p items[k]; must be the same length) and write each
     * product into the item's preallocated wave result slot via
     * WaveBuffer::set_result_size. The returned BatchResult carries
     * accounting only: `products` stays EMPTY (the wave owns the
     * limbs) and `per_product[k]` lines up with @p items[k].
     *
     * Bit-identity contract: products published into the wave are
     * identical to what mul_batch_indexed would return for the same
     * operands and indices (tests/test_memory_plane.cpp fuzzes this
     * differentially per backend). The default implementation
     * guarantees it by construction — it materializes the operands and
     * delegates to mul_batch_indexed, then copies the products into
     * the wave — so any backend is wave-capable; overrides (cpu, sim,
     * sharded) only remove copies, never change results.
     *
     * Concurrency: callers may execute disjoint item sets of one wave
     * concurrently (the sharded scheduler does); implementations only
     * write the slots of their own items.
     */
    virtual sim::BatchResult
    mul_batch_wave(WaveBuffer& wave,
                   const std::vector<std::size_t>& items,
                   const std::vector<std::uint64_t>& indices,
                   unsigned parallelism = 0);

    /** Cost/energy estimate for one base product of this shape. */
    virtual CostEstimate cost(std::uint64_t bits_a,
                              std::uint64_t bits_b) const = 0;

    /**
     * This backend's multiplication thresholds (§V-C: MPApca retunes
     * per backend). Decorators forward to the wrapped device so the
     * tuning surface stays single-sourced.
     */
    virtual const mpn::MulTuning& tuning() const { return tuning_; }
    virtual void set_tuning(const mpn::MulTuning& t) { tuning_ = t; }

  protected:
    Device() = default;

    mpn::MulTuning tuning_; ///< concrete constructors initialize

};

/**
 * Thresholds retuned for a hardware backend with an @p cap_bits-bit
 * monolithic base case: Karatsuba engages only above the base case and
 * Toom-3 above six base cases (mirroring mpapca's decomposition
 * policy); the higher regimes follow in monotone factor-4 steps.
 */
mpn::MulTuning retuned_for_cap(std::uint64_t cap_bits);

/**
 * Apply per-device environment overrides
 * `CAMP_<DEVICE>_MUL_THRESH_{KARATSUBA,TOOM3,TOOM4,TOOM6,SSA,PARALLEL}`
 * (limb counts, uppercased device name) on top of @p tuning.
 */
mpn::MulTuning apply_device_env_tuning(const char* device_name,
                                       mpn::MulTuning tuning);

} // namespace camp::exec

#endif // CAMP_EXEC_DEVICE_HPP
