/**
 * @file
 * DeviceRegistry: string-keyed factories for execution backends. The
 * three built-ins ("cpu", "sim", "analytic") register on first use;
 * applications and benches pick one at runtime via CAMP_BACKEND
 * without recompiling — the MPApca dispatch plane's device table.
 */
#ifndef CAMP_EXEC_REGISTRY_HPP
#define CAMP_EXEC_REGISTRY_HPP

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/device.hpp"
#include "sim/config.hpp"

namespace camp::exec {

/** Builds a fresh device for a (validated-on-entry) configuration. */
using DeviceFactory =
    std::function<std::unique_ptr<Device>(const sim::SimConfig&)>;

class DeviceRegistry
{
  public:
    /** Process-wide registry with the built-ins pre-registered. */
    static DeviceRegistry& instance();

    /** Register a backend. Throws camp::InvalidArgument on an empty
     * name, a null factory, or a duplicate registration. */
    void add(const std::string& name, DeviceFactory factory);

    bool contains(const std::string& name) const;

    /** Registered backend names, sorted. */
    std::vector<std::string> names() const;

    /** Instantiate a backend. Throws camp::InvalidArgument naming the
     * available backends when @p name is unknown. */
    std::unique_ptr<Device>
    create(const std::string& name,
           const sim::SimConfig& config = sim::default_config()) const;

  private:
    DeviceRegistry();

    mutable std::mutex mutex_;
    std::vector<std::pair<std::string, DeviceFactory>> factories_;
};

/** CAMP_BACKEND environment override, else @p fallback. The name is
 * not validated here — create() reports unknown names with context. */
std::string default_device_name(const char* fallback = "cpu");

/** Convenience: instance().create(name, config). */
std::unique_ptr<Device>
make_device(const std::string& name,
            const sim::SimConfig& config = sim::default_config());

} // namespace camp::exec

#endif // CAMP_EXEC_REGISTRY_HPP
