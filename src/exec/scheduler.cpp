#include "exec/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <utility>

#include <cstring>

#include "exec/registry.hpp"
#include "exec/wave.hpp"
#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/errors.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

namespace {

namespace metrics = support::metrics;

/** Registered-once scheduler-level counters. */
struct SchedulerMetrics
{
    metrics::Counter* waves;
    metrics::Counter* products;
    metrics::Counter* redistributed;
    metrics::Counter* cpu_fallbacks;
    metrics::Counter* drains;
    metrics::Counter* affinity_hits;
    metrics::Counter* affinity_misses;
    metrics::Gauge* inflight;
};

SchedulerMetrics&
scheduler_metrics()
{
    static SchedulerMetrics* m = [] {
        auto* sm = new SchedulerMetrics;
        sm->waves = &metrics::counter("exec.scheduler.waves");
        sm->products = &metrics::counter("exec.scheduler.products");
        sm->redistributed =
            &metrics::counter("exec.scheduler.redistributed");
        sm->cpu_fallbacks =
            &metrics::counter("exec.scheduler.cpu_fallbacks");
        sm->drains = &metrics::counter("exec.scheduler.drains");
        sm->affinity_hits =
            &metrics::counter("exec.scheduler.affinity_hits");
        sm->affinity_misses =
            &metrics::counter("exec.scheduler.affinity_misses");
        sm->inflight = &metrics::gauge("exec.scheduler.inflight");
        return sm;
    }();
    return *m;
}

/** Strictly positive integer from the environment; throws with the
 * variable name on junk or < 1. */
unsigned
positive_env(const char* name, unsigned fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 1)
        throw InvalidArgument(std::string(name) +
                              " must be a positive integer, got '" +
                              env + "'");
    return static_cast<unsigned>(v);
}

/** FNV-1a over both operands' limbs — the sticky-session identity of
 * an operand pair. Collisions only mis-place a placement hint. */
std::uint64_t
operand_digest(mpn::LimbView a, mpn::LimbView b)
{
    std::uint64_t hash = 1469598103934665603ull;
    const auto mix = [&hash](mpn::LimbView view) {
        for (std::size_t i = 0; i < view.size(); ++i) {
            hash ^= view.limb(i);
            hash *= 1099511628211ull;
        }
        hash ^= view.size() + 0x9e3779b97f4a7c15ull;
        hash *= 1099511628211ull;
    };
    mix(a);
    mix(b);
    return hash;
}

} // namespace

struct ShardedScheduler::ShardMetrics
{
    metrics::Counter* products;
    metrics::Counter* waves;
    metrics::Counter* cycles;
    metrics::Counter* redistributed;
};

ShardedScheduler::ShardMetrics&
ShardedScheduler::metrics_for(std::size_t ordinal)
{
    static std::mutex mutex;
    static std::vector<std::unique_ptr<ShardMetrics>>* all =
        new std::vector<std::unique_ptr<ShardMetrics>>;
    std::lock_guard<std::mutex> lock(mutex);
    while (all->size() <= ordinal) {
        const std::string prefix =
            "exec.shard." + std::to_string(all->size()) + ".";
        auto sm = std::make_unique<ShardMetrics>();
        sm->products = &metrics::counter(prefix + "products");
        sm->waves = &metrics::counter(prefix + "waves");
        sm->cycles = &metrics::counter(prefix + "cycles");
        sm->redistributed =
            &metrics::counter(prefix + "redistributed");
        all->push_back(std::move(sm));
    }
    return *(*all)[ordinal];
}

ShardPolicy
shard_policy_from_env()
{
    ShardPolicy policy;
    policy.shards = positive_env("CAMP_SHARDS", policy.shards);
    policy.max_inflight_waves =
        positive_env("CAMP_SHARD_INFLIGHT", policy.max_inflight_waves);
    policy.sticky_sessions =
        support::env_flag("CAMP_SHARD_STICKY", policy.sticky_sessions);
    if (const char* env = std::getenv("CAMP_SHARD_BACKENDS")) {
        std::string token;
        std::istringstream list(env);
        while (std::getline(list, token, ',')) {
            if (token.empty())
                throw InvalidArgument(
                    "CAMP_SHARD_BACKENDS has an empty entry: '" +
                    std::string(env) + "'");
            policy.backends.push_back(token);
        }
    }
    return policy;
}

ShardedScheduler::ShardedScheduler(const sim::SimConfig& config,
                                   ShardPolicy policy)
    : policy_(std::move(policy))
{
    if (policy_.shards == 0)
        throw InvalidArgument("shard count must be >= 1");
    if (policy_.backends.empty())
        policy_.backends = {"sim"};
    for (const std::string& backend : policy_.backends)
        if (backend == "sharded")
            throw InvalidArgument(
                "shard backends cannot include 'sharded' "
                "(recursive scheduling)");
    // Armed fault injection without per-shard checking would let a
    // drained shard's peers serve corrupted recovery products; default
    // to full-coverage checking, exactly like mpapca::Runtime.
    if (config.faults.enabled() && !policy_.check.enabled) {
        policy_.check.enabled = true;
        policy_.check.sample_rate = 1.0;
    }
    std::vector<std::unique_ptr<Device>> devices;
    devices.reserve(policy_.shards);
    for (unsigned i = 0; i < policy_.shards; ++i)
        devices.push_back(make_device(
            policy_.backends[i % policy_.backends.size()], config));
    init(std::move(devices));
}

ShardedScheduler::ShardedScheduler(
    std::vector<std::unique_ptr<Device>> devices, ShardPolicy policy)
    : policy_(std::move(policy))
{
    policy_.shards = static_cast<unsigned>(devices.size());
    init(std::move(devices));
}

void
ShardedScheduler::init(std::vector<std::unique_ptr<Device>> devices)
{
    if (devices.empty())
        throw InvalidArgument(
            "sharded scheduler needs at least one shard");
    if (policy_.max_inflight_waves == 0)
        throw InvalidArgument("max_inflight_waves must be >= 1");
    shards_.reserve(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
        CAMP_ASSERT(devices[i] != nullptr);
        auto shard = std::make_unique<Shard>();
        shard->device = std::make_unique<CheckedDevice>(
            std::move(devices[i]), policy_.check);
        shard->metrics = &metrics_for(i);
        shards_.push_back(std::move(shard));
    }
    for (const auto& shard : shards_) {
        const std::uint64_t cap = shard->device->base_cap_bits();
        if (cap != 0)
            cap_bits_ =
                cap_bits_ == 0 ? cap : std::min(cap_bits_, cap);
    }
    tuning_ = apply_device_env_tuning(
        "sharded", cap_bits_ != 0 ? retuned_for_cap(cap_bits_)
                                  : mpn::mul_tuning());
    // Wave slots: descending ids so the first wave claims slot 0 and a
    // steady single-submitter workload ping-pongs between slots 0/1
    // (warm staging capacity on both).
    staging_.resize(policy_.max_inflight_waves);
    free_slots_.reserve(policy_.max_inflight_waves);
    for (unsigned i = policy_.max_inflight_waves; i > 0; --i)
        free_slots_.push_back(i - 1);
}

unsigned
ShardedScheduler::acquire_wave_slot()
{
    std::unique_lock<std::mutex> lock(wave_mutex_);
    wave_cv_.wait(lock, [this] { return !free_slots_.empty(); });
    const unsigned slot = free_slots_.back();
    free_slots_.pop_back();
    scheduler_metrics().inflight->update_max(static_cast<std::int64_t>(
        policy_.max_inflight_waves - free_slots_.size()));
    return slot;
}

void
ShardedScheduler::release_wave_slot(unsigned slot)
{
    {
        std::lock_guard<std::mutex> lock(wave_mutex_);
        free_slots_.push_back(slot);
    }
    wave_cv_.notify_one();
}

DeviceKind
ShardedScheduler::kind() const
{
    bool model = false;
    for (const auto& shard : shards_) {
        if (shard->device->kind() == DeviceKind::Accelerator)
            return DeviceKind::Accelerator;
        model = model || shard->device->kind() == DeviceKind::Model;
    }
    return model ? DeviceKind::Model : DeviceKind::Host;
}

std::size_t
ShardedScheduler::alive_count() const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    std::size_t alive = 0;
    for (const auto& shard : shards_)
        alive += shard->alive ? 1 : 0;
    return alive;
}

bool
ShardedScheduler::shard_alive(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    return shards_[i]->alive;
}

ShardStats
ShardedScheduler::shard_stats(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    return shards_[i]->stats;
}

SchedulerStats
ShardedScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    return stats_;
}

CheckStats
ShardedScheduler::check_stats() const
{
    CheckStats total;
    for (const auto& shard : shards_) {
        const CheckStats& s = shard->device->stats();
        total.checks += s.checks;
        total.detected += s.detected;
        total.retried += s.retried;
        total.fallbacks += s.fallbacks;
    }
    return total;
}

void
ShardedScheduler::set_diagnostic_sink(CheckedDevice::DiagnosticSink sink)
{
    for (auto& shard : shards_)
        shard->device->set_diagnostic_sink(sink);
}

std::vector<std::size_t>
ShardedScheduler::alive_shards() const
{
    std::lock_guard<std::mutex> lock(state_mutex_);
    std::vector<std::size_t> alive;
    alive.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i)
        if (shards_[i]->alive)
            alive.push_back(i);
    return alive;
}

void
ShardedScheduler::drain_shard(std::size_t i, const char* why)
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        std::size_t alive = 0;
        for (const auto& shard : shards_)
            alive += shard->alive ? 1 : 0;
        // Never drain the last survivor: per-product recovery and the
        // CPU fallback keep results exact even on one sick shard.
        if (!shards_[i]->alive || alive <= 1)
            return;
        shards_[i]->alive = false;
        shards_[i]->stats.drained = true;
        ++stats_.drains;
    }
    scheduler_metrics().drains->add();
    support::trace::Span span("exec.scheduler.drain", "exec");
    span.arg("shard", static_cast<double>(i));
    (void)why;
}

void
ShardedScheduler::check_operands(
    const std::vector<std::pair<Natural, Natural>>& pairs) const
{
    if (cap_bits_ == 0)
        return;
    for (const auto& [a, b] : pairs)
        if (a.bits() > cap_bits_ || b.bits() > cap_bits_) {
            std::ostringstream message;
            message << "operand of " << std::max(a.bits(), b.bits())
                    << " bits exceeds the scheduler base capability of "
                    << cap_bits_ << " bits";
            throw InvalidArgument(message.str());
        }
}

std::vector<std::vector<std::size_t>>
ShardedScheduler::lpt_assign(
    const std::vector<std::vector<double>>& weights)
{
    const std::size_t shards = weights.size();
    CAMP_ASSERT(shards > 0);
    const std::size_t items = weights[0].size();
    for (const auto& row : weights)
        CAMP_ASSERT(row.size() == items);

    // Longest processing time first: place items in descending order
    // of their heaviest-shard weight (stable sort, so equal weights
    // keep index order) onto the shard finishing them earliest.
    std::vector<std::size_t> order(items);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> key(items);
    for (std::size_t i = 0; i < items; ++i) {
        double heaviest = weights[0][i];
        for (std::size_t s = 1; s < shards; ++s)
            heaviest = std::max(heaviest, weights[s][i]);
        key[i] = heaviest;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&key](std::size_t a, std::size_t b) {
                         return key[a] > key[b];
                     });

    std::vector<double> load(shards, 0.0);
    std::vector<std::vector<std::size_t>> assign(shards);
    for (const std::size_t item : order) {
        std::size_t best = 0;
        double best_finish = load[0] + weights[0][item];
        for (std::size_t s = 1; s < shards; ++s) {
            const double finish = load[s] + weights[s][item];
            if (finish < best_finish) {
                best = s;
                best_finish = finish;
            }
        }
        load[best] = best_finish;
        assign[best].push_back(item);
    }
    // Ascending order inside each shard: sub-batches execute in wave
    // order, which keeps per-product accounting easy to line up.
    for (auto& mine : assign)
        std::sort(mine.begin(), mine.end());
    return assign;
}

std::vector<std::vector<std::size_t>>
ShardedScheduler::assign_sticky(
    const std::vector<std::vector<double>>& weights,
    const std::vector<std::size_t>& alive,
    const std::vector<std::uint64_t>& digests)
{
    const std::size_t shards = weights.size();
    const std::size_t items = digests.size();
    std::vector<double> load(shards, 0.0);
    std::vector<std::vector<std::size_t>> assign(shards);
    std::vector<std::size_t> rest;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    {
        std::lock_guard<std::mutex> lock(affinity_mutex_);
        if (affinity_.size() > policy_.sticky_capacity)
            affinity_.clear();
        for (std::size_t i = 0; i < items; ++i) {
            const auto it = affinity_.find(digests[i]);
            std::size_t pinned = shards; // position in the alive list
            if (it != affinity_.end())
                for (std::size_t s = 0; s < alive.size(); ++s)
                    if (alive[s] == it->second) {
                        pinned = s;
                        break;
                    }
            if (pinned != shards) {
                // A repeat of a known pair on a still-alive shard:
                // stay there (warm operand footprint).
                assign[pinned].push_back(i);
                load[pinned] += weights[pinned][i];
                ++hits;
            } else {
                rest.push_back(i);
            }
        }
        // LPT for the fresh items, balanced around the pinned load
        // (same placement rule as lpt_assign, with nonzero starts).
        std::vector<double> key(items, 0.0);
        for (const std::size_t i : rest)
            for (std::size_t s = 0; s < shards; ++s)
                key[i] = std::max(key[i], weights[s][i]);
        std::stable_sort(rest.begin(), rest.end(),
                         [&key](std::size_t a, std::size_t b) {
                             return key[a] > key[b];
                         });
        for (const std::size_t item : rest) {
            std::size_t best = 0;
            double best_finish = load[0] + weights[0][item];
            for (std::size_t s = 1; s < shards; ++s) {
                const double finish = load[s] + weights[s][item];
                if (finish < best_finish) {
                    best = s;
                    best_finish = finish;
                }
            }
            load[best] = best_finish;
            assign[best].push_back(item);
            affinity_[digests[item]] = alive[best];
            ++misses;
        }
    }
    for (auto& mine : assign)
        std::sort(mine.begin(), mine.end());
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        stats_.affinity_hits += hits;
        stats_.affinity_misses += misses;
    }
    scheduler_metrics().affinity_hits->add(hits);
    scheduler_metrics().affinity_misses->add(misses);
    return assign;
}

Natural
ShardedScheduler::recover_product(std::size_t from, const Natural& a,
                                  const Natural& b,
                                  std::uint64_t& injected)
{
    const std::size_t count = shards_.size();
    for (std::size_t offset = 1; offset < count; ++offset) {
        const std::size_t i = (from + offset) % count;
        Shard& shard = *shards_[i];
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            if (!shard.alive)
                continue;
        }
        // Exact-capable peers only: the host path is golden by
        // construction; an accelerator qualifies when its checker
        // covers every product (PR-1 recovery makes the result exact).
        const CheckPolicy& check = shard.device->policy();
        const bool exact =
            shard.device->kind() == DeviceKind::Host ||
            (check.enabled && check.sample_rate >= 1.0);
        if (!exact)
            continue;
        MulOutcome outcome;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            outcome = shard.device->mul(a, b);
        }
        injected += outcome.injected;
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++shard.stats.products;
        }
        shard.metrics->products->add();
        return std::move(outcome.product);
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.cpu_fallbacks;
    }
    scheduler_metrics().cpu_fallbacks->add();
    return a * b;
}

MulOutcome
ShardedScheduler::mul(const Natural& a, const Natural& b)
{
    check_operands({{a, b}});
    // Cheapest-first placement over the alive shards.
    std::vector<std::size_t> candidates = alive_shards();
    std::vector<double> seconds(shards_.size(), 0.0);
    for (const std::size_t i : candidates)
        seconds[i] =
            shards_[i]
                ->device
                ->cost(std::max<std::uint64_t>(1, a.bits()),
                       std::max<std::uint64_t>(1, b.bits()))
                .seconds;
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&seconds](std::size_t x, std::size_t y) {
                         return seconds[x] < seconds[y];
                     });
    for (const std::size_t i : candidates) {
        Shard& shard = *shards_[i];
        MulOutcome outcome;
        try {
            std::lock_guard<std::mutex> lock(shard.mutex);
            outcome = shard.device->mul(a, b);
        } catch (const std::exception&) {
            drain_shard(i, "mul threw");
            // The product moves to the next candidate — same
            // redistribution accounting as the batch drain path.
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                ++shard.stats.redistributed;
                ++stats_.redistributed;
            }
            shard.metrics->redistributed->add();
            scheduler_metrics().redistributed->add();
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++shard.stats.products;
            ++stats_.products;
        }
        shard.metrics->products->add();
        scheduler_metrics().products->add();
        return outcome;
    }
    // Every shard refused: serve the exact host product.
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.cpu_fallbacks;
        ++stats_.products;
    }
    scheduler_metrics().cpu_fallbacks->add();
    scheduler_metrics().products->add();
    return MulOutcome{a * b, 0};
}

sim::BatchResult
ShardedScheduler::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    std::vector<std::uint64_t> indices(pairs.size());
    std::iota(indices.begin(), indices.end(), std::uint64_t{0});
    return mul_batch_indexed(pairs, indices, parallelism);
}

sim::BatchResult
ShardedScheduler::mul_batch_indexed(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    CAMP_ASSERT(indices.size() == pairs.size());
    check_operands(pairs);
    sim::BatchResult result;
    const std::size_t count = pairs.size();
    if (count == 0)
        return result;

    // Backpressure: at most max_inflight_waves waves execute at once;
    // further submitters block here instead of queueing unboundedly.
    struct WaveSlot
    {
        ShardedScheduler* scheduler;
        unsigned slot;
        ~WaveSlot() { scheduler->release_wave_slot(slot); }
    } slot{this, acquire_wave_slot()};
    (void)slot;

    const std::vector<std::size_t> alive = alive_shards();
    CAMP_ASSERT(!alive.empty());
    support::trace::Span span("exec.scheduler.wave", "exec");
    span.arg("count", static_cast<double>(count));
    span.arg("shards", static_cast<double>(alive.size()));

    // Cost-balanced partition: LPT over the shards' own estimates (a
    // heterogeneous sim+cpu deployment weighs the same item
    // differently per shard).
    std::vector<std::vector<std::size_t>> assign;
    if (alive.size() == 1) {
        assign.resize(1);
        assign[0].resize(count);
        std::iota(assign[0].begin(), assign[0].end(), std::size_t{0});
    } else {
        std::vector<std::vector<double>> weights(
            alive.size(), std::vector<double>(count));
        for (std::size_t s = 0; s < alive.size(); ++s) {
            const CheckedDevice& device = *shards_[alive[s]]->device;
            for (std::size_t i = 0; i < count; ++i)
                weights[s][i] =
                    device
                        .cost(std::max<std::uint64_t>(
                                  1, pairs[i].first.bits()),
                              std::max<std::uint64_t>(
                                  1, pairs[i].second.bits()))
                        .seconds;
        }
        assign = lpt_assign(weights);
    }

    // Concurrent shard execution. Device batch entry points are
    // self-contained per call (see Shard), so no shard lock is taken —
    // a helping worker stealing another wave's task for the same shard
    // is safe.
    struct SubResult
    {
        sim::BatchResult batch;
        bool failed = false;
    };
    std::vector<SubResult> subs(alive.size());
    {
        support::TaskGroup group;
        for (std::size_t s = 0; s < alive.size(); ++s) {
            if (assign[s].empty())
                continue;
            group.run([this, &pairs, &indices, &assign, &subs, &alive,
                       parallelism, s] {
                support::trace::Span shard_span("exec.shard.wave",
                                                "exec");
                shard_span.arg("shard",
                               static_cast<double>(alive[s]));
                shard_span.arg(
                    "count", static_cast<double>(assign[s].size()));
                std::vector<std::pair<Natural, Natural>> sub_pairs;
                std::vector<std::uint64_t> sub_indices;
                sub_pairs.reserve(assign[s].size());
                sub_indices.reserve(assign[s].size());
                for (const std::size_t pos : assign[s]) {
                    sub_pairs.push_back(pairs[pos]);
                    sub_indices.push_back(indices[pos]);
                }
                try {
                    subs[s].batch =
                        shards_[alive[s]]->device->mul_batch_indexed(
                            sub_pairs, sub_indices, parallelism);
                } catch (const std::exception&) {
                    subs[s].failed = true;
                }
            });
        }
        group.wait();
    }

    // Reassemble in wave order; aggregate cycles/waves are the max
    // over the concurrent shards, everything else sums.
    result.products.resize(count);
    result.per_product.resize(count);
    unsigned shards_used = 0;
    for (std::size_t s = 0; s < alive.size(); ++s) {
        if (assign[s].empty())
            continue;
        ++shards_used;
        Shard& shard = *shards_[alive[s]];
        if (subs[s].failed) {
            // The whole sub-batch redistributes to the survivors.
            drain_shard(alive[s], "wave execution threw");
            for (const std::size_t pos : assign[s]) {
                std::uint64_t injected = 0;
                result.products[pos] =
                    recover_product(alive[s], pairs[pos].first,
                                    pairs[pos].second, injected);
                result.injected += injected;
            }
            const std::uint64_t moved = assign[s].size();
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                shard.stats.redistributed += moved;
                stats_.redistributed += moved;
            }
            shard.metrics->redistributed->add(moved);
            scheduler_metrics().redistributed->add(moved);
            continue;
        }
        sim::BatchResult& sub = subs[s].batch;
        CAMP_ASSERT(sub.products.size() == assign[s].size() &&
                    sub.per_product.size() == assign[s].size());
        for (std::size_t k = 0; k < assign[s].size(); ++k) {
            const std::size_t pos = assign[s][k];
            result.products[pos] = std::move(sub.products[k]);
            result.per_product[pos] = sub.per_product[k];
        }
        result.tasks += sub.tasks;
        result.bytes += sub.bytes;
        result.injected += sub.injected;
        result.faulty += sub.faulty;
        result.cycles = std::max(result.cycles, sub.cycles);
        result.waves = std::max(result.waves, sub.waves);
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            shard.stats.products += assign[s].size();
            ++shard.stats.waves;
        }
        shard.metrics->products->add(assign[s].size());
        shard.metrics->waves->add();
        shard.metrics->cycles->add(sub.cycles);
    }
    result.parallelism = shards_used;

    // Redistribute detected-faulty products (PR-1 recovery policy):
    // recompute exactly on a surviving peer, CPU as last resort. The
    // per_product faulty flag stays set — it records *detection*, and
    // is deterministic under resharding thanks to wave-global seeds.
    for (std::size_t s = 0; s < alive.size(); ++s) {
        if (assign[s].empty() || subs[s].failed ||
            subs[s].batch.faulty == 0)
            continue;
        Shard& shard = *shards_[alive[s]];
        std::uint64_t moved = 0;
        for (const std::size_t pos : assign[s]) {
            if (!result.per_product[pos].faulty)
                continue;
            std::uint64_t injected = 0;
            result.products[pos] =
                recover_product(alive[s], pairs[pos].first,
                                pairs[pos].second, injected);
            result.injected += injected;
            ++moved;
        }
        if (moved != 0) {
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                shard.stats.redistributed += moved;
                stats_.redistributed += moved;
            }
            shard.metrics->redistributed->add(moved);
            scheduler_metrics().redistributed->add(moved);
        }
        if (policy_.drain_fault_threshold != 0 &&
            subs[s].batch.faulty >= policy_.drain_fault_threshold)
            drain_shard(alive[s], "faulty products in wave");
    }

    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.waves;
        stats_.products += count;
    }
    scheduler_metrics().waves->add();
    scheduler_metrics().products->add(count);
    return result;
}

sim::BatchResult
ShardedScheduler::mul_batch_wave(WaveBuffer& wave,
                                const std::vector<std::size_t>& items,
                                const std::vector<std::uint64_t>& indices,
                                unsigned parallelism)
{
    CAMP_ASSERT(indices.size() == items.size());
    if (cap_bits_ != 0)
        for (const std::size_t item : items) {
            const std::uint64_t bits =
                std::max(wave.operand_a(item).bits(),
                         wave.operand_b(item).bits());
            if (bits > cap_bits_) {
                std::ostringstream message;
                message << "operand of " << bits
                        << " bits exceeds the scheduler base "
                           "capability of "
                        << cap_bits_ << " bits";
                throw InvalidArgument(message.str());
            }
        }
    sim::BatchResult result;
    const std::size_t count = items.size();
    if (count == 0)
        return result;

    struct WaveSlot
    {
        ShardedScheduler* scheduler;
        unsigned slot;
        ~WaveSlot() { scheduler->release_wave_slot(slot); }
    } slot{this, acquire_wave_slot()};

    const std::vector<std::size_t> alive = alive_shards();
    CAMP_ASSERT(!alive.empty());
    support::trace::Span span("exec.scheduler.wave", "exec");
    span.arg("count", static_cast<double>(count));
    span.arg("shards", static_cast<double>(alive.size()));

    // LPT over the wave's operand views (positions 0..count-1 index
    // into @p items).
    std::vector<std::vector<std::size_t>> assign;
    if (alive.size() == 1) {
        assign.resize(1);
        assign[0].resize(count);
        std::iota(assign[0].begin(), assign[0].end(), std::size_t{0});
    } else {
        std::vector<std::vector<double>> weights(
            alive.size(), std::vector<double>(count));
        for (std::size_t s = 0; s < alive.size(); ++s) {
            const CheckedDevice& device = *shards_[alive[s]]->device;
            for (std::size_t i = 0; i < count; ++i)
                weights[s][i] =
                    device
                        .cost(std::max<std::uint64_t>(
                                  1, wave.operand_a(items[i]).bits()),
                              std::max<std::uint64_t>(
                                  1, wave.operand_b(items[i]).bits()))
                        .seconds;
        }
        if (policy_.sticky_sessions) {
            std::vector<std::uint64_t> digests(count);
            for (std::size_t i = 0; i < count; ++i)
                digests[i] = operand_digest(wave.operand_a(items[i]),
                                            wave.operand_b(items[i]));
            assign = assign_sticky(weights, alive, digests);
        } else {
            assign = lpt_assign(weights);
        }
    }

    // Per-shard staging out of this slot's recycled storage: only the
    // *item numbers* move between hops now — operands and results stay
    // in the wave.
    WaveStaging& staging = staging_[slot.slot];
    staging.items.resize(
        std::max(staging.items.size(), alive.size()));
    staging.indices.resize(
        std::max(staging.indices.size(), alive.size()));
    for (std::size_t s = 0; s < alive.size(); ++s) {
        staging.items[s].clear();
        staging.indices[s].clear();
        for (const std::size_t pos : assign[s]) {
            staging.items[s].push_back(items[pos]);
            staging.indices[s].push_back(indices[pos]);
        }
    }

    // Concurrent shard execution over disjoint item sets of the one
    // shared wave; each shard writes only its own items' result slots
    // (the Device::mul_batch_wave concurrency contract).
    struct SubResult
    {
        sim::BatchResult batch;
        bool failed = false;
    };
    std::vector<SubResult> subs(alive.size());
    {
        support::TaskGroup group;
        for (std::size_t s = 0; s < alive.size(); ++s) {
            if (assign[s].empty())
                continue;
            group.run([this, &wave, &staging, &subs, &alive,
                       parallelism, s] {
                support::trace::Span shard_span("exec.shard.wave",
                                                "exec");
                shard_span.arg("shard",
                               static_cast<double>(alive[s]));
                shard_span.arg(
                    "count",
                    static_cast<double>(staging.items[s].size()));
                try {
                    subs[s].batch =
                        shards_[alive[s]]->device->mul_batch_wave(
                            wave, staging.items[s], staging.indices[s],
                            parallelism);
                } catch (const std::exception&) {
                    subs[s].failed = true;
                }
            });
        }
        group.wait();
    }

    // Publish one recovered (exact) product into the wave.
    const auto recover_into_wave = [this, &wave](std::size_t from,
                                                 std::size_t item,
                                                 std::uint64_t&
                                                     injected) {
        const auto [a, b] = wave.operand_pair(item);
        const Natural product = recover_product(from, a, b, injected);
        CAMP_ASSERT(product.size() <= wave.result_capacity(item));
        if (product.size() != 0)
            std::memcpy(wave.result_ptr(item), product.data(),
                        product.size() * sizeof(mpn::Limb));
        wave.set_result_size(item, product.size());
    };

    // Reassemble per-product accounting in wave order; products live
    // in the wave already.
    result.per_product.resize(count);
    unsigned shards_used = 0;
    for (std::size_t s = 0; s < alive.size(); ++s) {
        if (assign[s].empty())
            continue;
        ++shards_used;
        Shard& shard = *shards_[alive[s]];
        if (subs[s].failed) {
            drain_shard(alive[s], "wave execution threw");
            for (const std::size_t pos : assign[s]) {
                std::uint64_t injected = 0;
                recover_into_wave(alive[s], items[pos], injected);
                result.injected += injected;
            }
            const std::uint64_t moved = assign[s].size();
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                shard.stats.redistributed += moved;
                stats_.redistributed += moved;
            }
            shard.metrics->redistributed->add(moved);
            scheduler_metrics().redistributed->add(moved);
            continue;
        }
        sim::BatchResult& sub = subs[s].batch;
        CAMP_ASSERT(sub.per_product.size() == assign[s].size());
        for (std::size_t k = 0; k < assign[s].size(); ++k)
            result.per_product[assign[s][k]] = sub.per_product[k];
        result.tasks += sub.tasks;
        result.bytes += sub.bytes;
        result.injected += sub.injected;
        result.faulty += sub.faulty;
        result.cycles = std::max(result.cycles, sub.cycles);
        result.waves = std::max(result.waves, sub.waves);
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            shard.stats.products += assign[s].size();
            ++shard.stats.waves;
        }
        shard.metrics->products->add(assign[s].size());
        shard.metrics->waves->add();
        shard.metrics->cycles->add(sub.cycles);
    }
    result.parallelism = shards_used;

    // Redistribute detected-faulty products exactly as the indexed
    // path does; the exact recovery overwrites the wave slot.
    for (std::size_t s = 0; s < alive.size(); ++s) {
        if (assign[s].empty() || subs[s].failed ||
            subs[s].batch.faulty == 0)
            continue;
        Shard& shard = *shards_[alive[s]];
        std::uint64_t moved = 0;
        for (const std::size_t pos : assign[s]) {
            if (!result.per_product[pos].faulty)
                continue;
            std::uint64_t injected = 0;
            recover_into_wave(alive[s], items[pos], injected);
            result.injected += injected;
            ++moved;
        }
        if (moved != 0) {
            {
                std::lock_guard<std::mutex> lock(state_mutex_);
                shard.stats.redistributed += moved;
                stats_.redistributed += moved;
            }
            shard.metrics->redistributed->add(moved);
            scheduler_metrics().redistributed->add(moved);
        }
        if (policy_.drain_fault_threshold != 0 &&
            subs[s].batch.faulty >= policy_.drain_fault_threshold)
            drain_shard(alive[s], "faulty products in wave");
    }

    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.waves;
        stats_.products += count;
    }
    scheduler_metrics().waves->add();
    scheduler_metrics().products->add(count);
    return result;
}

CostEstimate
ShardedScheduler::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    // The scheduler places a single product on its cheapest shard.
    bool first = true;
    CostEstimate best;
    for (const std::size_t i : alive_shards()) {
        const CostEstimate estimate =
            shards_[i]->device->cost(bits_a, bits_b);
        if (first || estimate.seconds < best.seconds) {
            best = estimate;
            first = false;
        }
    }
    return best;
}

} // namespace camp::exec
