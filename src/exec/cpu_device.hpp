/**
 * @file
 * CpuDevice: the host backend — base products execute through the mpn
 * kernels (the same code path the applications use directly), batches
 * fan out across the global thread pool. This is the reference
 * machine every other backend is checked against, so its products are
 * golden by construction.
 */
#ifndef CAMP_EXEC_CPU_DEVICE_HPP
#define CAMP_EXEC_CPU_DEVICE_HPP

#include "exec/device.hpp"
#include "sim/config.hpp"

namespace camp::exec {

class CpuDevice : public Device
{
  public:
    explicit CpuDevice(const sim::SimConfig& config =
                           sim::default_config());

    const char* name() const override { return "cpu"; }
    DeviceKind kind() const override { return DeviceKind::Host; }
    std::uint64_t base_cap_bits() const override { return 0; }

    MulOutcome mul(const mpn::Natural& a,
                   const mpn::Natural& b) override;

    sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) override;

    /** Zero-copy wave execution: the SoA batch driver runs directly
     * over the wave's operand views and writes products straight into
     * the wave's result slots (kernels::soa_mul_batch_raw) — no
     * Natural materialization, no product-buffer allocation. */
    sim::BatchResult
    mul_batch_wave(WaveBuffer& wave,
                   const std::vector<std::size_t>& items,
                   const std::vector<std::uint64_t>& indices,
                   unsigned parallelism = 0) override;

    /**
     * Rough host-time model: c * n^1.585 limb operations (the
     * Karatsuba exponent) at a fixed per-op constant, energy at the
     * Table III SkyLake busy power. Good enough for placement
     * decisions; the Fig. 13 methodology always *measures* the CPU.
     */
    CostEstimate cost(std::uint64_t bits_a,
                      std::uint64_t bits_b) const override;
};

} // namespace camp::exec

#endif // CAMP_EXEC_CPU_DEVICE_HPP
