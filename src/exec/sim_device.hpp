/**
 * @file
 * SimDevice: the functionally simulated Cambricon-P backend. Base
 * products execute on sim::Core exactly as the hardware would
 * (inner-product transformation, bit-indexed IPUs, carry parallel
 * gathering); batches run on sim::BatchEngine over the shared
 * PE/IPU fabric. Fault injection armed in the SimConfig flows
 * through unchanged, and the injected-fault count of every operation
 * is reported in its outcome so callers (CheckedDevice, Runtime) can
 * account for recovery.
 */
#ifndef CAMP_EXEC_SIM_DEVICE_HPP
#define CAMP_EXEC_SIM_DEVICE_HPP

#include "exec/device.hpp"
#include "sim/analytic_model.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/tech_model.hpp"

namespace camp::exec {

class SimDevice : public Device
{
  public:
    /** @p config must already be validated (the registry and Runtime
     * funnel through sim::validated). */
    explicit SimDevice(const sim::SimConfig& config =
                           sim::default_config());

    const char* name() const override { return "sim"; }
    DeviceKind kind() const override
    {
        return DeviceKind::Accelerator;
    }
    std::uint64_t base_cap_bits() const override
    {
        return config_.monolithic_cap_bits;
    }

    MulOutcome mul(const mpn::Natural& a,
                   const mpn::Natural& b) override;

    sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) override;

    sim::BatchResult
    mul_batch_indexed(const std::vector<std::pair<mpn::Natural,
                                                  mpn::Natural>>& pairs,
                      const std::vector<std::uint64_t>& indices,
                      unsigned parallelism = 0) override;

    /** Wave execution through BatchEngine::multiply_batch_views: the
     * engine streams operands straight from the wave's limb runs (the
     * host-side pair materialization of the default path disappears;
     * the simulated stream-in copy is intrinsic to the model). */
    sim::BatchResult
    mul_batch_wave(WaveBuffer& wave,
                   const std::vector<std::size_t>& items,
                   const std::vector<std::uint64_t>& indices,
                   unsigned parallelism = 0) override;

    CostEstimate cost(std::uint64_t bits_a,
                      std::uint64_t bits_b) const override;

    const sim::SimConfig& config() const { return config_; }

    sim::Core& core() { return core_; }

  private:
    sim::SimConfig config_;
    sim::Core core_;
    sim::AnalyticModel analytic_;
    sim::EnergyModel energy_;
    std::uint64_t injected_seen_ = 0;
};

} // namespace camp::exec

#endif // CAMP_EXEC_SIM_DEVICE_HPP
