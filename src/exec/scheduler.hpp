/**
 * @file
 * ShardedScheduler: a Device that fans one logical wave out across
 * several independent device instances ("shards") — the multi-chip
 * deployment the paper's batch formulation (§V-B3, Fig. 13) scales to.
 * Each wave is split into per-shard sub-batches balanced by the
 * devices' own cost estimates (greedy LPT — longest processing time
 * first — not round-robin), the sub-batches execute concurrently on
 * the global thread pool, and a bounded number of waves may be in
 * flight at once so upstream submitters feel backpressure instead of
 * unbounded queueing.
 *
 * Determinism contract (the property tests/test_scheduler.cpp fuzzes):
 * products are bit-identical for every shard count, including under
 * armed fault injection. The key is seeding — every product's fault
 * stream is derived from its *wave-global* index via
 * Device::mul_batch_indexed, so repartitioning a wave never moves a
 * product onto a different fault stream. Detected-faulty products are
 * *redistributed*: recomputed exactly on a surviving peer shard's
 * self-checking mul path (PR-1 policy: golden check, bounded retries,
 * CPU fallback), or on the host CPU when no exact-capable peer is
 * alive — so the returned products are exact regardless of placement.
 *
 * Failure protocol: a shard whose wave share throws, or whose wave
 * produced at least `drain_fault_threshold` faulty products (i.e. its
 * CheckedDevice keeps burning its retry budget), is *drained* — marked
 * dead and excluded from subsequent waves; its work redistributes to
 * the survivors. The last alive shard is never drained: per-product
 * recovery and the CPU fallback keep results exact even on one sick
 * shard.
 *
 * Observability: per-shard counters `exec.shard.<i>.{products, waves,
 * cycles, redistributed}`, scheduler-level `exec.scheduler.{waves,
 * products, redistributed, cpu_fallbacks, drains}` plus the
 * `exec.scheduler.inflight` high-water gauge, and trace spans
 * "exec.scheduler.wave" / "exec.shard.wave" (the latter carries a
 * "shard" argument so tools/trace_report can render per-shard wave
 * imbalance).
 */
#ifndef CAMP_EXEC_SCHEDULER_HPP
#define CAMP_EXEC_SCHEDULER_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/checked.hpp"
#include "exec/device.hpp"
#include "sim/config.hpp"

namespace camp::exec {

/**
 * Scheduler configuration. The registry's "sharded" backend builds it
 * from the environment (shard_policy_from_env): CAMP_SHARDS instances
 * of the CAMP_SHARD_BACKENDS registry names (comma list, recycled;
 * default "sim"), CAMP_SHARD_INFLIGHT bounding in-flight waves.
 */
struct ShardPolicy
{
    unsigned shards = 1; ///< device instances (>= 1)

    /** Registry names instantiated round-robin ("sim", "cpu", ...);
     * empty = all "sim". "sharded" itself is rejected (recursion). */
    std::vector<std::string> backends;

    /** Per-shard CheckedDevice policy. The SimConfig constructor
     * auto-enables full-sampling checking when the config arms fault
     * injection (same policy as mpapca::Runtime). */
    CheckPolicy check;

    /** Waves concurrently in flight before submitters block (>= 1). */
    unsigned max_inflight_waves = 2;

    /** Faulty products in one wave that drain the shard; 0 = never
     * drain (differential tests use 0 so every shard count executes
     * the same shard set). */
    std::uint64_t drain_fault_threshold = 1;

    /** Session stickiness for repeated-operand traffic (the serving
     * plane's repeat_fraction clients): remember an operand-pair
     * digest -> shard affinity on the zero-copy wave path and pin
     * repeats to their previous shard (warm operand footprint), with
     * the remaining items LPT-balanced around the pinned load.
     * Placement only — products are bit-identical wherever they run
     * (the wave-global fault-seed contract), so stickiness never
     * changes results. */
    bool sticky_sessions = false;

    /** Affinity entries retained before the table resets (bounds the
     * digest map; a reset only costs warm-cache misses). */
    std::size_t sticky_capacity = 4096;
};

/** ShardPolicy from CAMP_SHARDS / CAMP_SHARD_BACKENDS /
 * CAMP_SHARD_INFLIGHT / CAMP_SHARD_STICKY (throws
 * camp::InvalidArgument on junk). */
ShardPolicy shard_policy_from_env();

/** Per-shard lifetime counters (one scheduler instance). */
struct ShardStats
{
    std::uint64_t products = 0; ///< products executed on this shard
    std::uint64_t waves = 0;    ///< waves this shard took part in
    std::uint64_t redistributed = 0; ///< products moved off this shard
    bool drained = false;            ///< excluded from future waves
};

/** Scheduler-wide lifetime counters (one scheduler instance). */
struct SchedulerStats
{
    std::uint64_t waves = 0;
    std::uint64_t products = 0;
    std::uint64_t redistributed = 0; ///< sum of per-shard redistributed
    std::uint64_t cpu_fallbacks = 0; ///< recoveries served by host CPU
    std::uint64_t drains = 0;        ///< shards drained
    std::uint64_t affinity_hits = 0;   ///< items pinned to their shard
    std::uint64_t affinity_misses = 0; ///< items placed fresh by LPT
};

class ShardedScheduler : public Device
{
  public:
    /** Build `policy.shards` devices from the registry (backends list
     * recycled) for @p config and wrap each in a CheckedDevice. */
    ShardedScheduler(const sim::SimConfig& config, ShardPolicy policy);

    /** Adopt pre-built shards (tests, heterogeneous deployments);
     * each device is wrapped in a CheckedDevice with policy.check. */
    ShardedScheduler(std::vector<std::unique_ptr<Device>> devices,
                     ShardPolicy policy);

    const char* name() const override { return "sharded"; }

    /** Accelerator if any shard is an accelerator, else Model if any
     * shard is modelled, else Host. */
    DeviceKind kind() const override;

    /** Most conservative shard capability: the minimum nonzero
     * base_cap_bits over shards (0 when every shard is unlimited), so
     * anything the scheduler accepts fits every shard and LPT is free
     * to place work anywhere. */
    std::uint64_t base_cap_bits() const override
    {
        return cap_bits_;
    }

    /** One base product on the cheapest alive shard (per the shard's
     * own cost estimate); a throwing shard is drained and the op moves
     * to the next-best survivor, then to the host CPU. */
    MulOutcome mul(const mpn::Natural& a,
                   const mpn::Natural& b) override;

    /** One wave: pairs are seeded by their position (wave-global
     * indices 0..n-1), LPT-partitioned, and executed concurrently. */
    sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) override;

    /** One wave with explicit wave-global fault-seed indices (see
     * Device::mul_batch_indexed). Aggregate cycles/waves are the max
     * over the concurrent shards (they run in parallel); tasks, bytes,
     * injected, and faulty are sums; parallelism reports the number of
     * shards the wave actually used. per_product entries keep each
     * product's deterministic accounting — including the faulty flag
     * of a product that was detected and then recovered exactly. */
    sim::BatchResult
    mul_batch_indexed(const std::vector<std::pair<mpn::Natural,
                                                  mpn::Natural>>& pairs,
                      const std::vector<std::uint64_t>& indices,
                      unsigned parallelism = 0) override;

    /**
     * Zero-copy wave execution: the LPT partition is computed from the
     * wave's operand views, each shard receives its item subset of the
     * *same* WaveBuffer (per-shard staging lists live in recycled
     * wave-slot storage, so steady state the scheduler allocates
     * nothing per wave), and shards write products straight into the
     * wave's disjoint result slots. Failure and faulty-product
     * recovery follow the indexed path exactly — recovered products
     * are published into the wave before returning.
     */
    sim::BatchResult
    mul_batch_wave(WaveBuffer& wave,
                   const std::vector<std::size_t>& items,
                   const std::vector<std::uint64_t>& indices,
                   unsigned parallelism = 0) override;

    /** Cheapest alive shard's estimate for this shape. */
    CostEstimate cost(std::uint64_t bits_a,
                      std::uint64_t bits_b) const override;

    const ShardPolicy& policy() const { return policy_; }
    std::size_t shard_count() const { return shards_.size(); }
    std::size_t alive_count() const;
    bool shard_alive(std::size_t i) const;
    CheckedDevice& shard(std::size_t i) { return *shards_[i]->device; }
    const CheckedDevice& shard(std::size_t i) const
    {
        return *shards_[i]->device;
    }

    ShardStats shard_stats(std::size_t i) const;
    SchedulerStats stats() const;

    /** Aggregate golden-check counters over every shard's
     * CheckedDevice (cumulative; Runtime folds deltas). */
    CheckStats check_stats() const;

    /** Forwarded to every shard's CheckedDevice. */
    void set_diagnostic_sink(CheckedDevice::DiagnosticSink sink);

    /**
     * Greedy LPT assignment, exposed for unit tests. @p weights is
     * indexed [shard][item]; items are placed in descending order of
     * their heaviest-shard weight onto the shard with the earliest
     * finish time (load + this item's weight there), ties resolving to
     * the lower item index / shard ordinal — fully deterministic.
     * Returns per-shard item index lists, each ascending.
     */
    static std::vector<std::vector<std::size_t>>
    lpt_assign(const std::vector<std::vector<double>>& weights);

  private:
    struct ShardMetrics;

    /**
     * Concurrency note: the batch entry points of every shipped device
     * are self-contained per call (fresh engine state, atomic
     * metrics), so wave tasks enter them without shard-level locking.
     * Only the stateful mul path (SimDevice's persistent core,
     * CheckedDevice's sampling RNG and counters) is serialized by
     * `mutex` — and mul is never submitted to the pool, so a helping
     * worker can never steal a task that re-locks a mutex it already
     * holds.
     */
    struct Shard
    {
        std::unique_ptr<CheckedDevice> device;
        std::mutex mutex; ///< serializes the stateful mul path
        bool alive = true;
        ShardStats stats;
        ShardMetrics* metrics = nullptr;
    };

    /** Process-global per-ordinal metric handles
     * (`exec.shard.<ordinal>.*`). */
    static ShardMetrics& metrics_for(std::size_t ordinal);

    /**
     * Per-wave-slot staging storage: the per-shard item/index lists of
     * the wave occupying the slot. Slots recycle through free_slots_,
     * so after warm-up the lists' capacity is reused wave over wave —
     * the max_inflight_waves-deep (default: double-buffered) per-shard
     * storage of the zero-copy dispatch path.
     */
    struct WaveStaging
    {
        std::vector<std::vector<std::size_t>> items;
        std::vector<std::vector<std::uint64_t>> indices;
    };

    void init(std::vector<std::unique_ptr<Device>> devices);

    /** Sticky partition: pinned repeats first (affinity table lookup,
     * pinned load charged to the shard), then LPT for the rest around
     * that load, recording the fresh placements. Same return shape as
     * lpt_assign. */
    std::vector<std::vector<std::size_t>>
    assign_sticky(const std::vector<std::vector<double>>& weights,
                  const std::vector<std::size_t>& alive,
                  const std::vector<std::uint64_t>& digests);

    std::vector<std::size_t> alive_shards() const;
    void drain_shard(std::size_t i, const char* why);

    /** Blocks until a wave slot frees up (backpressure), then claims
     * it. Every slot id < policy_.max_inflight_waves. */
    unsigned acquire_wave_slot();
    void release_wave_slot(unsigned slot);

    /** Exact recovery of one product detected faulty on shard
     * @p from: the next alive exact-capable peer's checked mul, else
     * the host CPU. Returns the exact product; recovery-attempt fault
     * injections accumulate into @p injected. */
    mpn::Natural recover_product(std::size_t from,
                                 const mpn::Natural& a,
                                 const mpn::Natural& b,
                                 std::uint64_t& injected);

    void check_operands(
        const std::vector<std::pair<mpn::Natural, mpn::Natural>>& pairs)
        const;

    ShardPolicy policy_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint64_t cap_bits_ = 0;

    mutable std::mutex state_mutex_; ///< alive flags + stats
    SchedulerStats stats_;

    std::mutex wave_mutex_; ///< backpressure + slot free list
    std::condition_variable wave_cv_;
    std::vector<unsigned> free_slots_;  ///< available wave-slot ids
    std::vector<WaveStaging> staging_;  ///< indexed by wave-slot id

    std::mutex affinity_mutex_; ///< sticky-session digest table
    std::unordered_map<std::uint64_t, std::size_t> affinity_;
};

} // namespace camp::exec

#endif // CAMP_EXEC_SCHEDULER_HPP
