/**
 * @file
 * SubmitQueue: asynchronous base-product submission with batch
 * coalescing. Independently submitted multiplications buffer in the
 * queue and execute together through Device::mul_batch, so tasks from
 * unrelated products pack the simulated IPU fabric in shared waves —
 * the batch-mode win of paper §V-B3 — instead of each product paying
 * its own partial waves. Futures resolve lazily: the first get() (or
 * an explicit flush) drains everything buffered so far in one
 * coalesced batch, which keeps the design deadlock-free even on a
 * serial (CAMP_THREADS=1) host.
 *
 * Wave ring (DESIGN.md §15): the pooled WaveBuffer storage is a ring
 * of inflight_waves + 1 buffers — one filling, up to inflight_waves
 * executing concurrently. A flush is split in two halves so a caller
 * can pipeline overlapping waves: begin_flush() *claims* the current
 * fill set (swapping in a fresh fill buffer, blocking for slot-id
 * backpressure when every execution slot is busy) and run_flush()
 * executes the claimed wave — on the caller's thread or a worker of
 * its choosing. flush() remains the inline begin+run composition, and
 * the default inflight_waves = 1 reproduces the PR-8 double-buffered
 * behaviour exactly.
 */
#ifndef CAMP_EXEC_QUEUE_HPP
#define CAMP_EXEC_QUEUE_HPP

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exec/device.hpp"
#include "exec/wave.hpp"
#include "support/errors.hpp"

namespace camp::exec {

/** Aggregate accounting of a queue's lifetime. */
struct QueueStats
{
    std::uint64_t submitted = 0;   ///< products submitted
    std::uint64_t flushes = 0;     ///< coalesced batches executed
    std::uint64_t largest_batch = 0;
    std::uint64_t sim_cycles = 0;  ///< sum of coalesced batch cycles
    std::uint64_t sim_tasks = 0;   ///< sum of coalesced IPU tasks
    std::uint64_t injected = 0;    ///< faults injected (armed runs)
    std::uint64_t faulty = 0;      ///< products failing validation
    std::uint64_t failed = 0;      ///< products whose flush threw
    std::uint64_t overlapped = 0;  ///< flushes begun while another ran
};

class SubmitQueue
{
    struct Slot
    {
        mpn::Natural product;
        std::uint64_t injected = 0;
        bool faulty = false;
        bool ready = false;
        bool taken = false; ///< product moved out via Future::take()
        bool claimed = false; ///< owned by a begun (in-flight) flush
        ErrorCode error = ErrorCode::Ok; ///< set when the flush threw
        std::string error_message;
    };

    /** One ring entry: a pooled wave plus the flush-side scratch that
     * travels with it (slot list, item/index lists). A buffer is
     * either the fill side, claimed by an in-flight flush, or on the
     * free list — so everything here is touched by exactly one thread
     * at a time and the lists' capacity recycles wave over wave. */
    struct Buffer
    {
        WaveBuffer wave;
        std::vector<std::shared_ptr<Slot>> slots;
        std::vector<std::size_t> items;
        std::vector<std::uint64_t> indices;
    };

    struct State
    {
        std::mutex mutex;
        std::condition_variable cv;
        /** The wave ring: inflight_waves + 1 pooled buffers.
         * Submissions copy their operands into buffers[fill] (the one
         * operand copy the zero-copy path pays); begin_flush claims
         * that buffer and promotes a free one to fill. */
        std::vector<std::unique_ptr<Buffer>> buffers;
        unsigned fill = 0;
        std::vector<unsigned> free_buffers;
        std::vector<std::shared_ptr<Slot>> slots; ///< fill-side futures
        unsigned flushing = 0; ///< flushes begun, not yet published
        QueueStats stats;
    };

  public:
    /** Handle to one submitted product. get() blocks until the product
     * is available, triggering a flush of the owning queue if nothing
     * else already did — so a Future can always be resolved, even on a
     * single-threaded host with no background drain. */
    class Future
    {
      public:
        Future() = default;

        bool valid() const { return slot_ != nullptr; }

        /** True once the product (or its failure) is available
         * (non-blocking). */
        bool ready() const;

        /**
         * The product, flushing the owning queue if needed. When the
         * device threw during the flush that owned this product, the
         * original error *category* is preserved: get() rethrows the
         * typed camp exception (camp::HardwareFault,
         * camp::InvalidArgument, ...) reconstructed from the recorded
         * ErrorCode — so a retry policy above the queue can
         * distinguish retryable faults from fatal caller errors.
         */
        const mpn::Natural& get();

        /**
         * Like get(), but *moves* the product out of the queue slot
         * instead of handing back a reference the caller must copy —
         * the right delivery edge when the caller immediately stores
         * the product elsewhere (serve::Server does). May be called
         * once per future; get() after take() (or a second take())
         * asserts. Error semantics are get()'s.
         */
        mpn::Natural take();

        /** Error category of this product's flush (valid after
         * ready(); ErrorCode::Ok when the flush succeeded). Lets
         * callers poll for failure without catching. */
        ErrorCode error() const;

        /** Faults injected into this product (valid after get()). */
        std::uint64_t injected() const;

        /** Product failed device validation (valid after get();
         * armed-fault batches only — see BatchResult::faulty). */
        bool faulty() const;

      private:
        friend class SubmitQueue;
        Future(SubmitQueue* queue, std::shared_ptr<State> state,
               std::shared_ptr<Slot> slot)
            : queue_(queue), state_(std::move(state)),
              slot_(std::move(slot))
        {
        }

        /** Block (flushing if nobody else is) until the slot resolves;
         * rethrows a recorded flush error. @p lock owns state_->mutex
         * on entry and exit. */
        void await(std::unique_lock<std::mutex>& lock);

        SubmitQueue* queue_ = nullptr;
        std::shared_ptr<State> state_;
        std::shared_ptr<Slot> slot_;
    };

    /** Claim on one begun-but-not-yet-run flush. Move-only; must be
     * passed to run_flush exactly once (dropping a valid ticket
     * asserts — the claimed wave would strand its futures). */
    class Ticket
    {
      public:
        Ticket() = default;
        Ticket(Ticket&& other) noexcept { swap(other); }
        Ticket& operator=(Ticket&& other) noexcept
        {
            swap(other);
            return *this;
        }
        Ticket(const Ticket&) = delete;
        Ticket& operator=(const Ticket&) = delete;
        ~Ticket();

        /** False for the empty-buffer begin_flush (nothing to run). */
        bool valid() const { return valid_; }

        /** Products in the claimed wave. */
        std::size_t count() const { return count_; }

      private:
        friend class SubmitQueue;
        void swap(Ticket& other) noexcept
        {
            std::swap(buffer_, other.buffer_);
            std::swap(count_, other.count_);
            std::swap(valid_, other.valid_);
        }
        unsigned buffer_ = 0;
        std::size_t count_ = 0;
        bool valid_ = false;
    };

    /**
     * @p device executes the coalesced batches (not owned; must
     * outlive the queue). @p max_pending > 0 auto-flushes whenever
     * that many products are buffered; 0 buffers without bound until
     * a get()/flush(). @p parallelism is forwarded to mul_batch
     * (0 = auto). @p inflight_waves sizes the wave ring: that many
     * flushes may execute concurrently (>= 1; 1 = the classic
     * double-buffered queue).
     */
    explicit SubmitQueue(Device& device, std::size_t max_pending = 0,
                         unsigned parallelism = 0,
                         unsigned inflight_waves = 1);

    /** Enqueue one product a*b; does not execute anything yet (unless
     * the max_pending watermark is crossed). */
    Future submit(const mpn::Natural& a, const mpn::Natural& b);

    /**
     * First half of a pipelined flush: claim everything buffered so
     * far as one wave and free the fill side for new submissions.
     * Blocks while all inflight_waves execution slots are busy (the
     * ring's backpressure). Returns an invalid Ticket when nothing is
     * buffered. The claimed wave executes only when the ticket is
     * handed to run_flush — its futures stay unready until then.
     */
    Ticket begin_flush();

    /** Second half: execute @p ticket's wave through
     * Device::mul_batch_wave and publish the products (or the typed
     * error) to the wave's futures. Runs device work on the calling
     * thread; safe to call from a worker thread concurrently with
     * submit()/begin_flush()/other run_flush calls. Returns the
     * number of products published. */
    std::size_t run_flush(Ticket ticket);

    /** Execute everything buffered as one coalesced batch, inline
     * (begin_flush + run_flush). Returns the number of products
     * flushed (0 if the buffer was empty). Safe to call concurrently
     * with submit()/get(). */
    std::size_t flush();

    /** Flush until no submission is pending or in flight. */
    void wait_all();

    /** Buffered (not yet claimed by a flush) submissions. */
    std::size_t pending() const;

    /** Flushes begun and not yet published. */
    unsigned inflight_flushes() const;

    QueueStats stats() const;

    Device& device() { return device_; }

    unsigned inflight_waves() const { return inflight_waves_; }

  private:
    /** Inline begin+run under @p lock; re-acquires before returning. */
    std::size_t flush_locked(std::unique_lock<std::mutex>& lock);

    /** begin_flush with @p lock held; may wait on backpressure. */
    Ticket begin_flush_locked(std::unique_lock<std::mutex>& lock);

    Device& device_;
    std::size_t max_pending_;
    unsigned parallelism_;
    unsigned inflight_waves_;
    std::shared_ptr<State> state_;
};

} // namespace camp::exec

#endif // CAMP_EXEC_QUEUE_HPP
