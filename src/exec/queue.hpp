/**
 * @file
 * SubmitQueue: asynchronous base-product submission with batch
 * coalescing. Independently submitted multiplications buffer in the
 * queue and execute together through Device::mul_batch, so tasks from
 * unrelated products pack the simulated IPU fabric in shared waves —
 * the batch-mode win of paper §V-B3 — instead of each product paying
 * its own partial waves. Futures resolve lazily: the first get() (or
 * an explicit flush) drains everything buffered so far in one
 * coalesced batch, which keeps the design deadlock-free even on a
 * serial (CAMP_THREADS=1) host.
 */
#ifndef CAMP_EXEC_QUEUE_HPP
#define CAMP_EXEC_QUEUE_HPP

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exec/device.hpp"
#include "exec/wave.hpp"
#include "support/errors.hpp"

namespace camp::exec {

/** Aggregate accounting of a queue's lifetime. */
struct QueueStats
{
    std::uint64_t submitted = 0;   ///< products submitted
    std::uint64_t flushes = 0;     ///< coalesced batches executed
    std::uint64_t largest_batch = 0;
    std::uint64_t sim_cycles = 0;  ///< sum of coalesced batch cycles
    std::uint64_t sim_tasks = 0;   ///< sum of coalesced IPU tasks
    std::uint64_t injected = 0;    ///< faults injected (armed runs)
    std::uint64_t faulty = 0;      ///< products failing validation
    std::uint64_t failed = 0;      ///< products whose flush threw
};

class SubmitQueue
{
    struct Slot
    {
        mpn::Natural product;
        std::uint64_t injected = 0;
        bool faulty = false;
        bool ready = false;
        bool taken = false; ///< product moved out via Future::take()
        ErrorCode error = ErrorCode::Ok; ///< set when the flush threw
        std::string error_message;
    };

    struct State
    {
        std::mutex mutex;
        std::condition_variable cv;
        /** Double-buffered pooled wave storage: submissions copy their
         * operands into waves[fill] (the one operand copy the path
         * pays); a flush swaps fill and executes the other buffer
         * unlocked through Device::mul_batch_wave. Only one flush is
         * ever in flight (`flushing`), so the swap is safe. */
        WaveBuffer waves[2];
        unsigned fill = 0;
        std::vector<std::shared_ptr<Slot>> slots;
        bool flushing = false;
        QueueStats stats;
        /** Flush-side scratch (item/index lists), reused across
         * flushes; touched only by the single in-flight flusher. */
        std::vector<std::size_t> wave_items;
        std::vector<std::uint64_t> wave_indices;
    };

  public:
    /** Handle to one submitted product. get() blocks until the product
     * is available, triggering a flush of the owning queue if nothing
     * else already did — so a Future can always be resolved, even on a
     * single-threaded host with no background drain. */
    class Future
    {
      public:
        Future() = default;

        bool valid() const { return slot_ != nullptr; }

        /** True once the product (or its failure) is available
         * (non-blocking). */
        bool ready() const;

        /**
         * The product, flushing the owning queue if needed. When the
         * device threw during the flush that owned this product, the
         * original error *category* is preserved: get() rethrows the
         * typed camp exception (camp::HardwareFault,
         * camp::InvalidArgument, ...) reconstructed from the recorded
         * ErrorCode — so a retry policy above the queue can
         * distinguish retryable faults from fatal caller errors.
         */
        const mpn::Natural& get();

        /**
         * Like get(), but *moves* the product out of the queue slot
         * instead of handing back a reference the caller must copy —
         * the right delivery edge when the caller immediately stores
         * the product elsewhere (serve::Server does). May be called
         * once per future; get() after take() (or a second take())
         * asserts. Error semantics are get()'s.
         */
        mpn::Natural take();

        /** Error category of this product's flush (valid after
         * ready(); ErrorCode::Ok when the flush succeeded). Lets
         * callers poll for failure without catching. */
        ErrorCode error() const;

        /** Faults injected into this product (valid after get()). */
        std::uint64_t injected() const;

        /** Product failed device validation (valid after get();
         * armed-fault batches only — see BatchResult::faulty). */
        bool faulty() const;

      private:
        friend class SubmitQueue;
        Future(SubmitQueue* queue, std::shared_ptr<State> state,
               std::shared_ptr<Slot> slot)
            : queue_(queue), state_(std::move(state)),
              slot_(std::move(slot))
        {
        }

        /** Block (flushing if nobody else is) until the slot resolves;
         * rethrows a recorded flush error. @p lock owns state_->mutex
         * on entry and exit. */
        void await(std::unique_lock<std::mutex>& lock);

        SubmitQueue* queue_ = nullptr;
        std::shared_ptr<State> state_;
        std::shared_ptr<Slot> slot_;
    };

    /**
     * @p device executes the coalesced batches (not owned; must
     * outlive the queue). @p max_pending > 0 auto-flushes whenever
     * that many products are buffered; 0 buffers without bound until
     * a get()/flush(). @p parallelism is forwarded to mul_batch
     * (0 = auto).
     */
    explicit SubmitQueue(Device& device, std::size_t max_pending = 0,
                         unsigned parallelism = 0);

    /** Enqueue one product a*b; does not execute anything yet (unless
     * the max_pending watermark is crossed). */
    Future submit(const mpn::Natural& a, const mpn::Natural& b);

    /** Execute everything buffered as one coalesced batch. Returns the
     * number of products flushed (0 if the buffer was empty). Safe to
     * call concurrently with submit()/get(). */
    std::size_t flush();

    /** Flush until no submission is pending or in flight. */
    void wait_all();

    /** Buffered (not yet executed) submissions. */
    std::size_t pending() const;

    QueueStats stats() const;

    Device& device() { return device_; }

  private:
    /** Drain the buffer under @p lock; re-acquires before returning. */
    std::size_t flush_locked(std::unique_lock<std::mutex>& lock);

    Device& device_;
    std::size_t max_pending_;
    unsigned parallelism_;
    std::shared_ptr<State> state_;
};

} // namespace camp::exec

#endif // CAMP_EXEC_QUEUE_HPP
