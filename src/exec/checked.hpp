/**
 * @file
 * CheckedDevice: the golden-model self-checking decorator. Wraps any
 * Device and cross-checks a sampled fraction of its base products
 * against the mpn golden model; on mismatch it records a diagnostic,
 * retries on the wrapped device within a bounded budget, then serves
 * the exact CPU product (graceful degradation, PR-1 policy). Factoring
 * the policy out of mpapca::Runtime lets any backend — and any future
 * one — opt into the same recovery path by composition.
 */
#ifndef CAMP_EXEC_CHECKED_HPP
#define CAMP_EXEC_CHECKED_HPP

#include <functional>
#include <memory>
#include <string>

#include "exec/device.hpp"
#include "support/rng.hpp"

namespace camp::exec {

/**
 * Golden-model self-checking policy for hardware base products.
 * sample_rate < 1 trades coverage for check overhead (see
 * bench/ablation_fault.cpp for the measured trade-off).
 */
struct CheckPolicy
{
    bool enabled = false;
    double sample_rate = 1.0;  ///< fraction of base products checked
    unsigned retry_budget = 2; ///< device retries before CPU fallback
    std::uint64_t seed = 0x5e1fc4ecull; ///< sampling RNG seed
};

/** Cumulative recovery counters (never reset; consumers that need
 * interval counts — Runtime's ledger — fold deltas). */
struct CheckStats
{
    std::uint64_t checks = 0;    ///< products cross-checked
    std::uint64_t detected = 0;  ///< mismatches observed (incl. retries)
    std::uint64_t retried = 0;   ///< device retries issued
    std::uint64_t fallbacks = 0; ///< products served by the CPU path
};

class CheckedDevice : public Device
{
  public:
    /** Sink for human-readable mismatch diagnostics (the Runtime wires
     * this to Ledger::record_fault_diagnostic). */
    using DiagnosticSink = std::function<void(const std::string&)>;

    CheckedDevice(std::unique_ptr<Device> inner, CheckPolicy policy);

    const char* name() const override { return inner_->name(); }
    DeviceKind kind() const override { return inner_->kind(); }
    std::uint64_t base_cap_bits() const override
    {
        return inner_->base_cap_bits();
    }

    /** Tuning is a property of the wrapped device. */
    const mpn::MulTuning& tuning() const override
    {
        return inner_->tuning();
    }
    void set_tuning(const mpn::MulTuning& tuning) override
    {
        inner_->set_tuning(tuning);
    }

    /** One checked base product: execute on the wrapped device, then
     * (for a sampled fraction) cross-check against the exact mpn
     * product, retrying within the budget and finally falling back to
     * the golden result. The returned outcome accumulates the injected
     * faults of every attempt, so ledger accounting stays exact. */
    MulOutcome mul(const mpn::Natural& a,
                   const mpn::Natural& b) override;

    /** Batches forward unchecked: BatchEngine validates per product
     * when armed and reports mismatches in BatchResult::faulty; the
     * recovery policy for batch work stays with the caller (seed
     * semantics — see Runtime::multiply_batch). */
    sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) override;

    sim::BatchResult
    mul_batch_indexed(const std::vector<std::pair<mpn::Natural,
                                                  mpn::Natural>>& pairs,
                      const std::vector<std::uint64_t>& indices,
                      unsigned parallelism = 0) override;

    /** Forwarded unchecked, like the other batch entry points. */
    sim::BatchResult
    mul_batch_wave(WaveBuffer& wave,
                   const std::vector<std::size_t>& items,
                   const std::vector<std::uint64_t>& indices,
                   unsigned parallelism = 0) override;

    CostEstimate cost(std::uint64_t bits_a,
                      std::uint64_t bits_b) const override;

    const CheckPolicy& policy() const { return policy_; }
    const CheckStats& stats() const { return stats_; }
    Device& inner() { return *inner_; }
    const Device& inner() const { return *inner_; }

    void set_diagnostic_sink(DiagnosticSink sink)
    {
        sink_ = std::move(sink);
    }

  private:
    std::unique_ptr<Device> inner_;
    CheckPolicy policy_;
    CheckStats stats_;
    Rng rng_;
    DiagnosticSink sink_;
};

} // namespace camp::exec

#endif // CAMP_EXEC_CHECKED_HPP
