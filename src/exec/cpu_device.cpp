#include "exec/cpu_device.hpp"

#include <cmath>

#include "mpn/ophook.hpp"
#include "sim/comparators.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

CpuDevice::CpuDevice(const sim::SimConfig&)
{
    tuning_ =
        apply_device_env_tuning("cpu", mpn::mul_tuning());
}

MulOutcome
CpuDevice::mul(const Natural& a, const Natural& b)
{
    return MulOutcome{a * b, 0};
}

sim::BatchResult
CpuDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    support::trace::Span span("exec.cpu.mul_batch", "exec");
    span.arg("count", static_cast<double>(pairs.size()));
    sim::BatchResult result;
    const std::size_t count = pairs.size();
    result.products.resize(count);
    result.per_product.resize(count);
    result.tasks = count;

    support::ThreadPool& pool = support::ThreadPool::global();
    const bool fork = parallelism != 1 && count > 1 && pool.parallel() &&
                      support::parallel_allowed();
    result.parallelism = fork ? pool.executors() : 1;
    const auto one = [&pairs, &result](std::size_t i) {
        // Pool-side arithmetic must not be announced to op hooks
        // (ledger/profiler assume one logical app thread).
        mpn::OpHookSuspend suspend;
        result.products[i] = pairs[i].first * pairs[i].second;
    };
    if (fork) {
        support::TaskGroup group(pool);
        for (std::size_t i = 1; i < count; ++i)
            group.run([&one, i] { one(i); });
        one(0);
        group.wait();
    } else {
        for (std::size_t i = 0; i < count; ++i)
            one(i);
    }
    // Host products carry no simulated accounting: cycles stay zero
    // (the Fig. 13 methodology measures host time with the profiler).
    return result;
}

CostEstimate
CpuDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    // Calibration constant: ~2 ns per Karatsuba-exponent limb op puts
    // a 1-Mbit balanced product near 10 ms, the right order for the
    // mpn kernels on a contemporary core.
    constexpr double kSecondsPerLimbOp = 2e-9;
    const double la =
        std::max<double>(1.0, static_cast<double>(bits_a) / 64.0);
    const double lb =
        std::max<double>(1.0, static_cast<double>(bits_b) / 64.0);
    CostEstimate estimate;
    estimate.seconds =
        kSecondsPerLimbOp * std::pow(std::sqrt(la * lb), 1.585);
    estimate.energy_j = estimate.seconds * sim::skylake_cpu().power_w;
    return estimate;
}

} // namespace camp::exec
