#include "exec/cpu_device.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/wave.hpp"
#include "mpn/kernels/soa.hpp"
#include "mpn/ophook.hpp"
#include "sim/comparators.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

CpuDevice::CpuDevice(const sim::SimConfig&)
{
    tuning_ =
        apply_device_env_tuning("cpu", mpn::mul_tuning());
}

MulOutcome
CpuDevice::mul(const Natural& a, const Natural& b)
{
    return MulOutcome{a * b, 0};
}

sim::BatchResult
CpuDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    support::trace::Span span("exec.cpu.mul_batch", "exec");
    span.arg("count", static_cast<double>(pairs.size()));
    sim::BatchResult result;
    const std::size_t count = pairs.size();
    result.products.resize(count);
    result.per_product.resize(count);
    result.tasks = count;

    support::ThreadPool& pool = support::ThreadPool::global();
    const bool fork = parallelism != 1 && count > 1 && pool.parallel() &&
                      support::parallel_allowed();
    result.parallelism = fork ? pool.executors() : 1;
    // Contiguous slices through the SoA batch driver: same-shape
    // products inside a slice run the vertical vectorized basecase,
    // and chunking (instead of one pool task per product) keeps task
    // and allocation overhead amortized in the small-width regime.
    const auto slice = [&pairs, &result](std::size_t lo,
                                         std::size_t hi) {
        // Pool-side arithmetic must not be announced to op hooks
        // (ledger/profiler assume one logical app thread).
        mpn::OpHookSuspend suspend;
        mpn::kernels::soa_mul_batch(pairs.data() + lo, hi - lo,
                                    result.products.data() + lo);
    };
    if (fork) {
        const std::size_t chunks =
            std::min(count,
                     static_cast<std::size_t>(pool.executors()) * 4);
        const std::size_t step = (count + chunks - 1) / chunks;
        support::TaskGroup group(pool);
        for (std::size_t lo = step; lo < count; lo += step) {
            const std::size_t hi = std::min(count, lo + step);
            group.run([&slice, lo, hi] { slice(lo, hi); });
        }
        slice(0, std::min(count, step));
        group.wait();
    } else {
        slice(0, count);
    }
    // Host products carry no simulated accounting: cycles stay zero
    // (the Fig. 13 methodology measures host time with the profiler).
    return result;
}

sim::BatchResult
CpuDevice::mul_batch_wave(WaveBuffer& wave,
                          const std::vector<std::size_t>& items,
                          const std::vector<std::uint64_t>& indices,
                          unsigned parallelism)
{
    support::trace::Span span("exec.cpu.mul_batch_wave", "exec");
    span.arg("count", static_cast<double>(items.size()));
    CAMP_ASSERT(indices.size() == items.size());
    sim::BatchResult result;
    const std::size_t count = items.size();
    result.per_product.resize(count);
    result.tasks = count;

    support::ThreadPool& pool = support::ThreadPool::global();
    const bool fork = parallelism != 1 && count > 1 && pool.parallel() &&
                      support::parallel_allowed();
    result.parallelism = fork ? pool.executors() : 1;
    // Same contiguous-slice fan-out as mul_batch, but each slice feeds
    // the raw SoA driver wave-owned operand views and result slots:
    // steady state, a whole wave multiplies without one product-buffer
    // allocation (this is what bench/perf_smoke's alloc_per_wave row
    // gates on).
    const auto slice = [&wave, &items](std::size_t lo, std::size_t hi) {
        mpn::OpHookSuspend suspend;
        std::vector<mpn::kernels::SoaItem> raw(hi - lo);
        for (std::size_t k = lo; k < hi; ++k) {
            const mpn::LimbView a = wave.operand_a(items[k]);
            const mpn::LimbView b = wave.operand_b(items[k]);
            raw[k - lo] = {a.ptr, a.len, b.ptr, b.len,
                           wave.result_ptr(items[k]), 0};
        }
        mpn::kernels::soa_mul_batch_raw(raw.data(), raw.size());
        for (std::size_t k = lo; k < hi; ++k)
            wave.set_result_size(items[k], raw[k - lo].rn);
    };
    if (fork) {
        const std::size_t chunks =
            std::min(count,
                     static_cast<std::size_t>(pool.executors()) * 4);
        const std::size_t step = (count + chunks - 1) / chunks;
        support::TaskGroup group(pool);
        for (std::size_t lo = step; lo < count; lo += step) {
            const std::size_t hi = std::min(count, lo + step);
            group.run([&slice, lo, hi] { slice(lo, hi); });
        }
        slice(0, std::min(count, step));
        group.wait();
    } else {
        slice(0, count);
    }
    return result;
}

CostEstimate
CpuDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    // Calibration constant: ~2 ns per Karatsuba-exponent limb op puts
    // a 1-Mbit balanced product near 10 ms, the right order for the
    // mpn kernels on a contemporary core.
    constexpr double kSecondsPerLimbOp = 2e-9;
    const double la =
        std::max<double>(1.0, static_cast<double>(bits_a) / 64.0);
    const double lb =
        std::max<double>(1.0, static_cast<double>(bits_b) / 64.0);
    CostEstimate estimate;
    estimate.seconds =
        kSecondsPerLimbOp * std::pow(std::sqrt(la * lb), 1.585);
    estimate.energy_j = estimate.seconds * sim::skylake_cpu().power_w;
    return estimate;
}

} // namespace camp::exec
