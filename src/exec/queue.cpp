#include "exec/queue.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

bool
SubmitQueue::Future::ready() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    return slot_->ready;
}

void
SubmitQueue::Future::await(std::unique_lock<std::mutex>& lock)
{
    while (!slot_->ready) {
        // Somebody has to run the batch; on a serial host that
        // somebody is us. A claimed slot belongs to a flush someone
        // already begun — running another batch cannot resolve it, so
        // wait for the owner to publish. An unclaimed slot is still on
        // the fill side: flush it ourselves.
        if (slot_->claimed)
            state_->cv.wait(lock);
        else
            queue_->flush_locked(lock);
    }
    if (slot_->error != ErrorCode::Ok)
        throw_error(slot_->error, slot_->error_message);
}

const Natural&
SubmitQueue::Future::get()
{
    CAMP_ASSERT(slot_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    await(lock);
    CAMP_ASSERT(!slot_->taken);
    return slot_->product;
}

Natural
SubmitQueue::Future::take()
{
    CAMP_ASSERT(slot_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    await(lock);
    CAMP_ASSERT(!slot_->taken);
    slot_->taken = true;
    return std::move(slot_->product);
}

ErrorCode
SubmitQueue::Future::error() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->error;
}

std::uint64_t
SubmitQueue::Future::injected() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->injected;
}

bool
SubmitQueue::Future::faulty() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->faulty;
}

SubmitQueue::Ticket::~Ticket()
{
    // A valid ticket owns a claimed wave whose futures only resolve
    // through run_flush; silently dropping it would strand waiters.
    CAMP_ASSERT(!valid_);
}

SubmitQueue::SubmitQueue(Device& device, std::size_t max_pending,
                         unsigned parallelism, unsigned inflight_waves)
    : device_(device), max_pending_(max_pending),
      parallelism_(parallelism), inflight_waves_(inflight_waves),
      state_(std::make_shared<State>())
{
    if (inflight_waves_ == 0)
        throw InvalidArgument("inflight_waves must be >= 1");
    // One buffer fills while up to inflight_waves execute.
    state_->buffers.reserve(inflight_waves_ + 1);
    for (unsigned i = 0; i < inflight_waves_ + 1; ++i)
        state_->buffers.push_back(std::make_unique<Buffer>());
    state_->fill = 0;
    // Descending ids so the first flush promotes buffer 1 to fill —
    // a steady one-wave-deep workload ping-pongs between 0/1 with
    // warm wave storage on both, exactly the PR-8 double buffer.
    state_->free_buffers.reserve(inflight_waves_);
    for (unsigned i = inflight_waves_; i > 0; --i)
        state_->free_buffers.push_back(i);
}

SubmitQueue::Future
SubmitQueue::submit(const Natural& a, const Natural& b)
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    // The one operand copy of the zero-copy path: into the fill-side
    // pooled wave, whose storage the whole dispatch chain then shares.
    state_->buffers[state_->fill]->wave.add(a, b);
    auto slot = std::make_shared<Slot>();
    state_->slots.push_back(slot);
    ++state_->stats.submitted;
    // Auto-flush at the watermark, but only when a ring slot is free
    // right now — submit must not block on backpressure.
    if (max_pending_ != 0 && state_->slots.size() >= max_pending_ &&
        !state_->free_buffers.empty())
        flush_locked(lock);
    return Future(this, state_, std::move(slot));
}

SubmitQueue::Ticket
SubmitQueue::begin_flush_locked(std::unique_lock<std::mutex>& lock)
{
    CAMP_ASSERT(lock.owns_lock());
    Ticket ticket;
    if (state_->slots.empty())
        return ticket;
    // Slot-id backpressure: no more than inflight_waves flushes may be
    // begun at once; the next begin waits for a published wave to
    // return its buffer to the ring.
    state_->cv.wait(lock,
                    [this] { return !state_->free_buffers.empty(); });
    if (state_->slots.empty())
        return ticket; // someone else claimed the set while we waited
    Buffer& claimed = *state_->buffers[state_->fill];
    claimed.slots.clear();
    claimed.slots.swap(state_->slots);
    for (const std::shared_ptr<Slot>& slot : claimed.slots)
        slot->claimed = true;
    CAMP_ASSERT(claimed.wave.size() == claimed.slots.size());
    ticket.buffer_ = state_->fill;
    ticket.count_ = claimed.slots.size();
    ticket.valid_ = true;
    state_->fill = state_->free_buffers.back();
    state_->free_buffers.pop_back();
    if (state_->flushing != 0)
        ++state_->stats.overlapped;
    ++state_->flushing;
    return ticket;
}

SubmitQueue::Ticket
SubmitQueue::begin_flush()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    return begin_flush_locked(lock);
}

std::size_t
SubmitQueue::run_flush(Ticket ticket)
{
    if (!ticket.valid_)
        return 0;
    ticket.valid_ = false;
    Buffer& buffer = *state_->buffers[ticket.buffer_];
    WaveBuffer& wave = buffer.wave;
    std::vector<std::shared_ptr<Slot>>& slots = buffer.slots;

    // Run the coalesced batch outside the lock (the claimed buffer is
    // exclusively ours until published). A device throw must not
    // strand the waiters: the error is recorded on every slot of this
    // flush, category preserved, and each Future rethrows it typed
    // from get().
    std::vector<std::size_t>& items = buffer.items;
    std::vector<std::uint64_t>& indices = buffer.indices;
    items.resize(slots.size());
    indices.resize(slots.size());
    std::iota(items.begin(), items.end(), std::size_t{0});
    std::iota(indices.begin(), indices.end(), std::uint64_t{0});
    sim::BatchResult result;
    ErrorCode error = ErrorCode::Ok;
    std::string error_message;
    {
        support::trace::Span span("exec.queue.flush", "exec");
        span.arg("count", static_cast<double>(slots.size()));
        try {
            result = device_.mul_batch_wave(wave, items, indices,
                                            parallelism_);
        } catch (const std::exception& e) {
            error = error_code_of(e);
            error_message = e.what();
        }
    }

    std::unique_lock<std::mutex> lock(state_->mutex);
    QueueStats& stats = state_->stats;
    if (error != ErrorCode::Ok) {
        for (const std::shared_ptr<Slot>& slot : slots) {
            slot->error = error;
            slot->error_message = error_message;
            slot->ready = true;
        }
        stats.failed += slots.size();
        support::metrics::counter("exec.queue.failed")
            .add(slots.size());
    } else {
        CAMP_ASSERT(result.per_product.size() == slots.size());
        for (std::size_t i = 0; i < slots.size(); ++i) {
            // Delivery edge: the product leaves the wave's lifetime
            // here.
            slots[i]->product = wave.take_result(i);
            slots[i]->injected = result.per_product[i].injected;
            slots[i]->faulty = result.per_product[i].faulty;
            slots[i]->ready = true;
        }
        stats.largest_batch =
            std::max<std::uint64_t>(stats.largest_batch, slots.size());
        stats.sim_cycles += result.cycles;
        stats.sim_tasks += result.tasks;
        stats.injected += result.injected;
        stats.faulty += result.faulty;
        namespace metrics = support::metrics;
        metrics::counter("exec.queue.coalesced").add(slots.size());
        metrics::gauge("exec.queue.batch_max")
            .update_max(static_cast<std::int64_t>(slots.size()));
    }
    const std::size_t count = slots.size();
    ++stats.flushes;
    support::metrics::counter("exec.queue.flushes").add();
    wave.reset();
    slots.clear();
    state_->free_buffers.push_back(ticket.buffer_);
    CAMP_ASSERT(state_->flushing > 0);
    --state_->flushing;
    state_->cv.notify_all();
    return count;
}

std::size_t
SubmitQueue::flush()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->slots.empty()) {
        // Nothing of ours to run, but earlier begun flushes may still
        // be executing; preserve the classic "flush() returns with the
        // device quiet" contract by waiting them out.
        state_->cv.wait(lock,
                        [this] { return state_->flushing == 0; });
        return 0;
    }
    return flush_locked(lock);
}

std::size_t
SubmitQueue::flush_locked(std::unique_lock<std::mutex>& lock)
{
    Ticket ticket = begin_flush_locked(lock);
    if (!ticket.valid())
        return 0;
    lock.unlock();
    const std::size_t count = run_flush(std::move(ticket));
    lock.lock();
    return count;
}

void
SubmitQueue::wait_all()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    for (;;) {
        if (!state_->slots.empty()) {
            flush_locked(lock);
            continue;
        }
        if (state_->flushing != 0) {
            state_->cv.wait(lock, [this] {
                return state_->flushing == 0 ||
                       !state_->slots.empty();
            });
            continue;
        }
        return;
    }
}

std::size_t
SubmitQueue::pending() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->slots.size();
}

unsigned
SubmitQueue::inflight_flushes() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->flushing;
}

QueueStats
SubmitQueue::stats() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->stats;
}

} // namespace camp::exec
