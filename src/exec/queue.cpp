#include "exec/queue.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

bool
SubmitQueue::Future::ready() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    return slot_->ready;
}

void
SubmitQueue::Future::await(std::unique_lock<std::mutex>& lock)
{
    while (!slot_->ready) {
        // Somebody has to run the batch; on a serial host that
        // somebody is us. If a flush is already in flight on another
        // thread, wait for it to publish (our slot may be part of it;
        // if not, the next loop iteration flushes the remainder).
        if (state_->flushing)
            state_->cv.wait(lock);
        else
            queue_->flush_locked(lock);
    }
    if (slot_->error != ErrorCode::Ok)
        throw_error(slot_->error, slot_->error_message);
}

const Natural&
SubmitQueue::Future::get()
{
    CAMP_ASSERT(slot_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    await(lock);
    CAMP_ASSERT(!slot_->taken);
    return slot_->product;
}

Natural
SubmitQueue::Future::take()
{
    CAMP_ASSERT(slot_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    await(lock);
    CAMP_ASSERT(!slot_->taken);
    slot_->taken = true;
    return std::move(slot_->product);
}

ErrorCode
SubmitQueue::Future::error() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->error;
}

std::uint64_t
SubmitQueue::Future::injected() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->injected;
}

bool
SubmitQueue::Future::faulty() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->faulty;
}

SubmitQueue::SubmitQueue(Device& device, std::size_t max_pending,
                         unsigned parallelism)
    : device_(device), max_pending_(max_pending),
      parallelism_(parallelism), state_(std::make_shared<State>())
{
}

SubmitQueue::Future
SubmitQueue::submit(const Natural& a, const Natural& b)
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    // The one operand copy of the zero-copy path: into the fill-side
    // pooled wave, whose storage the whole dispatch chain then shares.
    state_->waves[state_->fill].add(a, b);
    auto slot = std::make_shared<Slot>();
    state_->slots.push_back(slot);
    ++state_->stats.submitted;
    if (max_pending_ != 0 && state_->slots.size() >= max_pending_ &&
        !state_->flushing)
        flush_locked(lock);
    return Future(this, state_, std::move(slot));
}

std::size_t
SubmitQueue::flush()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->flushing) {
        // A drain is in flight; its batch already owns everything we
        // could flush at the time it started. Wait for it instead of
        // racing a second batch.
        state_->cv.wait(lock, [this] { return !state_->flushing; });
        return 0;
    }
    return flush_locked(lock);
}

void
SubmitQueue::wait_all()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    for (;;) {
        if (state_->flushing) {
            state_->cv.wait(lock,
                            [this] { return !state_->flushing; });
            continue;
        }
        if (state_->slots.empty())
            return;
        flush_locked(lock);
    }
}

std::size_t
SubmitQueue::pending() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->slots.size();
}

QueueStats
SubmitQueue::stats() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->stats;
}

std::size_t
SubmitQueue::flush_locked(std::unique_lock<std::mutex>& lock)
{
    CAMP_ASSERT(lock.owns_lock() && !state_->flushing);
    std::vector<std::shared_ptr<Slot>> slots;
    slots.swap(state_->slots);
    if (slots.empty())
        return 0;
    // Flip the pooled double buffer: submissions arriving while the
    // batch runs land in the other wave; only one flush is in flight
    // at a time (`flushing`), so the flipped-out wave is exclusively
    // ours until we reset it below.
    WaveBuffer& wave = state_->waves[state_->fill];
    state_->fill ^= 1u;
    CAMP_ASSERT(wave.size() == slots.size());
    state_->flushing = true;
    lock.unlock();

    // Run the coalesced batch outside the lock. A device throw must
    // not strand the waiters (or leave `flushing` latched): the error
    // is recorded on every slot of this flush, category preserved, and
    // each Future rethrows it typed from get().
    std::vector<std::size_t>& items = state_->wave_items;
    std::vector<std::uint64_t>& indices = state_->wave_indices;
    items.resize(slots.size());
    indices.resize(slots.size());
    std::iota(items.begin(), items.end(), std::size_t{0});
    std::iota(indices.begin(), indices.end(), std::uint64_t{0});
    sim::BatchResult result;
    ErrorCode error = ErrorCode::Ok;
    std::string error_message;
    {
        support::trace::Span span("exec.queue.flush", "exec");
        span.arg("count", static_cast<double>(slots.size()));
        try {
            result = device_.mul_batch_wave(wave, items, indices,
                                            parallelism_);
        } catch (const std::exception& e) {
            error = error_code_of(e);
            error_message = e.what();
        }
    }
    if (error != ErrorCode::Ok) {
        lock.lock();
        for (const std::shared_ptr<Slot>& slot : slots) {
            slot->error = error;
            slot->error_message = error_message;
            slot->ready = true;
        }
        wave.reset();
        QueueStats& stats = state_->stats;
        ++stats.flushes;
        stats.failed += slots.size();
        support::metrics::counter("exec.queue.failed")
            .add(slots.size());
        state_->flushing = false;
        state_->cv.notify_all();
        return slots.size();
    }
    CAMP_ASSERT(result.per_product.size() == slots.size());

    lock.lock();
    for (std::size_t i = 0; i < slots.size(); ++i) {
        // Delivery edge: the product leaves the wave's lifetime here.
        slots[i]->product = wave.take_result(i);
        slots[i]->injected = result.per_product[i].injected;
        slots[i]->faulty = result.per_product[i].faulty;
        slots[i]->ready = true;
    }
    wave.reset();
    QueueStats& stats = state_->stats;
    ++stats.flushes;
    stats.largest_batch =
        std::max<std::uint64_t>(stats.largest_batch, slots.size());
    stats.sim_cycles += result.cycles;
    stats.sim_tasks += result.tasks;
    stats.injected += result.injected;
    stats.faulty += result.faulty;
    namespace metrics = support::metrics;
    metrics::counter("exec.queue.flushes").add();
    metrics::counter("exec.queue.coalesced").add(slots.size());
    metrics::gauge("exec.queue.batch_max")
        .update_max(static_cast<std::int64_t>(slots.size()));
    state_->flushing = false;
    state_->cv.notify_all();
    return slots.size();
}

} // namespace camp::exec
