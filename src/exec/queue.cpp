#include "exec/queue.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

bool
SubmitQueue::Future::ready() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    return slot_->ready;
}

const Natural&
SubmitQueue::Future::get()
{
    CAMP_ASSERT(slot_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    while (!slot_->ready) {
        // Somebody has to run the batch; on a serial host that
        // somebody is us. If a flush is already in flight on another
        // thread, wait for it to publish (our slot may be part of it;
        // if not, the next loop iteration flushes the remainder).
        if (state_->flushing)
            state_->cv.wait(lock);
        else
            queue_->flush_locked(lock);
    }
    if (slot_->error != ErrorCode::Ok)
        throw_error(slot_->error, slot_->error_message);
    return slot_->product;
}

ErrorCode
SubmitQueue::Future::error() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->error;
}

std::uint64_t
SubmitQueue::Future::injected() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->injected;
}

bool
SubmitQueue::Future::faulty() const
{
    CAMP_ASSERT(slot_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    CAMP_ASSERT(slot_->ready);
    return slot_->faulty;
}

SubmitQueue::SubmitQueue(Device& device, std::size_t max_pending,
                         unsigned parallelism)
    : device_(device), max_pending_(max_pending),
      parallelism_(parallelism), state_(std::make_shared<State>())
{
}

SubmitQueue::Future
SubmitQueue::submit(const Natural& a, const Natural& b)
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->pending.emplace_back(a, b);
    auto slot = std::make_shared<Slot>();
    state_->slots.push_back(slot);
    ++state_->stats.submitted;
    if (max_pending_ != 0 && state_->pending.size() >= max_pending_ &&
        !state_->flushing)
        flush_locked(lock);
    return Future(this, state_, std::move(slot));
}

std::size_t
SubmitQueue::flush()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->flushing) {
        // A drain is in flight; its batch already owns everything we
        // could flush at the time it started. Wait for it instead of
        // racing a second batch.
        state_->cv.wait(lock, [this] { return !state_->flushing; });
        return 0;
    }
    return flush_locked(lock);
}

void
SubmitQueue::wait_all()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    for (;;) {
        if (state_->flushing) {
            state_->cv.wait(lock,
                            [this] { return !state_->flushing; });
            continue;
        }
        if (state_->pending.empty())
            return;
        flush_locked(lock);
    }
}

std::size_t
SubmitQueue::pending() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->pending.size();
}

QueueStats
SubmitQueue::stats() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->stats;
}

std::size_t
SubmitQueue::flush_locked(std::unique_lock<std::mutex>& lock)
{
    CAMP_ASSERT(lock.owns_lock() && !state_->flushing);
    std::vector<std::pair<Natural, Natural>> pairs;
    std::vector<std::shared_ptr<Slot>> slots;
    pairs.swap(state_->pending);
    slots.swap(state_->slots);
    if (pairs.empty())
        return 0;
    state_->flushing = true;
    lock.unlock();

    // Run the coalesced batch outside the lock: submissions arriving
    // meanwhile buffer for the next flush. A device throw must not
    // strand the waiters (or leave `flushing` latched): the error is
    // recorded on every slot of this flush, category preserved, and
    // each Future rethrows it typed from get().
    sim::BatchResult result;
    ErrorCode error = ErrorCode::Ok;
    std::string error_message;
    {
        support::trace::Span span("exec.queue.flush", "exec");
        span.arg("count", static_cast<double>(pairs.size()));
        try {
            result = device_.mul_batch(pairs, parallelism_);
        } catch (const std::exception& e) {
            error = error_code_of(e);
            error_message = e.what();
        }
    }
    if (error != ErrorCode::Ok) {
        lock.lock();
        for (const std::shared_ptr<Slot>& slot : slots) {
            slot->error = error;
            slot->error_message = error_message;
            slot->ready = true;
        }
        QueueStats& stats = state_->stats;
        ++stats.flushes;
        stats.failed += slots.size();
        support::metrics::counter("exec.queue.failed")
            .add(slots.size());
        state_->flushing = false;
        state_->cv.notify_all();
        return slots.size();
    }
    CAMP_ASSERT(result.products.size() == slots.size() &&
                result.per_product.size() == slots.size());

    lock.lock();
    for (std::size_t i = 0; i < slots.size(); ++i) {
        slots[i]->product = std::move(result.products[i]);
        slots[i]->injected = result.per_product[i].injected;
        slots[i]->faulty = result.per_product[i].faulty;
        slots[i]->ready = true;
    }
    QueueStats& stats = state_->stats;
    ++stats.flushes;
    stats.largest_batch =
        std::max<std::uint64_t>(stats.largest_batch, slots.size());
    stats.sim_cycles += result.cycles;
    stats.sim_tasks += result.tasks;
    stats.injected += result.injected;
    stats.faulty += result.faulty;
    namespace metrics = support::metrics;
    metrics::counter("exec.queue.flushes").add();
    metrics::counter("exec.queue.coalesced").add(slots.size());
    metrics::gauge("exec.queue.batch_max")
        .update_max(static_cast<std::int64_t>(slots.size()));
    state_->flushing = false;
    state_->cv.notify_all();
    return slots.size();
}

} // namespace camp::exec
