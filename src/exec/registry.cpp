#include "exec/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "exec/analytic_device.hpp"
#include "exec/cpu_device.hpp"
#include "exec/scheduler.hpp"
#include "exec/sim_device.hpp"
#include "support/errors.hpp"

namespace camp::exec {

DeviceRegistry::DeviceRegistry()
{
    factories_.emplace_back("cpu", [](const sim::SimConfig& config) {
        return std::make_unique<CpuDevice>(config);
    });
    factories_.emplace_back("sim", [](const sim::SimConfig& config) {
        return std::make_unique<SimDevice>(config);
    });
    factories_.emplace_back(
        "analytic", [](const sim::SimConfig& config) {
            return std::make_unique<AnalyticDevice>(config);
        });
    // The scheduler builds its shards through this registry; create()
    // invokes factories outside the lock, so the nested create() calls
    // are safe.
    factories_.emplace_back(
        "sharded", [](const sim::SimConfig& config) {
            return std::make_unique<ShardedScheduler>(
                config, shard_policy_from_env());
        });
}

DeviceRegistry&
DeviceRegistry::instance()
{
    static DeviceRegistry* registry = new DeviceRegistry;
    return *registry;
}

void
DeviceRegistry::add(const std::string& name, DeviceFactory factory)
{
    if (name.empty())
        throw InvalidArgument("device name must be non-empty");
    if (!factory)
        throw InvalidArgument("device factory for '" + name +
                              "' is null");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, unused] : factories_)
        if (existing == name)
            throw InvalidArgument("device '" + name +
                                  "' is already registered");
    factories_.emplace_back(name, std::move(factory));
}

bool
DeviceRegistry::contains(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, unused] : factories_)
        if (existing == name)
            return true;
    return false;
}

std::vector<std::string>
DeviceRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, unused] : factories_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

std::unique_ptr<Device>
DeviceRegistry::create(const std::string& name,
                       const sim::SimConfig& config) const
{
    DeviceFactory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [existing, candidate] : factories_)
            if (existing == name)
                factory = candidate;
    }
    if (!factory) {
        std::ostringstream message;
        message << "unknown execution backend '" << name
                << "' (available:";
        for (const std::string& known : names())
            message << ' ' << known;
        message << ")";
        throw InvalidArgument(message.str());
    }
    return factory(sim::validated(config));
}

std::string
default_device_name(const char* fallback)
{
    const char* env = std::getenv("CAMP_BACKEND");
    if (env != nullptr && env[0] != '\0')
        return env;
    return fallback;
}

std::unique_ptr<Device>
make_device(const std::string& name, const sim::SimConfig& config)
{
    return DeviceRegistry::instance().create(name, config);
}

} // namespace camp::exec
