#include "exec/sim_device.hpp"

namespace camp::exec {

using mpn::Natural;

SimDevice::SimDevice(const sim::SimConfig& config)
    : config_(sim::validated(config)),
      core_(config_, sim::Fidelity::Fast, /*validate=*/false),
      analytic_(config_),
      energy_(sim::cambricon_p_energy(config_))
{
    tuning_ = apply_device_env_tuning(
        "sim", retuned_for_cap(config_.monolithic_cap_bits));
}

MulOutcome
SimDevice::mul(const Natural& a, const Natural& b)
{
    MulOutcome outcome;
    outcome.product = core_.multiply(a, b).product;
    if (const FaultEngine* engine = core_.fault_engine()) {
        const std::uint64_t now = engine->total_injected();
        outcome.injected = now - injected_seen_;
        injected_seen_ = now;
    }
    return outcome;
}

sim::BatchResult
SimDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    // Validation always on: without faults it asserts exactness
    // (library bug otherwise); with faults armed mismatching products
    // are the expected detection path, counted in BatchResult::faulty.
    sim::BatchEngine engine(config_, /*validate=*/true);
    return engine.multiply_batch(pairs, parallelism);
}

sim::BatchResult
SimDevice::mul_batch_indexed(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    sim::BatchEngine engine(config_, /*validate=*/true);
    return engine.multiply_batch(pairs, parallelism, &indices);
}

CostEstimate
SimDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    const sim::CoreStats stats =
        analytic_.multiply_stats(bits_a, bits_b);
    CostEstimate estimate;
    estimate.cycles = static_cast<double>(stats.cycles);
    estimate.seconds = stats.seconds(config_);
    estimate.energy_j = energy_.energy(stats, config_);
    return estimate;
}

} // namespace camp::exec
