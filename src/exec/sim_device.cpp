#include "exec/sim_device.hpp"

#include <cstring>
#include <utility>

#include "exec/wave.hpp"
#include "support/assert.hpp"

namespace camp::exec {

using mpn::Natural;

SimDevice::SimDevice(const sim::SimConfig& config)
    : config_(sim::validated(config)),
      core_(config_, sim::Fidelity::Fast, /*validate=*/false),
      analytic_(config_),
      energy_(sim::cambricon_p_energy(config_))
{
    tuning_ = apply_device_env_tuning(
        "sim", retuned_for_cap(config_.monolithic_cap_bits));
}

MulOutcome
SimDevice::mul(const Natural& a, const Natural& b)
{
    MulOutcome outcome;
    outcome.product = core_.multiply(a, b).product;
    if (const FaultEngine* engine = core_.fault_engine()) {
        const std::uint64_t now = engine->total_injected();
        outcome.injected = now - injected_seen_;
        injected_seen_ = now;
    }
    return outcome;
}

sim::BatchResult
SimDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    // Validation always on: without faults it asserts exactness
    // (library bug otherwise); with faults armed mismatching products
    // are the expected detection path, counted in BatchResult::faulty.
    sim::BatchEngine engine(config_, /*validate=*/true);
    return engine.multiply_batch(pairs, parallelism);
}

sim::BatchResult
SimDevice::mul_batch_indexed(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    sim::BatchEngine engine(config_, /*validate=*/true);
    return engine.multiply_batch(pairs, parallelism, &indices);
}

sim::BatchResult
SimDevice::mul_batch_wave(WaveBuffer& wave,
                          const std::vector<std::size_t>& items,
                          const std::vector<std::uint64_t>& indices,
                          unsigned parallelism)
{
    CAMP_ASSERT(indices.size() == items.size());
    std::vector<std::pair<mpn::LimbView, mpn::LimbView>> views;
    views.reserve(items.size());
    for (const std::size_t item : items)
        views.emplace_back(wave.operand_a(item), wave.operand_b(item));
    sim::BatchEngine engine(config_, /*validate=*/true);
    sim::BatchResult result = engine.multiply_batch_views(
        views.data(), views.size(), parallelism, &indices);
    CAMP_ASSERT(result.products.size() == items.size());
    // The gathered products come out of the simulated core's SRAM;
    // publish them into the wave's result slots (stream-out).
    for (std::size_t k = 0; k < items.size(); ++k) {
        const mpn::Natural& product = result.products[k];
        const std::size_t item = items[k];
        std::size_t n = product.size();
        if (n > wave.result_capacity(item)) {
            // Exact products fit an + bn limbs by construction; only a
            // fault-corrupted product can overflow, and it is already
            // counted faulty — clamp (corrupted values carry no
            // contractual content).
            CAMP_ASSERT(result.per_product[k].faulty);
            n = wave.result_capacity(item);
        }
        if (n != 0)
            std::memcpy(wave.result_ptr(item), product.data(),
                        n * sizeof(mpn::Limb));
        wave.set_result_size(item, n);
    }
    result.products.clear();
    return result;
}

CostEstimate
SimDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    const sim::CoreStats stats =
        analytic_.multiply_stats(bits_a, bits_b);
    CostEstimate estimate;
    estimate.cycles = static_cast<double>(stats.cycles);
    estimate.seconds = stats.seconds(config_);
    estimate.energy_j = energy_.energy(stats, config_);
    return estimate;
}

} // namespace camp::exec
