#include "exec/analytic_device.hpp"

#include "mpn/ophook.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace camp::exec {

using mpn::Natural;

AnalyticDevice::AnalyticDevice(const sim::SimConfig& config)
    : config_(sim::validated(config)),
      analytic_(config_),
      energy_(sim::cambricon_p_energy(config_))
{
    tuning_ = apply_device_env_tuning(
        "analytic", retuned_for_cap(config_.monolithic_cap_bits));
}

MulOutcome
AnalyticDevice::mul(const Natural& a, const Natural& b)
{
    // Device-internal arithmetic, not application kernel work.
    mpn::OpHookSuspend suspend;
    return MulOutcome{a * b, 0};
}

sim::BatchResult
AnalyticDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    support::trace::Span span("exec.analytic.mul_batch", "exec");
    span.arg("count", static_cast<double>(pairs.size()));
    sim::BatchResult result;
    const std::size_t count = pairs.size();
    result.products.resize(count);
    result.per_product.resize(count);

    support::ThreadPool& pool = support::ThreadPool::global();
    const bool fork = parallelism != 1 && count > 1 &&
                      pool.parallel() && support::parallel_allowed();
    result.parallelism = fork ? pool.executors() : 1;
    const auto one = [this, &pairs, &result](std::size_t i) {
        mpn::OpHookSuspend suspend;
        const Natural& a = pairs[i].first;
        const Natural& b = pairs[i].second;
        sim::BatchProductStats& stats = result.per_product[i];
        if (a.is_zero() || b.is_zero())
            return; // zero product, zero accounting (BatchEngine rule)
        CAMP_ASSERT(a.bits() <= config_.monolithic_cap_bits &&
                    b.bits() <= config_.monolithic_cap_bits);
        result.products[i] = a * b;
        const sim::CoreStats per =
            analytic_.multiply_stats(a.bits(), b.bits());
        stats.tasks = per.tasks;
        stats.bytes = per.bytes;
    };
    if (fork) {
        support::TaskGroup group(pool);
        for (std::size_t i = 1; i < count; ++i)
            group.run([&one, i] { one(i); });
        one(0);
        group.wait();
    } else {
        for (std::size_t i = 0; i < count; ++i)
            one(i);
    }

    for (const sim::BatchProductStats& stats : result.per_product) {
        result.tasks += stats.tasks;
        result.bytes += stats.bytes;
    }
    // Same wave pooling as sim::BatchEngine: independent products pack
    // the whole fabric, memory time is pooled traffic at the
    // duty-limited LLC bandwidth (no injected stalls: the model is
    // fault-free by construction).
    result.waves = (result.tasks + config_.total_ipus() - 1) /
                   config_.total_ipus();
    const std::uint64_t compute = result.waves * config_.limb_bits;
    const double bpc = config_.llc_bytes_per_cycle();
    const std::uint64_t memory_cycles = static_cast<std::uint64_t>(
        static_cast<double>(result.bytes) / bpc + 0.999999);
    result.cycles = std::max<std::uint64_t>(compute, memory_cycles);
    return result;
}

CostEstimate
AnalyticDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    const sim::CoreStats stats =
        analytic_.multiply_stats(bits_a, bits_b);
    CostEstimate estimate;
    estimate.cycles = static_cast<double>(stats.cycles);
    estimate.seconds = stats.seconds(config_);
    estimate.energy_j = energy_.energy(stats, config_);
    return estimate;
}

} // namespace camp::exec
