/**
 * @file
 * AnalyticDevice: the modelled Cambricon-P backend. Products are
 * computed exactly through the mpn kernels (so results stay
 * bit-identical with every other backend) while cycle/energy
 * accounting comes from the calibrated analytic model — the right
 * tool for large design-space sweeps where functional simulation of
 * every base product would be pointlessly slow (the same trade the
 * MPApca cost model makes, paper §V-C).
 */
#ifndef CAMP_EXEC_ANALYTIC_DEVICE_HPP
#define CAMP_EXEC_ANALYTIC_DEVICE_HPP

#include "exec/device.hpp"
#include "sim/analytic_model.hpp"
#include "sim/config.hpp"
#include "sim/tech_model.hpp"

namespace camp::exec {

class AnalyticDevice : public Device
{
  public:
    explicit AnalyticDevice(const sim::SimConfig& config =
                                sim::default_config());

    const char* name() const override { return "analytic"; }
    DeviceKind kind() const override { return DeviceKind::Model; }
    std::uint64_t base_cap_bits() const override
    {
        return config_.monolithic_cap_bits;
    }

    MulOutcome mul(const mpn::Natural& a,
                   const mpn::Natural& b) override;

    /** Batch accounting mirrors sim::BatchEngine's wave pooling —
     * tasks from independent products pack the whole fabric — with
     * per-product task/byte counts from the analytic schedule. */
    sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) override;

    CostEstimate cost(std::uint64_t bits_a,
                      std::uint64_t bits_b) const override;

    const sim::SimConfig& config() const { return config_; }

  private:
    sim::SimConfig config_;
    sim::AnalyticModel analytic_;
    sim::EnergyModel energy_;
};

} // namespace camp::exec

#endif // CAMP_EXEC_ANALYTIC_DEVICE_HPP
