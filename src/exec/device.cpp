#include "exec/device.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/wave.hpp"
#include "support/assert.hpp"

namespace camp::exec {

sim::BatchResult
Device::mul_batch_indexed(
    const std::vector<std::pair<mpn::Natural, mpn::Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    CAMP_ASSERT(indices.size() == pairs.size());
    return mul_batch(pairs, parallelism);
}

sim::BatchResult
Device::mul_batch_wave(WaveBuffer& wave,
                       const std::vector<std::size_t>& items,
                       const std::vector<std::uint64_t>& indices,
                       unsigned parallelism)
{
    // Reference implementation: materialize the operands, run the
    // established indexed batch path (fault streams keyed by the
    // wave-global indices, so determinism is inherited), then move the
    // products into the wave's result slots. Backends override this to
    // eliminate the copies; results are bit-identical either way.
    CAMP_ASSERT(indices.size() == items.size());
    std::vector<std::pair<mpn::Natural, mpn::Natural>> pairs;
    pairs.reserve(items.size());
    for (const std::size_t item : items)
        pairs.push_back(wave.operand_pair(item));
    sim::BatchResult result =
        mul_batch_indexed(pairs, indices, parallelism);
    CAMP_ASSERT(result.products.size() == items.size());
    for (std::size_t k = 0; k < items.size(); ++k) {
        const mpn::Natural& product = result.products[k];
        const std::size_t item = items[k];
        std::size_t n = product.size();
        if (n > wave.result_capacity(item)) {
            // An exact product always fits in an + bn limbs; only an
            // injected-fault corruption can overflow, and it is
            // already counted faulty — clamp to the slot (corrupted
            // values carry no contractual content).
            CAMP_ASSERT(result.per_product[k].faulty);
            n = wave.result_capacity(item);
        }
        if (n != 0)
            std::memcpy(wave.result_ptr(item), product.data(),
                        n * sizeof(mpn::Limb));
        wave.set_result_size(item, n);
    }
    result.products.clear();
    return result;
}

const char*
device_kind_name(DeviceKind kind)
{
    switch (kind) {
    case DeviceKind::Host: return "host";
    case DeviceKind::Accelerator: return "accelerator";
    case DeviceKind::Model: return "model";
    }
    return "?";
}

mpn::MulTuning
retuned_for_cap(std::uint64_t cap_bits)
{
    mpn::MulTuning t;
    // The hardware executes everything up to the base case
    // monolithically, so the first software algorithm (Karatsuba)
    // engages only above it and Toom-3 above six base cases — the
    // same "fast algorithms delayed accordingly" policy the cost
    // model uses (paper §VII-B, 35904-bit base case).
    const std::uint64_t cap_limbs =
        std::max<std::uint64_t>(2, cap_bits / mpn::kLimbBits);
    t.karatsuba = static_cast<std::size_t>(cap_limbs);
    t.toom3 = static_cast<std::size_t>(6 * cap_limbs);
    t.toom4 = 4 * t.toom3;
    t.toom6 = 4 * t.toom4;
    t.ssa = 4 * t.toom6;
    return t;
}

mpn::MulTuning
apply_device_env_tuning(const char* device_name, mpn::MulTuning tuning)
{
    std::string prefix = "CAMP_";
    for (const char* p = device_name; *p != '\0'; ++p)
        prefix += static_cast<char>(
            std::toupper(static_cast<unsigned char>(*p)));
    prefix += "_MUL_THRESH_";
    const auto apply = [&prefix](const char* field, std::size_t& value) {
        const std::string name = prefix + field;
        if (const char* env = std::getenv(name.c_str())) {
            const long long v = std::strtoll(env, nullptr, 10);
            if (v >= 1)
                value = static_cast<std::size_t>(v);
        }
    };
    apply("KARATSUBA", tuning.karatsuba);
    apply("TOOM3", tuning.toom3);
    apply("TOOM4", tuning.toom4);
    apply("TOOM6", tuning.toom6);
    apply("SSA", tuning.ssa);
    apply("PARALLEL", tuning.parallel);
    return tuning;
}

} // namespace camp::exec
