#include "exec/device.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

#include "support/assert.hpp"

namespace camp::exec {

sim::BatchResult
Device::mul_batch_indexed(
    const std::vector<std::pair<mpn::Natural, mpn::Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    CAMP_ASSERT(indices.size() == pairs.size());
    return mul_batch(pairs, parallelism);
}

const char*
device_kind_name(DeviceKind kind)
{
    switch (kind) {
    case DeviceKind::Host: return "host";
    case DeviceKind::Accelerator: return "accelerator";
    case DeviceKind::Model: return "model";
    }
    return "?";
}

mpn::MulTuning
retuned_for_cap(std::uint64_t cap_bits)
{
    mpn::MulTuning t;
    // The hardware executes everything up to the base case
    // monolithically, so the first software algorithm (Karatsuba)
    // engages only above it and Toom-3 above six base cases — the
    // same "fast algorithms delayed accordingly" policy the cost
    // model uses (paper §VII-B, 35904-bit base case).
    const std::uint64_t cap_limbs =
        std::max<std::uint64_t>(2, cap_bits / mpn::kLimbBits);
    t.karatsuba = static_cast<std::size_t>(cap_limbs);
    t.toom3 = static_cast<std::size_t>(6 * cap_limbs);
    t.toom4 = 4 * t.toom3;
    t.toom6 = 4 * t.toom4;
    t.ssa = 4 * t.toom6;
    return t;
}

mpn::MulTuning
apply_device_env_tuning(const char* device_name, mpn::MulTuning tuning)
{
    std::string prefix = "CAMP_";
    for (const char* p = device_name; *p != '\0'; ++p)
        prefix += static_cast<char>(
            std::toupper(static_cast<unsigned char>(*p)));
    prefix += "_MUL_THRESH_";
    const auto apply = [&prefix](const char* field, std::size_t& value) {
        const std::string name = prefix + field;
        if (const char* env = std::getenv(name.c_str())) {
            const long long v = std::strtoll(env, nullptr, 10);
            if (v >= 1)
                value = static_cast<std::size_t>(v);
        }
    };
    apply("KARATSUBA", tuning.karatsuba);
    apply("TOOM3", tuning.toom3);
    apply("TOOM4", tuning.toom4);
    apply("TOOM6", tuning.toom6);
    apply("SSA", tuning.ssa);
    apply("PARALLEL", tuning.parallel);
    return tuning;
}

} // namespace camp::exec
