#include "exec/wave.hpp"

#include <algorithm>
#include <cstring>

#include "support/assert.hpp"

namespace camp::exec {

using mpn::Limb;

WaveBuffer::WaveBuffer(support::LimbArena& arena) : arena_(arena) {}

WaveBuffer::~WaveBuffer()
{
    release();
}

Limb*
WaveBuffer::carve(std::size_t words)
{
    if (words == 0)
        return nullptr;
    while (cursor_ < segments_.size() &&
           segments_[cursor_].capacity - segments_[cursor_].used < words)
        ++cursor_; // tail waste; reclaimed by the next reset()
    if (cursor_ == segments_.size()) {
        const std::size_t want = std::max(
            {segments_.empty() ? kFirstSegmentWords
                               : segments_.back().capacity * 2,
             words, kFirstSegmentWords});
        const std::size_t cap = support::LimbArena::size_class_words(want);
        Segment segment{arena_.alloc(cap), cap, 0};
        // The uncarved extent stays poisoned; carve() unpoisons exactly
        // what is handed out, so an out-of-item access faults.
        support::asan_poison(segment.ptr, cap * sizeof(Limb));
        segments_.push_back(segment);
    }
    Segment& segment = segments_[cursor_];
    Limb* p = segment.ptr + segment.used;
    segment.used += words;
    support::asan_unpoison(p, words * sizeof(Limb));
    return p;
}

std::size_t
WaveBuffer::add(const mpn::Natural& a, const mpn::Natural& b)
{
    Item item;
    item.an = a.size();
    item.bn = b.size();
    if (item.an != 0) {
        Limb* ap = carve(item.an);
        std::memcpy(ap, a.data(), item.an * sizeof(Limb));
        item.a = ap;
    }
    if (item.bn != 0) {
        Limb* bp = carve(item.bn);
        std::memcpy(bp, b.data(), item.bn * sizeof(Limb));
        item.b = bp;
    }
    // Result storage is reserved eagerly: wave execution then only
    // reads bookkeeping, so concurrent shard tasks writing disjoint
    // items never race on this buffer.
    if (item.an != 0 && item.bn != 0) {
        item.r_cap = item.an + item.bn;
        item.r = carve(item.r_cap);
    }
    items_.push_back(item);
    return items_.size() - 1;
}

void
WaveBuffer::set_result_size(std::size_t i, std::size_t used)
{
    Item& item = items_[i];
    CAMP_ASSERT(used <= item.r_cap);
    while (used > 0 && item.r[used - 1] == 0)
        --used;
    item.r_len = used;
}

void
WaveBuffer::reset()
{
    items_.clear();
    for (Segment& segment : segments_) {
        support::asan_poison(segment.ptr,
                             segment.capacity * sizeof(Limb));
        segment.used = 0;
    }
    cursor_ = 0;
    ++generation_;
}

void
WaveBuffer::release()
{
    reset();
    for (Segment& segment : segments_)
        arena_.release(segment.ptr, segment.capacity);
    segments_.clear();
}

std::size_t
WaveBuffer::capacity_words() const
{
    std::size_t total = 0;
    for (const Segment& segment : segments_)
        total += segment.capacity;
    return total;
}

} // namespace camp::exec
