/**
 * @file
 * The paper's `zkcm` benchmark [49]: multiprecision complex matrix
 * computation with applications in quantum information. This module
 * provides arbitrary-precision complex matrices (the core of the ZKCM
 * library) and a quantum-circuit simulation built on them: gate
 * matrices are expanded over n qubits via Kronecker products and
 * multiplied at full precision, so the dominant cost is multiprecision
 * complex matrix multiplication.
 */
#ifndef CAMP_APPS_ZKCM_ZKCM_HPP
#define CAMP_APPS_ZKCM_ZKCM_HPP

#include <cstdint>
#include <vector>

#include "mpf/float.hpp"

namespace camp::apps::zkcm {

using mpf::Float;

/** Arbitrary-precision complex number. */
struct Complex
{
    Float re;
    Float im;

    static Complex zero(std::uint64_t prec);
    static Complex one(std::uint64_t prec);

    friend Complex operator+(const Complex& a, const Complex& b);
    friend Complex operator-(const Complex& a, const Complex& b);
    friend Complex operator*(const Complex& a, const Complex& b);

    /** Complex conjugate. */
    Complex conj() const;

    /** |z|^2 as Float. */
    Float norm2() const;
};

/** Dense multiprecision complex matrix (row major). */
class CMatrix
{
  public:
    CMatrix(std::size_t rows, std::size_t cols, std::uint64_t prec);

    static CMatrix identity(std::size_t n, std::uint64_t prec);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::uint64_t prec() const { return prec_; }

    Complex& at(std::size_t r, std::size_t c);
    const Complex& at(std::size_t r, std::size_t c) const;

    friend CMatrix operator*(const CMatrix& a, const CMatrix& b);
    friend CMatrix operator+(const CMatrix& a, const CMatrix& b);

    /** Conjugate transpose. */
    CMatrix dagger() const;

    /** Kronecker product. */
    static CMatrix kron(const CMatrix& a, const CMatrix& b);

    /** max_ij |a_ij - b_ij|^2 as a double (deviation metric). */
    static double max_abs2_diff(const CMatrix& a, const CMatrix& b);

  private:
    std::size_t rows_, cols_;
    std::uint64_t prec_;
    std::vector<Complex> data_;
};

/** Standard gates at precision @p prec. */
CMatrix hadamard(std::uint64_t prec);
CMatrix pauli_x(std::uint64_t prec);
CMatrix phase_gate(std::uint64_t prec, unsigned k); ///< R_k: diag(1, e^{2pi i/2^k})
CMatrix cnot(std::uint64_t prec);

/**
 * Build the n-qubit quantum Fourier transform matrix by multiplying
 * expanded gate layers at precision @p prec — the multiprecision
 * matrix-product workload of zkcm. Returns the resulting unitary.
 */
CMatrix qft_circuit(unsigned qubits, std::uint64_t prec);

/** Unitarity deviation: max |(U U† - I)_ij|^2. */
double unitarity_error(const CMatrix& u);

} // namespace camp::apps::zkcm

#endif // CAMP_APPS_ZKCM_ZKCM_HPP
