/**
 * @file
 * State-vector quantum simulation over multiprecision complex
 * amplitudes — the second zkcm workload shape [49]: instead of
 * materializing 2^n x 2^n gate matrices, gates act locally on a
 * 2^n-amplitude state vector, which is how multiprecision quantum
 * simulators run larger registers.
 *
 * Qubit 0 is the most significant bit of the basis index, matching
 * the matrix expansion in zkcm.hpp.
 */
#ifndef CAMP_APPS_ZKCM_STATEVECTOR_HPP
#define CAMP_APPS_ZKCM_STATEVECTOR_HPP

#include <cstdint>
#include <vector>

#include "apps/zkcm/zkcm.hpp"

namespace camp::apps::zkcm {

/** 2^n-amplitude register at a given precision. */
class StateVector
{
  public:
    StateVector(unsigned qubits, std::uint64_t prec);

    /** Computational basis state |index>. */
    static StateVector basis(unsigned qubits, std::size_t index,
                             std::uint64_t prec);

    unsigned qubits() const { return qubits_; }
    std::size_t dim() const { return amps_.size(); }
    std::uint64_t prec() const { return prec_; }

    const Complex& amplitude(std::size_t i) const { return amps_[i]; }
    Complex& amplitude(std::size_t i) { return amps_[i]; }

    /** Apply a 2x2 unitary to @p target. */
    void apply_single(const CMatrix& u, unsigned target);

    /** Apply a controlled 2x2 unitary (control must be |1>). */
    void apply_controlled(const CMatrix& u, unsigned control,
                          unsigned target);

    /** Swap two qubits. */
    void swap_qubits(unsigned a, unsigned b);

    /** sum |amp|^2 (1 for normalized states). */
    Float norm2() const;

    /** max |this_i - other_i|^2 as double. */
    static double max_abs2_diff(const StateVector& a,
                                const StateVector& b);

  private:
    unsigned qubits_;
    std::uint64_t prec_;
    std::vector<Complex> amps_;
};

/** In-place QFT on the register (Hadamard + controlled phases + final
 * qubit reversal), same unitary as qft_circuit(). */
void apply_qft(StateVector& state);

} // namespace camp::apps::zkcm

#endif // CAMP_APPS_ZKCM_STATEVECTOR_HPP
