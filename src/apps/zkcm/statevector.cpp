#include "apps/zkcm/statevector.hpp"

#include "support/assert.hpp"

namespace camp::apps::zkcm {

StateVector::StateVector(unsigned qubits, std::uint64_t prec)
    : qubits_(qubits), prec_(prec),
      amps_(std::size_t{1} << qubits, Complex::zero(prec))
{
    CAMP_ASSERT(qubits >= 1 && qubits <= 24);
}

StateVector
StateVector::basis(unsigned qubits, std::size_t index,
                   std::uint64_t prec)
{
    StateVector state(qubits, prec);
    CAMP_ASSERT(index < state.dim());
    state.amps_[index] = Complex::one(prec);
    return state;
}

void
StateVector::apply_single(const CMatrix& u, unsigned target)
{
    CAMP_ASSERT(u.rows() == 2 && u.cols() == 2 && target < qubits_);
    const std::size_t stride = std::size_t{1}
                               << (qubits_ - 1 - target);
    for (std::size_t base = 0; base < amps_.size(); ++base) {
        if (base & stride)
            continue; // handled with its partner
        const std::size_t hi = base | stride;
        const Complex a0 = amps_[base];
        const Complex a1 = amps_[hi];
        amps_[base] = u.at(0, 0) * a0 + u.at(0, 1) * a1;
        amps_[hi] = u.at(1, 0) * a0 + u.at(1, 1) * a1;
    }
}

void
StateVector::apply_controlled(const CMatrix& u, unsigned control,
                              unsigned target)
{
    CAMP_ASSERT(control != target && control < qubits_ &&
                target < qubits_);
    const std::size_t cmask = std::size_t{1}
                              << (qubits_ - 1 - control);
    const std::size_t stride = std::size_t{1}
                               << (qubits_ - 1 - target);
    for (std::size_t base = 0; base < amps_.size(); ++base) {
        if ((base & stride) || !(base & cmask))
            continue;
        const std::size_t hi = base | stride;
        const Complex a0 = amps_[base];
        const Complex a1 = amps_[hi];
        amps_[base] = u.at(0, 0) * a0 + u.at(0, 1) * a1;
        amps_[hi] = u.at(1, 0) * a0 + u.at(1, 1) * a1;
    }
}

void
StateVector::swap_qubits(unsigned a, unsigned b)
{
    if (a == b)
        return;
    const std::size_t ma = std::size_t{1} << (qubits_ - 1 - a);
    const std::size_t mb = std::size_t{1} << (qubits_ - 1 - b);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        const bool bit_a = i & ma;
        const bool bit_b = i & mb;
        if (bit_a && !bit_b) {
            const std::size_t j = (i & ~ma) | mb;
            std::swap(amps_[i], amps_[j]);
        }
    }
}

Float
StateVector::norm2() const
{
    Float total = Float::with_prec(prec_);
    for (const Complex& amp : amps_)
        total += amp.norm2();
    return total;
}

double
StateVector::max_abs2_diff(const StateVector& a, const StateVector& b)
{
    CAMP_ASSERT(a.dim() == b.dim());
    double max_err = 0;
    for (std::size_t i = 0; i < a.dim(); ++i) {
        const Complex d = a.amps_[i] - b.amps_[i];
        max_err = std::max(max_err, d.norm2().to_double());
    }
    return max_err;
}

void
apply_qft(StateVector& state)
{
    const unsigned n = state.qubits();
    const std::uint64_t prec = state.prec();
    const CMatrix h = hadamard(prec);
    for (unsigned q = 0; q < n; ++q) {
        state.apply_single(h, q);
        for (unsigned next = q + 1; next < n; ++next)
            state.apply_controlled(phase_gate(prec, next - q + 1), next,
                                   q);
    }
}

} // namespace camp::apps::zkcm
