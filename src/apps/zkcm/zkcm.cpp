#include "apps/zkcm/zkcm.hpp"

#include <stdexcept>

#include "mpf/elementary.hpp"
#include "mpn/natural.hpp"
#include "support/assert.hpp"

namespace camp::apps::zkcm {

using mpn::Natural;

Complex
Complex::zero(std::uint64_t prec)
{
    return {Float::with_prec(prec), Float::with_prec(prec)};
}

Complex
Complex::one(std::uint64_t prec)
{
    return {Float::from_natural(Natural(1), prec),
            Float::with_prec(prec)};
}

Complex
operator+(const Complex& a, const Complex& b)
{
    return {a.re + b.re, a.im + b.im};
}

Complex
operator-(const Complex& a, const Complex& b)
{
    return {a.re - b.re, a.im - b.im};
}

Complex
operator*(const Complex& a, const Complex& b)
{
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

Complex
Complex::conj() const
{
    return {re, -im};
}

Float
Complex::norm2() const
{
    return re * re + im * im;
}

CMatrix::CMatrix(std::size_t rows, std::size_t cols, std::uint64_t prec)
    : rows_(rows), cols_(cols), prec_(prec),
      data_(rows * cols, Complex::zero(prec))
{
}

CMatrix
CMatrix::identity(std::size_t n, std::uint64_t prec)
{
    CMatrix m(n, n, prec);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = Complex::one(prec);
    return m;
}

Complex&
CMatrix::at(std::size_t r, std::size_t c)
{
    CAMP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

const Complex&
CMatrix::at(std::size_t r, std::size_t c) const
{
    CAMP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

CMatrix
operator*(const CMatrix& a, const CMatrix& b)
{
    if (a.cols() != b.rows())
        throw std::invalid_argument("CMatrix: dimension mismatch");
    CMatrix r(a.rows(), b.cols(), std::max(a.prec(), b.prec()));
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            Complex acc = Complex::zero(r.prec());
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc = acc + a.at(i, k) * b.at(k, j);
            r.at(i, j) = acc;
        }
    }
    return r;
}

CMatrix
operator+(const CMatrix& a, const CMatrix& b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument("CMatrix: dimension mismatch");
    CMatrix r(a.rows(), a.cols(), std::max(a.prec(), b.prec()));
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            r.at(i, j) = a.at(i, j) + b.at(i, j);
    return r;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix r(cols_, rows_, prec_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            r.at(j, i) = at(i, j).conj();
    return r;
}

CMatrix
CMatrix::kron(const CMatrix& a, const CMatrix& b)
{
    CMatrix r(a.rows() * b.rows(), a.cols() * b.cols(),
              std::max(a.prec(), b.prec()));
    for (std::size_t ar = 0; ar < a.rows(); ++ar)
        for (std::size_t ac = 0; ac < a.cols(); ++ac)
            for (std::size_t br = 0; br < b.rows(); ++br)
                for (std::size_t bc = 0; bc < b.cols(); ++bc)
                    r.at(ar * b.rows() + br, ac * b.cols() + bc) =
                        a.at(ar, ac) * b.at(br, bc);
    return r;
}

double
CMatrix::max_abs2_diff(const CMatrix& a, const CMatrix& b)
{
    CAMP_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
    double max_err = 0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const Complex d = a.at(i, j) - b.at(i, j);
            max_err = std::max(max_err, d.norm2().to_double());
        }
    }
    return max_err;
}

CMatrix
hadamard(std::uint64_t prec)
{
    // 1/sqrt(2) at full precision.
    const Float inv_sqrt2 =
        Float::from_natural(Natural(1), prec) /
        Float::sqrt(Float::from_natural(Natural(2), prec));
    CMatrix h(2, 2, prec);
    h.at(0, 0).re = inv_sqrt2;
    h.at(0, 1).re = inv_sqrt2;
    h.at(1, 0).re = inv_sqrt2;
    h.at(1, 1).re = -inv_sqrt2;
    return h;
}

CMatrix
pauli_x(std::uint64_t prec)
{
    CMatrix x(2, 2, prec);
    x.at(0, 1) = Complex::one(prec);
    x.at(1, 0) = Complex::one(prec);
    return x;
}

CMatrix
phase_gate(std::uint64_t prec, unsigned k)
{
    // R_k = diag(1, e^{2 pi i / 2^k}), computed from multiprecision
    // sin/cos — the MPFR-layer transcendental path of Figure 1.
    const Float pi = mpf::pi_float(prec);
    const Float two_pi_over =
        (pi + pi).ldexp(-static_cast<std::int64_t>(k));
    CMatrix r(2, 2, prec);
    r.at(0, 0) = Complex::one(prec);
    r.at(1, 1) = {mpf::cos(two_pi_over, prec),
                  mpf::sin(two_pi_over, prec)};
    return r;
}

CMatrix
cnot(std::uint64_t prec)
{
    CMatrix c(4, 4, prec);
    c.at(0, 0) = Complex::one(prec);
    c.at(1, 1) = Complex::one(prec);
    c.at(2, 3) = Complex::one(prec);
    c.at(3, 2) = Complex::one(prec);
    return c;
}

namespace {

/** Controlled version of a 2x2 unitary between two adjacent-expanded
 * qubits of an n-qubit register (control c, target t). */
CMatrix
controlled_expand(const CMatrix& u, unsigned qubits, unsigned control,
                  unsigned target, std::uint64_t prec)
{
    const std::size_t dim = std::size_t{1} << qubits;
    CMatrix m(dim, dim, prec);
    for (std::size_t basis = 0; basis < dim; ++basis) {
        const bool ctrl_set = (basis >> (qubits - 1 - control)) & 1;
        const std::size_t tbit = (basis >> (qubits - 1 - target)) & 1;
        if (!ctrl_set) {
            m.at(basis, basis) = Complex::one(prec);
            continue;
        }
        // Apply u on the target bit.
        for (std::size_t out_bit = 0; out_bit < 2; ++out_bit) {
            const Complex amp = u.at(out_bit, tbit);
            const std::size_t out_basis =
                (basis & ~(std::size_t{1} << (qubits - 1 - target))) |
                (out_bit << (qubits - 1 - target));
            m.at(out_basis, basis) = m.at(out_basis, basis) + amp;
        }
    }
    return m;
}

/** Expand a 2x2 gate on one qubit to the full register. */
CMatrix
expand_single(const CMatrix& u, unsigned qubits, unsigned position,
              std::uint64_t prec)
{
    CMatrix m = position == 0 ? u : CMatrix::identity(2, prec);
    for (unsigned qubit = 1; qubit < qubits; ++qubit) {
        const CMatrix& next = qubit == position
                                  ? u
                                  : CMatrix::identity(2, prec);
        m = CMatrix::kron(m, next);
    }
    return m;
}

} // namespace

CMatrix
qft_circuit(unsigned qubits, std::uint64_t prec)
{
    CAMP_ASSERT(qubits >= 1 && qubits <= 8);
    const std::size_t dim = std::size_t{1} << qubits;
    CMatrix u = CMatrix::identity(dim, prec);
    for (unsigned q = 0; q < qubits; ++q) {
        u = expand_single(hadamard(prec), qubits, q, prec) * u;
        for (unsigned next = q + 1; next < qubits; ++next) {
            const CMatrix rk = phase_gate(prec, next - q + 1);
            u = controlled_expand(rk, qubits, next, q, prec) * u;
        }
    }
    return u;
}

double
unitarity_error(const CMatrix& u)
{
    const CMatrix product = u * u.dagger();
    return CMatrix::max_abs2_diff(
        product, CMatrix::identity(u.rows(), u.prec()));
}

} // namespace camp::apps::zkcm
