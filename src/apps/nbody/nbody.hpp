/**
 * @file
 * High-precision Coulomb N-body energy summation — one of the paper's
 * motivating applications (§I / §II-A: "classical Coulomb N-body
 * atomic system simulation", where "one tiny disturbance/error can
 * lead to a highly deviated result"). Pairwise 1/r terms of near-equal
 * magnitude and opposite sign cancel catastrophically in double
 * precision; arbitrary-precision accumulation recovers the digits.
 */
#ifndef CAMP_APPS_NBODY_NBODY_HPP
#define CAMP_APPS_NBODY_NBODY_HPP

#include <cstdint>
#include <vector>

#include "mpf/float.hpp"

namespace camp::apps::nbody {

using mpf::Float;

/** A point charge at an exact dyadic position. */
struct Charge
{
    double x, y, z;
    int q; ///< signed unit charges
};

/** Total Coulomb energy sum_{i<j} q_i q_j / r_ij at precision @p prec. */
Float coulomb_energy(const std::vector<Charge>& charges,
                     std::uint64_t prec);

/** Same sum in plain double arithmetic (the failing baseline). */
double coulomb_energy_double(const std::vector<Charge>& charges);

/**
 * A crafted near-neutral lattice configuration whose energy terms
 * cancel to ~@p cancel_bits bits: the double baseline keeps only
 * ~(53 - cancel_bits) significant bits.
 */
std::vector<Charge> cancellation_lattice(unsigned n_per_axis,
                                         std::uint64_t seed);

} // namespace camp::apps::nbody

#endif // CAMP_APPS_NBODY_NBODY_HPP
