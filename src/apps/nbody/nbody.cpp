#include "apps/nbody/nbody.hpp"

#include <cmath>

#include "mpn/natural.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace camp::apps::nbody {

using mpn::Natural;

Float
coulomb_energy(const std::vector<Charge>& charges, std::uint64_t prec)
{
    const std::uint64_t work = prec + 16;
    Float total = Float::with_prec(work);
    for (std::size_t i = 0; i < charges.size(); ++i) {
        for (std::size_t j = i + 1; j < charges.size(); ++j) {
            const Charge& a = charges[i];
            const Charge& b = charges[j];
            // r^2 is exact: positions are dyadic doubles.
            const Float dx = Float::from_double(a.x - b.x, work);
            const Float dy = Float::from_double(a.y - b.y, work);
            const Float dz = Float::from_double(a.z - b.z, work);
            const Float r2 = dx * dx + dy * dy + dz * dz;
            CAMP_ASSERT(!r2.is_zero());
            const Float r = Float::sqrt(r2);
            const int qq = a.q * b.q;
            const Float term =
                Float::from_natural(
                    Natural(static_cast<std::uint64_t>(
                        qq < 0 ? -qq : qq)),
                    work) /
                r;
            total = qq < 0 ? total - term : total + term;
        }
    }
    return total.rounded_to(prec);
}

double
coulomb_energy_double(const std::vector<Charge>& charges)
{
    double total = 0;
    for (std::size_t i = 0; i < charges.size(); ++i) {
        for (std::size_t j = i + 1; j < charges.size(); ++j) {
            const Charge& a = charges[i];
            const Charge& b = charges[j];
            const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
            total += a.q * b.q /
                     std::sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    return total;
}

std::vector<Charge>
cancellation_lattice(unsigned n_per_axis, std::uint64_t seed)
{
    // Alternating +/- charges on a unit lattice (NaCl-like): the total
    // energy is a small residual of large cancelling partial sums.
    // Dyadic jitter keeps positions exact in both number systems while
    // breaking symmetry.
    Rng rng(seed);
    std::vector<Charge> charges;
    for (unsigned x = 0; x < n_per_axis; ++x) {
        for (unsigned y = 0; y < n_per_axis; ++y) {
            for (unsigned z = 0; z < n_per_axis; ++z) {
                const double jitter =
                    static_cast<double>(rng.below(255)) / 1024.0;
                charges.push_back(
                    {static_cast<double>(x),
                     static_cast<double>(y) + jitter,
                     static_cast<double>(z),
                     ((x + y + z) & 1) ? -1 : 1});
            }
        }
    }
    return charges;
}

} // namespace camp::apps::nbody
