#include "apps/rsa/rsa.hpp"

#include "mpz/integer.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace camp::apps::rsa {

using mpz::Integer;

Natural
generate_prime(std::uint64_t bits, std::uint64_t seed)
{
    CAMP_ASSERT(bits >= 8);
    Rng rng(seed);
    for (int attempt = 0; attempt < 100000; ++attempt) {
        Natural candidate = Natural::random_bits(rng, bits);
        if (!candidate.is_odd())
            candidate += Natural(1);
        // Quick small-prime sieve happens inside is_probable_prime.
        if (Integer::is_probable_prime(candidate, 20, seed + attempt))
            return candidate;
    }
    CAMP_ASSERT_MSG(false, "generate_prime: exhausted attempts");
    return Natural();
}

KeyPair
generate_key(std::uint64_t modulus_bits, std::uint64_t seed)
{
    CAMP_ASSERT(modulus_bits >= 32);
    KeyPair key;
    key.e = Natural(65537);
    const std::uint64_t half = modulus_bits / 2;
    for (int attempt = 0;; ++attempt) {
        key.p = generate_prime(half, seed + 1000 * attempt);
        key.q = generate_prime(modulus_bits - half,
                               seed + 1000 * attempt + 500);
        if (key.p == key.q)
            continue;
        key.n = key.p * key.q;
        const Natural phi =
            (key.p - Natural(1)) * (key.q - Natural(1));
        if (Natural::gcd(key.e, phi) != Natural(1))
            continue;
        key.d = Integer::invmod(key.e, phi);
        return key;
    }
}

Natural
encrypt(const Natural& message, const KeyPair& key)
{
    CAMP_ASSERT(message < key.n);
    return Integer::powmod(message, key.e, key.n);
}

Natural
decrypt(const Natural& cipher, const KeyPair& key)
{
    return Integer::powmod(cipher, key.d, key.n);
}

std::uint64_t
modexp_workload(std::uint64_t modulus_bits, int rounds,
                std::uint64_t seed)
{
    Rng rng(seed);
    Natural modulus = Natural::random_bits(rng, modulus_bits);
    if (!modulus.is_odd())
        modulus += Natural(1);
    std::uint64_t checksum = 1469598103934665603ULL;
    for (int round = 0; round < rounds; ++round) {
        const Natural base =
            Natural::random_bits(rng, modulus_bits - 1) % modulus;
        const Natural exponent =
            Natural::random_bits(rng, modulus_bits);
        const Natural result =
            Integer::powmod(base, exponent, modulus);
        checksum ^= result.to_uint64();
        checksum *= 1099511628211ULL;
    }
    return checksum;
}

} // namespace camp::apps::rsa
