/**
 * @file
 * The paper's `RSA` benchmark [12]: key generation (Miller–Rabin),
 * raw-RSA encryption/decryption via Montgomery modular exponentiation.
 * The workload is dominated by Montgomery reductions and squarings —
 * "the time proportion of multiplicative operations grows rapidly with
 * bitwidth" (paper §VII-C), which is why RSA shows the paper's largest
 * speedups.
 */
#ifndef CAMP_APPS_RSA_RSA_HPP
#define CAMP_APPS_RSA_RSA_HPP

#include <cstdint>

#include "mpn/natural.hpp"

namespace camp::apps::rsa {

using mpn::Natural;

/** RSA key pair. */
struct KeyPair
{
    Natural n; ///< modulus p*q
    Natural e; ///< public exponent (65537)
    Natural d; ///< private exponent
    Natural p;
    Natural q;
};

/** Deterministically seeded prime of exactly @p bits bits. */
Natural generate_prime(std::uint64_t bits, std::uint64_t seed);

/** Generate a key pair with an n of @p modulus_bits bits. */
KeyPair generate_key(std::uint64_t modulus_bits, std::uint64_t seed);

/** c = m^e mod n. Requires m < n. */
Natural encrypt(const Natural& message, const KeyPair& key);

/** m = c^d mod n. */
Natural decrypt(const Natural& cipher, const KeyPair& key);

/**
 * Benchmark-shaped workload: @p rounds modular exponentiations with a
 * full-size exponent modulo an odd @p modulus_bits-bit modulus (prime
 * structure is irrelevant to the cost; see DESIGN.md substitutions).
 * Returns a checksum of the results.
 */
std::uint64_t modexp_workload(std::uint64_t modulus_bits, int rounds,
                              std::uint64_t seed);

} // namespace camp::apps::rsa

#endif // CAMP_APPS_RSA_RSA_HPP
