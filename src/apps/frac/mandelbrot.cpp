#include "apps/frac/mandelbrot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "mpn/natural.hpp"
#include "support/assert.hpp"
#include "support/opcache.hpp"

namespace camp::apps::frac {

using mpf::Float;
using mpn::Natural;

Float
parse_decimal(const std::string& text, std::uint64_t precision_bits)
{
    std::string s = text;
    bool negative = false;
    if (!s.empty() && s[0] == '-') {
        negative = true;
        s.erase(0, 1);
    }
    const std::size_t dot = s.find('.');
    std::uint64_t frac_digits = 0;
    if (dot != std::string::npos) {
        frac_digits = s.size() - dot - 1;
        s.erase(dot, 1);
    }
    if (s.empty())
        throw std::invalid_argument("parse_decimal: empty");
    const Natural mantissa = Natural::from_decimal(s);
    const Float num = Float::from_natural(mantissa, precision_bits);
    const Float den = Float::from_natural(Natural::pow10(frac_digits),
                                          precision_bits);
    Float value = num / den;
    return negative ? -value : value;
}

OrbitTracker::OrbitTracker(FloatComplex c)
    : c_(std::move(c)),
      zr_(Float::with_prec(c_.re.prec())),
      zi_(Float::with_prec(c_.re.prec()))
{
}

std::vector<std::complex<double>>
OrbitTracker::orbit(unsigned max_iterations)
{
    last_fresh_points_ = 0;
    orbit_.reserve(max_iterations + 1);
    const Float four = Float::from_double(4.0, 64);
    // Extend: replay exactly the op sequence the cold loop runs —
    // push z_n, escape-check it, then advance z at full precision.
    // zr_/zi_ always hold the next point to push, so resuming here is
    // indistinguishable from never having stopped.
    while (!escaped_ && orbit_.size() <= max_iterations) {
        orbit_.emplace_back(zr_.to_double(), zi_.to_double());
        ++last_fresh_points_;
        // z = z^2 + c at full precision.
        const Float zr2 = zr_ * zr_;
        const Float zi2 = zi_ * zi_;
        if (zr2 + zi2 > four) {
            escaped_ = true;
            break;
        }
        const Float new_zi = (zr_ + zr_) * zi_ + c_.im;
        zr_ = zr2 - zi2 + c_.re;
        zi_ = new_zi;
    }
    // Prefix view: a cold run at a smaller target is exactly the first
    // min(len, M+1) points (escape, if any, happens at the same index).
    const std::size_t len =
        std::min(orbit_.size(),
                 static_cast<std::size_t>(max_iterations) + 1);
    return std::vector<std::complex<double>>(orbit_.begin(),
                                             orbit_.begin() + len);
}

std::vector<std::complex<double>>
reference_orbit(const FloatComplex& c, unsigned max_iterations)
{
    // Cold path = a throwaway session; OrbitTracker's loop *is* the
    // reference semantics, so cold and incremental cannot diverge.
    OrbitTracker tracker(c);
    return tracker.orbit(max_iterations);
}

RenderResult
render(const RenderParams& params)
{
    const FloatComplex c{
        parse_decimal(params.center_re, params.precision_bits),
        parse_decimal(params.center_im, params.precision_bits)};
    const auto orbit = reference_orbit(c, params.max_iterations);
    return render_with_orbit(params, orbit);
}

RenderResult
render_with_orbit(const RenderParams& params,
                  const std::vector<std::complex<double>>& orbit)
{
    RenderResult result;
    result.orbit_length = orbit.size();
    result.iterations.assign(
        static_cast<std::size_t>(params.width) * params.height, 0);

    const double view = std::ldexp(4.0, -params.zoom_log2);
    std::uint64_t escaped = 0;
    for (unsigned py = 0; py < params.height; ++py) {
        for (unsigned px = 0; px < params.width; ++px) {
            // delta_c relative to the reference point.
            const double dx =
                (static_cast<double>(px) / params.width - 0.5) * view;
            const double dy =
                (static_cast<double>(py) / params.height - 0.5) * view;
            const std::complex<double> dc(dx, dy);
            std::complex<double> delta = 0;
            unsigned n = 0;
            std::uint32_t iterations = params.max_iterations;
            for (; n + 1 < orbit.size(); ++n) {
                delta = 2.0 * orbit[n] * delta + delta * delta + dc;
                const std::complex<double> z = orbit[n + 1] + delta;
                if (std::norm(z) > 4.0) {
                    iterations = n + 1;
                    ++escaped;
                    break;
                }
                // Rebase guard: if |delta| rivals |z| the perturbation
                // expansion has degraded; continue with direct double
                // iteration from the recombined value (z1 == c, so the
                // pixel's c is orbit[1] + dc in double precision).
                if (std::norm(delta) > 0.25 * std::norm(z) &&
                    orbit.size() > 1) {
                    std::complex<double> zd = z;
                    const std::complex<double> cd = orbit[1] + dc;
                    for (unsigned m = n + 1; m < params.max_iterations;
                         ++m) {
                        zd = zd * zd + cd;
                        if (std::norm(zd) > 4.0) {
                            iterations = m + 1;
                            ++escaped;
                            break;
                        }
                    }
                    break;
                }
            }
            result.iterations[py * params.width + px] = iterations;
        }
    }
    result.escape_fraction =
        static_cast<double>(escaped) /
        (static_cast<double>(params.width) * params.height);

    // FNV-1a checksum of the iteration map (stable regression value).
    std::uint64_t hash = 1469598103934665603ULL;
    for (const std::uint32_t it : result.iterations) {
        hash ^= it;
        hash *= 1099511628211ULL;
    }
    result.checksum = hash;
    return result;
}

bool
RenderSession::tracker_matches(const RenderParams& params) const
{
    return params.center_re == center_re_ &&
           params.center_im == center_im_ &&
           params.precision_bits == precision_bits_;
}

RenderResult
RenderSession::render(const RenderParams& params)
{
    if (!support::OpCache::global().enabled()) {
        // Cache-off arm: cold every frame, retain nothing.
        tracker_.reset();
        precision_bits_ = 0;
        center_re_.clear();
        center_im_.clear();
        RenderResult result = frac::render(params);
        last_fresh_points_ = result.orbit_length;
        return result;
    }
    if (!tracker_ || !tracker_matches(params)) {
        const FloatComplex c{
            parse_decimal(params.center_re, params.precision_bits),
            parse_decimal(params.center_im, params.precision_bits)};
        tracker_ = std::make_unique<OrbitTracker>(c);
        center_re_ = params.center_re;
        center_im_ = params.center_im;
        precision_bits_ = params.precision_bits;
    }
    const auto orbit = tracker_->orbit(params.max_iterations);
    last_fresh_points_ = tracker_->last_fresh_points();
    return render_with_orbit(params, orbit);
}

std::string
to_ascii(const RenderResult& result, unsigned width, unsigned height)
{
    static const char* shades = " .:-=+*#%@";
    std::uint32_t max_it = 1;
    for (const auto it : result.iterations)
        max_it = std::max(max_it, it);
    std::string out;
    out.reserve(static_cast<std::size_t>(height) * (width + 1));
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const double v =
                static_cast<double>(result.iterations[y * width + x]) /
                max_it;
            out.push_back(
                shades[static_cast<int>(v * 9.0 + 0.5)]);
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace camp::apps::frac
