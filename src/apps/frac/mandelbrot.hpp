/**
 * @file
 * The paper's `Frac` benchmark [32]: Mandelbrot deep-zoom rendering
 * with perturbation theory. One reference orbit is iterated at
 * arbitrary precision (z_{n+1} = z_n^2 + c); every pixel then iterates
 * only its low-precision delta against the stored orbit:
 *   delta_{n+1} = 2 z_n delta_n + delta_n^2 + delta_c.
 * The arbitrary-precision orbit is the APC kernel; the per-pixel work
 * is ordinary double arithmetic — the structure of [32].
 */
#ifndef CAMP_APPS_FRAC_MANDELBROT_HPP
#define CAMP_APPS_FRAC_MANDELBROT_HPP

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpf/float.hpp"

namespace camp::apps::frac {

/** High-precision complex value for the reference orbit. */
struct FloatComplex
{
    mpf::Float re;
    mpf::Float im;
};

/** Parameters of one zoom rendering. */
struct RenderParams
{
    /** Center, as decimal strings (deep-zoom centers exceed double). */
    std::string center_re = "-0.74364388703715870475";
    std::string center_im = "0.13182590420531198107";
    std::uint64_t precision_bits = 256; ///< reference-orbit precision
    int zoom_log2 = 40;                 ///< view width = 2^-zoom_log2
    unsigned width = 64;
    unsigned height = 48;
    unsigned max_iterations = 2000;
};

/** Result of a rendering. */
struct RenderResult
{
    std::vector<std::uint32_t> iterations; ///< width * height
    std::size_t orbit_length = 0;
    std::uint64_t checksum = 0; ///< FNV over the iteration map
    double escape_fraction = 0;
};

/** Parse a decimal string into a Float at the given precision. */
mpf::Float parse_decimal(const std::string& text,
                         std::uint64_t precision_bits);

/**
 * Iterate the reference orbit at c until escape or @p max_iterations;
 * returns the orbit as doubles for the perturbation stage.
 */
std::vector<std::complex<double>>
reference_orbit(const FloatComplex& c, unsigned max_iterations);

/** Render one frame with perturbation theory. */
RenderResult render(const RenderParams& params);

/**
 * Perturbation render of one frame against an already-computed
 * reference orbit (must equal reference_orbit(center(params),
 * params.max_iterations)). render() and RenderSession both call this,
 * so the incremental path shares the exact per-pixel code.
 */
RenderResult
render_with_orbit(const RenderParams& params,
                  const std::vector<std::complex<double>>& orbit);

/**
 * Incremental reference-orbit session (ROADMAP item 4): retains the
 * arbitrary-precision iteration state (z_n as Floats) alongside the
 * double orbit so a deeper zoom's larger max_iterations only iterates
 * the *new* tail. Float arithmetic is deterministic and the extension
 * replays exactly the op sequence the cold loop would run, so
 * orbit(M) is bit-identical to reference_orbit(c, M) for every M —
 * larger (extend), equal (reuse) or smaller (prefix view).
 */
class OrbitTracker
{
  public:
    explicit OrbitTracker(FloatComplex c);

    /** The orbit exactly as reference_orbit(c, max_iterations) would
     * return it; extends or slices retained state as needed. */
    std::vector<std::complex<double>> orbit(unsigned max_iterations);

    /** Orbit points held (coverage so far). */
    std::size_t computed_points() const { return orbit_.size(); }

    /** Whether the retained orbit ended by escaping. */
    bool escaped() const { return escaped_; }

    /** Points freshly iterated at full precision by the last orbit()
     * call (0 on pure reuse; bench asserts incremental << cold). */
    std::size_t last_fresh_points() const { return last_fresh_points_; }

  private:
    FloatComplex c_;
    mpf::Float zr_; ///< z at index orbit_.size() — next point to push
    mpf::Float zi_;
    std::vector<std::complex<double>> orbit_;
    bool escaped_ = false;
    std::size_t last_fresh_points_ = 0;
};

/**
 * Incremental frame renderer: reuses the OrbitTracker across frames of
 * a zoom sequence (same center/precision, growing zoom_log2 and
 * max_iterations), producing RenderResults bit-identical to cold
 * render(). A center or precision change, or a disabled operand cache
 * (CAMP_OPCACHE=0), resets to the cold path.
 */
class RenderSession
{
  public:
    RenderResult render(const RenderParams& params);

    /** Orbit points iterated at full precision by the last render(). */
    std::size_t last_fresh_points() const { return last_fresh_points_; }

  private:
    bool tracker_matches(const RenderParams& params) const;

    std::string center_re_;
    std::string center_im_;
    std::uint64_t precision_bits_ = 0;
    std::unique_ptr<OrbitTracker> tracker_;
    std::size_t last_fresh_points_ = 0;
};

/** ASCII-art rendering (for the example binary). */
std::string to_ascii(const RenderResult& result, unsigned width,
                     unsigned height);

} // namespace camp::apps::frac

#endif // CAMP_APPS_FRAC_MANDELBROT_HPP
