/**
 * @file
 * The paper's `Frac` benchmark [32]: Mandelbrot deep-zoom rendering
 * with perturbation theory. One reference orbit is iterated at
 * arbitrary precision (z_{n+1} = z_n^2 + c); every pixel then iterates
 * only its low-precision delta against the stored orbit:
 *   delta_{n+1} = 2 z_n delta_n + delta_n^2 + delta_c.
 * The arbitrary-precision orbit is the APC kernel; the per-pixel work
 * is ordinary double arithmetic — the structure of [32].
 */
#ifndef CAMP_APPS_FRAC_MANDELBROT_HPP
#define CAMP_APPS_FRAC_MANDELBROT_HPP

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "mpf/float.hpp"

namespace camp::apps::frac {

/** High-precision complex value for the reference orbit. */
struct FloatComplex
{
    mpf::Float re;
    mpf::Float im;
};

/** Parameters of one zoom rendering. */
struct RenderParams
{
    /** Center, as decimal strings (deep-zoom centers exceed double). */
    std::string center_re = "-0.74364388703715870475";
    std::string center_im = "0.13182590420531198107";
    std::uint64_t precision_bits = 256; ///< reference-orbit precision
    int zoom_log2 = 40;                 ///< view width = 2^-zoom_log2
    unsigned width = 64;
    unsigned height = 48;
    unsigned max_iterations = 2000;
};

/** Result of a rendering. */
struct RenderResult
{
    std::vector<std::uint32_t> iterations; ///< width * height
    std::size_t orbit_length = 0;
    std::uint64_t checksum = 0; ///< FNV over the iteration map
    double escape_fraction = 0;
};

/** Parse a decimal string into a Float at the given precision. */
mpf::Float parse_decimal(const std::string& text,
                         std::uint64_t precision_bits);

/**
 * Iterate the reference orbit at c until escape or @p max_iterations;
 * returns the orbit as doubles for the perturbation stage.
 */
std::vector<std::complex<double>>
reference_orbit(const FloatComplex& c, unsigned max_iterations);

/** Render one frame with perturbation theory. */
RenderResult render(const RenderParams& params);

/** ASCII-art rendering (for the example binary). */
std::string to_ascii(const RenderResult& result, unsigned width,
                     unsigned height);

} // namespace camp::apps::frac

#endif // CAMP_APPS_FRAC_MANDELBROT_HPP
