#include "apps/pi/chudnovsky.hpp"

#include "mpn/natural.hpp"
#include "profile/profiler.hpp"
#include "support/assert.hpp"

namespace camp::apps::pi {

using mpn::Natural;
using mpz::Integer;

std::uint64_t
terms_for_digits(std::uint64_t digits)
{
    // Each term contributes log10(640320^3 / (24*6*2*6)) ~ 14.1816
    // digits.
    return static_cast<std::uint64_t>(
               static_cast<double>(digits) / 14.181647462725477) +
           2;
}

SplitTriple
binary_split(std::uint64_t a, std::uint64_t b)
{
    CAMP_ASSERT(a < b);
    if (b - a == 1) {
        SplitTriple leaf;
        if (a == 0) {
            leaf.p = Integer(1);
            leaf.q = Integer(1);
        } else {
            // P(a-1, a) = (6a-5)(2a-1)(6a-1)  [paper Algorithm 1's R]
            leaf.p = Integer(static_cast<std::int64_t>(6 * a - 5)) *
                     Integer(static_cast<std::int64_t>(2 * a - 1)) *
                     Integer(static_cast<std::int64_t>(6 * a - 1));
            // Q(a-1, a) = 10939058860032000 a^3 (= 640320^3 / 24 * a^3)
            leaf.q = Integer(Natural(10939058860032000ULL)) *
                     Integer::pow(Integer(static_cast<std::int64_t>(a)),
                                  3);
        }
        // T contribution: P * (13591409 + 545140134 a) * (-1)^a.
        leaf.t = leaf.p *
                 (Integer(13591409) +
                  Integer(545140134) *
                      Integer(static_cast<std::int64_t>(a)));
        if (a & 1)
            leaf.t = -leaf.t;
        return leaf;
    }
    const std::uint64_t m = a + (b - a) / 2;
    const SplitTriple left = binary_split(a, m);
    const SplitTriple right = binary_split(m, b);
    SplitTriple merged;
    merged.p = left.p * right.p;
    merged.q = left.q * right.q;
    merged.t = left.t * right.q + left.p * right.t;
    return merged;
}

std::string
compute_pi(std::uint64_t digits)
{
    CAMP_ASSERT(digits >= 1);
    const std::uint64_t terms = terms_for_digits(digits);
    const SplitTriple split = binary_split(0, terms);

    // pi = 426880 * sqrt(10005) * Q / T. Work on integers scaled by
    // 10^(digits + guard).
    const std::uint64_t guard = 10;
    const Natural scale = Natural::pow10(digits + guard);
    const Natural sqrt_arg = Natural(10005) * scale * scale;
    const Natural root = Natural::isqrt(sqrt_arg); // sqrt(10005)*10^(d+g)
    CAMP_ASSERT(!split.t.is_negative() && !split.q.is_negative());
    const Natural numerator =
        Natural(426880) * root * split.q.abs();
    const Natural pi_scaled =
        numerator / split.t.abs() / Natural::pow10(guard);

    std::string digits_str;
    {
        // String conversion is host-side auxiliary work (Fig. 2).
        profile::CategoryScope aux(profile::Category::Auxiliary);
        digits_str = pi_scaled.to_decimal();
    }
    CAMP_ASSERT(digits_str.size() == digits + 1); // leading "3"
    return "3." + digits_str.substr(1);
}

} // namespace camp::apps::pi
