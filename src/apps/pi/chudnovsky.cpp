#include "apps/pi/chudnovsky.hpp"

#include "mpn/natural.hpp"
#include "profile/profiler.hpp"
#include "support/assert.hpp"
#include "support/opcache.hpp"

namespace camp::apps::pi {

using mpn::Natural;
using mpz::Integer;

std::uint64_t
terms_for_digits(std::uint64_t digits)
{
    // Each term contributes log10(640320^3 / (24*6*2*6)) ~ 14.1816
    // digits.
    return static_cast<std::uint64_t>(
               static_cast<double>(digits) / 14.181647462725477) +
           2;
}

SplitTriple
binary_split(std::uint64_t a, std::uint64_t b)
{
    CAMP_ASSERT(a < b);
    if (b - a == 1) {
        SplitTriple leaf;
        if (a == 0) {
            leaf.p = Integer(1);
            leaf.q = Integer(1);
        } else {
            // P(a-1, a) = (6a-5)(2a-1)(6a-1)  [paper Algorithm 1's R]
            leaf.p = Integer(static_cast<std::int64_t>(6 * a - 5)) *
                     Integer(static_cast<std::int64_t>(2 * a - 1)) *
                     Integer(static_cast<std::int64_t>(6 * a - 1));
            // Q(a-1, a) = 10939058860032000 a^3 (= 640320^3 / 24 * a^3)
            leaf.q = Integer(Natural(10939058860032000ULL)) *
                     Integer::pow(Integer(static_cast<std::int64_t>(a)),
                                  3);
        }
        // T contribution: P * (13591409 + 545140134 a) * (-1)^a.
        leaf.t = leaf.p *
                 (Integer(13591409) +
                  Integer(545140134) *
                      Integer(static_cast<std::int64_t>(a)));
        if (a & 1)
            leaf.t = -leaf.t;
        return leaf;
    }
    const std::uint64_t m = a + (b - a) / 2;
    const SplitTriple left = binary_split(a, m);
    const SplitTriple right = binary_split(m, b);
    return merge_triples(left, right);
}

SplitTriple
merge_triples(const SplitTriple& left, const SplitTriple& right)
{
    SplitTriple merged;
    merged.p = left.p * right.p;
    merged.q = left.q * right.q;
    merged.t = left.t * right.q + left.p * right.t;
    return merged;
}

std::string
compute_pi(std::uint64_t digits)
{
    CAMP_ASSERT(digits >= 1);
    const std::uint64_t terms = terms_for_digits(digits);
    const SplitTriple split = binary_split(0, terms);
    return finalize_pi(digits, split);
}

std::string
finalize_pi(std::uint64_t digits, const SplitTriple& split)
{
    CAMP_ASSERT(digits >= 1);
    // pi = 426880 * sqrt(10005) * Q / T. Work on integers scaled by
    // 10^(digits + guard).
    const std::uint64_t guard = 10;
    const Natural scale = Natural::pow10(digits + guard);
    const Natural sqrt_arg = Natural(10005) * scale * scale;
    const Natural root = Natural::isqrt(sqrt_arg); // sqrt(10005)*10^(d+g)
    CAMP_ASSERT(!split.t.is_negative() && !split.q.is_negative());
    const Natural numerator =
        Natural(426880) * root * split.q.abs();
    const Natural pi_scaled =
        numerator / split.t.abs() / Natural::pow10(guard);

    std::string digits_str;
    {
        // String conversion is host-side auxiliary work (Fig. 2).
        profile::CategoryScope aux(profile::Category::Auxiliary);
        digits_str = pi_scaled.to_decimal();
    }
    CAMP_ASSERT(digits_str.size() == digits + 1); // leading "3"
    return "3." + digits_str.substr(1);
}

std::string
PiCalculator::digits(std::uint64_t digits)
{
    CAMP_ASSERT(digits >= 1);
    if (!support::OpCache::global().enabled()) {
        // Cache-off arm: cold every call, retain nothing.
        reset();
        const std::uint64_t terms = terms_for_digits(digits);
        last_fresh_terms_ = terms;
        return compute_pi(digits);
    }
    if (terms_ != 0 && digits == last_digits_) {
        last_fresh_terms_ = 0; // memoized repeat
        return last_result_;
    }
    const std::uint64_t terms = terms_for_digits(digits);
    if (terms_ == 0 || terms < terms_) {
        // Cold start, or a shrinking target: a merged prefix cannot be
        // un-merged, so recompute at exactly the smaller term count
        // (identical to what compute_pi would build).
        split_ = binary_split(0, terms);
        terms_ = terms;
        last_fresh_terms_ = terms;
    } else if (terms > terms_) {
        // Growth: split only the new tail [terms_, terms) and merge.
        // merge_triples is associative over exact integers, so this
        // equals binary_split(0, terms) bit for bit.
        split_ = merge_triples(split_, binary_split(terms_, terms));
        last_fresh_terms_ = terms - terms_;
        terms_ = terms;
    } else {
        last_fresh_terms_ = 0; // same term count, new scale only
    }
    last_digits_ = digits;
    last_result_ = finalize_pi(digits, split_);
    return last_result_;
}

void
PiCalculator::reset()
{
    terms_ = 0;
    split_ = SplitTriple{};
    last_digits_ = 0;
    last_result_.clear();
    last_fresh_terms_ = 0;
}

} // namespace camp::apps::pi
