/**
 * @file
 * The paper's `Pi` benchmark [13]: computing digits of pi with the
 * Chudnovsky series and binary splitting (Algorithm 1). The series
 *   1/pi = 12 sum_k (-1)^k (6k)! (13591409 + 545140134 k)
 *              / ((3k)! (k!)^3 640320^(3k + 3/2))
 * is split recursively into integer triples (P, Q, T); the final value
 * needs one large square root and one large division, exactly the
 * low-level operator mix Figure 2 profiles.
 */
#ifndef CAMP_APPS_PI_CHUDNOVSKY_HPP
#define CAMP_APPS_PI_CHUDNOVSKY_HPP

#include <cstdint>
#include <string>

#include "mpz/integer.hpp"

namespace camp::apps::pi {

/** Binary-splitting triple over a term range [a, b). */
struct SplitTriple
{
    mpz::Integer p;
    mpz::Integer q;
    mpz::Integer t;
};

/** Binary splitting of the Chudnovsky series over [a, b) terms. */
SplitTriple binary_split(std::uint64_t a, std::uint64_t b);

/**
 * pi to @p digits decimal digits (truncated), returned as the string
 * "3.<digits>". Runs entirely on Integer arithmetic: the square root
 * and division are performed on scaled integers.
 */
std::string compute_pi(std::uint64_t digits);

/** Number of series terms needed for @p digits digits (~14.18/term). */
std::uint64_t terms_for_digits(std::uint64_t digits);

} // namespace camp::apps::pi

#endif // CAMP_APPS_PI_CHUDNOVSKY_HPP
