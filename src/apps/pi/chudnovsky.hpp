/**
 * @file
 * The paper's `Pi` benchmark [13]: computing digits of pi with the
 * Chudnovsky series and binary splitting (Algorithm 1). The series
 *   1/pi = 12 sum_k (-1)^k (6k)! (13591409 + 545140134 k)
 *              / ((3k)! (k!)^3 640320^(3k + 3/2))
 * is split recursively into integer triples (P, Q, T); the final value
 * needs one large square root and one large division, exactly the
 * low-level operator mix Figure 2 profiles.
 */
#ifndef CAMP_APPS_PI_CHUDNOVSKY_HPP
#define CAMP_APPS_PI_CHUDNOVSKY_HPP

#include <cstdint>
#include <string>

#include "mpz/integer.hpp"

namespace camp::apps::pi {

/** Binary-splitting triple over a term range [a, b). */
struct SplitTriple
{
    mpz::Integer p;
    mpz::Integer q;
    mpz::Integer t;
};

/** Binary splitting of the Chudnovsky series over [a, b) terms. */
SplitTriple binary_split(std::uint64_t a, std::uint64_t b);

/**
 * Merge adjacent ranges: left over [a, m), right over [m, b) combine
 * into the triple over [a, b). The combination rule is exact integer
 * arithmetic and associative, so *any* merge order yields the same
 * triple bit for bit — this is what makes incremental extension
 * (PiCalculator) provably identical to a cold binary_split.
 */
SplitTriple merge_triples(const SplitTriple& left,
                          const SplitTriple& right);

/**
 * pi to @p digits decimal digits (truncated), returned as the string
 * "3.<digits>". Runs entirely on Integer arithmetic: the square root
 * and division are performed on scaled integers.
 */
std::string compute_pi(std::uint64_t digits);

/**
 * Scale/sqrt/divide finalization of a binary-splitting triple over
 * [0, terms_for_digits(digits)) into the digit string. compute_pi and
 * PiCalculator share this, so their outputs agree exactly.
 */
std::string finalize_pi(std::uint64_t digits, const SplitTriple& split);

/** Number of series terms needed for @p digits digits (~14.18/term). */
std::uint64_t terms_for_digits(std::uint64_t digits);

/**
 * Incremental pi session (ROADMAP item 4): retains the binary-splitting
 * triple across calls so a growing digit target only computes the *new*
 * series terms and one merge, instead of re-splitting from scratch.
 * ARCHITECT's observation — iterative AP compute touches few
 * high-order digits between iterations — shows up here as the triple
 * over [0, t_old) being a reusable prefix of the triple over
 * [0, t_new).
 *
 * Exactness: merge_triples is associative over exact integers, so the
 * extended triple is bit-identical to binary_split(0, t_new), and the
 * digit string identical to compute_pi. A shrinking target recomputes
 * cold at the smaller term count (a prefix cannot be un-merged).
 *
 * Honors the operand-cache switch: when support::OpCache is disabled
 * (CAMP_OPCACHE=0) every call takes the cold path and no state is
 * retained, giving the differential tests their cache-off arm.
 */
class PiCalculator
{
  public:
    /** pi to @p digits digits, reusing prior state when possible. */
    std::string digits(std::uint64_t digits);

    /** Series terms covered by the retained triple (0 = no state). */
    std::uint64_t terms() const { return terms_; }

    /** Terms freshly split in the last digits() call (0 on a pure
     * reuse/memo hit; bench asserts incremental << cold). */
    std::uint64_t last_fresh_terms() const { return last_fresh_terms_; }

    /** Drop all retained state (next call is cold). */
    void reset();

  private:
    std::uint64_t terms_ = 0;
    SplitTriple split_;
    std::uint64_t last_digits_ = 0;
    std::string last_result_;
    std::uint64_t last_fresh_terms_ = 0;
};

} // namespace camp::apps::pi

#endif // CAMP_APPS_PI_CHUDNOVSKY_HPP
