#include "serve/config.hpp"

#include <cstdlib>
#include <string>

#include "support/errors.hpp"

namespace camp::serve {

namespace {

/** Strictly positive integer from the environment; throws with the
 * variable name on junk or < 1. */
std::uint64_t
positive_env(const char* name, std::uint64_t fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 1)
        throw InvalidArgument(std::string(name) +
                              " must be a positive integer, got '" +
                              env + "'");
    return static_cast<std::uint64_t>(v);
}

/** Nonnegative integer (0 allowed = disabled). */
std::uint64_t
nonnegative_env(const char* name, std::uint64_t fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0)
        throw InvalidArgument(std::string(name) +
                              " must be a nonnegative integer, got '" +
                              env + "'");
    return static_cast<std::uint64_t>(v);
}

} // namespace

ServeConfig
serve_config_from_env()
{
    ServeConfig config;
    config.limits.max_queue_depth = static_cast<std::size_t>(
        positive_env("CAMP_SERVE_DEPTH", config.limits.max_queue_depth));
    config.limits.retry_budget = positive_env(
        "CAMP_SERVE_RETRY_BUDGET", config.limits.retry_budget);
    config.max_inflight_us = static_cast<double>(positive_env(
        "CAMP_SERVE_INFLIGHT_US",
        static_cast<std::uint64_t>(config.max_inflight_us)));
    config.wave_size = static_cast<std::size_t>(
        positive_env("CAMP_SERVE_WAVE", config.wave_size));
    config.default_deadline_us = nonnegative_env(
        "CAMP_SERVE_DEADLINE_US", config.default_deadline_us);
    config.backoff_base_us =
        positive_env("CAMP_SERVE_BACKOFF_US", config.backoff_base_us);
    config.max_attempts = static_cast<unsigned>(
        positive_env("CAMP_SERVE_ATTEMPTS", config.max_attempts));
    config.breaker.open_threshold = static_cast<unsigned>(positive_env(
        "CAMP_SERVE_BREAKER_THRESHOLD", config.breaker.open_threshold));
    config.breaker.probe_after = positive_env(
        "CAMP_SERVE_BREAKER_PROBE", config.breaker.probe_after);
    return config;
}

} // namespace camp::serve
