#include "serve/config.hpp"

#include "support/env.hpp"

namespace camp::serve {

using support::env_flag;
using support::env_nonnegative_u64;
using support::env_positive_u64;

ServeConfig
serve_config_from_env()
{
    ServeConfig config;
    config.limits.max_queue_depth =
        static_cast<std::size_t>(env_positive_u64(
            "CAMP_SERVE_DEPTH", config.limits.max_queue_depth));
    config.limits.retry_budget = env_positive_u64(
        "CAMP_SERVE_RETRY_BUDGET", config.limits.retry_budget);
    config.max_backlog_us = static_cast<double>(env_positive_u64(
        "CAMP_SERVE_BACKLOG_US",
        static_cast<std::uint64_t>(config.max_backlog_us)));
    config.wave_size = static_cast<std::size_t>(
        env_positive_u64("CAMP_SERVE_WAVE", config.wave_size));
    config.max_inflight_waves = static_cast<unsigned>(env_positive_u64(
        "CAMP_SERVE_INFLIGHT", config.max_inflight_waves));
    config.default_deadline =
        support::Clock::duration(env_nonnegative_u64(
            "CAMP_SERVE_DEADLINE_US",
            static_cast<std::uint64_t>(
                config.default_deadline.count())));
    config.backoff_base = support::Clock::duration(env_positive_u64(
        "CAMP_SERVE_BACKOFF_US",
        static_cast<std::uint64_t>(config.backoff_base.count())));
    config.max_attempts = static_cast<unsigned>(
        env_positive_u64("CAMP_SERVE_ATTEMPTS", config.max_attempts));
    config.wall_clock = env_flag("CAMP_SERVE_WALL", config.wall_clock);
    config.use_opcache = env_flag("CAMP_OPCACHE", config.use_opcache);
    config.breaker.open_threshold =
        static_cast<unsigned>(env_positive_u64(
            "CAMP_SERVE_BREAKER_THRESHOLD",
            config.breaker.open_threshold));
    config.breaker.probe_after = env_positive_u64(
        "CAMP_SERVE_BREAKER_PROBE", config.breaker.probe_after);
    return config;
}

} // namespace camp::serve
