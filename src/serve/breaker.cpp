#include "serve/breaker.hpp"

#include <utility>

#include "support/assert.hpp"
#include "support/errors.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace camp::serve {

using mpn::Natural;

namespace {

namespace metrics = support::metrics;

struct BreakerMetrics
{
    metrics::Counter* failures;
    metrics::Counter* opens;
    metrics::Counter* closes;
    metrics::Counter* probes;
    metrics::Counter* fallbacks;
};

BreakerMetrics&
breaker_metrics()
{
    static BreakerMetrics* m = [] {
        auto* bm = new BreakerMetrics;
        bm->failures = &metrics::counter("serve.breaker.failures");
        bm->opens = &metrics::counter("serve.breaker.opens");
        bm->closes = &metrics::counter("serve.breaker.closes");
        bm->probes = &metrics::counter("serve.breaker.probes");
        bm->fallbacks = &metrics::counter("serve.breaker.fallbacks");
        return bm;
    }();
    return *m;
}

} // namespace

const char*
breaker_state_name(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
    }
    return "unknown";
}

BreakerDevice::BreakerDevice(std::unique_ptr<exec::Device> inner,
                             BreakerPolicy policy,
                             const support::Clock* clock)
    : inner_(std::move(inner)), policy_(policy), clock_(clock)
{
    CAMP_ASSERT(inner_ != nullptr);
    if (policy_.open_threshold == 0)
        throw InvalidArgument("breaker open_threshold must be >= 1");
    if (policy_.probe_after == 0)
        throw InvalidArgument("breaker probe_after must be >= 1");
    tuning_ = inner_->tuning();
}

BreakerState
BreakerDevice::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

BreakerStats
BreakerDevice::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
BreakerDevice::transition_locked(BreakerState next)
{
    if (state_ == next)
        return;
    support::trace::Span span("serve.breaker.transition", "serve");
    span.arg("from", static_cast<double>(state_));
    span.arg("to", static_cast<double>(next));
    if (clock_ != nullptr) {
        const std::uint64_t now_us = clock_->now_us();
        if (state_ == BreakerState::Open)
            stats_.open_total += support::Clock::duration(
                now_us - stats_.last_transition_us);
        stats_.last_transition_us = now_us;
    }
    if (next == BreakerState::Open) {
        ++stats_.opens;
        breaker_metrics().opens->add();
        fallback_since_open_ = 0;
    } else if (next == BreakerState::Closed) {
        ++stats_.closes;
        breaker_metrics().closes->add();
    }
    consecutive_failures_ = 0;
    state_ = next;
}

void
BreakerDevice::record_failures_locked(std::uint64_t events)
{
    CAMP_ASSERT(events > 0);
    stats_.failures += events;
    breaker_metrics().failures->add(events);
    if (state_ == BreakerState::HalfOpen) {
        // Failed probe: straight back to quarantine.
        transition_locked(BreakerState::Open);
        return;
    }
    consecutive_failures_ +=
        static_cast<unsigned>(std::min<std::uint64_t>(
            events, policy_.open_threshold));
    if (consecutive_failures_ >= policy_.open_threshold)
        transition_locked(BreakerState::Open);
}

void
BreakerDevice::record_success_locked()
{
    consecutive_failures_ = 0;
    if (state_ == BreakerState::HalfOpen)
        transition_locked(BreakerState::Closed);
}

sim::BatchResult
BreakerDevice::fallback_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs)
{
    sim::BatchResult result;
    result.products.reserve(pairs.size());
    for (const auto& [a, b] : pairs)
        result.products.push_back(a * b);
    result.per_product.resize(pairs.size());
    result.parallelism = 1;
    return result;
}

exec::MulOutcome
BreakerDevice::mul(const Natural& a, const Natural& b)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == BreakerState::Open) {
            ++stats_.fallback_products;
            breaker_metrics().fallbacks->add();
            if (++fallback_since_open_ >= policy_.probe_after)
                transition_locked(BreakerState::HalfOpen);
            return exec::MulOutcome{a * b, 0};
        }
        if (state_ == BreakerState::HalfOpen) {
            ++stats_.probes;
            breaker_metrics().probes->add();
        }
    }
    exec::MulOutcome outcome;
    bool threw = false;
    try {
        outcome = inner_->mul(a, b);
    } catch (const InvalidArgument&) {
        throw; // caller error: not a device-health signal
    } catch (const std::exception&) {
        threw = true;
    }
    Natural golden = a * b;
    std::lock_guard<std::mutex> lock(mutex_);
    if (threw || outcome.product != golden) {
        record_failures_locked(1);
        ++stats_.fallback_products;
        breaker_metrics().fallbacks->add();
        return exec::MulOutcome{std::move(golden), outcome.injected};
    }
    ++stats_.inner_products;
    record_success_locked();
    return outcome;
}

sim::BatchResult
BreakerDevice::mul_batch(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    unsigned parallelism)
{
    std::vector<std::uint64_t> indices(pairs.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    return mul_batch_indexed(pairs, indices, parallelism);
}

sim::BatchResult
BreakerDevice::mul_batch_indexed(
    const std::vector<std::pair<Natural, Natural>>& pairs,
    const std::vector<std::uint64_t>& indices, unsigned parallelism)
{
    if (pairs.empty())
        return {};
    bool quarantined = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == BreakerState::Open) {
            // This whole batch is served under quarantine; once enough
            // fallback products have passed, the *next* batch probes.
            quarantined = true;
            stats_.fallback_products += pairs.size();
            breaker_metrics().fallbacks->add(pairs.size());
            fallback_since_open_ += pairs.size();
            if (fallback_since_open_ >= policy_.probe_after)
                transition_locked(BreakerState::HalfOpen);
        } else if (state_ == BreakerState::HalfOpen) {
            ++stats_.probes;
            breaker_metrics().probes->add();
        }
    }
    if (quarantined)
        return fallback_batch(pairs);

    sim::BatchResult result;
    try {
        result = inner_->mul_batch_indexed(pairs, indices, parallelism);
    } catch (const InvalidArgument&) {
        throw; // caller error: not a device-health signal
    } catch (const std::exception&) {
        std::lock_guard<std::mutex> lock(mutex_);
        record_failures_locked(1);
        throw; // the server's retry policy owns per-product recovery
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.inner_products += pairs.size();
    if (result.faulty > 0)
        record_failures_locked(result.faulty);
    else
        record_success_locked();
    return result;
}

exec::CostEstimate
BreakerDevice::cost(std::uint64_t bits_a, std::uint64_t bits_b) const
{
    return inner_->cost(bits_a, bits_b);
}

} // namespace camp::serve
