#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "exec/queue.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace camp::serve {

using mpn::Natural;

namespace metrics = support::metrics;

const char*
request_status_name(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Completed: return "completed";
    case RequestStatus::ShedAdmission: return "shed-admission";
    case RequestStatus::ShedEvicted: return "shed-evicted";
    case RequestStatus::RejectedDeadline: return "rejected-deadline";
    case RequestStatus::TimedOut: return "timed-out";
    case RequestStatus::Failed: return "failed";
    }
    return "unknown";
}

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** Nearest-rank percentile of a sorted sample. */
std::uint64_t
percentile(const std::vector<std::uint64_t>& sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size(), std::max<std::size_t>(
                                              1, rank)) -
                  1];
}

} // namespace

const TenantReport*
ServeReport::tenant(const std::string& name) const
{
    for (const TenantReport& report : tenants)
        if (report.name == name)
            return &report;
    return nullptr;
}

namespace {

bool
counters_conserved(const TenantCounters& c)
{
    return c.submitted == c.admitted + c.shed_admission +
                              c.rejected_deadline &&
           c.admitted == c.completed + c.shed_evicted + c.timeouts +
                             c.failed;
}

} // namespace

bool
ServeReport::conserved() const
{
    if (!counters_conserved(totals))
        return false;
    for (const TenantReport& report : tenants)
        if (!counters_conserved(report.counters))
            return false;
    return true;
}

std::string
ServeReport::table() const
{
    Table table({"tenant", "prio", "submitted", "completed", "shed",
                 "timeout", "failed", "retries", "fallbacks", "p50 us",
                 "p99 us"});
    for (const TenantReport& report : tenants) {
        const TenantCounters& c = report.counters;
        table.add_row({report.name, priority_name(report.priority),
                       std::to_string(c.submitted),
                       std::to_string(c.completed),
                       std::to_string(c.shed_admission +
                                      c.shed_evicted),
                       std::to_string(c.timeouts +
                                      c.rejected_deadline),
                       std::to_string(c.failed),
                       std::to_string(c.retries),
                       std::to_string(c.fallbacks),
                       std::to_string(report.p50_us),
                       std::to_string(report.p99_us)});
    }
    std::ostringstream out;
    out << "== serving report ==\n"
        << table.to_string() << "waves: " << waves
        << ", virtual end: " << virtual_end_us << " us, conserved: "
        << (conserved() ? "yes" : "NO") << "\n";
    return out.str();
}

Server::Server(ServeConfig config, exec::Device& device,
               mpapca::Ledger* fault_sink)
    : config_(std::move(config)), device_(device),
      fault_sink_(fault_sink)
{
    if (config_.wave_size == 0)
        throw InvalidArgument("wave_size must be >= 1");
    if (config_.max_attempts == 0)
        throw InvalidArgument("max_attempts must be >= 1");
    if (!(config_.max_inflight_us > 0.0))
        throw InvalidArgument("max_inflight_us must be positive");
    if (config_.limits.max_queue_depth == 0)
        throw InvalidArgument("max_queue_depth must be >= 1");
    if (config_.backoff_base_us == 0)
        throw InvalidArgument("backoff_base_us must be >= 1");
}

namespace {

/** One admitted request travelling through the server. */
struct Entry
{
    std::size_t index = 0; ///< workload position
    const Request* req = nullptr;
    std::size_t tenant = 0;          ///< tenant-state index
    std::uint64_t deadline_us = 0;   ///< effective (default applied)
    double cost_us = 1.0;            ///< device estimate
    unsigned attempts = 0;
    double ready_us = 0.0;           ///< earliest dispatch (retries)
    bool faulty_seen = false;
};

/** Outcome of one entry's pass through the device. */
struct ExecResult
{
    Natural product;
    ErrorCode error = ErrorCode::Ok;
    bool faulty = false;
    std::uint64_t injected = 0;
};

struct Wave
{
    std::vector<Entry> entries;
    std::vector<ExecResult> results;
    double completion_us = 0.0;
    std::uint64_t injected = 0;
};

struct TenantState
{
    std::string name;
    Priority priority = Priority::Normal;
    TenantCounters counters;
    std::uint64_t retry_budget = 0;
    std::size_t queued = 0; ///< entries in the ready set
    std::vector<std::uint64_t> latencies_us;
};

/** Dispatch/eviction ordering: priority class first, then FIFO. The
 * triple is unique per request (ids are), so every ordering decision
 * is total — the determinism the shed-set contract rides on. */
struct EntryKey
{
    int priority;
    std::uint64_t arrival;
    std::uint64_t id;

    bool
    operator<(const EntryKey& other) const
    {
        if (priority != other.priority)
            return priority < other.priority;
        if (arrival != other.arrival)
            return arrival < other.arrival;
        return id < other.id;
    }
};

EntryKey
key_of(const Entry& entry)
{
    return {static_cast<int>(entry.req->priority),
            entry.req->arrival_us, entry.req->id};
}

} // namespace

ServeReport
Server::process(const std::vector<Request>& workload)
{
    support::trace::Span process_span("serve.process", "serve");
    process_span.arg("requests",
                     static_cast<double>(workload.size()));

    ServeReport report;
    report.outcomes.resize(workload.size());

    std::vector<TenantState> tenants;
    std::unordered_map<std::string, std::size_t> tenant_index;
    const auto tenant_of = [&](const Request& req) -> std::size_t {
        auto [it, inserted] =
            tenant_index.emplace(req.tenant, tenants.size());
        if (inserted) {
            TenantState state;
            state.name = req.tenant;
            state.priority = req.priority;
            state.retry_budget = config_.limits.retry_budget;
            tenants.push_back(std::move(state));
        }
        return it->second;
    };

    // Arrival order is the event order; require it sorted so virtual
    // time never runs backwards.
    for (std::size_t i = 1; i < workload.size(); ++i)
        if (workload[i].arrival_us < workload[i - 1].arrival_us)
            throw InvalidArgument(
                "workload must be sorted by arrival time");

    exec::SubmitQueue queue(device_);
    const std::uint64_t cap_bits = device_.base_cap_bits();

    std::vector<Entry> ready;
    double queued_cost_us = 0.0;
    std::optional<Wave> inflight;
    std::size_t next_arrival = 0;
    double vnow = 0.0;
    double virtual_end = 0.0;

    const auto cost_estimate = [&](const Request& req) {
        const double seconds =
            device_
                .cost(std::max<std::uint64_t>(1, req.a.bits()),
                      std::max<std::uint64_t>(1, req.b.bits()))
                .seconds;
        return std::max(1.0, seconds * 1e6);
    };

    const auto settle = [&](const Entry& entry, RequestStatus status,
                            ErrorCode error, double when,
                            Natural product = Natural(),
                            bool fallback = false,
                            std::uint64_t retry_after = 0) {
        Outcome& outcome = report.outcomes[entry.index];
        outcome.id = entry.req->id;
        outcome.status = status;
        outcome.error = error;
        outcome.retry_after_us = retry_after;
        outcome.attempts = entry.attempts;
        outcome.fallback = fallback;
        outcome.faulty_seen = entry.faulty_seen;
        virtual_end = std::max(virtual_end, when);
        TenantState& tenant = tenants[entry.tenant];
        TenantCounters& c = tenant.counters;
        switch (status) {
        case RequestStatus::Completed: {
            const std::uint64_t latency =
                static_cast<std::uint64_t>(when) -
                entry.req->arrival_us;
            outcome.latency_us = latency;
            outcome.product = std::move(product);
            tenant.latencies_us.push_back(latency);
            ++c.completed;
            break;
        }
        case RequestStatus::ShedAdmission:
            ++c.shed_admission;
            report.shed_ids.push_back(entry.req->id);
            break;
        case RequestStatus::ShedEvicted:
            ++c.shed_evicted;
            report.shed_ids.push_back(entry.req->id);
            break;
        case RequestStatus::RejectedDeadline:
            ++c.rejected_deadline;
            report.timeout_ids.push_back(entry.req->id);
            break;
        case RequestStatus::TimedOut:
            ++c.timeouts;
            report.timeout_ids.push_back(entry.req->id);
            break;
        case RequestStatus::Failed:
            ++c.failed;
            break;
        }
        // Counts CPU products *computed*, not just delivered — a
        // fallback that lands past its deadline still did the work, and
        // the ledger fold (which sees every fallback) must agree with
        // the report exactly.
        if (fallback)
            ++c.fallbacks;
    };

    /** Backlog-drain hint for Unavailable outcomes. */
    const auto retry_after_hint = [&]() -> std::uint64_t {
        double wait = queued_cost_us;
        if (inflight && inflight->completion_us > vnow)
            wait += inflight->completion_us - vnow;
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(wait));
    };

    // --- admission -------------------------------------------------
    const auto admit = [&](std::size_t index) {
        const Request& req = workload[index];
        const std::size_t t = tenant_of(req);
        TenantState& tenant = tenants[t];
        ++tenant.counters.submitted;

        Entry entry;
        entry.index = index;
        entry.req = &req;
        entry.tenant = t;
        entry.cost_us = cost_estimate(req);
        entry.deadline_us = req.deadline_us;
        if (entry.deadline_us == 0 && config_.default_deadline_us != 0)
            entry.deadline_us =
                req.arrival_us + config_.default_deadline_us;

        // Deadline feasibility: a request that cannot finish by its
        // deadline even on an idle device is refused outright — never
        // silently computed.
        if (entry.deadline_us != 0 &&
            (static_cast<double>(req.arrival_us) + entry.cost_us >
             static_cast<double>(entry.deadline_us))) {
            settle(entry, RequestStatus::RejectedDeadline,
                   ErrorCode::DeadlineExceeded, vnow);
            return;
        }

        // Bounded per-tenant queue.
        if (tenant.queued >= config_.limits.max_queue_depth) {
            settle(entry, RequestStatus::ShedAdmission,
                   ErrorCode::Unavailable, vnow, Natural(), false,
                   retry_after_hint());
            return;
        }

        // Global backlog bound: over the limit, evict strictly
        // lower-priority queued work first (worst class, youngest
        // arrival); if no such victim frees enough room, shed the
        // arrival itself.
        while (queued_cost_us + entry.cost_us >
               config_.max_inflight_us) {
            std::size_t victim = ready.size();
            for (std::size_t i = 0; i < ready.size(); ++i) {
                if (key_of(ready[i]).priority <=
                    static_cast<int>(req.priority))
                    continue; // only strictly lower classes evict
                if (victim == ready.size() ||
                    key_of(ready[victim]) < key_of(ready[i]))
                    victim = i;
            }
            if (victim == ready.size())
                break;
            const Entry evicted = ready[victim];
            ready.erase(ready.begin() +
                        static_cast<std::ptrdiff_t>(victim));
            queued_cost_us -= evicted.cost_us;
            --tenants[evicted.tenant].queued;
            settle(evicted, RequestStatus::ShedEvicted,
                   ErrorCode::Unavailable, vnow, Natural(), false,
                   retry_after_hint());
        }
        if (queued_cost_us + entry.cost_us > config_.max_inflight_us) {
            settle(entry, RequestStatus::ShedAdmission,
                   ErrorCode::Unavailable, vnow, Natural(), false,
                   retry_after_hint());
            return;
        }

        ++tenant.counters.admitted;
        ++tenant.queued;
        queued_cost_us += entry.cost_us;
        ready.push_back(std::move(entry));
    };

    // --- retry / fallback ------------------------------------------
    std::uint64_t wave_retries = 0;
    std::uint64_t wave_fallbacks = 0;

    const auto complete_exact = [&](Entry& entry, Natural product,
                                    double when, bool fallback) {
        if (entry.deadline_us != 0 &&
            when > static_cast<double>(entry.deadline_us)) {
            // Cooperative cancellation: the product exists but arrived
            // late; the client sees a timeout, never a stale answer.
            settle(entry, RequestStatus::TimedOut,
                   ErrorCode::DeadlineExceeded, when, Natural(),
                   fallback);
            return;
        }
        settle(entry, RequestStatus::Completed, ErrorCode::Ok, when,
               std::move(product), fallback);
    };

    const auto cpu_fallback = [&](Entry& entry, double when) {
        ++wave_fallbacks;
        complete_exact(entry, entry.req->a * entry.req->b, when,
                       /*fallback=*/true);
    };

    const auto retry_or_fallback = [&](Entry& entry, double when) {
        TenantState& tenant = tenants[entry.tenant];
        if (entry.attempts < config_.max_attempts &&
            tenant.retry_budget > 0) {
            const double backoff =
                static_cast<double>(config_.backoff_base_us) *
                static_cast<double>(1ull << (entry.attempts - 1));
            const double ready_at = when + backoff;
            if (entry.deadline_us == 0 ||
                ready_at < static_cast<double>(entry.deadline_us)) {
                --tenant.retry_budget;
                ++tenant.counters.retries;
                ++wave_retries;
                entry.ready_us = ready_at;
                ++tenant.queued;
                queued_cost_us += entry.cost_us;
                ready.push_back(entry);
                return;
            }
            // A backoff that outlives the deadline is pointless;
            // serve the exact product now instead.
        }
        cpu_fallback(entry, when);
    };

    // --- dispatch --------------------------------------------------
    const auto dispatch = [&]() {
        // Select up to wave_size dispatchable entries in key order.
        std::vector<std::size_t> picked;
        while (picked.size() < config_.wave_size) {
            std::size_t best = ready.size();
            for (std::size_t i = 0; i < ready.size(); ++i) {
                if (ready[i].ready_us > vnow)
                    continue;
                if (std::find(picked.begin(), picked.end(), i) !=
                    picked.end())
                    continue;
                if (best == ready.size() ||
                    key_of(ready[i]) < key_of(ready[best]))
                    best = i;
            }
            if (best == ready.size())
                break;
            picked.push_back(best);
        }
        CAMP_ASSERT(!picked.empty());
        std::sort(picked.begin(), picked.end());
        Wave wave;
        for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
            wave.entries.push_back(std::move(ready[*it]));
            ready.erase(ready.begin() +
                        static_cast<std::ptrdiff_t>(*it));
        }
        std::reverse(wave.entries.begin(), wave.entries.end());
        std::sort(wave.entries.begin(), wave.entries.end(),
                  [](const Entry& a, const Entry& b) {
                      return key_of(a) < key_of(b);
                  });

        double wave_cost = 0.0;
        std::vector<Entry> dispatched;
        for (Entry& entry : wave.entries) {
            --tenants[entry.tenant].queued;
            queued_cost_us -= entry.cost_us;
            // Deadline gate at dispatch: expired work is dropped, not
            // computed.
            if (entry.deadline_us != 0 &&
                static_cast<double>(entry.deadline_us) <= vnow) {
                settle(entry, RequestStatus::TimedOut,
                       ErrorCode::DeadlineExceeded, vnow);
                continue;
            }
            // Capability gate: an oversized operand would poison the
            // whole coalesced batch with InvalidArgument; fail it
            // individually instead.
            if (cap_bits != 0 && (entry.req->a.bits() > cap_bits ||
                                  entry.req->b.bits() > cap_bits)) {
                settle(entry, RequestStatus::Failed,
                       ErrorCode::InvalidArgument, vnow);
                continue;
            }
            ++entry.attempts;
            wave_cost += entry.cost_us;
            dispatched.push_back(std::move(entry));
        }
        wave.entries = std::move(dispatched);
        if (wave.entries.empty())
            return; // everything expired; no device work

        support::trace::Span span("serve.wave", "serve");
        span.arg("count", static_cast<double>(wave.entries.size()));
        span.arg("cost_us", wave_cost);

        // Real execution through the coalescing queue: the typed-error
        // futures of satellite PR work are the actual failure channel.
        std::vector<exec::SubmitQueue::Future> futures;
        futures.reserve(wave.entries.size());
        for (const Entry& entry : wave.entries)
            futures.push_back(
                queue.submit(entry.req->a, entry.req->b));
        queue.flush();
        wave.results.resize(wave.entries.size());
        for (std::size_t i = 0; i < futures.size(); ++i) {
            ExecResult& res = wave.results[i];
            res.error = futures[i].error();
            if (res.error == ErrorCode::Ok) {
                // take(): moves the product out of the queue slot —
                // this delivery edge used to deep-copy every product.
                res.product = futures[i].take();
                res.faulty = futures[i].faulty();
                res.injected = futures[i].injected();
                wave.injected += res.injected;
            }
        }
        wave.completion_us = vnow + std::max(1.0, wave_cost);
        ++report.waves;
        metrics::counter("serve.waves").add();
        inflight = std::move(wave);
    };

    // --- wave completion -------------------------------------------
    const auto complete_wave = [&]() {
        Wave wave = std::move(*inflight);
        inflight.reset();
        wave_retries = 0;
        wave_fallbacks = 0;
        std::uint64_t wave_faulty = 0;
        const double when = wave.completion_us;
        for (std::size_t i = 0; i < wave.entries.size(); ++i) {
            Entry& entry = wave.entries[i];
            ExecResult& res = wave.results[i];
            if (res.error != ErrorCode::Ok) {
                if (error_retryable(res.error))
                    retry_or_fallback(entry, when);
                else
                    settle(entry, RequestStatus::Failed, res.error,
                           when);
                continue;
            }
            if (res.faulty) {
                ++wave_faulty;
                entry.faulty_seen = true;
                ++tenants[entry.tenant].counters.faulty_results;
                if (config_.retry_on_faulty) {
                    retry_or_fallback(entry, when);
                    continue;
                }
            }
            complete_exact(entry, std::move(res.product), when,
                           /*fallback=*/false);
        }
        if (fault_sink_ != nullptr) {
            mpapca::FaultStats delta;
            delta.injected = wave.injected;
            delta.checks = wave.results.size();
            delta.detected = wave_faulty;
            delta.retried = wave_retries;
            delta.fallbacks = wave_fallbacks;
            fault_sink_->fold_fault_stats(delta);
        }
    };

    // --- the virtual-time event loop -------------------------------
    for (;;) {
        if (!inflight) {
            bool dispatchable = false;
            for (const Entry& entry : ready)
                if (entry.ready_us <= vnow) {
                    dispatchable = true;
                    break;
                }
            if (dispatchable) {
                dispatch();
                continue;
            }
        }
        double t_next = kInfinity;
        if (next_arrival < workload.size())
            t_next = std::min(
                t_next, static_cast<double>(
                            workload[next_arrival].arrival_us));
        if (inflight)
            t_next = std::min(t_next, inflight->completion_us);
        else
            for (const Entry& entry : ready)
                t_next = std::min(t_next, entry.ready_us);
        if (t_next == kInfinity)
            break;
        vnow = std::max(vnow, t_next);
        if (inflight && inflight->completion_us <= vnow)
            complete_wave();
        while (next_arrival < workload.size() &&
               static_cast<double>(
                   workload[next_arrival].arrival_us) <= vnow)
            admit(next_arrival++);
    }
    CAMP_ASSERT(ready.empty() && !inflight &&
                next_arrival == workload.size());

    // --- report assembly -------------------------------------------
    report.virtual_end_us = static_cast<std::uint64_t>(virtual_end);
    std::sort(report.shed_ids.begin(), report.shed_ids.end());
    std::sort(report.timeout_ids.begin(), report.timeout_ids.end());
    for (TenantState& tenant : tenants) {
        TenantReport tenant_report;
        tenant_report.name = tenant.name;
        tenant_report.priority = tenant.priority;
        tenant_report.counters = tenant.counters;
        std::sort(tenant.latencies_us.begin(),
                  tenant.latencies_us.end());
        tenant_report.latencies_us = std::move(tenant.latencies_us);
        tenant_report.p50_us =
            percentile(tenant_report.latencies_us, 0.50);
        tenant_report.p95_us =
            percentile(tenant_report.latencies_us, 0.95);
        tenant_report.p99_us =
            percentile(tenant_report.latencies_us, 0.99);

        const TenantCounters& c = tenant_report.counters;
        const std::string prefix = "serve.tenant." + tenant.name + ".";
        metrics::counter(prefix + "submitted").add(c.submitted);
        metrics::counter(prefix + "admitted").add(c.admitted);
        metrics::counter(prefix + "completed").add(c.completed);
        metrics::counter(prefix + "shed")
            .add(c.shed_admission + c.shed_evicted);
        metrics::counter(prefix + "timeouts")
            .add(c.timeouts + c.rejected_deadline);
        metrics::counter(prefix + "failed").add(c.failed);
        metrics::counter(prefix + "retries").add(c.retries);
        metrics::counter(prefix + "fallbacks").add(c.fallbacks);
        metrics::Histogram& latency =
            metrics::histogram(prefix + "latency_us");
        for (const std::uint64_t sample : tenant_report.latencies_us)
            latency.record(sample);

        report.totals.submitted += c.submitted;
        report.totals.admitted += c.admitted;
        report.totals.completed += c.completed;
        report.totals.shed_admission += c.shed_admission;
        report.totals.shed_evicted += c.shed_evicted;
        report.totals.rejected_deadline += c.rejected_deadline;
        report.totals.timeouts += c.timeouts;
        report.totals.failed += c.failed;
        report.totals.retries += c.retries;
        report.totals.fallbacks += c.fallbacks;
        report.totals.faulty_results += c.faulty_results;
        report.tenants.push_back(std::move(tenant_report));
    }
    return report;
}

} // namespace camp::serve
