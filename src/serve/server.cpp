#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exec/queue.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace camp::serve {

using mpn::Natural;

namespace metrics = support::metrics;

const char*
request_status_name(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Completed: return "completed";
    case RequestStatus::ShedAdmission: return "shed-admission";
    case RequestStatus::ShedEvicted: return "shed-evicted";
    case RequestStatus::RejectedDeadline: return "rejected-deadline";
    case RequestStatus::TimedOut: return "timed-out";
    case RequestStatus::Failed: return "failed";
    }
    return "unknown";
}

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** Nearest-rank percentile of a sorted sample. */
std::uint64_t
percentile(const std::vector<std::uint64_t>& sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::min(sorted.size(), std::max<std::size_t>(
                                              1, rank)) -
                  1];
}

/** Trace span names live as long as the ring (pointers are stored,
 * never copied), so per-tenant settle spans need interned names. The
 * registry leaks by design — tenant cardinality is tiny. */
const char*
settle_span_name(const std::string& tenant)
{
    static std::mutex mutex;
    static auto* names = new std::unordered_map<
        std::string, std::unique_ptr<std::string>>();
    std::lock_guard<std::mutex> lock(mutex);
    std::unique_ptr<std::string>& name = (*names)[tenant];
    if (name == nullptr)
        name = std::make_unique<std::string>("serve.settle." + tenant);
    return name->c_str();
}

} // namespace

const TenantReport*
ServeReport::tenant(const std::string& name) const
{
    for (const TenantReport& report : tenants)
        if (report.name == name)
            return &report;
    return nullptr;
}

namespace {

bool
counters_conserved(const TenantCounters& c)
{
    return c.submitted == c.admitted + c.shed_admission +
                              c.rejected_deadline &&
           c.admitted == c.completed + c.shed_evicted + c.timeouts +
                             c.failed;
}

} // namespace

bool
ServeReport::conserved() const
{
    if (!counters_conserved(totals))
        return false;
    for (const TenantReport& report : tenants)
        if (!counters_conserved(report.counters))
            return false;
    return true;
}

std::string
ServeReport::table() const
{
    Table table({"tenant", "prio", "submitted", "completed", "shed",
                 "timeout", "failed", "retries", "fallbacks", "p50 us",
                 "p99 us"});
    for (const TenantReport& report : tenants) {
        const TenantCounters& c = report.counters;
        table.add_row({report.name, priority_name(report.priority),
                       std::to_string(c.submitted),
                       std::to_string(c.completed),
                       std::to_string(c.shed_admission +
                                      c.shed_evicted),
                       std::to_string(c.timeouts +
                                      c.rejected_deadline),
                       std::to_string(c.failed),
                       std::to_string(c.retries),
                       std::to_string(c.fallbacks),
                       std::to_string(report.p50_us),
                       std::to_string(report.p99_us)});
    }
    std::ostringstream out;
    out << "== serving report ==\n"
        << table.to_string() << "waves: " << waves
        << ", virtual end: " << virtual_end_us << " us, conserved: "
        << (conserved() ? "yes" : "NO") << "\n";
    return out.str();
}

namespace detail {

/** Shared completion state behind one Server::Handle. */
struct HandleState
{
    std::mutex mutex;
    std::condition_variable cv;
    bool settled = false;
    Outcome outcome; ///< copied (product included) at settlement
    std::function<void(const Outcome&)> callback;
};

namespace {

/** One admitted request travelling through the server. */
struct Entry
{
    std::size_t index = 0; ///< arrival position
    const Request* req = nullptr;
    std::size_t tenant = 0;          ///< tenant-state index
    std::uint64_t deadline_us = 0;   ///< effective (default applied)
    double cost_us = 1.0;            ///< device estimate
    unsigned attempts = 0;
    double ready_us = 0.0;           ///< earliest dispatch (retries)
    bool faulty_seen = false;
    bool from_cache = false; ///< product served by the opcache
    Natural cached_product;  ///< set when from_cache
};

/** Product-cache key for one request's operand pair. The leading
 * size(a) word makes (a, b) unambiguous in the flat material. */
support::OpKey
product_key(const Request& req)
{
    const std::vector<mpn::Limb>& a = req.a.limbs();
    const std::vector<mpn::Limb>& b = req.b.limbs();
    std::vector<std::uint64_t> material;
    material.reserve(a.size() + b.size() + 1);
    material.push_back(a.size());
    material.insert(material.end(), a.begin(), a.end());
    material.insert(material.end(), b.begin(), b.end());
    return support::make_key(support::OpTag::Product,
                             std::move(material));
}

/** Outcome of one entry's pass through the device. */
struct ExecResult
{
    Natural product;
    ErrorCode error = ErrorCode::Ok;
    bool faulty = false;
    std::uint64_t injected = 0;
};

struct TenantState
{
    std::string name;
    Priority priority = Priority::Normal;
    TenantCounters counters;
    std::uint64_t retry_budget = 0;
    std::size_t queued = 0; ///< entries in the ready set
    std::vector<std::uint64_t> latencies_us;
};

/** Dispatch/eviction ordering: priority class first, then FIFO. The
 * triple is unique per request (ids are), so every ordering decision
 * is total — the determinism the shed-set contract rides on. */
struct EntryKey
{
    int priority;
    std::uint64_t arrival;
    std::uint64_t id;

    bool
    operator<(const EntryKey& other) const
    {
        if (priority != other.priority)
            return priority < other.priority;
        if (arrival != other.arrival)
            return arrival < other.arrival;
        return id < other.id;
    }
};

EntryKey
key_of(const Entry& entry)
{
    return {static_cast<int>(entry.req->priority),
            entry.req->arrival_us, entry.req->id};
}

} // namespace

/**
 * The one decision engine behind both Server::process and
 * Server::submit_async. All state mutation happens on the caller's
 * thread (arrive/pump/finish are never called concurrently); the only
 * cross-thread traffic is wall-mode wave execution, confined to the
 * SubmitQueue's own synchronization, and Handle waiters on their own
 * HandleState mutexes.
 *
 * Incremental pumping reproduces the classic batch event loop exactly:
 * pump_to(T) processes every completion/retry event at times <= T and
 * dispatches only at times strictly before T — because arrivals at T
 * itself may still be coming (burst clumps land many requests on one
 * stamp), and the batch loop admits every arrival at an instant before
 * it dispatches at that instant. finish() pumps with T = infinity.
 */
class Engine
{
  public:
    Engine(const ServeConfig& config, exec::Device& device,
           mpapca::Ledger* fault_sink, support::Clock& clock,
           support::OpCache* opcache)
        : config_(config), device_(device), fault_sink_(fault_sink),
          clock_(clock), opcache_(opcache),
          queue_(device, 0, 0, config.max_inflight_waves),
          cap_bits_(device.base_cap_bits())
    {
    }

    ~Engine()
    {
        // Abandoned session: waves may still be executing; join them
        // so no worker outlives the queue they write into.
        for (WaveInFlight& wave : inflight_)
            if (wave.worker.joinable())
                wave.worker.join();
    }

    std::shared_ptr<HandleState>
    arrive(const Request& request, bool want_handle)
    {
        if (request.arrival_us < last_arrival_us_)
            throw InvalidArgument(
                "requests must be submitted in nondecreasing "
                "arrival_us order");
        last_arrival_us_ = request.arrival_us;
        pump_to(static_cast<double>(request.arrival_us));
        vnow_ = std::max(vnow_,
                         static_cast<double>(request.arrival_us));
        requests_.push_back(request);
        report_.outcomes.emplace_back();
        std::shared_ptr<HandleState> handle;
        if (want_handle)
            handle = std::make_shared<HandleState>();
        handles_.push_back(handle);
        admit(requests_.size() - 1);
        return handle;
    }

    ServeReport finish()
    {
        pump_to(kInfinity);
        CAMP_ASSERT(ready_.empty() && inflight_.empty());
        return assemble_report();
    }

  private:
    struct WaveInFlight
    {
        std::vector<Entry> entries;
        std::vector<ExecResult> results; ///< virtual mode: at dispatch
        std::vector<exec::SubmitQueue::Future> futures; ///< wall mode
        std::thread worker; ///< wall mode: runs the claimed flush
        double completion_us = 0.0;
        std::uint64_t injected = 0;
    };

    double
    cost_estimate(const Request& req) const
    {
        const double seconds =
            device_
                .cost(std::max<std::uint64_t>(1, req.a.bits()),
                      std::max<std::uint64_t>(1, req.b.bits()))
                .seconds;
        return std::max(1.0, seconds * 1e6);
    }

    std::size_t
    tenant_of(const Request& req)
    {
        auto [it, inserted] =
            tenant_index_.emplace(req.tenant, tenants_.size());
        if (inserted) {
            TenantState state;
            state.name = req.tenant;
            state.priority = req.priority;
            state.retry_budget = config_.limits.retry_budget;
            tenants_.push_back(std::move(state));
        }
        return it->second;
    }

    void
    settle(const Entry& entry, RequestStatus status, ErrorCode error,
           double when, Natural product = Natural(),
           bool fallback = false,
           support::Clock::duration retry_after =
               support::Clock::duration{0})
    {
        const std::uint64_t when_us = static_cast<std::uint64_t>(when);
        // The serving clock follows the settlement ledger: a virtual
        // clock is steered to the settle stamp (settles are
        // time-ordered, so now_us == when_us and the skew is
        // identically zero); a wall clock ignores the steer and
        // reports real elapsed time.
        clock_.advance_to_us(when_us);
        const std::uint64_t wall_us = clock_.now_us();

        Outcome& outcome = report_.outcomes[entry.index];
        outcome.id = entry.req->id;
        outcome.status = status;
        outcome.error = error;
        outcome.retry_after = retry_after;
        outcome.attempts = entry.attempts;
        outcome.fallback = fallback;
        outcome.faulty_seen = entry.faulty_seen;
        outcome.wall_completion_us = wall_us;
        outcome.skew_us = static_cast<std::int64_t>(wall_us) -
                          static_cast<std::int64_t>(when_us);
        virtual_end_ = std::max(virtual_end_, when);
        TenantState& tenant = tenants_[entry.tenant];
        TenantCounters& c = tenant.counters;
        switch (status) {
        case RequestStatus::Completed: {
            const std::uint64_t latency =
                when_us - entry.req->arrival_us;
            outcome.latency_us = latency;
            outcome.product = std::move(product);
            tenant.latencies_us.push_back(latency);
            ++c.completed;
            // Wall reconciliation: virtually on time, but the wall
            // stamp missed the deadline — the pipeline's honesty
            // metric. Never set on a virtual clock (wall_us ==
            // when_us <= deadline there).
            if (entry.deadline_us != 0 && wall_us > entry.deadline_us)
                ++c.wall_late;
            break;
        }
        case RequestStatus::ShedAdmission:
            ++c.shed_admission;
            report_.shed_ids.push_back(entry.req->id);
            break;
        case RequestStatus::ShedEvicted:
            ++c.shed_evicted;
            report_.shed_ids.push_back(entry.req->id);
            break;
        case RequestStatus::RejectedDeadline:
            ++c.rejected_deadline;
            report_.timeout_ids.push_back(entry.req->id);
            break;
        case RequestStatus::TimedOut:
            ++c.timeouts;
            report_.timeout_ids.push_back(entry.req->id);
            break;
        case RequestStatus::Failed:
            ++c.failed;
            break;
        }
        // Counts CPU products *computed*, not just delivered — a
        // fallback that lands past its deadline still did the work, and
        // the ledger fold (which sees every fallback) must agree with
        // the report exactly.
        if (fallback)
            ++c.fallbacks;

        {
            support::trace::Span span(settle_span_name(tenant.name),
                                      "serve");
            span.arg("status",
                     static_cast<double>(static_cast<int>(status)));
            span.arg("skew_us",
                     static_cast<double>(outcome.skew_us));
        }

        notify_handle(entry.index);
    }

    void
    notify_handle(std::size_t index)
    {
        const std::shared_ptr<HandleState>& handle = handles_[index];
        if (handle == nullptr)
            return;
        std::function<void(const Outcome&)> callback;
        {
            std::lock_guard<std::mutex> lock(handle->mutex);
            handle->outcome = report_.outcomes[index]; // deep copy
            handle->settled = true;
            callback = std::move(handle->callback);
            handle->callback = nullptr;
        }
        handle->cv.notify_all();
        if (callback)
            callback(handle->outcome);
    }

    /** Backlog-drain hint for Unavailable outcomes. */
    support::Clock::duration
    retry_after_hint() const
    {
        double wait = queued_cost_us_;
        // device_free_us_ is the dispatch pipeline's tail: the virtual
        // stamp the last dispatched wave completes at.
        if (device_free_us_ > vnow_)
            wait += device_free_us_ - vnow_;
        return support::Clock::duration(std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(wait)));
    }

    // --- admission -------------------------------------------------
    void
    admit(std::size_t index)
    {
        const Request& req = requests_[index];
        const std::size_t t = tenant_of(req);
        TenantState& tenant = tenants_[t];
        ++tenant.counters.submitted;

        Entry entry;
        entry.index = index;
        entry.req = &req;
        entry.tenant = t;
        entry.cost_us = cost_estimate(req);
        entry.deadline_us = req.deadline_us;
        if (entry.deadline_us == 0 &&
            config_.default_deadline.count() != 0)
            entry.deadline_us =
                req.arrival_us + static_cast<std::uint64_t>(
                                     config_.default_deadline.count());

        // Deadline feasibility: a request that cannot finish by its
        // deadline even on an idle device is refused outright — never
        // silently computed.
        if (entry.deadline_us != 0 &&
            (static_cast<double>(req.arrival_us) + entry.cost_us >
             static_cast<double>(entry.deadline_us))) {
            settle(entry, RequestStatus::RejectedDeadline,
                   ErrorCode::DeadlineExceeded, vnow_);
            return;
        }

        // Bounded per-tenant queue.
        if (tenant.queued >= config_.limits.max_queue_depth) {
            settle(entry, RequestStatus::ShedAdmission,
                   ErrorCode::Unavailable, vnow_, Natural(), false,
                   retry_after_hint());
            return;
        }

        // Global backlog bound: over the limit, evict strictly
        // lower-priority queued work first (worst class, youngest
        // arrival); if no such victim frees enough room, shed the
        // arrival itself.
        while (queued_cost_us_ + entry.cost_us >
               config_.max_backlog_us) {
            std::size_t victim = ready_.size();
            for (std::size_t i = 0; i < ready_.size(); ++i) {
                if (key_of(ready_[i]).priority <=
                    static_cast<int>(req.priority))
                    continue; // only strictly lower classes evict
                if (victim == ready_.size() ||
                    key_of(ready_[victim]) < key_of(ready_[i]))
                    victim = i;
            }
            if (victim == ready_.size())
                break;
            const Entry evicted = ready_[victim];
            ready_.erase(ready_.begin() +
                         static_cast<std::ptrdiff_t>(victim));
            queued_cost_us_ -= evicted.cost_us;
            --tenants_[evicted.tenant].queued;
            settle(evicted, RequestStatus::ShedEvicted,
                   ErrorCode::Unavailable, vnow_, Natural(), false,
                   retry_after_hint());
        }
        if (queued_cost_us_ + entry.cost_us > config_.max_backlog_us) {
            settle(entry, RequestStatus::ShedAdmission,
                   ErrorCode::Unavailable, vnow_, Natural(), false,
                   retry_after_hint());
            return;
        }

        ++tenant.counters.admitted;
        ++tenant.queued;
        queued_cost_us_ += entry.cost_us;
        ready_.push_back(std::move(entry));
    }

    // --- retry / fallback ------------------------------------------
    void
    complete_exact(Entry& entry, Natural product, double when,
                   bool fallback)
    {
        if (entry.deadline_us != 0 &&
            when > static_cast<double>(entry.deadline_us)) {
            // Cooperative cancellation: the product exists but arrived
            // late; the client sees a timeout, never a stale answer.
            settle(entry, RequestStatus::TimedOut,
                   ErrorCode::DeadlineExceeded, when, Natural(),
                   fallback);
            return;
        }
        settle(entry, RequestStatus::Completed, ErrorCode::Ok, when,
               std::move(product), fallback);
    }

    void
    cpu_fallback(Entry& entry, double when)
    {
        ++wave_fallbacks_;
        complete_exact(entry, entry.req->a * entry.req->b, when,
                       /*fallback=*/true);
    }

    void
    retry_or_fallback(Entry& entry, double when)
    {
        TenantState& tenant = tenants_[entry.tenant];
        if (entry.attempts < config_.max_attempts &&
            tenant.retry_budget > 0) {
            const support::Clock::duration backoff =
                config_.backoff_base *
                static_cast<std::int64_t>(
                    1ull << (entry.attempts - 1));
            const double ready_at =
                when + static_cast<double>(backoff.count());
            if (entry.deadline_us == 0 ||
                ready_at < static_cast<double>(entry.deadline_us)) {
                --tenant.retry_budget;
                ++tenant.counters.retries;
                ++wave_retries_;
                entry.ready_us = ready_at;
                ++tenant.queued;
                queued_cost_us_ += entry.cost_us;
                ready_.push_back(entry);
                return;
            }
            // A backoff that outlives the deadline is pointless;
            // serve the exact product now instead.
        }
        cpu_fallback(entry, when);
    }

    // --- dispatch --------------------------------------------------
    bool
    dispatchable() const
    {
        if (inflight_.size() >= config_.max_inflight_waves)
            return false;
        for (const Entry& entry : ready_)
            if (entry.ready_us <= vnow_)
                return true;
        return false;
    }

    void
    dispatch()
    {
        // Select up to wave_size dispatchable entries in key order.
        std::vector<std::size_t> picked;
        while (picked.size() < config_.wave_size) {
            std::size_t best = ready_.size();
            for (std::size_t i = 0; i < ready_.size(); ++i) {
                if (ready_[i].ready_us > vnow_)
                    continue;
                if (std::find(picked.begin(), picked.end(), i) !=
                    picked.end())
                    continue;
                if (best == ready_.size() ||
                    key_of(ready_[i]) < key_of(ready_[best]))
                    best = i;
            }
            if (best == ready_.size())
                break;
            picked.push_back(best);
        }
        CAMP_ASSERT(!picked.empty());
        std::sort(picked.begin(), picked.end());
        WaveInFlight wave;
        for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
            wave.entries.push_back(std::move(ready_[*it]));
            ready_.erase(ready_.begin() +
                         static_cast<std::ptrdiff_t>(*it));
        }
        std::reverse(wave.entries.begin(), wave.entries.end());
        std::sort(wave.entries.begin(), wave.entries.end(),
                  [](const Entry& a, const Entry& b) {
                      return key_of(a) < key_of(b);
                  });

        double wave_cost = 0.0;
        std::vector<Entry> dispatched;
        for (Entry& entry : wave.entries) {
            --tenants_[entry.tenant].queued;
            queued_cost_us_ -= entry.cost_us;
            // Deadline gate at dispatch: expired work is dropped, not
            // computed.
            if (entry.deadline_us != 0 &&
                static_cast<double>(entry.deadline_us) <= vnow_) {
                settle(entry, RequestStatus::TimedOut,
                       ErrorCode::DeadlineExceeded, vnow_);
                continue;
            }
            // Capability gate: an oversized operand would poison the
            // whole coalesced batch with InvalidArgument; fail it
            // individually instead.
            if (cap_bits_ != 0 &&
                (entry.req->a.bits() > cap_bits_ ||
                 entry.req->b.bits() > cap_bits_)) {
                settle(entry, RequestStatus::Failed,
                       ErrorCode::InvalidArgument, vnow_);
                continue;
            }
            ++entry.attempts;
            wave_cost += entry.cost_us;
            // Product-cache lookup, on the engine thread in virtual
            // event order — the hit pattern is a pure function of the
            // dispatch sequence, identical across threads/shards/wall
            // vs virtual (the differential-oracle contract). A hit
            // keeps its model cost in wave_cost, so the virtual
            // timeline — and with it every shed/deadline decision —
            // is byte-identical with the cache off.
            if (opcache_ != nullptr) {
                if (const auto hit =
                        opcache_->lookup(product_key(*entry.req))) {
                    entry.from_cache = true;
                    // Copy-on-return: cached limbs stay immutable.
                    entry.cached_product =
                        Natural::from_limbs(hit->parts[0]);
                }
            }
            dispatched.push_back(std::move(entry));
        }
        wave.entries = std::move(dispatched);
        if (wave.entries.empty())
            return; // everything expired; no device work

        support::trace::Span span("serve.wave", "serve");
        span.arg("count", static_cast<double>(wave.entries.size()));
        span.arg("cost_us", wave_cost);

        // Real execution through the coalescing queue: the typed-error
        // futures of the exec plane are the actual failure channel.
        // Cache hits skip the device entirely — only misses submit.
        wave.futures.reserve(wave.entries.size());
        for (const Entry& entry : wave.entries)
            if (!entry.from_cache)
                wave.futures.push_back(
                    queue_.submit(entry.req->a, entry.req->b));
        if (wave.futures.empty()) {
            // Every entry hit the cache: nothing to flush, and the
            // results can be materialized immediately in either mode.
            harvest(wave);
        } else if (config_.wall_clock) {
            // Wall mode: claim the wave (ring backpressure can never
            // bite here — the engine bounds in-flight waves to the
            // ring depth) and execute it on its own worker; results
            // are harvested at the wave's virtual completion event.
            exec::SubmitQueue::Ticket ticket = queue_.begin_flush();
            CAMP_ASSERT(ticket.valid());
            wave.worker = std::thread(
                [this, t = std::move(ticket)]() mutable {
                    queue_.run_flush(std::move(t));
                });
        } else {
            // Virtual mode: the flush runs inline; harvest now and
            // hold the results until the completion event.
            queue_.flush();
            harvest(wave);
        }
        // Pipelined service: the device starts this wave when it
        // finishes the previous one (in-order pipeline); with
        // max_inflight_waves == 1 this is exactly vnow + cost.
        wave.completion_us = std::max(vnow_, device_free_us_) +
                             std::max(1.0, wave_cost);
        device_free_us_ = wave.completion_us;
        ++report_.waves;
        metrics::counter("serve.waves").add();
        inflight_.push_back(std::move(wave));
    }

    /** Resolve the wave into results: cache hits materialize from the
     * entry's cached product; misses consume their futures in order
     * (non-blocking when the flush already ran; triggers it
     * otherwise). */
    void
    harvest(WaveInFlight& wave)
    {
        wave.results.resize(wave.entries.size());
        std::size_t future = 0;
        for (std::size_t i = 0; i < wave.entries.size(); ++i) {
            ExecResult& res = wave.results[i];
            if (wave.entries[i].from_cache) {
                // Verified cache hit: exact product, never faulty,
                // nothing injected — the device never saw it.
                res.product =
                    std::move(wave.entries[i].cached_product);
                res.error = ErrorCode::Ok;
                continue;
            }
            CAMP_ASSERT(future < wave.futures.size());
            res.error = wave.futures[future].error();
            if (res.error == ErrorCode::Ok) {
                // take(): moves the product out of the queue slot —
                // this delivery edge used to deep-copy every product.
                res.product = wave.futures[future].take();
                res.faulty = wave.futures[future].faulty();
                res.injected = wave.futures[future].injected();
                wave.injected += res.injected;
            }
            ++future;
        }
        wave.futures.clear();
    }

    // --- wave completion -------------------------------------------
    void
    complete_wave()
    {
        WaveInFlight wave = std::move(inflight_.front());
        inflight_.pop_front();
        if (wave.worker.joinable()) {
            // Wall mode: the join is the synchronization edge — after
            // it, every future of this wave is ready and error() /
            // take() below cannot block.
            wave.worker.join();
            harvest(wave);
        }
        wave_retries_ = 0;
        wave_fallbacks_ = 0;
        std::uint64_t wave_faulty = 0;
        const double when = wave.completion_us;
        for (std::size_t i = 0; i < wave.entries.size(); ++i) {
            Entry& entry = wave.entries[i];
            ExecResult& res = wave.results[i];
            if (res.error != ErrorCode::Ok) {
                if (error_retryable(res.error))
                    retry_or_fallback(entry, when);
                else
                    settle(entry, RequestStatus::Failed, res.error,
                           when);
                continue;
            }
            if (res.faulty) {
                ++wave_faulty;
                entry.faulty_seen = true;
                ++tenants_[entry.tenant].counters.faulty_results;
                if (config_.retry_on_faulty) {
                    retry_or_fallback(entry, when);
                    continue;
                }
            }
            // Populate the product cache from clean device results
            // only — a flagged-faulty product must never be served to
            // a later repeat, and hits need no re-insert (lookup
            // already refreshed their LRU position).
            if (opcache_ != nullptr && !entry.from_cache &&
                !res.faulty) {
                support::OpValue value;
                value.parts.push_back(res.product.limbs());
                opcache_->insert(product_key(*entry.req),
                                 std::move(value));
            }
            complete_exact(entry, std::move(res.product), when,
                           /*fallback=*/false);
        }
        if (fault_sink_ != nullptr) {
            mpapca::FaultStats delta;
            delta.injected = wave.injected;
            // Every result is validated: device products by the exec
            // plane's fault check, cache hits by the opcache's
            // checksum + full operand compare — so the ledger keeps
            // the checks == attempts conservation identity.
            delta.checks = wave.results.size();
            delta.detected = wave_faulty;
            delta.retried = wave_retries_;
            delta.fallbacks = wave_fallbacks_;
            fault_sink_->fold_fault_stats(delta);
        }
    }

    // --- the virtual-time event loop -------------------------------
    /**
     * Advance the engine through every event strictly inside
     * (vnow, target]: complete due waves, dispatch at instants before
     * @p target (arrivals at target itself may still be coming — the
     * caller admits, then a later pump dispatches). Leaves
     * vnow_ <= target; the caller raises vnow_ to the arrival stamp.
     */
    void
    pump_to(double target)
    {
        for (;;) {
            if (vnow_ < target && dispatchable()) {
                dispatch();
                continue;
            }
            double t_next = kInfinity;
            if (!inflight_.empty())
                t_next = inflight_.front().completion_us;
            // Only *future* retry wakeups are events; an entry already
            // ready (ready_us <= vnow_) is the dispatch gate's job and
            // must not pin t_next to a past stamp.
            if (inflight_.size() < config_.max_inflight_waves)
                for (const Entry& entry : ready_)
                    if (entry.ready_us > vnow_ &&
                        entry.ready_us < target)
                        t_next = std::min(t_next, entry.ready_us);
            if (t_next == kInfinity || t_next > target)
                break;
            vnow_ = std::max(vnow_, t_next);
            while (!inflight_.empty() &&
                   inflight_.front().completion_us <= vnow_)
                complete_wave();
        }
    }

    // --- report assembly -------------------------------------------
    ServeReport
    assemble_report()
    {
        ServeReport report = std::move(report_);
        report_ = ServeReport();
        report.virtual_end_us =
            static_cast<std::uint64_t>(virtual_end_);
        report.wall_end_us = clock_.now_us();
        std::sort(report.shed_ids.begin(), report.shed_ids.end());
        std::sort(report.timeout_ids.begin(),
                  report.timeout_ids.end());
        for (TenantState& tenant : tenants_) {
            TenantReport tenant_report;
            tenant_report.name = tenant.name;
            tenant_report.priority = tenant.priority;
            tenant_report.counters = tenant.counters;
            std::sort(tenant.latencies_us.begin(),
                      tenant.latencies_us.end());
            tenant_report.latencies_us =
                std::move(tenant.latencies_us);
            tenant_report.p50_us =
                percentile(tenant_report.latencies_us, 0.50);
            tenant_report.p95_us =
                percentile(tenant_report.latencies_us, 0.95);
            tenant_report.p99_us =
                percentile(tenant_report.latencies_us, 0.99);

            const TenantCounters& c = tenant_report.counters;
            const std::string prefix =
                "serve.tenant." + tenant.name + ".";
            metrics::counter(prefix + "submitted").add(c.submitted);
            metrics::counter(prefix + "admitted").add(c.admitted);
            metrics::counter(prefix + "completed").add(c.completed);
            metrics::counter(prefix + "shed")
                .add(c.shed_admission + c.shed_evicted);
            metrics::counter(prefix + "timeouts")
                .add(c.timeouts + c.rejected_deadline);
            metrics::counter(prefix + "failed").add(c.failed);
            metrics::counter(prefix + "retries").add(c.retries);
            metrics::counter(prefix + "fallbacks").add(c.fallbacks);
            metrics::counter(prefix + "wall_late").add(c.wall_late);
            metrics::Histogram& latency =
                metrics::histogram(prefix + "latency_us");
            for (const std::uint64_t sample :
                 tenant_report.latencies_us)
                latency.record(sample);

            report.totals.submitted += c.submitted;
            report.totals.admitted += c.admitted;
            report.totals.completed += c.completed;
            report.totals.shed_admission += c.shed_admission;
            report.totals.shed_evicted += c.shed_evicted;
            report.totals.rejected_deadline += c.rejected_deadline;
            report.totals.timeouts += c.timeouts;
            report.totals.failed += c.failed;
            report.totals.retries += c.retries;
            report.totals.fallbacks += c.fallbacks;
            report.totals.faulty_results += c.faulty_results;
            report.totals.wall_late += c.wall_late;
            report.tenants.push_back(std::move(tenant_report));
        }
        return report;
    }

    const ServeConfig& config_;
    exec::Device& device_;
    mpapca::Ledger* fault_sink_;
    support::Clock& clock_;
    support::OpCache* opcache_; ///< per-server; nullptr = disabled
    exec::SubmitQueue queue_;
    std::uint64_t cap_bits_;

    /** Stable request storage: entries hold pointers into this deque
     * for the whole session (submit_async callers keep nothing). */
    std::deque<Request> requests_;
    std::vector<std::shared_ptr<HandleState>> handles_;
    ServeReport report_;

    std::vector<TenantState> tenants_;
    std::unordered_map<std::string, std::size_t> tenant_index_;
    std::vector<Entry> ready_;
    std::deque<WaveInFlight> inflight_;
    double queued_cost_us_ = 0.0;
    double device_free_us_ = 0.0; ///< in-order pipeline tail
    double vnow_ = 0.0;
    double virtual_end_ = 0.0;
    std::uint64_t last_arrival_us_ = 0;
    std::uint64_t wave_retries_ = 0;
    std::uint64_t wave_fallbacks_ = 0;
};

} // namespace detail

bool
Server::Handle::settled() const
{
    CAMP_ASSERT(state_ != nullptr);
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->settled;
}

void
Server::Handle::wait() const
{
    CAMP_ASSERT(state_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->settled; });
}

const Outcome&
Server::Handle::outcome() const
{
    wait();
    return state_->outcome;
}

void
Server::Handle::on_settle(std::function<void(const Outcome&)> callback)
{
    CAMP_ASSERT(state_ != nullptr);
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->settled) {
        lock.unlock();
        if (callback)
            callback(state_->outcome);
        return;
    }
    state_->callback = std::move(callback);
}

Server::Server(ServeConfig config, exec::Device& device,
               mpapca::Ledger* fault_sink, support::Clock* clock)
    : config_(std::move(config)), device_(device),
      fault_sink_(fault_sink)
{
    if (config_.wave_size == 0)
        throw InvalidArgument("wave_size must be >= 1");
    if (config_.max_attempts == 0)
        throw InvalidArgument("max_attempts must be >= 1");
    if (!(config_.max_backlog_us > 0.0))
        throw InvalidArgument("max_backlog_us must be positive");
    if (config_.limits.max_queue_depth == 0)
        throw InvalidArgument("max_queue_depth must be >= 1");
    if (config_.backoff_base.count() <= 0)
        throw InvalidArgument("backoff_base must be >= 1us");
    if (config_.max_inflight_waves == 0)
        throw InvalidArgument("max_inflight_waves must be >= 1");
    if (clock != nullptr) {
        clock_ = clock;
    } else {
        if (config_.wall_clock)
            owned_clock_ = std::make_unique<support::WallClock>();
        else
            owned_clock_ = std::make_unique<support::VirtualClock>();
        clock_ = owned_clock_.get();
    }
    if (config_.use_opcache)
        // Per-server product cache: each server starts cold, so two
        // servers fed the same workload observe the same hit pattern
        // — the property every differential test relies on.
        opcache_ = std::make_unique<support::OpCache>(
            support::OpCache::env_max_bytes(), true, 8,
            "opcache.serve");
}

Server::~Server() = default;

ServeReport
Server::process(const std::vector<Request>& workload)
{
    if (engine_ != nullptr)
        throw InvalidArgument(
            "process() while an async session is open; finish() it "
            "first");
    support::trace::Span process_span("serve.process", "serve");
    process_span.arg("requests",
                     static_cast<double>(workload.size()));

    // Arrival order is the event order; require it sorted so virtual
    // time never runs backwards.
    for (std::size_t i = 1; i < workload.size(); ++i)
        if (workload[i].arrival_us < workload[i - 1].arrival_us)
            throw InvalidArgument(
                "workload must be sorted by arrival time");

    detail::Engine engine(config_, device_, fault_sink_, *clock_,
                          opcache_.get());
    for (const Request& request : workload)
        engine.arrive(request, /*want_handle=*/false);
    return engine.finish();
}

Server::Handle
Server::submit_async(const Request& request)
{
    if (engine_ == nullptr)
        engine_ = std::make_unique<detail::Engine>(
            config_, device_, fault_sink_, *clock_, opcache_.get());
    return Handle(engine_->arrive(request, /*want_handle=*/true));
}

support::OpCacheStats
Server::opcache_stats() const
{
    if (opcache_ == nullptr)
        return support::OpCacheStats{};
    return opcache_->stats();
}

ServeReport
Server::finish()
{
    if (engine_ == nullptr)
        throw InvalidArgument(
            "finish() without an open async session");
    ServeReport report = engine_->finish();
    engine_.reset();
    return report;
}

} // namespace camp::serve
