/**
 * @file
 * Config-described multi-tenant workload generator for the serving
 * layer: mixed op kinds (general products and squarings), log-uniform
 * bit-width distributions, Poisson arrivals with burst clumps,
 * repeated operand pairs, per-tenant priority classes, and optional
 * per-request deadlines. Fully deterministic from one seed (camp::Rng)
 * so a soak run replays exactly — CAMP_FUZZ_SEED overrides the seed,
 * matching the repo-wide fuzz-replay convention.
 */
#ifndef CAMP_SERVE_WORKLOAD_HPP
#define CAMP_SERVE_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mpn/natural.hpp"

namespace camp::serve {

/** Scheduling class; High sheds last. */
enum class Priority
{
    High = 0,
    Normal = 1,
    Low = 2,
};

const char* priority_name(Priority priority);

/** Operation mix element. */
enum class OpKind
{
    Mul,    ///< general product a*b
    Square, ///< squaring (b aliases a)
};

/** One client request as the server sees it. */
struct Request
{
    std::uint64_t id = 0;
    std::string tenant;
    Priority priority = Priority::Normal;
    OpKind op = OpKind::Mul;
    mpn::Natural a;
    mpn::Natural b;
    std::uint64_t arrival_us = 0;  ///< virtual arrival time
    std::uint64_t deadline_us = 0; ///< absolute; 0 = none
};

/** One tenant of the generated mix. */
struct TenantSpec
{
    std::string name;
    Priority priority = Priority::Normal;
    double share = 1.0; ///< relative traffic weight
};

/** The generator's whole description; see generate_workload. */
struct WorkloadSpec
{
    std::uint64_t seed = 0x5e47e5eedull;
    std::size_t requests = 256;

    /** Poisson arrivals at this mean spacing... */
    double mean_interarrival_us = 200.0;
    /** ...except bursts: with this probability an arrival opens a
     * clump of burst_len requests landing at the same instant. */
    double burst_fraction = 0.15;
    std::size_t burst_len = 8;

    /** Operand widths, log-uniform in [min_bits, max_bits]. */
    std::uint64_t min_bits = 64;
    std::uint64_t max_bits = 4096;

    double square_fraction = 0.2; ///< squarings in the op mix
    double repeat_fraction = 0.1; ///< re-submissions of an earlier pair

    /** Fraction of requests carrying a deadline, set to arrival +
     * [slack, 2*slack) microseconds. */
    double deadline_fraction = 0.25;
    std::uint64_t deadline_slack_us = 5000;

    /** Traffic mix; empty = the default three-class mix
     * (alpha/High, beta/Normal, gamma/Low, equal shares). */
    std::vector<TenantSpec> tenants;
};

/** The default alpha/beta/gamma tenant mix. */
std::vector<TenantSpec> default_tenants();

/**
 * Generate the workload described by @p spec: requests sorted by
 * arrival time, ids 0..requests-1 in arrival order. Bit-identical for
 * equal specs (the replay contract). Throws camp::InvalidArgument on
 * a degenerate spec (no requests, min_bits > max_bits, fractions
 * outside [0, 1], empty tenant name, nonpositive share).
 */
std::vector<Request> generate_workload(const WorkloadSpec& spec);

/**
 * @p defaults with the environment applied: CAMP_FUZZ_SEED overrides
 * the seed, CAMP_SERVE_REQUESTS the request count.
 */
WorkloadSpec workload_spec_from_env(WorkloadSpec defaults = {});

} // namespace camp::serve

#endif // CAMP_SERVE_WORKLOAD_HPP
