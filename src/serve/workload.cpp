#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "support/env.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace camp::serve {

using mpn::Natural;

const char*
priority_name(Priority priority)
{
    switch (priority) {
    case Priority::High: return "high";
    case Priority::Normal: return "normal";
    case Priority::Low: return "low";
    }
    return "unknown";
}

std::vector<TenantSpec>
default_tenants()
{
    return {
        {"alpha", Priority::High, 1.0},
        {"beta", Priority::Normal, 1.0},
        {"gamma", Priority::Low, 1.0},
    };
}

namespace {

void
check_fraction(const char* name, double value)
{
    if (!(value >= 0.0 && value <= 1.0))
        throw InvalidArgument(std::string(name) +
                              " must be within [0, 1]");
}

/** Log-uniform draw in [lo, hi]. */
std::uint64_t
log_uniform_bits(Rng& rng, std::uint64_t lo, std::uint64_t hi)
{
    if (lo == hi)
        return lo;
    const double span = std::log(static_cast<double>(hi) /
                                 static_cast<double>(lo));
    const double bits =
        static_cast<double>(lo) * std::exp(rng.uniform() * span);
    return std::min(hi, std::max(lo, static_cast<std::uint64_t>(bits)));
}

} // namespace

std::vector<Request>
generate_workload(const WorkloadSpec& spec)
{
    if (spec.requests == 0)
        throw InvalidArgument("workload needs at least one request");
    if (spec.min_bits == 0 || spec.min_bits > spec.max_bits)
        throw InvalidArgument(
            "workload bit range needs 1 <= min_bits <= max_bits");
    if (!(spec.mean_interarrival_us > 0.0))
        throw InvalidArgument("mean_interarrival_us must be positive");
    if (spec.burst_len == 0)
        throw InvalidArgument("burst_len must be >= 1");
    check_fraction("burst_fraction", spec.burst_fraction);
    check_fraction("square_fraction", spec.square_fraction);
    check_fraction("repeat_fraction", spec.repeat_fraction);
    check_fraction("deadline_fraction", spec.deadline_fraction);

    const std::vector<TenantSpec> tenants =
        spec.tenants.empty() ? default_tenants() : spec.tenants;
    double total_share = 0.0;
    for (const TenantSpec& tenant : tenants) {
        if (tenant.name.empty())
            throw InvalidArgument("tenant name must not be empty");
        if (!(tenant.share > 0.0))
            throw InvalidArgument("tenant share must be positive: " +
                                  tenant.name);
        total_share += tenant.share;
    }

    Rng rng(spec.seed);
    std::vector<Request> out;
    out.reserve(spec.requests);
    std::vector<std::pair<Natural, Natural>> history;
    double clock_us = 0.0;
    std::size_t burst_remaining = 0;

    for (std::size_t i = 0; i < spec.requests; ++i) {
        // Arrival process: exponential gaps, except inside a burst
        // clump where requests land at the same instant.
        if (burst_remaining > 0) {
            --burst_remaining;
        } else {
            clock_us += -spec.mean_interarrival_us *
                        std::log(1.0 - rng.uniform());
            if (rng.uniform() < spec.burst_fraction)
                burst_remaining = spec.burst_len - 1;
        }

        // Tenant: weighted by share.
        double pick = rng.uniform() * total_share;
        std::size_t t = 0;
        for (; t + 1 < tenants.size(); ++t) {
            if (pick < tenants[t].share)
                break;
            pick -= tenants[t].share;
        }

        Request request;
        request.id = i;
        request.tenant = tenants[t].name;
        request.priority = tenants[t].priority;
        request.arrival_us = static_cast<std::uint64_t>(clock_us);

        if (!history.empty() &&
            rng.uniform() < spec.repeat_fraction) {
            // Re-submission of an earlier operand pair (cache-friendly
            // client behaviour; also exercises duplicate coalescing).
            const auto& prev = history[rng.below(history.size())];
            request.a = prev.first;
            request.b = prev.second;
            request.op = prev.first == prev.second ? OpKind::Square
                                                  : OpKind::Mul;
        } else {
            const std::uint64_t bits_a =
                log_uniform_bits(rng, spec.min_bits, spec.max_bits);
            request.a = Natural::random_bits(rng, bits_a);
            if (rng.uniform() < spec.square_fraction) {
                request.op = OpKind::Square;
                request.b = request.a;
            } else {
                request.op = OpKind::Mul;
                const std::uint64_t bits_b = log_uniform_bits(
                    rng, spec.min_bits, spec.max_bits);
                request.b = Natural::random_bits(rng, bits_b);
            }
            history.emplace_back(request.a, request.b);
        }

        if (rng.uniform() < spec.deadline_fraction)
            request.deadline_us = request.arrival_us +
                                  spec.deadline_slack_us +
                                  rng.below(spec.deadline_slack_us + 1);
        out.push_back(std::move(request));
    }
    return out;
}

WorkloadSpec
workload_spec_from_env(WorkloadSpec defaults)
{
    if (const char* env = std::getenv("CAMP_FUZZ_SEED")) {
        char* end = nullptr;
        const std::uint64_t seed = std::strtoull(env, &end, 0);
        if (end != env && *end == '\0')
            defaults.seed = seed;
    }
    defaults.requests =
        static_cast<std::size_t>(support::env_positive_u64(
            "CAMP_SERVE_REQUESTS", defaults.requests));
    return defaults;
}

} // namespace camp::serve
