/**
 * @file
 * BreakerDevice: a fault-isolating circuit breaker composed around any
 * exec::Device. It watches the device's failure signals — thrown
 * batches and detected-faulty products — and quarantines a sick device
 * behind the exact CPU path instead of letting every wave keep paying
 * for it:
 *
 *   Closed ----(open_threshold consecutive failures)----> Open
 *   Open   ----(probe_after fallback products)----------> HalfOpen
 *   HalfOpen --(probe wave clean)-----------------------> Closed
 *   HalfOpen --(probe wave fails)-----------------------> Open
 *
 * While Open, every product is served by the golden mpn path (exact by
 * construction), so traffic stays correct throughout the quarantine.
 * Failures seen while Closed are still *reported* to the caller
 * (throws re-thrown typed, faulty flags preserved) — recovery of an
 * individual product is the server's retry policy; the breaker's job
 * is isolating the device once failures persist.
 */
#ifndef CAMP_SERVE_BREAKER_HPP
#define CAMP_SERVE_BREAKER_HPP

#include <memory>
#include <mutex>

#include "exec/device.hpp"
#include "serve/config.hpp"
#include "support/clock.hpp"

namespace camp::serve {

enum class BreakerState
{
    Closed,   ///< traffic flows to the device
    Open,     ///< device quarantined; CPU serves everything
    HalfOpen, ///< next wave probes the device
};

const char* breaker_state_name(BreakerState state);

/** Cumulative breaker accounting (never reset). */
struct BreakerStats
{
    std::uint64_t failures = 0; ///< failure events observed
    std::uint64_t opens = 0;    ///< Closed/HalfOpen -> Open transitions
    std::uint64_t closes = 0;   ///< successful probe recoveries
    std::uint64_t probes = 0;   ///< HalfOpen waves sent to the device
    std::uint64_t fallback_products = 0; ///< served by CPU while Open
    std::uint64_t inner_products = 0;    ///< served by the device
    /** Clock stamp of the latest state transition (0 until the first
     * one, or always 0 when no clock was attached). */
    std::uint64_t last_transition_us = 0;
    /** Total time spent quarantined (Open), on the attached clock —
     * virtual microseconds when the server shares its VirtualClock,
     * real ones on a WallClock. Zero without a clock. */
    support::Clock::duration open_total{0};
};

class BreakerDevice : public exec::Device
{
  public:
    /** @p clock, when given (not owned; must outlive the breaker),
     * timestamps state transitions and accumulates Open residency in
     * BreakerStats — share the server's clock (Server::clock()) to get
     * quarantine durations in serving time. The state machine itself
     * stays count-driven either way. */
    BreakerDevice(std::unique_ptr<exec::Device> inner,
                  BreakerPolicy policy,
                  const support::Clock* clock = nullptr);

    const char* name() const override { return inner_->name(); }
    exec::DeviceKind kind() const override { return inner_->kind(); }
    std::uint64_t base_cap_bits() const override
    {
        return inner_->base_cap_bits();
    }

    const mpn::MulTuning& tuning() const override
    {
        return inner_->tuning();
    }
    void set_tuning(const mpn::MulTuning& tuning) override
    {
        inner_->set_tuning(tuning);
    }

    /** One product, golden-checked: a wrong or throwing device answer
     * counts as a failure event and the exact product is served
     * regardless (single products are cheap enough to check always —
     * batch traffic relies on the device's own validation flags). */
    exec::MulOutcome mul(const mpn::Natural& a,
                         const mpn::Natural& b) override;

    sim::BatchResult
    mul_batch(const std::vector<std::pair<mpn::Natural,
                                          mpn::Natural>>& pairs,
              unsigned parallelism = 0) override;

    sim::BatchResult
    mul_batch_indexed(const std::vector<std::pair<mpn::Natural,
                                                  mpn::Natural>>& pairs,
                      const std::vector<std::uint64_t>& indices,
                      unsigned parallelism = 0) override;

    /** Cost comes from the wrapped device regardless of state, so a
     * virtual-time plan stays stable across quarantine episodes. */
    exec::CostEstimate cost(std::uint64_t bits_a,
                            std::uint64_t bits_b) const override;

    BreakerState state() const;
    BreakerStats stats() const;
    const BreakerPolicy& policy() const { return policy_; }
    exec::Device& inner() { return *inner_; }

  private:
    /** Serve @p pairs exactly via the golden path while Open. */
    sim::BatchResult fallback_batch(
        const std::vector<std::pair<mpn::Natural, mpn::Natural>>&
            pairs);

    void transition_locked(BreakerState next);
    void record_failures_locked(std::uint64_t events);
    void record_success_locked();

    std::unique_ptr<exec::Device> inner_;
    BreakerPolicy policy_;
    const support::Clock* clock_; ///< optional transition timestamps
    mutable std::mutex mutex_;
    BreakerState state_ = BreakerState::Closed;
    unsigned consecutive_failures_ = 0;
    std::uint64_t fallback_since_open_ = 0;
    BreakerStats stats_;
};

} // namespace camp::serve

#endif // CAMP_SERVE_BREAKER_HPP
