/**
 * @file
 * Serving-layer configuration: admission limits, deadlines, the retry
 * policy, and the circuit-breaker thresholds. Every knob has a
 * `CAMP_SERVE_*` environment override (serve_config_from_env) so soak
 * runs and CI legs can reshape the server without recompiling —
 * mirroring the exec plane's CAMP_SHARDS/CAMP_BACKEND convention.
 */
#ifndef CAMP_SERVE_CONFIG_HPP
#define CAMP_SERVE_CONFIG_HPP

#include <cstddef>
#include <cstdint>

namespace camp::serve {

/** Per-tenant admission and retry bounds. */
struct TenantLimits
{
    /** Bounded admission queue: an arriving request finding this many
     * of its tenant's requests already queued is shed. */
    std::size_t max_queue_depth = 64;

    /** Retries the tenant may spend across a whole workload; once
     * exhausted, retryable failures go straight to the CPU path. */
    std::uint64_t retry_budget = 64;
};

/** Per-device circuit breaker thresholds (see serve/breaker.hpp). */
struct BreakerPolicy
{
    /** Consecutive failure events (thrown batch = 1, each
     * detected-faulty product = 1) that trip Closed -> Open. */
    unsigned open_threshold = 4;

    /** Fallback products served while Open before the breaker moves to
     * HalfOpen and probes the device again. */
    std::uint64_t probe_after = 32;
};

/** The server's complete policy surface. */
struct ServeConfig
{
    TenantLimits limits;

    /** Global backlog bound, in virtual microseconds of estimated
     * device time: when the queued work exceeds this, load is shed —
     * lowest priority first. */
    double max_inflight_us = 50000.0;

    /** Requests dispatched per coalesced device wave. */
    std::size_t wave_size = 16;

    /** Deadline assigned at admission to requests that carry none
     * (microseconds after arrival); 0 = no implicit deadline. */
    std::uint64_t default_deadline_us = 0;

    /** Exponential backoff base: retry attempt n waits
     * backoff_base_us * 2^(n-1) virtual microseconds. */
    std::uint64_t backoff_base_us = 100;

    /** Dispatch attempts per request (first try included). */
    unsigned max_attempts = 3;

    /** Treat a detected-faulty product as a retryable failure (the
     * soak's recovery path); when false the flagged product is
     * delivered and only counted. */
    bool retry_on_faulty = true;

    BreakerPolicy breaker;
};

/**
 * Defaults overridden by the environment: CAMP_SERVE_DEPTH,
 * CAMP_SERVE_RETRY_BUDGET, CAMP_SERVE_INFLIGHT_US, CAMP_SERVE_WAVE,
 * CAMP_SERVE_DEADLINE_US, CAMP_SERVE_BACKOFF_US, CAMP_SERVE_ATTEMPTS,
 * CAMP_SERVE_BREAKER_THRESHOLD, CAMP_SERVE_BREAKER_PROBE. Junk values
 * throw camp::InvalidArgument naming the variable.
 */
ServeConfig serve_config_from_env();

} // namespace camp::serve

#endif // CAMP_SERVE_CONFIG_HPP
