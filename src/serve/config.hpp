/**
 * @file
 * Serving-layer configuration: admission limits, deadlines, the retry
 * policy, the wave pipeline depth, the clock source, and the
 * circuit-breaker thresholds. Every knob has a `CAMP_SERVE_*`
 * environment override (serve_config_from_env) so soak runs and CI
 * legs can reshape the server without recompiling — mirroring the exec
 * plane's CAMP_SHARDS/CAMP_BACKEND convention.
 *
 * Time units: every duration-valued knob is a support::Clock::duration
 * (std::chrono::microseconds). On the default virtual clock these are
 * *virtual* microseconds of the deterministic ledger; on a wall-clock
 * server the same quantities are interpreted against real time for
 * reconciliation only — the decisions still run on the virtual ledger
 * (DESIGN.md §15). The typed unit is what makes that safe: a
 * wall-clock server cannot misread a backoff or retry-after hint as a
 * different unit, because the type carries it.
 */
#ifndef CAMP_SERVE_CONFIG_HPP
#define CAMP_SERVE_CONFIG_HPP

#include <cstddef>
#include <cstdint>

#include "support/clock.hpp"

namespace camp::serve {

/** Per-tenant admission and retry bounds. */
struct TenantLimits
{
    /** Bounded admission queue: an arriving request finding this many
     * of its tenant's requests already queued is shed. */
    std::size_t max_queue_depth = 64;

    /** Retries the tenant may spend across a whole workload; once
     * exhausted, retryable failures go straight to the CPU path. */
    std::uint64_t retry_budget = 64;
};

/** Per-device circuit breaker thresholds (see serve/breaker.hpp). */
struct BreakerPolicy
{
    /** Consecutive failure events (thrown batch = 1, each
     * detected-faulty product = 1) that trip Closed -> Open. */
    unsigned open_threshold = 4;

    /** Fallback products served while Open before the breaker moves to
     * HalfOpen and probes the device again. */
    std::uint64_t probe_after = 32;
};

/** The server's complete policy surface. */
struct ServeConfig
{
    TenantLimits limits;

    /** Global backlog bound, in microseconds of estimated device
     * time: when the queued work exceeds this, load is shed — lowest
     * priority first. (Named max_backlog_us: it bounds the *queued*
     * estimate, not the dispatched wave pipeline — that is
     * max_inflight_waves.) */
    double max_backlog_us = 50000.0;

    /** Requests dispatched per coalesced device wave. */
    std::size_t wave_size = 16;

    /** Waves the dispatch pipeline may overlap: wave n+1 may be
     * claimed and dispatched while waves n-k..n still execute, k <
     * max_inflight_waves (the SubmitQueue ring depth). 1 = the
     * classic one-wave-at-a-time engine. */
    unsigned max_inflight_waves = 1;

    /** Deadline assigned at admission to requests that carry none
     * (after arrival); zero = no implicit deadline. */
    support::Clock::duration default_deadline{0};

    /** Exponential backoff base: retry attempt n waits
     * backoff_base * 2^(n-1) on the serving clock. */
    support::Clock::duration backoff_base{100};

    /** Dispatch attempts per request (first try included). */
    unsigned max_attempts = 3;

    /** Treat a detected-faulty product as a retryable failure (the
     * soak's recovery path); when false the flagged product is
     * delivered and only counted. */
    bool retry_on_faulty = true;

    /** Execute waves asynchronously against a WallClock (worker
     * thread per in-flight wave, wall timestamps reconciled per
     * request) instead of inline against the VirtualClock. Decisions
     * are identical either way — the differential-oracle contract. */
    bool wall_clock = false;

    /** Consult a per-server operand-digest product cache at dispatch
     * (support::OpCache, DESIGN.md §16): repeated operand pairs — the
     * workload generator's repeat_fraction traffic — are served from
     * the verified cache instead of re-executing on the device. The
     * virtual-time ledger is unchanged (hits keep their model cost),
     * so the report is identical either way except opcache.* metrics.
     * Env: CAMP_OPCACHE (shared with the mpn-layer global cache). */
    bool use_opcache = true;

    BreakerPolicy breaker;
};

/**
 * Defaults overridden by the environment: CAMP_SERVE_DEPTH,
 * CAMP_SERVE_RETRY_BUDGET, CAMP_SERVE_BACKLOG_US, CAMP_SERVE_WAVE,
 * CAMP_SERVE_INFLIGHT, CAMP_SERVE_DEADLINE_US, CAMP_SERVE_BACKOFF_US,
 * CAMP_SERVE_ATTEMPTS, CAMP_SERVE_WALL, CAMP_SERVE_BREAKER_THRESHOLD,
 * CAMP_SERVE_BREAKER_PROBE. Junk, overflowing, or empty values throw
 * camp::InvalidArgument naming the variable — never silently default.
 */
ServeConfig serve_config_from_env();

} // namespace camp::serve

#endif // CAMP_SERVE_CONFIG_HPP
