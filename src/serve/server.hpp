/**
 * @file
 * The resilient serving front-end over the exec plane: multi-tenant
 * admission control with bounded per-tenant queues and deterministic
 * priority-ordered load-shedding, per-request deadlines with
 * cooperative cancellation, a retry policy with per-tenant budgets and
 * exponential backoff over the typed camp::Error taxonomy, and exact
 * CPU fallback as the terminal recovery step.
 *
 * Determinism contract: all serving *decisions* (admit / shed / evict /
 * dispatch order / deadline / retry / fallback) are computed in virtual
 * time — a single-threaded event clock advanced by request arrival
 * stamps and by the device's own cost estimates — never by wall-clock
 * or thread timing. Products are still genuinely computed by the
 * device (through a coalescing exec::SubmitQueue, so the typed-error
 * futures are consumed for real), and the exec plane's bit-identity and
 * position-seeded fault-stream contracts make the full outcome — the
 * shed set included — identical at any CAMP_THREADS or CAMP_SHARDS.
 */
#ifndef CAMP_SERVE_SERVER_HPP
#define CAMP_SERVE_SERVER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "exec/device.hpp"
#include "mpapca/ledger.hpp"
#include "serve/config.hpp"
#include "serve/workload.hpp"
#include "support/errors.hpp"

namespace camp::serve {

/** Terminal disposition of one request. */
enum class RequestStatus
{
    Completed,        ///< exact product delivered before the deadline
    ShedAdmission,    ///< refused at admission (queue/backlog full)
    ShedEvicted,      ///< admitted, then evicted for higher priority
    RejectedDeadline, ///< deadline infeasible at admission
    TimedOut,         ///< dropped at dispatch or completed too late
    Failed,           ///< fatal (non-retryable) error
};

const char* request_status_name(RequestStatus status);

/** Per-request result record, in workload order. */
struct Outcome
{
    std::uint64_t id = 0;
    RequestStatus status = RequestStatus::Completed;
    ErrorCode error = ErrorCode::Ok;
    /** Hint attached to shed outcomes: virtual microseconds until a
     * retry is likely to be admitted. */
    std::uint64_t retry_after_us = 0;
    std::uint64_t latency_us = 0; ///< completion - arrival (virtual)
    unsigned attempts = 0;        ///< device dispatches consumed
    bool fallback = false;        ///< served by the exact CPU path
    bool faulty_seen = false;     ///< a device answer failed validation
    mpn::Natural product;         ///< set only when Completed
};

/** Per-tenant conservation counters. */
struct TenantCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed_admission = 0;
    std::uint64_t shed_evicted = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;        ///< budgeted re-dispatches
    std::uint64_t fallbacks = 0;      ///< exact-CPU products computed
                                      ///< (even if delivered late)
    std::uint64_t faulty_results = 0; ///< device answers flagged faulty
};

/** One tenant's report: counters plus the latency distribution of its
 * completed requests (virtual microseconds, nearest-rank percentiles). */
struct TenantReport
{
    std::string name;
    Priority priority = Priority::Normal;
    TenantCounters counters;
    std::vector<std::uint64_t> latencies_us; ///< sorted
    std::uint64_t p50_us = 0;
    std::uint64_t p95_us = 0;
    std::uint64_t p99_us = 0;
};

/** Everything Server::process observed. */
struct ServeReport
{
    std::vector<Outcome> outcomes; ///< workload order
    std::vector<TenantReport> tenants;
    TenantCounters totals;
    std::vector<std::uint64_t> shed_ids;    ///< admission + evicted
    std::vector<std::uint64_t> timeout_ids; ///< rejected + timed out
    std::uint64_t waves = 0;
    std::uint64_t virtual_end_us = 0; ///< clock when the last request
                                      ///< settled

    const TenantReport* tenant(const std::string& name) const;

    /** The ledger identities that make the accounting trustworthy:
     * submitted == admitted + shed_admission + rejected_deadline and
     * admitted == completed + shed_evicted + timeouts + failed, per
     * tenant and in total. */
    bool conserved() const;

    /** Human-readable per-tenant summary table. */
    std::string table() const;
};

class Server
{
  public:
    /**
     * @p device executes every wave (not owned; must outlive the
     * server). @p fault_sink, when given, receives a thread-safe fold
     * of the fault/recovery counters after every wave
     * (Ledger::fold_fault_stats), so several servers may share one
     * ledger.
     */
    explicit Server(ServeConfig config, exec::Device& device,
                    mpapca::Ledger* fault_sink = nullptr);

    /** Serve @p workload (already sorted by arrival; generate_workload
     * output qualifies) to completion and report. Deterministic for
     * equal (config, workload, device config) triples. */
    ServeReport process(const std::vector<Request>& workload);

    const ServeConfig& config() const { return config_; }

  private:
    ServeConfig config_;
    exec::Device& device_;
    mpapca::Ledger* fault_sink_;
};

} // namespace camp::serve

#endif // CAMP_SERVE_SERVER_HPP
