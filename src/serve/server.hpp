/**
 * @file
 * The resilient serving front-end over the exec plane: multi-tenant
 * admission control with bounded per-tenant queues and deterministic
 * priority-ordered load-shedding, per-request deadlines with
 * cooperative cancellation, a retry policy with per-tenant budgets and
 * exponential backoff over the typed camp::Error taxonomy, and exact
 * CPU fallback as the terminal recovery step.
 *
 * Determinism contract: all serving *decisions* (admit / shed / evict /
 * dispatch order / deadline / retry / fallback) are computed in virtual
 * time — a single-threaded event ledger advanced by request arrival
 * stamps and by the device's own cost estimates — never by wall-clock
 * or thread timing. Products are still genuinely computed by the
 * device (through a coalescing exec::SubmitQueue, so the typed-error
 * futures are consumed for real), and the exec plane's bit-identity and
 * position-seeded fault-stream contracts make the full outcome — the
 * shed set included — identical at any CAMP_THREADS or CAMP_SHARDS.
 *
 * Two execution modes share that one decision engine (DESIGN.md §15):
 *
 *  - Virtual (default): waves execute inline at dispatch; the
 *    support::VirtualClock is the ledger itself. This is the oracle.
 *  - Wall (ServeConfig::wall_clock): waves execute asynchronously on
 *    worker threads through the SubmitQueue wave ring, up to
 *    max_inflight_waves overlapping; a support::WallClock stamps every
 *    settlement so the report carries the per-request wall-vs-virtual
 *    skew. Decisions still run on the virtual ledger, so a wall run
 *    settles exactly the set the virtual oracle computes — the
 *    differential property tests/test_serve_async.cpp asserts.
 *
 * Clients drive the engine either batch-style (process) or
 * incrementally (submit_async / finish): submit_async admits the
 * request immediately, returns a Handle, and pumps the engine up to
 * the request's arrival stamp — settling (and firing the callbacks of)
 * everything that virtually completed before it. The engine only runs
 * inside submit_async/finish/process calls; Handle::wait from another
 * thread blocks until one of them settles the request.
 */
#ifndef CAMP_SERVE_SERVER_HPP
#define CAMP_SERVE_SERVER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/device.hpp"
#include "mpapca/ledger.hpp"
#include "serve/config.hpp"
#include "serve/workload.hpp"
#include "support/clock.hpp"
#include "support/errors.hpp"
#include "support/opcache.hpp"

namespace camp::serve {

namespace detail {
class Engine;
struct HandleState;
} // namespace detail

/** Terminal disposition of one request. */
enum class RequestStatus
{
    Completed,        ///< exact product delivered before the deadline
    ShedAdmission,    ///< refused at admission (queue/backlog full)
    ShedEvicted,      ///< admitted, then evicted for higher priority
    RejectedDeadline, ///< deadline infeasible at admission
    TimedOut,         ///< dropped at dispatch or completed too late
    Failed,           ///< fatal (non-retryable) error
};

const char* request_status_name(RequestStatus status);

/** Per-request result record, in workload order. */
struct Outcome
{
    std::uint64_t id = 0;
    RequestStatus status = RequestStatus::Completed;
    ErrorCode error = ErrorCode::Ok;
    /** Hint attached to shed outcomes: how long (on the serving
     * clock) until a retry is likely to be admitted. */
    support::Clock::duration retry_after{0};
    std::uint64_t latency_us = 0; ///< completion - arrival (virtual)
    /** Clock stamp at settlement: equals the virtual settle time on a
     * VirtualClock, the real elapsed time on a WallClock. */
    std::uint64_t wall_completion_us = 0;
    /** wall_completion_us minus the virtual settle time — identically
     * zero in virtual mode, the reconciliation signal in wall mode. */
    std::int64_t skew_us = 0;
    unsigned attempts = 0;        ///< device dispatches consumed
    bool fallback = false;        ///< served by the exact CPU path
    bool faulty_seen = false;     ///< a device answer failed validation
    mpn::Natural product;         ///< set only when Completed
};

/** Per-tenant conservation counters. */
struct TenantCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed_admission = 0;
    std::uint64_t shed_evicted = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;        ///< budgeted re-dispatches
    std::uint64_t fallbacks = 0;      ///< exact-CPU products computed
                                      ///< (even if delivered late)
    std::uint64_t faulty_results = 0; ///< device answers flagged faulty
    /** Completed inside the virtual deadline but past it on the wall
     * clock — the reconciliation gap. Observational only: not part of
     * conserved(), always zero in virtual mode. */
    std::uint64_t wall_late = 0;
};

/** One tenant's report: counters plus the latency distribution of its
 * completed requests (virtual microseconds, nearest-rank percentiles). */
struct TenantReport
{
    std::string name;
    Priority priority = Priority::Normal;
    TenantCounters counters;
    std::vector<std::uint64_t> latencies_us; ///< sorted
    std::uint64_t p50_us = 0;
    std::uint64_t p95_us = 0;
    std::uint64_t p99_us = 0;
};

/** Everything the serving engine observed. */
struct ServeReport
{
    std::vector<Outcome> outcomes; ///< workload order
    std::vector<TenantReport> tenants;
    TenantCounters totals;
    std::vector<std::uint64_t> shed_ids;    ///< admission + evicted
    std::vector<std::uint64_t> timeout_ids; ///< rejected + timed out
    std::uint64_t waves = 0;
    std::uint64_t virtual_end_us = 0; ///< clock when the last request
                                      ///< settled
    std::uint64_t wall_end_us = 0; ///< serving-clock stamp at finish
                                   ///< (== virtual_end_us when virtual)

    const TenantReport* tenant(const std::string& name) const;

    /** The ledger identities that make the accounting trustworthy:
     * submitted == admitted + shed_admission + rejected_deadline and
     * admitted == completed + shed_evicted + timeouts + failed, per
     * tenant and in total. */
    bool conserved() const;

    /** Human-readable per-tenant summary table. */
    std::string table() const;
};

class Server
{
  public:
    /**
     * Completion handle for one submit_async request. Cheap to copy
     * (shared state); the outcome — product included — is retained by
     * the handle independently of the report, so it stays valid after
     * finish().
     */
    class Handle
    {
      public:
        Handle() = default;

        bool valid() const { return state_ != nullptr; }

        /** True once the request settled (non-blocking). */
        bool settled() const;

        /** Block until the request settles. The engine only advances
         * inside submit_async/finish/process calls, so waiting on the
         * engine's own thread without one of those pending on another
         * thread would deadlock — wait from a different thread, or
         * structure the client to call finish() first. */
        void wait() const;

        /** The settled outcome; calls wait() first. */
        const Outcome& outcome() const;

        /**
         * Register a completion callback, fired exactly once with the
         * settled outcome — immediately (on the calling thread) when
         * the request already settled, otherwise on the engine thread
         * inside whichever submit_async/finish call settles it. The
         * callback must not call back into the Server (the engine is
         * mid-pump). Replaces any previously registered callback.
         */
        void on_settle(std::function<void(const Outcome&)> callback);

      private:
        friend class Server;
        explicit Handle(std::shared_ptr<detail::HandleState> state)
            : state_(std::move(state))
        {
        }

        std::shared_ptr<detail::HandleState> state_;
    };

    /**
     * @p device executes every wave (not owned; must outlive the
     * server). @p fault_sink, when given, receives a thread-safe fold
     * of the fault/recovery counters after every wave
     * (Ledger::fold_fault_stats), so several servers may share one
     * ledger. @p clock, when given, overrides the server-owned clock
     * (config.wall_clock selects WallClock vs VirtualClock otherwise)
     * — the sanctioned way to share one clock with a BreakerDevice.
     */
    explicit Server(ServeConfig config, exec::Device& device,
                    mpapca::Ledger* fault_sink = nullptr,
                    support::Clock* clock = nullptr);

    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Serve @p workload (already sorted by arrival; generate_workload
     * output qualifies) to completion and report. Deterministic for
     * equal (config, workload, device config) triples. Throws when an
     * async session opened by submit_async is still unfinished. */
    ServeReport process(const std::vector<Request>& workload);

    /**
     * Async client edge: admit @p request (opening a session if none
     * is open) and return its completion handle. Requests must arrive
     * in nondecreasing arrival_us order — the event ledger cannot run
     * backwards. Pumps the engine to the request's arrival stamp, so
     * earlier requests whose virtual completion precedes it settle
     * (and fire their callbacks) during this call.
     */
    Handle submit_async(const Request& request);

    /** Drain the open async session to completion — every admitted
     * request settles — and return the report. Throws when no session
     * is open. */
    ServeReport finish();

    const ServeConfig& config() const { return config_; }

    /** The serving clock (virtual ledger or wall, per config). */
    support::Clock& clock() { return *clock_; }

    /** Counters of this server's product cache (all zero when
     * config().use_opcache is false). The cache is per-server — never
     * shared across servers — so differential runs of the same
     * workload see identical hit patterns (DESIGN.md §16). */
    support::OpCacheStats opcache_stats() const;

  private:
    ServeConfig config_;
    exec::Device& device_;
    mpapca::Ledger* fault_sink_;
    std::unique_ptr<support::Clock> owned_clock_;
    support::Clock* clock_;
    std::unique_ptr<support::OpCache> opcache_;
    std::unique_ptr<detail::Engine> engine_;
};

} // namespace camp::serve

#endif // CAMP_SERVE_SERVER_HPP
