#include "support/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/errors.hpp"

namespace camp::support {

namespace {

[[noreturn]] void
bad_value(const char* name, const char* env, const char* expected)
{
    throw InvalidArgument(std::string(name) + " must be " + expected +
                          ", got '" + env + "'");
}

std::uint64_t
parse_integer(const char* name, std::uint64_t fallback,
              long long minimum, const char* expected)
{
    const char* env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    if (env[0] == '\0')
        bad_value(name, env, expected);
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(env, &end, 10);
    // errno catches what the digit scan cannot: a syntactically valid
    // number whose magnitude saturates strtoll (ERANGE).
    if (end == env || *end != '\0' || errno == ERANGE || v < minimum)
        bad_value(name, env, expected);
    return static_cast<std::uint64_t>(v);
}

} // namespace

std::uint64_t
env_positive_u64(const char* name, std::uint64_t fallback)
{
    return parse_integer(name, fallback, 1, "a positive integer");
}

std::uint64_t
env_nonnegative_u64(const char* name, std::uint64_t fallback)
{
    return parse_integer(name, fallback, 0, "a nonnegative integer");
}

bool
env_flag(const char* name, bool fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    const std::string value(env);
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    bad_value(name, env, "a boolean (0/1, false/true, off/on)");
}

} // namespace camp::support
