/**
 * @file
 * Hardened CAMP_* environment parsing. Every serving-layer knob goes
 * through these helpers so misconfiguration is loud: junk, overflow
 * (out of long long range), and *empty* values all throw
 * camp::InvalidArgument naming the offending variable — an empty
 * export is almost always a broken CI substitution, and silently
 * falling back to the default there hides the mistake.
 */
#ifndef CAMP_SUPPORT_ENV_HPP
#define CAMP_SUPPORT_ENV_HPP

#include <cstdint>

namespace camp::support {

/** @p name as a strictly positive integer; @p fallback when unset.
 * Throws camp::InvalidArgument (naming @p name) on junk, < 1,
 * overflow, or an empty value. */
std::uint64_t env_positive_u64(const char* name, std::uint64_t fallback);

/** Like env_positive_u64, but 0 is allowed (= disabled). */
std::uint64_t env_nonnegative_u64(const char* name,
                                  std::uint64_t fallback);

/** Boolean knob: "0"/"1" (also "false"/"true", "off"/"on"). Throws
 * camp::InvalidArgument on anything else, empty included. */
bool env_flag(const char* name, bool fallback);

} // namespace camp::support

#endif // CAMP_SUPPORT_ENV_HPP
