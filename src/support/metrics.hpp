/**
 * @file
 * Hierarchical metrics registry: named counters, gauges, and
 * fixed-bucket (power-of-two) histograms, shared by every layer of the
 * stack. Names are dot-separated paths ("sim.ipu.cycles",
 * "pool.steals") so snapshots group naturally by subsystem.
 *
 * Concurrency contract (thread-pool compatible): registration takes a
 * mutex, but metrics are never removed, so the returned references are
 * stable for the process lifetime — hot paths register once (typically
 * via a function-local static reference) and then touch only the
 * metric's own atomics. All mutating operations are single relaxed
 * atomic RMWs; reading a snapshot while writers run is safe and sees
 * each atomic's current value (no cross-metric consistency, which is
 * fine for monitoring).
 */
#ifndef CAMP_SUPPORT_METRICS_HPP
#define CAMP_SUPPORT_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace camp::support::metrics {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written / high-water level (e.g. queue depth, arena bytes). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }
    /** Keep the maximum of the current value and @p v. */
    void
    update_max(std::int64_t v)
    {
        std::int64_t cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v,
                                             std::memory_order_relaxed))
            ;
    }
    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Power-of-two-bucket histogram over nonnegative samples: bucket b
 * counts values in [2^(b-1), 2^b) (bucket 0 counts zero), clamped at
 * kBuckets - 1. Tracks count/sum/max alongside the buckets.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 48;

    void record(std::uint64_t v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }
    std::uint64_t bucket(int b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }
    double mean() const
    {
        const std::uint64_t n = count();
        return n == 0 ? 0.0 : static_cast<double>(sum()) / n;
    }
    void reset();

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/** Point-in-time copy of one metric, for reporting. */
struct SnapshotEntry
{
    std::string name;
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    } kind = Kind::Counter;
    std::int64_t value = 0;       ///< counter/gauge value
    std::uint64_t count = 0;      ///< histogram sample count
    std::uint64_t sum = 0;        ///< histogram sample sum
    std::uint64_t max = 0;        ///< histogram sample max
    double mean = 0;              ///< histogram mean
};

/** Process-wide registry. */
class Registry
{
  public:
    static Registry& instance();

    /** Find-or-create; the reference is valid forever. Asking for an
     * existing name with a different kind is a programming error
     * (asserted). */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** All metrics, sorted by name. */
    std::vector<SnapshotEntry> snapshot() const;

    /** Human-readable table of every metric whose name starts with
     * @p prefix (empty = all), skipping zero-valued entries unless
     * @p include_zero. */
    std::string render_table(const std::string& prefix = "",
                             bool include_zero = false) const;

    /** JSON object {"name": value | {histogram fields}, ...}. */
    std::string to_json() const;

    /** Zero every registered metric (tests/benches); registrations and
     * references stay valid. */
    void reset();

  private:
    Registry() = default;

    struct Entry;
    Entry& find_or_create(const std::string& name,
                          SnapshotEntry::Kind kind);

    struct Impl;
    Impl& impl() const;
};

/** Convenience: Registry::instance().counter(name) etc. */
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

} // namespace camp::support::metrics

#endif // CAMP_SUPPORT_METRICS_HPP
