/**
 * @file
 * LimbArena: a size-classed slab allocator for limb buffers — the
 * memory plane under the exec layer's wave flow (ROADMAP item 3). The
 * batch path used to heap-allocate operand copies, scratch, and result
 * limbs for every product on the way through SubmitQueue →
 * ShardedScheduler → Device; the FPGA APC pipeline (PAPERS.md, de Fine
 * Licht et al.) gets its throughput from statically staged buffers with
 * no per-operation allocation, and this arena is the software analogue:
 * steady-state wave dispatch recycles a fixed set of blocks and
 * allocates nothing from the system.
 *
 * Design (slab + magazine, the classic Bonwick layout):
 *  - Sizes round up to power-of-two *size classes* between
 *    kMinClassWords (64 B) and kMaxClassWords (2 MiB); larger requests
 *    go straight to the system allocator ("oversize") and are returned
 *    to it on release.
 *  - A central *depot* keeps a free list per class, refilled by carving
 *    64-byte-aligned blocks out of freshly allocated *slabs*.
 *  - Each thread holds a small *magazine* (LIFO stack, capacity
 *    CAMP_ARENA_MAGAZINE) per class, so the hot alloc/release pair is
 *    lock-free; a full magazine flushes to the depot in one lock.
 *  - An optional byte budget (CAMP_ARENA_MAX_BYTES) bounds slab +
 *    oversize memory; exceeding it throws camp::ResourceExhausted
 *    *before* any state mutates.
 *
 * Lifetime safety: under AddressSanitizer every free block (depot,
 * magazine, or uncarved slab tail) is poisoned and only unpoisoned
 * while handed out, so a use-after-release of an arena-backed view is
 * a hard ASan failure, not silent corruption — the property the
 * memory-plane test harness leans on (tests/test_memory_plane.cpp,
 * the CI arena-poisoning leg).
 *
 * The PR-2 TLS ScratchArena (thread_pool.hpp) now draws its bump
 * blocks from here too, so mpn scratch and exec wave storage share one
 * recycling pool and one accounting surface (`arena.*` metrics).
 */
#ifndef CAMP_SUPPORT_ARENA_HPP
#define CAMP_SUPPORT_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace camp::support {

struct ArenaImpl;

/** Manual ASan poisoning helpers: no-ops outside ASan builds. Exposed
 * so arena clients that sub-carve blocks (exec::WaveBuffer) can keep
 * released *regions* of a live block poisoned too. */
void asan_poison(const void* ptr, std::size_t bytes);
void asan_unpoison(const void* ptr, std::size_t bytes);
/** True when the process is ASan-instrumented (tests use this to know
 * whether poisoning assertions are meaningful). */
bool asan_active();

/** Arena construction knobs (env surface: CAMP_ARENA_*). */
struct ArenaOptions
{
    /** Byte budget over slab + oversize memory; 0 = unbounded. A
     * request that would exceed it throws camp::ResourceExhausted. */
    std::size_t max_bytes = 0;

    /** Blocks cached per (thread, size class); 0 disables magazines
     * (every alloc/release takes the depot lock). */
    unsigned magazine_cap = 8;

    /** Publish arena.* metrics into the global registry (the process
     * arena does; private test arenas keep quiet). */
    bool publish_metrics = false;
};

/** ArenaOptions from CAMP_ARENA_MAX_BYTES / CAMP_ARENA_MAGAZINE
 * (throws camp::InvalidArgument on junk). */
ArenaOptions arena_options_from_env();

/** Point-in-time accounting snapshot (monotonic counters unless
 * noted). */
struct ArenaStats
{
    std::uint64_t allocs = 0;          ///< blocks handed out
    std::uint64_t releases = 0;        ///< blocks returned
    std::uint64_t magazine_hits = 0;   ///< allocs served lock-free
    std::uint64_t depot_hits = 0;      ///< allocs served by the depot
    std::uint64_t slab_allocs = 0;     ///< slabs carved from the system
    std::uint64_t oversize_allocs = 0; ///< beyond-class system allocs
    std::uint64_t magazine_flushes = 0;///< full magazines spilled
    std::uint64_t live_bytes = 0;      ///< handed out right now (gauge)
    std::uint64_t high_water_bytes = 0;///< max of live_bytes
    std::uint64_t slab_bytes = 0;      ///< system memory held in slabs
};

class LimbArena
{
  public:
    /** Smallest block: 8 limbs = one 64-byte cache line. */
    static constexpr std::size_t kMinClassWords = 8;
    /** Largest slabbed block: 2^18 limbs = 2 MiB; above it requests
     * pass through to the system allocator. */
    static constexpr std::size_t kMaxClassWords =
        std::size_t{1} << 18;

    explicit LimbArena(ArenaOptions options = {});
    ~LimbArena();

    LimbArena(const LimbArena&) = delete;
    LimbArena& operator=(const LimbArena&) = delete;

    /** Process-wide arena configured from the environment; leaked on
     * purpose so TLS destructors may release into it at thread exit. */
    static LimbArena& global();

    /**
     * A block of at least @p words limbs, 64-byte aligned,
     * uninitialized. Pass the same @p words to release(). Throws
     * camp::ResourceExhausted when the byte budget cannot cover it
     * (arena state is untouched in that case); @p words == 0 is
     * served from the smallest class.
     */
    std::uint64_t* alloc(std::size_t words);

    /** Return @p ptr (from alloc(@p words) on any thread) through the
     * calling thread's magazine. */
    void release(std::uint64_t* ptr, std::size_t words);

    /** release() bypassing the magazine — for TLS destructors that run
     * after the thread's magazines are gone. */
    void release_direct(std::uint64_t* ptr, std::size_t words);

    /** Capacity actually backing a @p words request (its size class;
     * == @p words above kMaxClassWords). */
    static std::size_t size_class_words(std::size_t words);

    /** Spill the calling thread's magazines for this arena into the
     * depot (tests; also handy before thread exit). */
    void flush_thread_cache();

    ArenaStats stats() const;

    const ArenaOptions& options() const { return options_; }

  private:
    friend struct ArenaImpl;

    std::unique_ptr<ArenaImpl> impl_;
    ArenaOptions options_;
};

} // namespace camp::support

#endif // CAMP_SUPPORT_ARENA_HPP
