#include "support/arena.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>

#include "support/assert.hpp"
#include "support/errors.hpp"
#include "support/metrics.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define CAMP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAMP_ASAN 1
#endif
#endif

#if defined(CAMP_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace camp::support {

void
asan_poison(const void* ptr, std::size_t bytes)
{
#if defined(CAMP_ASAN)
    __asan_poison_memory_region(ptr, bytes);
#else
    (void)ptr;
    (void)bytes;
#endif
}

void
asan_unpoison(const void* ptr, std::size_t bytes)
{
#if defined(CAMP_ASAN)
    __asan_unpoison_memory_region(ptr, bytes);
#else
    (void)ptr;
    (void)bytes;
#endif
}

bool
asan_active()
{
#if defined(CAMP_ASAN)
    return true;
#else
    return false;
#endif
}

namespace {

constexpr std::size_t kMinShift = 3;  // 2^3 = kMinClassWords
constexpr std::size_t kMaxShift = 18; // 2^18 = kMaxClassWords
constexpr int kClassCount = static_cast<int>(kMaxShift - kMinShift) + 1;
constexpr std::size_t kBlockAlign = 64;
/** Target slab footprint; small classes amortize the system call and
 * the depot lock over many blocks, huge classes get one block each. */
constexpr std::size_t kSlabTargetBytes = std::size_t{256} << 10;

int
class_index(std::size_t words)
{
    std::size_t shift = kMinShift;
    while ((std::size_t{1} << shift) < words)
        ++shift;
    return static_cast<int>(shift - kMinShift);
}

std::size_t
class_words(int index)
{
    return std::size_t{1} << (kMinShift + static_cast<std::size_t>(index));
}

std::size_t
env_size_t(const char* name, std::size_t fallback)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    char* end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0')
        throw camp::InvalidArgument(std::string(name) + "='" + raw +
                                    "' is not a nonnegative integer");
    return static_cast<std::size_t>(v);
}

/** Per-(thread, arena) block cache. Entries are validated through the
 * arena's token so a destroyed private arena leaves only inert stale
 * pointers behind, never a dangling release. */
struct Magazine
{
    ArenaImpl* impl = nullptr;
    std::weak_ptr<void> token;
    std::vector<std::uint64_t*> classes[kClassCount];
};

} // namespace

struct ArenaImpl
{
    std::mutex mutex;
    std::vector<std::uint64_t*> depot[kClassCount]; // guarded by mutex
    std::vector<std::pair<void*, std::size_t>> slabs; // guarded by mutex
    std::size_t slab_bytes = 0;                       // guarded by mutex
    std::size_t oversize_bytes = 0;                   // guarded by mutex

    /** Held by the arena, observed weakly by thread magazines: lock()
     * failing means the arena is gone and cached blocks are dead. */
    std::shared_ptr<void> token;

    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> releases{0};
    std::atomic<std::uint64_t> magazine_hits{0};
    std::atomic<std::uint64_t> depot_hits{0};
    std::atomic<std::uint64_t> slab_allocs{0};
    std::atomic<std::uint64_t> oversize_allocs{0};
    std::atomic<std::uint64_t> magazine_flushes{0};
    std::atomic<std::uint64_t> live_bytes{0};
    std::atomic<std::uint64_t> high_water_bytes{0};

    // Global-arena mirrors into the metrics registry (null otherwise).
    metrics::Counter* m_allocs = nullptr;
    metrics::Counter* m_releases = nullptr;
    metrics::Counter* m_magazine_hits = nullptr;
    metrics::Counter* m_depot_hits = nullptr;
    metrics::Counter* m_slab_allocs = nullptr;
    metrics::Counter* m_magazine_flushes = nullptr;
    metrics::Gauge* m_live_bytes = nullptr;
    metrics::Gauge* m_high_water = nullptr;
    metrics::Gauge* m_slab_bytes = nullptr;

    void
    note_alloc(std::size_t bytes)
    {
        allocs.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t live =
            live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
        std::uint64_t hw = high_water_bytes.load(std::memory_order_relaxed);
        while (live > hw &&
               !high_water_bytes.compare_exchange_weak(
                   hw, live, std::memory_order_relaxed))
            ;
        if (m_allocs != nullptr) {
            m_allocs->add();
            m_live_bytes->set(static_cast<std::int64_t>(live));
            m_high_water->update_max(static_cast<std::int64_t>(live));
        }
    }

    void
    note_release(std::size_t bytes)
    {
        releases.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t live =
            live_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
        if (m_releases != nullptr) {
            m_releases->add();
            m_live_bytes->set(static_cast<std::int64_t>(live));
        }
    }

    /** Depot-side release: poison and file under the class free list.
     * Caller holds no lock. */
    void
    depot_push(int cls, std::uint64_t* ptr)
    {
        asan_poison(ptr, class_words(cls) * sizeof(std::uint64_t));
        std::lock_guard<std::mutex> lock(mutex);
        depot[cls].push_back(ptr);
    }

    void
    depot_push_many(int cls, std::vector<std::uint64_t*>& blocks)
    {
        const std::size_t bytes = class_words(cls) * sizeof(std::uint64_t);
        for (std::uint64_t* ptr : blocks)
            asan_poison(ptr, bytes);
        std::lock_guard<std::mutex> lock(mutex);
        auto& list = depot[cls];
        list.insert(list.end(), blocks.begin(), blocks.end());
        blocks.clear();
    }

    /** Thread-exit path: hand every cached block back to the depot. */
    void
    drain_magazine(Magazine& mag)
    {
        for (int cls = 0; cls < kClassCount; ++cls)
            if (!mag.classes[cls].empty())
                depot_push_many(cls, mag.classes[cls]);
    }

    /** Pop a free block for @p cls, carving a new slab when the list is
     * empty. Throws ResourceExhausted (without mutating anything) when
     * the byte budget cannot cover a new slab. */
    std::uint64_t*
    depot_pop_or_carve(int cls, const ArenaOptions& options)
    {
        const std::size_t block_bytes =
            class_words(cls) * sizeof(std::uint64_t);
        std::lock_guard<std::mutex> lock(mutex);
        auto& list = depot[cls];
        if (!list.empty()) {
            std::uint64_t* ptr = list.back();
            list.pop_back();
            depot_hits.fetch_add(1, std::memory_order_relaxed);
            if (m_depot_hits != nullptr)
                m_depot_hits->add();
            return ptr;
        }

        const std::size_t per_slab = std::clamp<std::size_t>(
            kSlabTargetBytes / block_bytes, 1, 64);
        const std::size_t slab_size = per_slab * block_bytes;
        if (options.max_bytes != 0 &&
            slab_bytes + oversize_bytes + slab_size > options.max_bytes)
            throw camp::ResourceExhausted(
                "LimbArena: slab of " + std::to_string(slab_size) +
                " bytes would exceed CAMP_ARENA_MAX_BYTES=" +
                std::to_string(options.max_bytes) + " (slabs hold " +
                std::to_string(slab_bytes) + " bytes)");

        auto* slab = static_cast<std::uint64_t*>(
            ::operator new(slab_size, std::align_val_t(kBlockAlign)));
        slabs.emplace_back(slab, slab_size);
        slab_bytes += slab_size;
        slab_allocs.fetch_add(1, std::memory_order_relaxed);
        if (m_slab_allocs != nullptr) {
            m_slab_allocs->add();
            m_slab_bytes->set(static_cast<std::int64_t>(slab_bytes));
        }

        const std::size_t block_words = class_words(cls);
        for (std::size_t i = 1; i < per_slab; ++i) {
            std::uint64_t* block = slab + i * block_words;
            asan_poison(block, block_bytes);
            list.push_back(block);
        }
        depot_hits.fetch_add(1, std::memory_order_relaxed);
        if (m_depot_hits != nullptr)
            m_depot_hits->add();
        return slab; // first block of the fresh slab
    }

    std::uint64_t*
    alloc_oversize(std::size_t words, const ArenaOptions& options)
    {
        const std::size_t bytes = words * sizeof(std::uint64_t);
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (options.max_bytes != 0 &&
                slab_bytes + oversize_bytes + bytes > options.max_bytes)
                throw camp::ResourceExhausted(
                    "LimbArena: oversize block of " + std::to_string(bytes) +
                    " bytes would exceed CAMP_ARENA_MAX_BYTES=" +
                    std::to_string(options.max_bytes));
            oversize_bytes += bytes;
        }
        oversize_allocs.fetch_add(1, std::memory_order_relaxed);
        return static_cast<std::uint64_t*>(
            ::operator new(bytes, std::align_val_t(kBlockAlign)));
    }

    void
    free_oversize(std::uint64_t* ptr, std::size_t words)
    {
        const std::size_t bytes = words * sizeof(std::uint64_t);
        {
            std::lock_guard<std::mutex> lock(mutex);
            CAMP_ASSERT(oversize_bytes >= bytes);
            oversize_bytes -= bytes;
        }
        ::operator delete(ptr, std::align_val_t(kBlockAlign));
    }
};

namespace {

/** Thread-local magazine table; the destructor hands surviving cached
 * blocks back to every still-live arena at thread exit. */
struct ThreadCache
{
    std::vector<Magazine> entries;

    ~ThreadCache()
    {
        for (Magazine& mag : entries)
            if (auto alive = mag.token.lock())
                mag.impl->drain_magazine(mag);
    }
};

thread_local ThreadCache t_cache;

Magazine&
tls_magazine(ArenaImpl& impl)
{
    auto& entries = t_cache.entries;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].impl == &impl && !entries[i].token.expired())
            return entries[i];
        if (entries[i].token.expired()) {
            // Stale entry from a destroyed arena: the slabs backing its
            // cached pointers are gone, so just drop them.
            entries.erase(entries.begin() +
                          static_cast<std::ptrdiff_t>(i));
            --i;
        }
    }
    entries.push_back(Magazine{});
    entries.back().impl = &impl;
    entries.back().token = impl.token;
    return entries.back();
}

} // namespace

LimbArena::LimbArena(ArenaOptions options)
    : impl_(std::make_unique<ArenaImpl>()), options_(options)
{
    impl_->token = std::make_shared<int>(0);
    if (options_.publish_metrics) {
        impl_->m_allocs = &metrics::counter("arena.alloc.count");
        impl_->m_releases = &metrics::counter("arena.release.count");
        impl_->m_magazine_hits = &metrics::counter("arena.magazine.hits");
        impl_->m_depot_hits = &metrics::counter("arena.depot.hits");
        impl_->m_slab_allocs = &metrics::counter("arena.slab.count");
        impl_->m_magazine_flushes =
            &metrics::counter("arena.magazine.flushes");
        impl_->m_live_bytes = &metrics::gauge("arena.live_bytes");
        impl_->m_high_water = &metrics::gauge("arena.high_water_bytes");
        impl_->m_slab_bytes = &metrics::gauge("arena.slab_bytes");
    }
}

LimbArena::~LimbArena()
{
    flush_thread_cache();
    // Invalidate outstanding magazines on other threads first, so their
    // exit-time drain sees a dead token instead of touching freed slabs.
    impl_->token.reset();
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& [slab, size] : impl_->slabs) {
        // ASan requires freed ranges to be addressable again.
        asan_unpoison(slab, size);
        ::operator delete(slab, std::align_val_t(kBlockAlign));
    }
    impl_->slabs.clear();
}

LimbArena&
LimbArena::global()
{
    // Leaked on purpose: TLS destructors (ScratchArena, magazines) may
    // release blocks after static destruction begins.
    static LimbArena* arena = [] {
        ArenaOptions options = arena_options_from_env();
        options.publish_metrics = true;
        return new LimbArena(options);
    }();
    return *arena;
}

std::size_t
LimbArena::size_class_words(std::size_t words)
{
    if (words > kMaxClassWords)
        return words;
    return class_words(class_index(words));
}

std::uint64_t*
LimbArena::alloc(std::size_t words)
{
    if (words > kMaxClassWords) {
        std::uint64_t* ptr = impl_->alloc_oversize(words, options_);
        impl_->note_alloc(words * sizeof(std::uint64_t));
        return ptr;
    }
    const int cls = class_index(words);
    const std::size_t bytes = class_words(cls) * sizeof(std::uint64_t);
    std::uint64_t* ptr = nullptr;
    if (options_.magazine_cap > 0) {
        auto& list = tls_magazine(*impl_).classes[cls];
        if (!list.empty()) {
            ptr = list.back();
            list.pop_back();
            impl_->magazine_hits.fetch_add(1, std::memory_order_relaxed);
            if (impl_->m_magazine_hits != nullptr)
                impl_->m_magazine_hits->add();
        }
    }
    if (ptr == nullptr)
        ptr = impl_->depot_pop_or_carve(cls, options_);
    asan_unpoison(ptr, bytes);
    impl_->note_alloc(bytes);
    return ptr;
}

void
LimbArena::release(std::uint64_t* ptr, std::size_t words)
{
    if (ptr == nullptr)
        return;
    if (words > kMaxClassWords) {
        impl_->note_release(words * sizeof(std::uint64_t));
        impl_->free_oversize(ptr, words);
        return;
    }
    const int cls = class_index(words);
    const std::size_t bytes = class_words(cls) * sizeof(std::uint64_t);
    impl_->note_release(bytes);
    if (options_.magazine_cap == 0) {
        impl_->depot_push(cls, ptr);
        return;
    }
    Magazine& mag = tls_magazine(*impl_);
    asan_poison(ptr, bytes);
    mag.classes[cls].push_back(ptr);
    if (mag.classes[cls].size() > options_.magazine_cap) {
        impl_->magazine_flushes.fetch_add(1, std::memory_order_relaxed);
        if (impl_->m_magazine_flushes != nullptr)
            impl_->m_magazine_flushes->add();
        // depot_push_many re-poisons, which is idempotent.
        impl_->depot_push_many(cls, mag.classes[cls]);
    }
}

void
LimbArena::release_direct(std::uint64_t* ptr, std::size_t words)
{
    if (ptr == nullptr)
        return;
    if (words > kMaxClassWords) {
        impl_->note_release(words * sizeof(std::uint64_t));
        impl_->free_oversize(ptr, words);
        return;
    }
    const int cls = class_index(words);
    impl_->note_release(class_words(cls) * sizeof(std::uint64_t));
    impl_->depot_push(cls, ptr);
}

void
LimbArena::flush_thread_cache()
{
    for (Magazine& mag : t_cache.entries)
        if (mag.impl == impl_.get() && !mag.token.expired())
            impl_->drain_magazine(mag);
}

ArenaStats
LimbArena::stats() const
{
    ArenaStats out;
    out.allocs = impl_->allocs.load(std::memory_order_relaxed);
    out.releases = impl_->releases.load(std::memory_order_relaxed);
    out.magazine_hits =
        impl_->magazine_hits.load(std::memory_order_relaxed);
    out.depot_hits = impl_->depot_hits.load(std::memory_order_relaxed);
    out.slab_allocs = impl_->slab_allocs.load(std::memory_order_relaxed);
    out.oversize_allocs =
        impl_->oversize_allocs.load(std::memory_order_relaxed);
    out.magazine_flushes =
        impl_->magazine_flushes.load(std::memory_order_relaxed);
    out.live_bytes = impl_->live_bytes.load(std::memory_order_relaxed);
    out.high_water_bytes =
        impl_->high_water_bytes.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        out.slab_bytes = impl_->slab_bytes;
    }
    return out;
}

ArenaOptions
arena_options_from_env()
{
    ArenaOptions options;
    options.max_bytes = env_size_t("CAMP_ARENA_MAX_BYTES", 0);
    options.magazine_cap = static_cast<unsigned>(
        env_size_t("CAMP_ARENA_MAGAZINE", options.magazine_cap));
    return options;
}

} // namespace camp::support
