/**
 * @file
 * Bit-manipulation helpers shared across the library.
 */
#ifndef CAMP_SUPPORT_BITS_HPP
#define CAMP_SUPPORT_BITS_HPP

#include <bit>
#include <cstdint>

namespace camp {

/** Double-width limb used for 64x64 -> 128 bit products. */
using u128 = unsigned __int128;

/** Number of significant bits in @p x (0 for x == 0). */
constexpr int
bit_length(std::uint64_t x)
{
    return 64 - std::countl_zero(x);
}

/** Number of significant bits in a 128-bit value. */
constexpr int
bit_length(u128 x)
{
    std::uint64_t hi = static_cast<std::uint64_t>(x >> 64);
    if (hi != 0)
        return 64 + bit_length(hi);
    return bit_length(static_cast<std::uint64_t>(x));
}

/** Smallest power of two >= @p x (x must be >= 1). */
constexpr std::uint64_t
ceil_pow2(std::uint64_t x)
{
    return std::bit_ceil(x);
}

/** Integer ceil(a / b) for b > 0. */
constexpr std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** floor(log2(x)) for x >= 1. */
constexpr int
floor_log2(std::uint64_t x)
{
    return 63 - std::countl_zero(x);
}

/** ceil(log2(x)) for x >= 1. */
constexpr int
ceil_log2(std::uint64_t x)
{
    return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

} // namespace camp

#endif // CAMP_SUPPORT_BITS_HPP
