#include "support/fault.hpp"

#include <cstdlib>
#include <cstring>

namespace camp {

const char*
fault_site_name(FaultSite site)
{
    switch (site) {
    case FaultSite::IpuAccumulator: return "ipu-accumulator";
    case FaultSite::ConverterPattern: return "converter-pattern";
    case FaultSite::GatherCarry: return "gather-carry";
    case FaultSite::MemoryTruncate: return "memory-truncate";
    case FaultSite::MemoryStall: return "memory-stall";
    }
    return "unknown";
}

namespace {

bool
env_double(const char* name, double* out)
{
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return false;
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value)
        return false;
    *out = parsed;
    return true;
}

bool
env_u64(const char* name, std::uint64_t* out)
{
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return false;
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(value, &end, 0);
    if (end == value)
        return false;
    *out = parsed;
    return true;
}

} // namespace

FaultConfig
FaultConfig::from_env(const FaultConfig& base)
{
    FaultConfig config = base;
    env_u64("CAMP_FAULT_SEED", &config.seed);
    double rate = 0;
    if (env_double("CAMP_FAULT_RATE", &rate))
        config.rate.fill(rate);
    static constexpr const char* kSiteVars[kFaultSiteCount] = {
        "CAMP_FAULT_IPU",          "CAMP_FAULT_CONVERTER",
        "CAMP_FAULT_GATHER",       "CAMP_FAULT_MEM_TRUNCATE",
        "CAMP_FAULT_MEM_STALL",
    };
    for (std::size_t i = 0; i < kFaultSiteCount; ++i)
        env_double(kSiteVars[i], &config.rate[i]);
    return config;
}

} // namespace camp
