#include "support/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

namespace camp::support::trace {

namespace {

/** Process-wide trace state; leaked on purpose (exit-time writers from
 * late atexit handlers must still find it alive). */
struct TraceState
{
    std::string path;         ///< CAMP_TRACE value, empty when unset
    std::size_t capacity = 0; ///< ring size in events
    std::vector<Event> ring;
    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> enabled{false};
    std::chrono::steady_clock::time_point epoch;
    std::atomic<std::uint32_t> next_tid{0};
};

void write_at_exit();

TraceState&
state()
{
    static TraceState* s = [] {
        auto* st = new TraceState;
        st->epoch = std::chrono::steady_clock::now();
        if (const char* env = std::getenv("CAMP_TRACE")) {
            if (env[0] != '\0')
                st->path = env;
        }
        st->capacity = 1u << 16;
        if (const char* env = std::getenv("CAMP_TRACE_BUF")) {
            const long long v = std::strtoll(env, nullptr, 10);
            if (v >= 1)
                st->capacity = static_cast<std::size_t>(v);
        }
        st->ring.resize(st->capacity);
        st->enabled.store(!st->path.empty(),
                          std::memory_order_release);
        if (!st->path.empty())
            std::atexit(write_at_exit);
        return st;
    }();
    return *s;
}

void
write_at_exit()
{
    TraceState& s = state();
    if (!s.path.empty())
        write_json(s.path);
}

} // namespace

bool
enabled()
{
    return state().enabled.load(std::memory_order_relaxed);
}

void
set_enabled(bool on)
{
    state().enabled.store(on, std::memory_order_release);
}

const std::string&
env_path()
{
    return state().path;
}

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - state().epoch)
            .count());
}

std::uint32_t
thread_ordinal()
{
    static thread_local std::uint32_t tid =
        state().next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
emit(const Event& event)
{
    TraceState& s = state();
    if (!s.enabled.load(std::memory_order_relaxed))
        return;
    const std::uint64_t slot =
        s.next.fetch_add(1, std::memory_order_relaxed);
    s.ring[slot % s.capacity] = event;
}

std::size_t
capacity()
{
    return state().capacity;
}

std::uint64_t
total_emitted()
{
    return state().next.load(std::memory_order_relaxed);
}

void
reset()
{
    TraceState& s = state();
    s.next.store(0, std::memory_order_relaxed);
    for (Event& e : s.ring)
        e = Event{};
}

void
Span::finish()
{
    event_.dur_ns = now_ns() - event_.start_ns;
    event_.tid = thread_ordinal();
    emit(event_);
}

bool
write_json(const std::string& path)
{
    TraceState& s = state();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::uint64_t total = s.next.load(std::memory_order_acquire);
    const std::uint64_t kept =
        total < s.capacity ? total : s.capacity;
    // Oldest retained event first (chronological within each thread).
    const std::uint64_t first = total - kept;
    std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    bool wrote_any = false;
    for (std::uint64_t i = 0; i < kept; ++i) {
        const Event& e = s.ring[(first + i) % s.capacity];
        if (e.name == nullptr)
            continue; // torn or never-written slot
        std::fprintf(f,
                     "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", "
                     "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                     "\"ts\": %.3f, \"dur\": %.3f",
                     wrote_any ? "," : "", e.name, e.cat, e.tid,
                     static_cast<double>(e.start_ns) / 1e3,
                     static_cast<double>(e.dur_ns) / 1e3);
        if (e.args > 0) {
            std::fprintf(f, ", \"args\": {");
            for (int a = 0; a < e.args; ++a)
                std::fprintf(f, "%s\"%s\": %.6g", a == 0 ? "" : ", ",
                             e.arg_name[a], e.arg_value[a]);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "}");
        wrote_any = true;
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
}

} // namespace camp::support::trace
