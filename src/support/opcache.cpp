#include "support/opcache.hpp"

#include <algorithm>
#include <atomic>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/errors.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace camp::support {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** Checksum of a payload at insert time; re-verified on every hit so a
 * mutated-in-place cached buffer is detected, never served. */
std::uint64_t
value_checksum(const OpValue& value)
{
    std::uint64_t hash =
        fnv1a_words(value.scalars.data(), value.scalars.size());
    for (const auto& part : value.parts) {
        const std::uint64_t len = part.size();
        hash = fnv1a_words(&len, 1, hash);
        hash = fnv1a_words(part.data(), part.size(), hash);
    }
    return hash;
}

/** Fixed per-entry bookkeeping estimate (list node, map slot,
 * control block) so the byte budget is honest about overhead. */
constexpr std::size_t kEntryOverhead = 128;

} // namespace

std::uint64_t
fnv1a_words(const std::uint64_t* words, std::size_t n,
            std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < n; ++i) {
        // Word-at-a-time FNV-1a (the scheduler's operand-digest
        // variant): xor the limb, then one multiply.
        hash ^= words[i];
        hash *= kFnvPrime;
    }
    return hash;
}

OpKey
make_key(OpTag tag, std::vector<std::uint64_t> material)
{
    OpKey key;
    key.tag = static_cast<std::uint64_t>(tag);
    key.material = std::move(material);
    key.digest = fnv1a_words(key.material.data(), key.material.size(),
                             fnv1a_words(&key.tag, 1));
    return key;
}

struct OpCache::Shard
{
    struct Entry
    {
        OpKey key;
        std::shared_ptr<const OpValue> value;
        std::uint64_t checksum = 0;
        std::size_t bytes = 0;
    };

    std::mutex mutex;
    /** Front = most recently used. */
    std::list<Entry> lru;
    /** digest -> every entry with that digest (collision chains are
     * expected: the digest is a router, not the identity). */
    std::unordered_map<std::uint64_t,
                       std::vector<std::list<Entry>::iterator>>
        index;
    /** Mutated only under this shard's mutex; atomic so the gauge
     * publisher can sum all shards without taking their locks. */
    std::atomic<std::size_t> bytes{0};
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::uint64_t collisions = 0;
};

struct OpCache::Impl
{
    std::size_t max_bytes;
    std::size_t shard_budget;
    std::atomic<bool> enabled;
    std::vector<std::unique_ptr<Shard>> shards;

    metrics::Counter& hits;
    metrics::Counter& misses;
    metrics::Counter& evictions;
    metrics::Counter& inserts;
    metrics::Counter& collisions;
    metrics::Gauge& bytes_gauge;

    Impl(std::size_t max, bool on, unsigned nshards,
         const std::string& prefix)
        : max_bytes(max),
          shard_budget(std::max<std::size_t>(1, max / nshards)),
          enabled(on),
          hits(metrics::counter(prefix + ".hits")),
          misses(metrics::counter(prefix + ".misses")),
          evictions(metrics::counter(prefix + ".evictions")),
          inserts(metrics::counter(prefix + ".inserts")),
          collisions(metrics::counter(prefix + ".collisions")),
          bytes_gauge(metrics::gauge(prefix + ".bytes"))
    {
        shards.reserve(nshards);
        for (unsigned i = 0; i < nshards; ++i)
            shards.push_back(std::make_unique<Shard>());
    }

    Shard&
    shard_of(std::uint64_t digest)
    {
        // The digest's low bits route the bucket within a shard's
        // unordered_map; mix the high bits into the shard choice so
        // both decisions don't consume the same entropy.
        return *shards[(digest >> 48) % shards.size()];
    }

    void
    publish_bytes()
    {
        std::int64_t total = 0;
        for (const auto& shard : shards)
            total += static_cast<std::int64_t>(
                shard->bytes.load(std::memory_order_relaxed));
        bytes_gauge.set(total);
    }
};

OpCache::OpCache(std::size_t max_bytes, bool enabled, unsigned shards,
                 std::string metrics_prefix)
    : impl_(std::make_unique<Impl>(max_bytes, enabled,
                                   std::max(1u, shards),
                                   metrics_prefix))
{
}

OpCache::~OpCache() = default;

bool
OpCache::enabled() const
{
    return impl_->enabled.load(std::memory_order_relaxed);
}

void
OpCache::set_enabled(bool on)
{
    impl_->enabled.store(on, std::memory_order_relaxed);
}

std::size_t
OpCache::max_bytes() const
{
    return impl_->max_bytes;
}

std::shared_ptr<const OpValue>
OpCache::lookup(const OpKey& key)
{
    if (!enabled())
        return nullptr;
    Shard& shard = impl_->shard_of(key.digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto bucket = shard.index.find(key.digest);
    if (bucket != shard.index.end()) {
        for (const auto& it : bucket->second) {
            if (it->key.tag != key.tag ||
                it->key.material != key.material) {
                // Digest matched, material did not: a real collision.
                // Count it and keep scanning — serving this entry
                // would change a result.
                ++shard.collisions;
                impl_->collisions.add();
                continue;
            }
            if (value_checksum(*it->value) != it->checksum)
                throw Error(ErrorCode::Internal,
                            "opcache: cached payload mutated after "
                            "insert (immutability contract violated)");
            shard.lru.splice(shard.lru.begin(), shard.lru, it);
            ++shard.hits;
            impl_->hits.add();
            trace::Span span("opcache.hit", "opcache");
            return it->value;
        }
    }
    ++shard.misses;
    impl_->misses.add();
    trace::Span span("opcache.miss", "opcache");
    return nullptr;
}

void
OpCache::insert(const OpKey& key, OpValue value)
{
    if (!enabled())
        return;
    auto shared = std::make_shared<const OpValue>(std::move(value));
    const std::size_t entry_bytes =
        key.bytes() + shared->bytes() + kEntryOverhead;
    Shard& shard = impl_->shard_of(key.digest);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (entry_bytes > impl_->shard_budget)
            return; // would evict the whole shard for one entry
        auto& bucket = shard.index[key.digest];
        for (auto& it : bucket) {
            if (it->key.tag == key.tag &&
                it->key.material == key.material) {
                // Replace in place (e.g. a reciprocal recomputed at
                // larger extra supersedes the narrower one).
                shard.bytes -= it->bytes;
                it->value = std::move(shared);
                it->checksum = value_checksum(*it->value);
                it->bytes = entry_bytes;
                shard.bytes += entry_bytes;
                shard.lru.splice(shard.lru.begin(), shard.lru, it);
                ++shard.inserts;
                impl_->inserts.add();
                evict_locked(shard);
                impl_->publish_bytes();
                return;
            }
        }
        Shard::Entry entry;
        entry.key = key;
        entry.checksum = value_checksum(*shared);
        entry.value = std::move(shared);
        entry.bytes = entry_bytes;
        shard.lru.push_front(std::move(entry));
        bucket.push_back(shard.lru.begin());
        shard.bytes += entry_bytes;
        ++shard.inserts;
        impl_->inserts.add();
        evict_locked(shard);
    }
    impl_->publish_bytes();
}

void
OpCache::clear()
{
    for (auto& shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->index.clear();
        shard->bytes = 0;
    }
    impl_->publish_bytes();
}

OpCacheStats
OpCache::stats() const
{
    OpCacheStats stats;
    for (auto& shard : impl_->shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.hits += shard->hits;
        stats.misses += shard->misses;
        stats.evictions += shard->evictions;
        stats.inserts += shard->inserts;
        stats.collisions += shard->collisions;
        stats.bytes += shard->bytes;
        stats.entries += shard->lru.size();
    }
    return stats;
}

void
OpCache::evict_locked(Shard& shard)
{
    while (shard.bytes > impl_->shard_budget && !shard.lru.empty()) {
        auto victim = std::prev(shard.lru.end());
        auto bucket = shard.index.find(victim->key.digest);
        CAMP_ASSERT(bucket != shard.index.end());
        auto& chain = bucket->second;
        chain.erase(std::find(chain.begin(), chain.end(), victim));
        if (chain.empty())
            shard.index.erase(bucket);
        shard.bytes -= victim->bytes;
        shard.lru.erase(victim);
        ++shard.evictions;
        impl_->evictions.add();
    }
}

OpCache&
OpCache::global()
{
    static OpCache cache(env_max_bytes(), env_enabled(), 8, "opcache");
    return cache;
}

bool
OpCache::env_enabled()
{
    return env_flag("CAMP_OPCACHE", true);
}

std::size_t
OpCache::env_max_bytes()
{
    return static_cast<std::size_t>(env_positive_u64(
        "CAMP_OPCACHE_BYTES", 32ull * 1024 * 1024));
}

} // namespace camp::support
