#include "support/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

#include "support/arena.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace camp::support {

namespace {

/** Worker identity of the calling thread (global pool helpers). */
thread_local ThreadPool* t_worker_pool = nullptr;
thread_local int t_worker_index = -1;

/** SerialGuard nesting depth. */
thread_local unsigned t_serial_depth = 0;

/** Registered-once pool metric handles. */
struct PoolMetrics
{
    metrics::Counter* submits;
    metrics::Counter* steals;
    metrics::Counter* inject_pops;
    metrics::Gauge* queue_depth_max;
};

PoolMetrics&
pool_metrics()
{
    static PoolMetrics* m = [] {
        auto* pm = new PoolMetrics;
        pm->submits = &metrics::counter("pool.submits");
        pm->steals = &metrics::counter("pool.steals");
        pm->inject_pops = &metrics::counter("pool.inject_pops");
        pm->queue_depth_max = &metrics::gauge("pool.queue_depth_max");
        return pm;
    }();
    return *m;
}

} // namespace

unsigned
hardware_threads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned
env_thread_count()
{
    static const unsigned count = [] {
        if (const char* env = std::getenv("CAMP_THREADS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 1)
                return static_cast<unsigned>(v);
        }
        return hardware_threads();
    }();
    return count;
}

ThreadPool::ThreadPool(unsigned executors)
{
    const unsigned workers = executors > 1 ? executors - 1 : 0;
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        sleep_cv_.notify_all();
    }
    for (std::thread& t : threads_)
        t.join();
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(env_thread_count());
    return pool;
}

void
ThreadPool::submit(Task task)
{
    WorkerQueue* queue = &inject_;
    if (t_worker_pool == this && t_worker_index >= 0)
        queue = queues_[static_cast<std::size_t>(t_worker_index)].get();
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(queue->mutex);
        queue->tasks.push_back(std::move(task));
        depth = queue->tasks.size();
    }
    PoolMetrics& pm = pool_metrics();
    pm.submits->add();
    pm.queue_depth_max->update_max(static_cast<std::int64_t>(depth));
    // Notify under the sleep mutex so a worker cannot scan-empty and
    // fall asleep between our push and our notify.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
}

bool
ThreadPool::try_run_one(int self)
{
    Task task;
    bool found = false;
    // Own queue first, newest task (LIFO: depth-first locality).
    if (self >= 0) {
        WorkerQueue& own = *queues_[static_cast<std::size_t>(self)];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.back());
            own.tasks.pop_back();
            found = true;
        }
    }
    // Steal oldest task from a victim (FIFO: biggest unit of work).
    if (!found) {
        const std::size_t n = queues_.size();
        const std::size_t start =
            self >= 0 ? static_cast<std::size_t>(self) + 1 : 0;
        for (std::size_t k = 0; k < n && !found; ++k) {
            WorkerQueue& victim = *queues_[(start + k) % n];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.front());
                victim.tasks.pop_front();
                found = true;
            }
        }
        if (found)
            pool_metrics().steals->add();
    }
    if (!found) {
        std::lock_guard<std::mutex> lock(inject_.mutex);
        if (!inject_.tasks.empty()) {
            task = std::move(inject_.tasks.front());
            inject_.tasks.pop_front();
            found = true;
        }
        if (found)
            pool_metrics().inject_pops->add();
    }
    if (!found)
        return false;
    execute(task);
    return true;
}

void
ThreadPool::execute(Task& task)
{
    std::exception_ptr error;
    try {
        task.fn();
    } catch (...) {
        error = std::current_exception();
    }
    task.group->task_done(error);
}

void
ThreadPool::worker_loop(unsigned index)
{
    t_worker_pool = this;
    t_worker_index = static_cast<int>(index);
    while (!stop_.load(std::memory_order_acquire)) {
        if (try_run_one(static_cast<int>(index)))
            continue;
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stop_.load(std::memory_order_acquire))
            break;
        // Timed wait: a submit between our empty scan and this wait is
        // already covered by submit's notify-under-mutex; the timeout
        // only bounds shutdown latency and subtask bursts from helpers.
        sleep_cv_.wait_for(lock, std::chrono::microseconds(500));
    }
    t_worker_pool = nullptr;
    t_worker_index = -1;
}

void
TaskGroup::run(std::function<void()> fn)
{
    pending_.fetch_add(1, std::memory_order_acq_rel);
    ThreadPool::Task task{std::move(fn), this};
    if (!pool_.parallel()) {
        ThreadPool::execute(task); // serial pool: run inline
        return;
    }
    pool_.submit(std::move(task));
}

void
TaskGroup::drain()
{
    const int self = t_worker_pool == &pool_ ? t_worker_index : -1;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (pool_.try_run_one(self))
            continue;
        // Nothing runnable: our tasks are in flight on other threads.
        // task_done() notifies under done_mutex_, so this cannot miss
        // the last completion.
        std::unique_lock<std::mutex> lock(done_mutex_);
        done_cv_.wait_for(lock, std::chrono::microseconds(200), [this] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
    }
    // The final task_done() decrements pending_ while holding
    // done_mutex_ and notifies before releasing it; taking the mutex
    // here orders our caller's possible destruction of this group
    // after that notify has completed.
    std::lock_guard<std::mutex> lock(done_mutex_);
}

void
TaskGroup::wait()
{
    drain();
    std::lock_guard<std::mutex> lock(done_mutex_);
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
TaskGroup::task_done(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(done_mutex_);
    if (error && !first_error_)
        first_error_ = error;
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    done_cv_.notify_all();
}

ScratchArena&
ScratchArena::tls()
{
    static thread_local ScratchArena arena;
    return arena;
}

ScratchArena::~ScratchArena()
{
    // Runs at thread exit, possibly after this thread's arena magazines
    // are gone — release_direct() files blocks straight into the depot.
    // The global arena is leaked, so it is always alive here.
    for (Block& block : blocks_)
        LimbArena::global().release_direct(block.words, block.capacity);
    blocks_.clear();
}

std::uint64_t*
ScratchArena::alloc(std::size_t n)
{
    // Bump blocks come from the global limb arena; it rounds up to a
    // size class and the full class capacity is usable bump space.
    const auto arena_block = [](std::size_t min_words) -> Block {
        const std::size_t cap = LimbArena::size_class_words(min_words);
        return {LimbArena::global().alloc(cap), cap};
    };
    if (blocks_.empty())
        blocks_.push_back(arena_block(kFirstBlockWords));
    if (blocks_[block_].capacity - used_ < n) {
        // Tail of the current block is wasted until the frame unwinds;
        // move to (or create) a next block that fits.
        ++block_;
        if (block_ == blocks_.size()) {
            blocks_.push_back(
                arena_block(std::max(blocks_.back().capacity * 2, n)));
        } else if (blocks_[block_].capacity < n) {
            // Block is beyond every live frame mark, safe to regrow.
            LimbArena::global().release(blocks_[block_].words,
                                        blocks_[block_].capacity);
            blocks_[block_] = arena_block(n);
        }
        used_ = 0;
    }
    std::uint64_t* p = blocks_[block_].words + used_;
    used_ += n;
    // High-water accounting: words live right now = full blocks below
    // the cursor plus the current block's bump offset. blocks_ stays
    // tiny (doubling growth), so the walk is a handful of adds.
    std::size_t live = used_;
    for (std::size_t i = 0; i < block_; ++i)
        live += blocks_[i].capacity;
    if (live > high_water_words_) {
        high_water_words_ = live;
        static metrics::Gauge& hw =
            metrics::gauge("mpn.scratch.high_water_words");
        hw.update_max(static_cast<std::int64_t>(live));
    }
    return p;
}

void
ScratchArena::release(Mark m)
{
    CAMP_ASSERT(m.block < blocks_.size() || blocks_.empty());
    block_ = m.block;
    used_ = m.used;
}

SerialGuard::SerialGuard()
{
    ++t_serial_depth;
}

SerialGuard::~SerialGuard()
{
    CAMP_ASSERT(t_serial_depth > 0);
    --t_serial_depth;
}

bool
parallel_allowed()
{
    return t_serial_depth == 0;
}

} // namespace camp::support
