/**
 * @file
 * Deterministic fault injection for the simulated datapath.
 *
 * Iterative arbitrary-precision compute amplifies single-bit datapath
 * errors into unbounded output error, so the runtime needs a fault
 * model it can rehearse recovery against. A FaultEngine is a seeded
 * RNG plus per-site firing rates: each hardware unit asks
 * `fire(site)` once per injection opportunity (an IPU task, a pattern
 * conversion, a gather, an operand stream) and corrupts its own state
 * when the draw hits. Everything is deterministic in the seed, so a
 * failing run replays exactly.
 *
 * Rates live in FaultConfig, which SimConfig embeds; default rates are
 * all zero, which compiles to the exact pre-fault behaviour (no RNG
 * draws, no counter traffic, identical cycle accounting).
 */
#ifndef CAMP_SUPPORT_FAULT_HPP
#define CAMP_SUPPORT_FAULT_HPP

#include <array>
#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"

namespace camp {

/** Where a fault strikes. One rate and one counter per site. */
enum class FaultSite
{
    IpuAccumulator,   ///< bit flip in an IPU accumulator (per task)
    ConverterPattern, ///< pattern-SRAM / converter corruption (per convert)
    GatherCarry,      ///< dropped inter-segment carry (per gather)
    MemoryTruncate,   ///< CMA operand stream truncated (per stream-in)
    MemoryStall,      ///< CMA stream stalls, costing cycles (per stream-in)
};

inline constexpr std::size_t kFaultSiteCount = 5;

const char* fault_site_name(FaultSite site);

/** Per-site firing rates and the injection seed. */
struct FaultConfig
{
    std::uint64_t seed = 0xfa017u;
    /** Probability in [0, 1] of firing per opportunity, by site. */
    std::array<double, kFaultSiteCount> rate{};

    double&
    rate_at(FaultSite site)
    {
        return rate[static_cast<std::size_t>(site)];
    }

    double
    rate_at(FaultSite site) const
    {
        return rate[static_cast<std::size_t>(site)];
    }

    /** Any site armed? */
    bool
    enabled() const
    {
        for (const double r : rate)
            if (r > 0)
                return true;
        return false;
    }

    /**
     * Copy of @p base with environment overrides applied:
     * CAMP_FAULT_SEED, CAMP_FAULT_RATE (all sites), and per-site
     * CAMP_FAULT_IPU / CAMP_FAULT_CONVERTER / CAMP_FAULT_GATHER /
     * CAMP_FAULT_MEM_TRUNCATE / CAMP_FAULT_MEM_STALL.
     */
    static FaultConfig from_env(const FaultConfig& base);
};

/**
 * Seeded fault source shared by the functional units of one Core.
 * Counts every injection per site so recovery layers can reconcile
 * detected faults against injected ones.
 */
class FaultEngine
{
  public:
    explicit FaultEngine(const FaultConfig& config)
        : config_(config), rng_(config.seed)
    {
    }

    const FaultConfig& config() const { return config_; }

    /**
     * Draw once for @p site; true (and counted) when the fault fires.
     * Sites with zero rate never draw, keeping the RNG sequence of
     * the armed sites stable under config changes elsewhere.
     */
    bool
    fire(FaultSite site)
    {
        const double rate = config_.rate_at(site);
        if (rate <= 0)
            return false;
        if (rate < 1.0 && rng_.uniform() >= rate)
            return false;
        ++injected_[static_cast<std::size_t>(site)];
        return true;
    }

    /** Uniform value in [0, bound), for picking bits/segments. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return rng_.below(bound);
    }

    std::uint64_t
    injected(FaultSite site) const
    {
        return injected_[static_cast<std::size_t>(site)];
    }

    std::uint64_t
    total_injected() const
    {
        std::uint64_t total = 0;
        for (const std::uint64_t n : injected_)
            total += n;
        return total;
    }

    void
    reset_counters()
    {
        injected_.fill(0);
    }

  private:
    FaultConfig config_;
    Rng rng_;
    std::array<std::uint64_t, kFaultSiteCount> injected_{};
};

} // namespace camp

#endif // CAMP_SUPPORT_FAULT_HPP
