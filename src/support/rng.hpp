/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Tests, benchmarks, and workload generators must be reproducible across
 * runs, so everything in this repository draws randomness from this
 * generator with explicit seeds instead of std::random_device.
 */
#ifndef CAMP_SUPPORT_RNG_HPP
#define CAMP_SUPPORT_RNG_HPP

#include <cstdint>

namespace camp {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialise state from @p seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound) for bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace camp

#endif // CAMP_SUPPORT_RNG_HPP
