/**
 * @file
 * Minimal aligned console table printer for the benchmark harness.
 *
 * Every bench binary reproduces one paper table/figure as rows of text;
 * this keeps their output uniform and diffable.
 */
#ifndef CAMP_SUPPORT_TABLE_HPP
#define CAMP_SUPPORT_TABLE_HPP

#include <string>
#include <vector>

namespace camp {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void add_row(std::vector<std::string> cells);

    /** Render with column alignment and a separator under the header. */
    std::string to_string() const;

    /** Convenience: render to stdout. */
    void print() const;

    /** Format helpers for numeric cells. */
    static std::string fmt(double v, int precision = 3);
    static std::string fmt_si(double v, int precision = 3);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace camp

#endif // CAMP_SUPPORT_TABLE_HPP
