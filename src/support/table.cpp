#include "support/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace camp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::add_row(std::vector<std::string> cells)
{
    CAMP_ASSERT(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::to_string() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(to_string().c_str(), stdout);
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision + 2, v);
    return buf;
}

std::string
Table::fmt_si(double v, int precision)
{
    static const char* suffix[] = {"", "K", "M", "G", "T", "P"};
    int idx = 0;
    double a = std::fabs(v);
    while (a >= 1000.0 && idx < 5) {
        a /= 1000.0;
        v /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g%s", precision, v, suffix[idx]);
    return buf;
}

} // namespace camp
