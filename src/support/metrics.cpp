#include "support/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace camp::support::metrics {

void
Histogram::record(std::uint64_t v)
{
    int b = 0;
    if (v != 0) {
        b = 64 - static_cast<int>(__builtin_clzll(v));
        if (b >= kBuckets)
            b = kBuckets - 1;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed))
        ;
}

void
Histogram::reset()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

struct Registry::Entry
{
    SnapshotEntry::Kind kind;
    // Exactly one is non-null, matching kind. unique_ptr gives the
    // metric a stable address across map growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

struct Registry::Impl
{
    mutable std::mutex mu;
    // Ordered map: snapshot() comes out sorted by name for free.
    std::map<std::string, Entry> entries;
};

Registry::Impl&
Registry::impl() const
{
    static Impl* impl = new Impl; // leaked: atexit reporters need it
    return *impl;
}

Registry&
Registry::instance()
{
    static Registry* reg = new Registry;
    return *reg;
}

Registry::Entry&
Registry::find_or_create(const std::string& name,
                         SnapshotEntry::Kind kind)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    auto [it, inserted] = im.entries.try_emplace(name);
    Entry& e = it->second;
    if (inserted) {
        e.kind = kind;
        switch (kind) {
        case SnapshotEntry::Kind::Counter:
            e.counter = std::make_unique<Counter>();
            break;
        case SnapshotEntry::Kind::Gauge:
            e.gauge = std::make_unique<Gauge>();
            break;
        case SnapshotEntry::Kind::Histogram:
            e.histogram = std::make_unique<Histogram>();
            break;
        }
    }
    assert(e.kind == kind && "metric re-registered with another kind");
    return e;
}

Counter&
Registry::counter(const std::string& name)
{
    return *find_or_create(name, SnapshotEntry::Kind::Counter).counter;
}

Gauge&
Registry::gauge(const std::string& name)
{
    return *find_or_create(name, SnapshotEntry::Kind::Gauge).gauge;
}

Histogram&
Registry::histogram(const std::string& name)
{
    return *find_or_create(name, SnapshotEntry::Kind::Histogram)
                .histogram;
}

std::vector<SnapshotEntry>
Registry::snapshot() const
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    std::vector<SnapshotEntry> out;
    out.reserve(im.entries.size());
    for (const auto& [name, e] : im.entries) {
        SnapshotEntry se;
        se.name = name;
        se.kind = e.kind;
        switch (e.kind) {
        case SnapshotEntry::Kind::Counter:
            se.value = static_cast<std::int64_t>(e.counter->value());
            break;
        case SnapshotEntry::Kind::Gauge:
            se.value = e.gauge->value();
            break;
        case SnapshotEntry::Kind::Histogram:
            se.count = e.histogram->count();
            se.sum = e.histogram->sum();
            se.max = e.histogram->max();
            se.mean = e.histogram->mean();
            break;
        }
        out.push_back(std::move(se));
    }
    return out;
}

std::string
Registry::render_table(const std::string& prefix,
                       bool include_zero) const
{
    const auto snap = snapshot();
    std::size_t width = 24;
    for (const auto& e : snap)
        if (e.name.size() > width &&
            e.name.compare(0, prefix.size(), prefix) == 0)
            width = e.name.size();
    std::string out;
    char line[256];
    for (const auto& e : snap) {
        if (e.name.compare(0, prefix.size(), prefix) != 0)
            continue;
        switch (e.kind) {
        case SnapshotEntry::Kind::Counter:
        case SnapshotEntry::Kind::Gauge:
            if (e.value == 0 && !include_zero)
                continue;
            std::snprintf(line, sizeof line, "%-*s %20lld\n",
                          static_cast<int>(width), e.name.c_str(),
                          static_cast<long long>(e.value));
            break;
        case SnapshotEntry::Kind::Histogram:
            if (e.count == 0 && !include_zero)
                continue;
            std::snprintf(line, sizeof line,
                          "%-*s count=%llu mean=%.1f max=%llu\n",
                          static_cast<int>(width), e.name.c_str(),
                          static_cast<unsigned long long>(e.count),
                          e.mean,
                          static_cast<unsigned long long>(e.max));
            break;
        }
        out += line;
    }
    return out;
}

std::string
Registry::to_json() const
{
    const auto snap = snapshot();
    std::string out = "{";
    char buf[256];
    bool first = true;
    for (const auto& e : snap) {
        out += first ? "\n" : ",\n";
        first = false;
        switch (e.kind) {
        case SnapshotEntry::Kind::Counter:
        case SnapshotEntry::Kind::Gauge:
            std::snprintf(buf, sizeof buf, "  \"%s\": %lld",
                          e.name.c_str(),
                          static_cast<long long>(e.value));
            break;
        case SnapshotEntry::Kind::Histogram:
            std::snprintf(
                buf, sizeof buf,
                "  \"%s\": {\"count\": %llu, \"sum\": %llu, "
                "\"max\": %llu, \"mean\": %.6g}",
                e.name.c_str(),
                static_cast<unsigned long long>(e.count),
                static_cast<unsigned long long>(e.sum),
                static_cast<unsigned long long>(e.max), e.mean);
            break;
        }
        out += buf;
    }
    out += "\n}\n";
    return out;
}

void
Registry::reset()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& [name, e] : im.entries) {
        switch (e.kind) {
        case SnapshotEntry::Kind::Counter:
            e.counter->reset();
            break;
        case SnapshotEntry::Kind::Gauge:
            e.gauge->reset();
            break;
        case SnapshotEntry::Kind::Histogram:
            e.histogram->reset();
            break;
        }
    }
}

Counter&
counter(const std::string& name)
{
    return Registry::instance().counter(name);
}

Gauge&
gauge(const std::string& name)
{
    return Registry::instance().gauge(name);
}

Histogram&
histogram(const std::string& name)
{
    return Registry::instance().histogram(name);
}

} // namespace camp::support::metrics
