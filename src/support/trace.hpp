/**
 * @file
 * Structured tracing: scoped spans with thread attribution, collected
 * in a fixed-capacity lock-free ring buffer and exported as Chrome
 * `chrome://tracing` / Perfetto-loadable JSON. This is the software
 * analogue of the paper's per-stage instrumentation (Fig. 2 breakdown):
 * every layer of the stack — mpn kernels, the simulated pipeline, the
 * MPApca runtime, the thread pool — opens spans, and
 * `tools/trace_report` renders the per-stage table from the export.
 *
 * Cost model: tracing is OFF unless the CAMP_TRACE environment variable
 * names an output file (or a test/bench calls set_enabled(true)); a
 * disabled Span construct/destruct is one relaxed atomic load and no
 * stores — cheap enough to leave in release hot paths (perf_smoke
 * measures and records the per-span cost in BENCH_perf_smoke.json).
 * Enabled spans pay one steady_clock read at each end plus one
 * fetch_add into the ring. The ring keeps the most recent
 * `capacity()` events (default 1 << 16, override CAMP_TRACE_BUF);
 * wrap-around overwrites the oldest. Export is intended from quiescent
 * points (atexit, after joins) — in-flight writers during write_json()
 * can tear at most the events still being written.
 */
#ifndef CAMP_SUPPORT_TRACE_HPP
#define CAMP_SUPPORT_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>

namespace camp::support::trace {

/** One completed span. Names must be string literals (or otherwise
 * outlive the ring): the ring stores pointers, never copies. */
struct Event
{
    const char* name = nullptr;
    const char* cat = nullptr;
    std::uint64_t start_ns = 0; ///< since process trace epoch
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0; ///< small per-thread ordinal
    static constexpr int kMaxArgs = 2;
    const char* arg_name[kMaxArgs] = {nullptr, nullptr};
    double arg_value[kMaxArgs] = {0, 0};
    int args = 0;
};

/** True when spans are being recorded (CAMP_TRACE set or programmatic
 * override). The hot-path check every Span performs. */
bool enabled();

/** Force tracing on/off regardless of CAMP_TRACE (benches/tests). */
void set_enabled(bool on);

/** CAMP_TRACE value, or empty when unset. */
const std::string& env_path();

/** Monotonic nanoseconds since the process trace epoch. */
std::uint64_t now_ns();

/** Small dense ordinal of the calling thread (0 = first seen). */
std::uint32_t thread_ordinal();

/** Record one completed event (no-op when disabled). */
void emit(const Event& event);

/** Ring capacity in events. */
std::size_t capacity();

/** Events emitted since the last reset (monotonic; may exceed
 * capacity(), in which case the oldest were overwritten). */
std::uint64_t total_emitted();

/** Drop all recorded events (tests/benches; not thread-safe against
 * concurrent emitters). */
void reset();

/**
 * Write the retained events as Chrome-tracing JSON
 * (`{"traceEvents": [...]}`, "X" complete events, microsecond
 * timestamps). Returns false when the file cannot be opened.
 */
bool write_json(const std::string& path);

/**
 * RAII span. Construction samples the clock only when tracing is
 * enabled; destruction emits. A null @p name makes the span inert —
 * callers gate noisy sites with `cond ? "name" : nullptr`. Arguments
 * show up under "args" in the trace viewer:
 *
 *     trace::Span span("mpn.mul", "mpn");
 *     span.arg("bits", static_cast<double>(bits));
 */
class Span
{
  public:
    Span(const char* name, const char* cat)
    {
        if (name != nullptr && enabled()) {
            event_.name = name;
            event_.cat = cat;
            event_.start_ns = now_ns();
            active_ = true;
        }
    }

    ~Span()
    {
        if (active_)
            finish();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /** Attach a numeric argument (first Event::kMaxArgs kept). */
    void
    arg(const char* key, double value)
    {
        if (active_ && event_.args < Event::kMaxArgs) {
            event_.arg_name[event_.args] = key;
            event_.arg_value[event_.args] = value;
            ++event_.args;
        }
    }

    /** True when this span is recording (tracing was enabled at
     * construction). */
    bool active() const { return active_; }

  private:
    void finish();

    Event event_;
    bool active_ = false;
};

} // namespace camp::support::trace

#endif // CAMP_SUPPORT_TRACE_HPP
